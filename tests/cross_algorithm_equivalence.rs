//! Cross-crate equivalence: every Masked SpGEMM implementation in the
//! workspace — 12 variants of ours plus the baselines — must produce
//! bit-identical CSR output on randomized instances of varying shape,
//! density and semiring, in both mask polarities.

use graph_algos::Scheme;
use masked_spgemm::{Algorithm, Phases};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::dense::reference_masked_spgemm;
use sparse::{CscMatrix, CsrMatrix, Idx, PlusPair, PlusTimes, Semiring};

/// Random rectangular CSR with integer-valued f64 entries (so that
/// floating-point addition is exact and order-independent).
fn random_csr(nrows: usize, ncols: usize, density: f64, rng: &mut StdRng) -> CsrMatrix<f64> {
    let mut rowptr = vec![0usize];
    let mut cols: Vec<Idx> = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..nrows {
        for j in 0..ncols {
            if rng.gen::<f64>() < density {
                cols.push(j as Idx);
                vals.push(rng.gen_range(1..100) as f64);
            }
        }
        rowptr.push(cols.len());
    }
    CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
}

fn all_schemes() -> Vec<Scheme> {
    Scheme::all_ours()
        .into_iter()
        .chain(Scheme::baselines())
        .collect()
}

fn check_instance<S>(sr: S, n: usize, k: usize, m: usize, da: f64, dm: f64, seed: u64)
where
    S: Semiring<A = f64, B = f64>,
    S::C: Default + Send + Sync + std::fmt::Debug + PartialEq,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let a = random_csr(n, k, da, &mut rng);
    let b = random_csr(k, m, da, &mut rng);
    let mask = random_csr(n, m, dm, &mut rng).pattern();
    let b_csc = CscMatrix::from_csr(&b);
    for compl in [false, true] {
        let expect = reference_masked_spgemm(sr, &mask, compl, &a, &b);
        for s in all_schemes() {
            if compl && !s.supports_complement() {
                continue;
            }
            let got = s.run(sr, &mask, compl, &a, &b, &b_csc).unwrap();
            assert_eq!(
                got,
                expect,
                "{} on ({n}x{k})·({k}x{m}) da={da} dm={dm} seed={seed} compl={compl}",
                s.label()
            );
        }
    }
}

#[test]
fn equivalence_square_medium() {
    for seed in 0..4 {
        check_instance(PlusTimes::<f64>::new(), 48, 48, 48, 0.15, 0.2, seed);
    }
}

#[test]
fn equivalence_rectangular() {
    check_instance(PlusTimes::<f64>::new(), 30, 50, 20, 0.2, 0.3, 11);
    check_instance(PlusTimes::<f64>::new(), 50, 10, 60, 0.25, 0.15, 12);
    check_instance(PlusTimes::<f64>::new(), 1, 40, 40, 0.3, 0.3, 13);
    check_instance(PlusTimes::<f64>::new(), 40, 40, 1, 0.3, 0.9, 14);
}

#[test]
fn equivalence_density_extremes() {
    // Nearly dense inputs, sparse mask (Inner's regime).
    check_instance(PlusTimes::<f64>::new(), 32, 32, 32, 0.7, 0.05, 21);
    // Sparse inputs, dense mask (Heap's regime).
    check_instance(PlusTimes::<f64>::new(), 32, 32, 32, 0.05, 0.8, 22);
    // Both nearly empty.
    check_instance(PlusTimes::<f64>::new(), 32, 32, 32, 0.02, 0.02, 23);
}

#[test]
fn equivalence_plus_pair_semiring() {
    for seed in 30..33 {
        check_instance(
            PlusPair::<f64, f64, u32>::new(),
            36,
            36,
            36,
            0.2,
            0.25,
            seed,
        );
    }
}

#[test]
fn equivalence_on_graph_inputs() {
    // Masked squaring of real generator output (the TC inner loop).
    let adj = graphs::to_undirected_simple(&graphs::rmat(8, graphs::RmatParams::default(), 5));
    let l = graph_algos::prepare_triangle_input(&adj);
    let lc = CscMatrix::from_csr(&l);
    let sr = PlusPair::<f64, f64, u64>::new();
    let expect = reference_masked_spgemm(sr, &l, false, &l, &l);
    for s in all_schemes() {
        let got = s.run(sr, &l, false, &l, &l, &lc).unwrap();
        assert_eq!(got, expect, "{}", s.label());
    }
}

#[test]
fn one_phase_two_phase_bitwise_identical() {
    // Beyond matching the reference, 1P and 2P of the same algorithm must
    // produce identical buffers (rowptr included).
    let mut rng = StdRng::seed_from_u64(77);
    let a = random_csr(64, 64, 0.12, &mut rng);
    let b = random_csr(64, 64, 0.12, &mut rng);
    let mask = random_csr(64, 64, 0.2, &mut rng).pattern();
    let b_csc = CscMatrix::from_csr(&b);
    let sr = PlusTimes::<f64>::new();
    for alg in Algorithm::ALL {
        for compl in [false, true] {
            if compl && !alg.supports_complement() {
                continue;
            }
            let one = Scheme::Ours(alg, Phases::One)
                .run(sr, &mask, compl, &a, &b, &b_csc)
                .unwrap();
            let two = Scheme::Ours(alg, Phases::Two)
                .run(sr, &mask, compl, &a, &b, &b_csc)
                .unwrap();
            assert_eq!(one.rowptr(), two.rowptr(), "{alg:?} compl={compl}");
            assert_eq!(one.colidx(), two.colidx(), "{alg:?} compl={compl}");
            assert_eq!(one.values(), two.values(), "{alg:?} compl={compl}");
        }
    }
}

#[test]
fn results_independent_of_thread_count() {
    let mut rng = StdRng::seed_from_u64(88);
    let a = random_csr(100, 100, 0.08, &mut rng);
    let b = random_csr(100, 100, 0.08, &mut rng);
    let mask = random_csr(100, 100, 0.15, &mut rng).pattern();
    let b_csc = CscMatrix::from_csr(&b);
    let sr = PlusTimes::<f64>::new();
    let s = Scheme::Ours(Algorithm::Msa, Phases::One);
    let baseline = s.run(sr, &mask, false, &a, &b, &b_csc).unwrap();
    for threads in [1usize, 2, 4, 7] {
        let pool = masked_spgemm::thread_pool(threads);
        let got = pool
            .install(|| s.run(sr, &mask, false, &a, &b, &b_csc))
            .unwrap();
        assert_eq!(got, baseline, "threads={threads}");
    }
}
