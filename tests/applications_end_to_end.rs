//! End-to-end application tests: the three paper benchmarks run on suite
//! graphs and agree with serial textbook references across schemes.

use graph_algos::reference::{brandes_reference, ktruss_reference, triangle_count_reference};
use graph_algos::{betweenness_centrality, ktruss, prepare_triangle_input, triangle_count, Scheme};
use masked_spgemm::{Algorithm, Phases};
use sparse::{CscMatrix, Idx};

fn small_suite_graphs() -> Vec<(String, sparse::CsrMatrix<f64>)> {
    graphs::suite()
        .into_iter()
        .filter(|g| g.nvertices() <= 1 << 10)
        .map(|g| (g.name.to_string(), g.build()))
        .collect()
}

#[test]
fn triangle_counts_match_reference_on_suite() {
    let schemes = [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Mca, Phases::Two),
        Scheme::Ours(Algorithm::Inner, Phases::One),
        Scheme::SsSaxpy,
    ];
    for (name, adj) in small_suite_graphs() {
        let expect = triangle_count_reference(&adj);
        let l = prepare_triangle_input(&adj);
        let lc = CscMatrix::from_csr(&l);
        for s in schemes {
            assert_eq!(
                triangle_count(s, &l, &lc).unwrap(),
                expect,
                "{name} with {}",
                s.label()
            );
        }
    }
}

#[test]
fn ktruss_matches_reference_on_suite() {
    for (name, adj) in small_suite_graphs().into_iter().take(4) {
        for k in [3usize, 5] {
            let expect = ktruss_reference(&adj, k);
            let got = ktruss(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, k).unwrap();
            assert_eq!(got.truss.pattern(), expect.pattern(), "{name} k={k}");
        }
    }
}

#[test]
fn ktruss_flops_identical_across_schemes() {
    // The pruning sequence is scheme-independent, so the flop accounting
    // (the Figure 14 numerator) must be too.
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(256, 12.0, 4));
    let a = ktruss(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, 5).unwrap();
    let b = ktruss(Scheme::Ours(Algorithm::Inner, Phases::Two), &adj, 5).unwrap();
    let c = ktruss(Scheme::SsDot, &adj, 5).unwrap();
    assert_eq!(a.total_flops, b.total_flops);
    assert_eq!(a.total_flops, c.total_flops);
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn bc_matches_brandes_on_suite() {
    for (name, adj) in small_suite_graphs().into_iter().take(3) {
        let n = adj.nrows();
        let sources: Vec<Idx> = (0..8).map(|i| ((i * 997) % n) as Idx).collect();
        let expect = brandes_reference(&adj, &sources);
        for s in [
            Scheme::Ours(Algorithm::Msa, Phases::One),
            Scheme::Ours(Algorithm::Hash, Phases::Two),
            Scheme::SsSaxpy,
        ] {
            let got = betweenness_centrality(s, &adj, &sources).unwrap();
            for (v, (x, y)) in got.centrality.iter().zip(&expect).enumerate() {
                assert!(
                    (x - y).abs() < 1e-6 * (1.0 + y.abs()),
                    "{name} {} vertex {v}: {x} vs {y}",
                    s.label()
                );
            }
        }
    }
}

#[test]
fn bc_batch_decomposes_over_sources() {
    // Centrality from a batch equals the sum of per-source runs.
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(64, 5.0, 9));
    let s = Scheme::Ours(Algorithm::Msa, Phases::One);
    let sources: Vec<Idx> = vec![1, 5, 9];
    let whole = betweenness_centrality(s, &adj, &sources).unwrap();
    let mut summed = vec![0.0f64; adj.nrows()];
    for &src in &sources {
        let one = betweenness_centrality(s, &adj, &[src]).unwrap();
        for (acc, v) in summed.iter_mut().zip(&one.centrality) {
            *acc += v;
        }
    }
    for (v, (x, y)) in whole.centrality.iter().zip(&summed).enumerate() {
        assert!((x - y).abs() < 1e-9, "vertex {v}: {x} vs {y}");
    }
}

#[test]
fn tc_scheme_census_agrees_everywhere() {
    // Every scheme (ours + baselines) on one mid-size skewed graph.
    let adj = graphs::to_undirected_simple(&graphs::rmat(9, graphs::RmatParams::default(), 3));
    let expect = triangle_count_reference(&adj);
    let l = prepare_triangle_input(&adj);
    let lc = CscMatrix::from_csr(&l);
    for s in Scheme::all_ours().into_iter().chain(Scheme::baselines()) {
        assert_eq!(triangle_count(s, &l, &lc).unwrap(), expect, "{}", s.label());
    }
}
