//! Operation-descriptor API tests: heterogeneous-semiring batches and
//! streamed sinks must match per-op direct results for every
//! `Algorithm × Phases`, the byte-budgeted caches must evict (and rebuild)
//! correctly, and the fingerprint-keyed plan cache must hit across
//! structurally-similar versions.

use engine::{Context, DynSemiring, MaskedOp, SemiringKind};
use masked_spgemm::{masked_spgemm, Algorithm, Phases};
use proptest::prelude::*;
use sparse::{CsrMatrix, Idx, SparseError};

/// CSR matrix of a fixed shape with ~`density` fill and small integer
/// values (exact in f64).
fn csr_strategy(nrows: usize, ncols: usize, density: f64) -> impl Strategy<Value = CsrMatrix<f64>> {
    let cells = nrows * ncols;
    proptest::collection::vec((0.0f64..1.0, 1i32..50), cells..=cells).prop_map(move |draws| {
        let mut rowptr = vec![0usize];
        let mut cols: Vec<Idx> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for i in 0..nrows {
            for j in 0..ncols {
                let (p, v) = draws[i * ncols + j];
                if p < density {
                    cols.push(j as Idx);
                    vals.push(v as f64);
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    })
}

/// The direct (engine-free) result of one descriptor, on the erased
/// semiring so the bits are comparable.
fn direct_result(
    ctx: &Context,
    op: &MaskedOp,
    alg: Algorithm,
    ph: Phases,
) -> Result<CsrMatrix<f64>, SparseError> {
    let (mask, a, b) = op.mat_operands().expect("matrix operands");
    masked_spgemm(
        alg,
        ph,
        op.complemented,
        DynSemiring::new(op.semiring),
        &ctx.matrix(mask),
        &ctx.matrix(a),
        &ctx.matrix(b),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One heterogeneous batch covering every `Algorithm × Phases` as
    /// per-op overrides, with alternating semirings and polarities:
    /// collected results must equal per-op direct calls bit for bit, and
    /// the streamed sink must see every index exactly once with the same
    /// bits.
    #[test]
    fn heterogeneous_batch_matches_per_op_direct(
        a in csr_strategy(12, 12, 0.3),
        b in csr_strategy(12, 12, 0.3),
        mask in csr_strategy(12, 12, 0.4),
    ) {
        let ctx = Context::with_threads(3);
        let (hm, ha, hb) = (
            ctx.insert(mask),
            ctx.insert(a),
            ctx.insert(b),
        );
        let kinds = [
            SemiringKind::PlusTimes,
            SemiringKind::PlusPair,
            SemiringKind::PlusFirst,
            SemiringKind::PlusSecond,
            SemiringKind::MinPlus,
        ];
        let mut ops = Vec::new();
        let mut shape = Vec::new(); // (algorithm, phases) per op
        for (i, alg) in Algorithm::ALL.into_iter().enumerate() {
            for (j, ph) in Phases::ALL.into_iter().enumerate() {
                let kind = kinds[(i * Phases::ALL.len() + j) % kinds.len()];
                let compl = (i + j) % 3 == 0 && alg.supports_complement();
                ops.push(
                    ctx.op(hm, ha, hb)
                        .semiring(kind)
                        .complemented(compl)
                        .algorithm(alg)
                        .phases(ph)
                        .build(),
                );
                shape.push((alg, ph));
            }
        }
        let expected: Vec<CsrMatrix<f64>> = ops
            .iter()
            .zip(&shape)
            .map(|(op, &(alg, ph))| direct_result(&ctx, op, alg, ph).unwrap())
            .collect();

        // Collected (input order).
        let collected = ctx.run_batch_collect(&ops);
        for (i, (got, want)) in collected.iter().zip(&expected).enumerate() {
            let (alg, ph) = shape[i];
            prop_assert_eq!(
                got.as_ref().unwrap(), want,
                "op {} {:?}-{:?} {:?}", i, alg, ph, ops[i].semiring
            );
        }

        // Streamed (completion order): every index delivered exactly once.
        let mut seen = vec![0usize; ops.len()];
        let mut mismatch = None;
        ctx.for_each_result(&ops, |i: usize, r: Result<CsrMatrix<f64>, SparseError>| {
            seen[i] += 1;
            if r.as_ref().ok() != Some(&expected[i]) && mismatch.is_none() {
                mismatch = Some(i);
            }
            // result dropped here — the sink retains nothing
        });
        prop_assert_eq!(mismatch, None, "streamed result diverged");
        prop_assert!(seen.iter().all(|&c| c == 1), "delivery counts {:?}", seen);
    }

    /// Planner-chosen heterogeneous ops (no overrides) match the MSA-1P
    /// reference on their own semirings.
    #[test]
    fn planned_heterogeneous_ops_match_reference(
        a in csr_strategy(11, 11, 0.35),
        m1 in csr_strategy(11, 11, 0.4),
        m2 in csr_strategy(11, 11, 0.15),
    ) {
        let ctx = Context::with_threads(2);
        let (ha, h1, h2) = (ctx.insert(a), ctx.insert(m1), ctx.insert(m2));
        let ops = vec![
            ctx.op(h1, ha, ha).build(),
            ctx.op(h2, ha, ha).semiring(SemiringKind::PlusPair).build(),
            ctx.op(h1, ha, ha).semiring(SemiringKind::MinPlus).build(),
            ctx.op(h2, ha, ha).semiring(SemiringKind::PlusSecond).complemented(true).build(),
        ];
        let results = ctx.run_batch_collect(&ops);
        for (op, got) in ops.iter().zip(&results) {
            let want = direct_result(&ctx, op, Algorithm::Msa, Phases::One).unwrap();
            prop_assert_eq!(got.as_ref().unwrap(), &want, "{:?}", op.semiring);
        }
    }
}

#[test]
fn mca_complement_is_a_uniform_error_everywhere() {
    let expected = SparseError::Unsupported(masked_spgemm::api::COMPLEMENT_UNSUPPORTED);
    let ctx = Context::with_threads(2);
    let m = graphs::erdos_renyi(20, 4.0, 1);
    let h = ctx.insert(m.clone());

    // Direct call.
    let direct = masked_spgemm(
        Algorithm::Mca,
        Phases::One,
        true,
        DynSemiring::new(SemiringKind::PlusTimes),
        &m,
        &m,
        &m,
    );
    assert_eq!(direct.unwrap_err(), expected);

    // Forced engine execution.
    let forced = ctx.run_with(
        Algorithm::Mca,
        Phases::One,
        DynSemiring::new(SemiringKind::PlusTimes),
        h,
        true,
        h,
        h,
    );
    assert_eq!(forced.unwrap_err(), expected);

    // Descriptor with an override.
    let op = ctx
        .op(h, h, h)
        .complemented(true)
        .algorithm(Algorithm::Mca)
        .build();
    assert_eq!(ctx.run_op(&op).unwrap_err(), expected);

    // Batched descriptor: error lands in its slot, others run.
    let ops = vec![ctx.op(h, h, h).build(), op];
    let results = ctx.run_batch_collect(&ops);
    assert!(results[0].is_ok());
    assert_eq!(results[1].as_ref().unwrap_err(), &expected);

    // Serial scratch driver (used by batch workers).
    let mut set = masked_spgemm::ScratchSet::<DynSemiring>::new();
    let serial = set.run(
        Algorithm::Mca,
        true,
        DynSemiring::new(SemiringKind::PlusTimes),
        &m,
        &m,
        &m,
        None,
    );
    assert_eq!(serial.unwrap_err(), expected);
}

#[test]
fn aux_cache_evicts_lru_and_rebuilds_on_demand() {
    let ctx = Context::with_threads(1);
    let h1 = ctx.insert(graphs::erdos_renyi(64, 6.0, 2));
    let h2 = ctx.insert(graphs::erdos_renyi(64, 6.0, 3));

    // Unbounded: both CSC copies stay resident.
    let _ = ctx.csc(h1);
    let _ = ctx.csc(h2);
    assert!(ctx.aux_status(h1).has_csc && ctx.aux_status(h2).has_csc);
    let both = ctx.aux_cache_stats().bytes;
    assert!(both > 0);

    // Budget for roughly one CSC: the least-recently-used (h1) is evicted.
    ctx.set_aux_budget(both / 2 + both / 8);
    let stats = ctx.aux_cache_stats();
    assert!(stats.evictions >= 1, "no eviction under budget: {stats:?}");
    assert!(
        !ctx.aux_status(h1).has_csc,
        "LRU victim should be the older CSC"
    );
    assert!(ctx.aux_status(h2).has_csc, "recent CSC survives");

    // The evicted auxiliary is rebuilt transparently — and evicts the
    // other one in turn.
    let rebuilt = ctx.csc(h1);
    assert_eq!(rebuilt.to_csr(), *ctx.matrix(h1));
    assert!(ctx.aux_status(h1).has_csc);
    assert!(
        !ctx.aux_status(h2).has_csc,
        "budget only fits one CSC at a time"
    );
    assert!(ctx.aux_cache_stats().bytes <= ctx.aux_cache_stats().budget_bytes);

    // Touching an auxiliary protects it from the next eviction round:
    // degrees for h2, then h1's CSC again — h2's degrees are newer than
    // h1's CSC only until h1 is touched.
    ctx.set_aux_budget(usize::MAX);
    let _ = ctx.csc(h2);
    let _ = ctx.csc(h1); // h1 now most recent
    ctx.set_aux_budget(both / 2 + both / 8);
    assert!(ctx.aux_status(h1).has_csc, "most-recently-used survives");
    assert!(!ctx.aux_status(h2).has_csc);
}

#[test]
fn plan_cache_lru_evicts_under_byte_budget() {
    let ctx = Context::with_threads(1);
    // Generate many distinct structural classes (different shapes).
    let handles: Vec<_> = (0..24)
        .map(|i| ctx.insert(graphs::erdos_renyi(16 + 8 * i, 4.0, 70 + i as u64)))
        .collect();
    for &h in &handles {
        ctx.plan(h, false, h, h).unwrap();
    }
    let full = ctx.plan_cache_stats();
    assert_eq!(full.entries, 24, "each shape is its own class");

    // Budget for ~4 entries: LRU eviction must kick in.
    let per_entry = full.bytes / full.entries;
    ctx.set_plan_budget(per_entry * 4);
    let squeezed = ctx.plan_cache_stats();
    assert!(squeezed.entries <= 4, "still {} entries", squeezed.entries);
    assert!(squeezed.evictions >= 20, "evictions {}", squeezed.evictions);

    // The surviving entries are the most recently planned ones.
    let misses_before = ctx.plan_cache_stats().misses;
    ctx.plan(handles[23], false, handles[23], handles[23])
        .unwrap();
    assert_eq!(
        ctx.plan_cache_stats().misses,
        misses_before,
        "most recent plan should still be cached"
    );
    let hits_before = ctx.plan_cache_stats().hits;
    ctx.plan(handles[0], false, handles[0], handles[0]).unwrap();
    assert_eq!(
        ctx.plan_cache_stats().hits,
        hits_before,
        "evicted plan must be recomputed, not served"
    );
}

#[test]
fn fingerprint_cache_hits_across_structurally_similar_versions() {
    let ctx = Context::with_threads(1);
    // Average degree 10 puts nnz (~1280) mid-bucket: the ~4% peel below
    // stays inside the same ~1.5× fingerprint class.
    let base = graphs::erdos_renyi(128, 10.0, 80);
    let h = ctx.insert(base.clone());
    ctx.plan(h, false, h, h).unwrap();
    let before = ctx.plan_cache_stats();

    // Re-weight every edge (same pattern, new values): a new version in
    // the same structural class — the plan must be served from cache.
    let reweighted = base.map(|v| v * 3.0);
    ctx.update(h, reweighted);
    assert_eq!(ctx.plan_fingerprint(h), {
        let tmp = ctx.insert(base.clone());
        let f = ctx.plan_fingerprint(tmp);
        ctx.remove(tmp);
        f
    });
    ctx.plan(h, false, h, h).unwrap();
    let after_reweight = ctx.plan_cache_stats();
    assert_eq!(
        after_reweight.hits,
        before.hits + 1,
        "re-weighted version missed the plan cache"
    );
    assert_eq!(after_reweight.misses, before.misses);

    // Peel a small fraction of edges (same nnz regime): still a hit.
    let mut kept = 0usize;
    let peeled = base.filter(|_, _, _| {
        kept += 1;
        !kept.is_multiple_of(23) // drop ~4%
    });
    assert!(peeled.nnz() < base.nnz());
    ctx.update(h, peeled);
    ctx.plan(h, false, h, h).unwrap();
    let after_peel = ctx.plan_cache_stats();
    assert_eq!(
        after_peel.hits,
        after_reweight.hits + 1,
        "same-regime peel missed the plan cache"
    );

    // Collapse to a far sparser matrix (different class): must re-plan.
    ctx.update(h, graphs::erdos_renyi(128, 1.0, 81));
    ctx.plan(h, false, h, h).unwrap();
    let after_collapse = ctx.plan_cache_stats();
    assert_eq!(
        after_collapse.misses,
        after_peel.misses + 1,
        "regime change must recompute the plan"
    );
}

#[test]
fn accumulate_into_merges_and_updates_target() {
    let ctx = Context::with_threads(2);
    let a = graphs::erdos_renyi(24, 5.0, 90);
    let m = graphs::erdos_renyi(24, 8.0, 91);
    let (ha, hm) = (ctx.insert(a.clone()), ctx.insert(m.clone()));

    // Accumulator starts from the plain product.
    let product = ctx.op(hm, ha, ha).run().unwrap();
    let target = ctx.insert(product.clone());
    let v0 = ctx.aux_status(target).version;

    // Accumulate the same product into it: every shared entry doubles.
    let merged = ctx.op(hm, ha, ha).accumulate_into(target).run().unwrap();
    assert_eq!(merged.pattern(), product.pattern());
    for (got, want) in merged.values().iter().zip(product.values()) {
        assert_eq!(*got, want * 2.0);
    }
    // The handle now holds the merged matrix (version advanced).
    assert_eq!(*ctx.matrix(target), merged);
    assert!(ctx.aux_status(target).version > v0);

    // Accumulation with a mismatched target shape is a proper error.
    let wrong = ctx.insert(CsrMatrix::<f64>::empty(5, 5));
    let err = ctx.op(hm, ha, ha).accumulate_into(wrong).run().unwrap_err();
    assert!(matches!(err, SparseError::DimMismatch { .. }));

    // In a batch, accumulating ops merge on the calling thread; a
    // min_plus accumulation uses the op's own `add`.
    let dist_target = ctx.insert(product.map(|v| v + 100.0));
    let ops = vec![ctx
        .op(hm, ha, ha)
        .semiring(SemiringKind::MinPlus)
        .accumulate_into(dist_target)
        .build()];
    let results = ctx.run_batch_collect(&ops);
    let got = results[0].as_ref().unwrap();
    let min_plus_product = ctx
        .op(hm, ha, ha)
        .semiring(SemiringKind::MinPlus)
        .run()
        .unwrap();
    // Every merged entry is the min of the shifted value and the fresh
    // min-plus product (for shared positions).
    for i in 0..got.nrows() {
        let (cols, vals) = got.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let shifted = product.get(i, j).map(|x| x + 100.0);
            let fresh = min_plus_product.get(i, j).copied();
            let want = match (shifted, fresh) {
                (Some(x), Some(y)) => x.min(y),
                (Some(x), None) => x,
                (None, Some(y)) => y,
                (None, None) => unreachable!("entry came from somewhere"),
            };
            assert_eq!(v, want, "row {i} col {j}");
        }
    }
}

#[test]
fn streamed_sink_consumes_without_materializing_all() {
    // A "peak residency" sink: counts how many results it has seen and
    // drops each immediately; with more ops than workers, delivery
    // interleaves with execution (the channel never holds the whole
    // batch because the receive loop drains it concurrently).
    let ctx = Context::with_threads(2);
    let a = ctx.insert(graphs::erdos_renyi(64, 6.0, 95));
    let masks: Vec<_> = (0..16)
        .map(|i| ctx.insert(graphs::erdos_renyi(64, 5.0, 96 + i)))
        .collect();
    let ops: Vec<MaskedOp> = masks
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let kind = if i % 2 == 0 {
                SemiringKind::PlusPair
            } else {
                SemiringKind::PlusTimes
            };
            ctx.op(m, a, a).semiring(kind).build()
        })
        .collect();
    let mut total_nnz = 0usize;
    let mut delivered = 0usize;
    ctx.for_each_result(&ops, |_i, r: Result<CsrMatrix<f64>, SparseError>| {
        total_nnz += r.expect("well-shaped").nnz();
        delivered += 1;
    });
    assert_eq!(delivered, ops.len());
    // Cross-check the running total against collected results.
    let collected: usize = ctx
        .run_batch_collect(&ops)
        .into_iter()
        .map(|r| r.unwrap().nnz())
        .sum();
    assert_eq!(total_nnz, collected);
}

#[test]
fn pooled_batch_and_intra_op_parallelism_match_serial() {
    // The batch queue and single-op row parallelism now share one
    // persistent pool. Whatever the composition — serial context, wide
    // batch, wide per-op execution, or a batch issued right after wide
    // per-op calls warmed the same workers — the results must be
    // bit-identical.
    let adj = graphs::to_undirected_simple(&graphs::rmat(7, graphs::RmatParams::default(), 42));
    let build_ops = |ctx: &Context| -> (Vec<MaskedOp>, engine::MatrixHandle) {
        let h = ctx.insert(adj.clone());
        let masks: Vec<_> = (0..12)
            .map(|i| ctx.insert(graphs::erdos_renyi(adj.nrows(), 6.0, 900 + i)))
            .collect();
        let ops = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let kind = if i % 2 == 0 {
                    SemiringKind::PlusTimes
                } else {
                    SemiringKind::PlusPair
                };
                ctx.op(m, h, h).semiring(kind).build()
            })
            .collect();
        (ops, h)
    };

    let serial_ctx = Context::with_threads(1);
    let (serial_ops, _) = build_ops(&serial_ctx);
    let expect: Vec<CsrMatrix<f64>> = serial_ctx
        .run_batch_collect(&serial_ops)
        .into_iter()
        .map(|r| r.expect("well-shaped"))
        .collect();

    let wide_ctx = Context::with_threads(4);
    let (wide_ops, _) = build_ops(&wide_ctx);
    // Intra-op parallel execution, one op at a time on the pool.
    let per_op: Vec<CsrMatrix<f64>> = wide_ops
        .iter()
        .map(|op| wide_ctx.run_op(op).expect("well-shaped"))
        .collect();
    assert_eq!(per_op, expect, "intra-op parallel path diverged");
    // Inter-op batch on the same (now warm) workers.
    let batched: Vec<CsrMatrix<f64>> = wide_ctx
        .run_batch_collect(&wide_ops)
        .into_iter()
        .map(|r| r.expect("well-shaped"))
        .collect();
    assert_eq!(batched, expect, "pooled batch path diverged");
}
