//! Cross-crate plumbing: Matrix Market round trips of generated graphs,
//! suite determinism, and metric/profile glue used by the harnesses.

use profile::ProfileMatrix;
use sparse::io::{read_matrix_market, write_matrix_market};
use sparse::triangular::is_pattern_symmetric;
use sparse::CsrMatrix;

#[test]
fn generated_graphs_roundtrip_through_matrix_market() {
    for (name, m) in [
        ("er", graphs::erdos_renyi(64, 6.0, 1)),
        (
            "rmat",
            graphs::to_undirected_simple(&graphs::rmat(6, graphs::RmatParams::default(), 2)),
        ),
        ("grid", graphs::grid2d(5, 7)),
    ] {
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap().to_csr();
        assert_eq!(m, back, "{name}");
    }
}

#[test]
fn suite_members_are_simple_undirected_and_deterministic() {
    for g in graphs::suite() {
        if g.nvertices() > 1 << 12 {
            continue;
        }
        let m = g.build();
        assert_eq!(m.nrows(), m.ncols(), "{}", g.name);
        assert!(is_pattern_symmetric(&m), "{}", g.name);
        for i in 0..m.nrows() {
            assert!(m.get(i, i as u32).is_none(), "{} self loop", g.name);
        }
        assert_eq!(m, g.build(), "{} nondeterministic", g.name);
    }
}

#[test]
fn profile_matrix_pipeline_matches_hand_computation() {
    // Simulate a fig08-style pipeline: 3 cases, 2 schemes.
    let mut pm = ProfileMatrix::new(vec!["A".into(), "B".into()]);
    pm.push_case("g1", vec![Some(1.0), Some(3.0)]);
    pm.push_case("g2", vec![Some(2.0), Some(1.0)]);
    pm.push_case("g3", vec![Some(5.0), Some(5.0)]);
    let p = pm.profile();
    assert!((p.win_rate(0) - 2.0 / 3.0).abs() < 1e-12);
    assert!((p.win_rate(1) - 2.0 / 3.0).abs() < 1e-12);
    // A is within 2x of best on g1 (1x), g2 (2x), g3 (1x) -> 1.0
    assert!((p.fraction_within(0, 2.0) - 1.0).abs() < 1e-12);
    // B within 2x on g2, g3 only -> 2/3 at tau < 3
    assert!((p.fraction_within(1, 2.9) - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn flops_metrics_consistent_on_graph() {
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(128, 8.0, 7));
    let l = graph_algos::prepare_triangle_input(&adj);
    let plain = masked_spgemm::flops(&l, &l);
    let masked = masked_spgemm::flops_masked(&l, &l, &l);
    assert!(masked <= plain);
    // per-row flops sum to the total
    let per_row: u64 = masked_spgemm::flops_per_row(&l, &l).iter().sum();
    assert_eq!(per_row, plain);
}

#[test]
fn mtx_parse_rejects_garbage_gracefully() {
    for bad in [
        "",
        "%%MatrixMarket matrix coordinate real general\n",
        "%%MatrixMarket matrix coordinate real general\n2 2\n",
        "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
        "%%MatrixMarket matrix coordinate real general\nx y z\n",
    ] {
        assert!(read_matrix_market(bad.as_bytes()).is_err(), "{bad:?}");
    }
}

#[test]
fn empty_matrix_market_body_is_valid() {
    let text = "%%MatrixMarket matrix coordinate real general\n3 4 0\n";
    let m: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap().to_csr();
    assert_eq!(m.shape(), (3, 4));
    assert_eq!(m.nnz(), 0);
}
