//! Native lane-typed matrix storage: typed registration must be
//! operationally indistinguishable from the old `f64`-canonical scheme
//! (bit-identical `OpOutput`s for every `Algorithm × ValueKind`), cast
//! auxiliaries must invalidate per lane on `update_typed`, and a natively
//! registered `bool` graph must run BFS end-to-end without ever
//! materializing an `f64` canonical copy (the ISSUE 5 acceptance bar).

use engine::{Context, OpOutput, SemiringKind, ValueKind, ValueMat};
use graph_algos::bfs::bfs_reference;
use graph_algos::{bfs_auto, ktruss_auto, sssp_auto, Direction};
use masked_spgemm::{Algorithm, LaneValue};
use proptest::prelude::*;
use sparse::CsrMatrix;
use std::sync::Arc;

/// Small undirected test graphs (Erdős–Rényi and hub-skewed R-MAT).
fn graph_strategy() -> impl Strategy<Value = CsrMatrix<f64>> {
    (0u64..1000, 1u32..5, 0u8..2).prop_map(|(seed, deg, kind)| {
        if kind == 1 {
            graphs::to_undirected_simple(&graphs::rmat(6, graphs::RmatParams::default(), seed))
        } else {
            graphs::to_undirected_simple(&graphs::erdos_renyi(80, deg as f64, seed))
        }
    })
}

/// The semiring each lane's round-trip runs on (the `bool` lane has
/// exactly one semiring).
fn lane_semiring(value: ValueKind) -> SemiringKind {
    match value {
        ValueKind::Bool => SemiringKind::BoolAndOr,
        _ => SemiringKind::PlusPair,
    }
}

/// Register `m` natively on `value`'s lane (casting with the canonical
/// lane rules, exactly what the f64-registered side's cached views do).
fn insert_native(ctx: &Context, m: &CsrMatrix<f64>, value: ValueKind) -> engine::MatrixHandle {
    match value {
        ValueKind::Bool => ctx.insert_bool(m.map_values(bool::from_f64)),
        ValueKind::I64 => ctx.insert_i64(m.map_values(i64::from_f64)),
        ValueKind::F64 => ctx.insert(m.clone()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Typed insert → op → `OpOutput` round-trips bit-identically with
    /// `f64`-canonical registration for every `Algorithm × ValueKind`
    /// (mask, A, and B all natively typed on one side, all `f64` on the
    /// other).
    #[test]
    fn native_registration_matches_canonical_everywhere(
        adj in graph_strategy(),
        mask_seed in 0u64..100,
    ) {
        let n = adj.nrows();
        let mask = graphs::erdos_renyi(n, 5.0, mask_seed);
        for value in ValueKind::ALL {
            let semiring = lane_semiring(value);
            // f64-canonical side: the historical registration; non-f64
            // lanes read the operands through cached cast views.
            let canon = Context::with_threads(2);
            let (cm, ca) = (canon.insert(mask.clone()), canon.insert(adj.clone()));
            // Native side: operands stored on the op's lane — zero-copy.
            let native = Context::with_threads(2);
            let (nm, na) = (
                insert_native(&native, &mask, value),
                insert_native(&native, &adj, value),
            );
            for algorithm in Algorithm::ALL {
                for complemented in [false, true] {
                    let run = |ctx: &Context, m, a| {
                        ctx.op(m, a, a)
                            .semiring(semiring)
                            .value(value)
                            .complemented(complemented)
                            .algorithm(algorithm)
                            .run_out()
                    };
                    let expect = run(&canon, cm, ca);
                    let got = run(&native, nm, na);
                    match (expect, got) {
                        (Ok(e), Ok(g)) => prop_assert_eq!(
                            e, g, "{:?} {:?} compl={}", algorithm, value, complemented
                        ),
                        // MCA × complemented: both sides must report the
                        // same uniform unsupported error.
                        (Err(e), Err(g)) => prop_assert_eq!(e, g),
                        (e, g) => prop_assert!(
                            false,
                            "divergent outcome for {:?} {:?} compl={}: {:?} vs {:?}",
                            algorithm, value, complemented, e.is_ok(), g.is_ok()
                        ),
                    }
                }
            }
        }
    }

    /// Planned (unforced) ops agree between native and canonical
    /// registration too — the planner reads structure only, so the stored
    /// lane must never change a result.
    #[test]
    fn planned_ops_agree_across_storage_lanes(adj in graph_strategy()) {
        let canon = Context::with_threads(2);
        let ca = canon.insert(adj.clone());
        for value in ValueKind::ALL {
            let native = Context::with_threads(2);
            let na = insert_native(&native, &adj, value);
            let semiring = lane_semiring(value);
            let expect = canon.op(ca, ca, ca).semiring(semiring).value(value).run_out().unwrap();
            let got = native.op(na, na, na).semiring(semiring).value(value).run_out().unwrap();
            prop_assert_eq!(expect, got, "{:?}", value);
        }
    }
}

/// `update_typed` must drop exactly the updated entry's aux slots — every
/// stale lane's cast/CSC record — while other entries' auxiliaries (and
/// their ledger bytes) survive untouched.
#[test]
fn update_typed_invalidates_exactly_the_stale_lanes() {
    let ctx = Context::with_threads(1);
    let m1 = graphs::erdos_renyi(64, 6.0, 1).map_values(i64::from_f64);
    let m2 = graphs::erdos_renyi(64, 6.0, 2);
    let h1 = ctx.insert_i64(m1);
    let h2 = ctx.insert(m2);

    // Materialize cross-lane casts and CSC forms on both entries.
    let _ = ctx.bool_view(h1); // cast: i64-stored → bool
    let _ = ctx.f64_view(h1); // cast: i64-stored → f64
    let _ = ctx.i64_csc(h1); // CSC of the native lane
    let _ = ctx.csc(h2); // CSC of h2's native f64 lane
    let _ = ctx.bool_view(h2); // cast on the other entry
    let s1 = ctx.aux_status(h1);
    assert!(s1.has_bool_view && s1.has_f64_view && s1.has_csc);
    assert!(!s1.has_i64_view, "native lane never has a cast slot");
    let bytes_with_both = ctx.aux_cache_stats().bytes;
    let s2_before = ctx.aux_status(h2);

    // Update h1 (same lane, new values): every one of ITS lanes' slots is
    // stale and must be dropped; h2's records must not move.
    let m1b = graphs::erdos_renyi(64, 6.0, 3).map_values(i64::from_f64);
    ctx.update_i64(h1, m1b.clone());
    let s1_after = ctx.aux_status(h1);
    assert!(
        !s1_after.has_bool_view && !s1_after.has_f64_view && !s1_after.has_csc,
        "stale lane slots survived update_typed: {s1_after:?}"
    );
    assert!(s1_after.version > s1.version);
    assert_eq!(ctx.aux_status(h2), s2_before, "unrelated entry was touched");
    assert!(
        ctx.aux_cache_stats().bytes < bytes_with_both,
        "ledger kept bytes for dropped slots"
    );

    // Rebuilt casts reflect the new matrix.
    assert_eq!(*ctx.bool_view(h1), m1b.map_values(bool::cast_from));
    assert_eq!(*ctx.f64_view(h1), m1b.map_values(f64::cast_from));

    // A lane *change* through update_typed is also a full invalidation and
    // the stats lane follows the store.
    ctx.update_typed(h1, graphs::erdos_renyi(64, 6.0, 4));
    assert_eq!(ctx.stats(h1).value, ValueKind::F64);
    assert!(!ctx.aux_status(h1).has_bool_view);
}

/// Native-lane requests are zero-copy: the view getter returns the stored
/// `Arc` itself, never a cast.
#[test]
fn native_lane_views_are_zero_copy() {
    let ctx = Context::with_threads(1);
    let adj = graphs::erdos_renyi(32, 4.0, 9);
    let hb = ctx.insert_bool(adj.map_values(bool::from_f64));
    let hi = ctx.insert_i64(adj.map_values(i64::from_f64));
    let hf = ctx.insert(adj);

    let ValueMat::Bool(native_b) = ctx.value_mat(hb) else {
        panic!("stored lane must be bool")
    };
    assert!(Arc::ptr_eq(&native_b, &ctx.bool_view(hb)));
    let ValueMat::I64(native_i) = ctx.value_mat(hi) else {
        panic!("stored lane must be i64")
    };
    assert!(Arc::ptr_eq(&native_i, &ctx.i64_view(hi)));
    let ValueMat::F64(native_f) = ctx.value_mat(hf) else {
        panic!("stored lane must be f64")
    };
    assert!(Arc::ptr_eq(&native_f, &ctx.f64_view(hf)));
    assert!(Arc::ptr_eq(&native_f, &ctx.matrix(hf)));
}

/// ISSUE 5 acceptance: a bool graph registered via `insert_bool` runs
/// `bfs_auto` end-to-end with zero `f64` canonical allocation — no cast
/// slot on any lane is ever populated (the native `bool` lane serves every
/// operand), and the entry's resident bytes are structure-only plus
/// 1 byte/nnz.
#[test]
fn insert_bool_bfs_never_materializes_an_f64_canonical() {
    let adjf = graphs::to_undirected_simple(&graphs::rmat(8, graphs::RmatParams::default(), 21));
    let expect = bfs_reference(&adjf, 0);
    let adj_bool = adjf.map_values(bool::from_f64);

    let ctx = Context::with_threads(2);
    let h = ctx.insert_bool(adj_bool.clone());
    for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
        let got = bfs_auto(&ctx, h, 0, policy).unwrap();
        assert_eq!(got.levels, expect, "{policy:?}");
    }

    // Cache-stats assertions: the traversal consumed the native bool
    // storage (plus its CSC for pull levels) and never built a cast view
    // OR a cross-lane CSC on ANY lane — in particular no f64 canonical in
    // either format.
    let status = ctx.aux_status(h);
    assert!(!status.has_f64_view, "an f64 canonical was materialized");
    assert!(!status.has_i64_view);
    assert!(
        !status.has_bool_view,
        "the native lane must be served zero-copy, not as a cast"
    );
    assert!(!status.has_f64_csc, "an f64-valued CSC was materialized");
    assert!(!status.has_i64_csc);

    // Entry bytes ≈ structure-only: values cost 1 byte/nnz on this lane
    // (an f64-canonical entry would add 8 bytes/nnz).
    let stats = ctx.stats(h);
    assert_eq!(stats.value, ValueKind::Bool);
    assert_eq!(stats.bytes, adj_bool.structure_bytes() + adj_bool.nnz());
    assert_eq!(ctx.registry_bytes(), stats.bytes);

    // The same registration through the f64-canonical path pays ~8x more
    // resident value bytes for identical BFS levels.
    let canon = Context::with_threads(2);
    let hc = canon.insert(adjf.clone());
    assert_eq!(
        bfs_auto(&canon, hc, 0, Direction::Auto).unwrap().levels,
        expect
    );
    assert_eq!(
        canon.stats(hc).bytes,
        adjf.structure_bytes() + 8 * adjf.nnz()
    );
}

/// `registry_bytes() + aux_cache_stats().bytes` (the pair `bench_bfs`
/// sums) must count the transpose storage exactly once when
/// `transpose_handle` promotes the cached transpose to a registry entry.
#[test]
fn transpose_handle_does_not_double_bill_resident_bytes() {
    let ctx = Context::with_threads(1);
    let adj = graphs::erdos_renyi(64, 5.0, 13);
    let h = ctx.insert(adj);
    let entry_bytes = ctx.stats(h).bytes;

    let ht = ctx.transpose_handle(h);
    let t_bytes = ctx.stats(ht).bytes;
    // The transpose is a registry entry now; the parent's Transpose aux
    // record must have been released (evicting the slot would free
    // nothing while the derived entry pins the Arc).
    assert_eq!(ctx.registry_bytes(), entry_bytes + t_bytes);
    assert_eq!(
        ctx.aux_cache_stats().bytes,
        0,
        "transpose billed to the aux ledger AND the registry"
    );
    // The slot itself stays resident for transposed_mat callers.
    assert!(ctx.aux_status(h).has_transpose);
}

/// Lane-typed registration flows through the other engine-planned
/// applications: k-truss on a native bool pattern peels on the exact i64
/// lane (no f64 canonical), and SSSP consumes a natively-i64 adjacency
/// zero-copy.
#[test]
fn native_graphs_run_ktruss_and_sssp() {
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(60, 9.0, 5));
    let canon = Context::with_threads(2);
    let hf = canon.insert(adj.clone());

    let native = Context::with_threads(2);
    let hb = native.insert_bool(adj.map_values(bool::from_f64));
    for k in [3usize, 4] {
        let expect = ktruss_auto(&canon, hf, k).unwrap();
        let got = ktruss_auto(&native, hb, k).unwrap();
        assert_eq!(got.truss.pattern(), expect.truss.pattern(), "k={k}");
        assert_eq!(got.iterations, expect.iterations);
    }
    // The peel lifted the pattern to i64 transiently (owned by the work
    // entry, not billed to the adjacency's aux cache) and stayed off the
    // f64 lane entirely.
    let status = native.aux_status(hb);
    assert!(!status.has_f64_view && !status.has_f64_csc);
    assert!(!status.has_i64_view, "lift must not pin an aux cast");

    let hi = native.insert_i64(adj.map_values(i64::from_f64));
    assert_eq!(
        sssp_auto(&native, hi, 0).unwrap(),
        sssp_auto(&canon, hf, 0).unwrap()
    );
    assert!(!native.aux_status(hi).has_f64_view);
}

/// Matrix accumulation now merges on the target's native lane: an i64
/// product `MergeInto` an i64-stored target, end to end off the f64 lane.
#[test]
fn typed_matrix_accumulation_merges_natively() {
    let ctx = Context::with_threads(1);
    let a = graphs::erdos_renyi(40, 5.0, 11);
    let mask = graphs::erdos_renyi(40, 8.0, 12);
    let (ha, hm) = (
        ctx.insert_i64(a.map_values(i64::from_f64)),
        ctx.insert_i64(mask.map_values(i64::from_f64)),
    );
    let product: CsrMatrix<i64> = ctx
        .op(hm, ha, ha)
        .semiring(SemiringKind::PlusPair)
        .value(ValueKind::I64)
        .run_out()
        .unwrap()
        .into_typed()
        .unwrap();
    let target = ctx.insert_i64(product.clone());
    let merged: CsrMatrix<i64> = ctx
        .op(hm, ha, ha)
        .semiring(SemiringKind::PlusPair)
        .value(ValueKind::I64)
        .accumulate_into(target)
        .run_out()
        .unwrap()
        .into_typed()
        .unwrap();
    // Merging the product into itself doubles every count, natively.
    assert_eq!(merged, product.map_values(|v| 2 * v));
    assert_eq!(ctx.stats(target).value, ValueKind::I64);
    let ValueMat::I64(stored) = ctx.value_mat(target) else {
        panic!("target must stay on the i64 lane")
    };
    assert_eq!(*stored, merged);
}

/// The single-op vector path reuses the context's per-lane kernel scratch:
/// results stay bit-identical across repeated calls and across operand
/// sizes (the scratch regrows monotonically and larger-than-needed
/// accumulators must not leak state between products).
#[test]
fn vec_scratch_reuse_is_bit_stable_across_calls_and_sizes() {
    let ctx = Context::with_threads(1);
    let big = graphs::to_undirected_simple(&graphs::erdos_renyi(200, 6.0, 31));
    let small = graphs::to_undirected_simple(&graphs::erdos_renyi(40, 4.0, 32));
    let expectations: Vec<(engine::MatrixHandle, Vec<i64>)> = [big, small]
        .into_iter()
        .map(|g| {
            let expect = bfs_reference(&g, 0);
            (ctx.insert_bool(g.map_values(bool::from_f64)), expect)
        })
        .collect();
    // Interleave graphs so every call re-acquires scratch sized for the
    // other product; repeat to cover the warm path.
    for round in 0..3 {
        for (h, expect) in &expectations {
            for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
                let got = bfs_auto(&ctx, *h, 0, policy).unwrap();
                assert_eq!(&got.levels, expect, "round {round} {policy:?}");
            }
        }
    }
}

/// Mixed-storage batches: one `for_each_result` call over operands stored
/// on three different native lanes delivers the same outputs as
/// per-op single execution.
#[test]
fn mixed_native_storage_batch_matches_single_ops() {
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(64, 5.0, 41));
    let mask = graphs::erdos_renyi(64, 7.0, 42);
    let ctx = Context::with_threads(3);
    let hm_bool = ctx.insert_bool(mask.map_values(bool::from_f64));
    let ha_bool = ctx.insert_bool(adj.map_values(bool::from_f64));
    let ha_i64 = ctx.insert_i64(adj.map_values(i64::from_f64));
    let ha_f64 = ctx.insert(adj);

    // The bool-stored mask fronts ops on every lane — masks are consumed
    // natively, so no cast is built for it.
    let ops = vec![
        ctx.op(hm_bool, ha_bool, ha_bool)
            .semiring(SemiringKind::BoolAndOr)
            .value(ValueKind::Bool)
            .build(),
        ctx.op(hm_bool, ha_i64, ha_i64)
            .semiring(SemiringKind::PlusPair)
            .value(ValueKind::I64)
            .build(),
        ctx.op(hm_bool, ha_f64, ha_f64).build(),
    ];
    let singles: Vec<OpOutput> = ops.iter().map(|op| ctx.run_op_out(op).unwrap()).collect();
    let batched = ctx.run_batch_outputs(&ops);
    for (i, (single, batch)) in singles.iter().zip(&batched).enumerate() {
        assert_eq!(single, batch.as_ref().unwrap(), "op {i}");
    }
    assert!(
        !ctx.aux_status(hm_bool).has_f64_view && !ctx.aux_status(hm_bool).has_i64_view,
        "mask operands must never be cast"
    );
}
