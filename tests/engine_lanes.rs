//! Typed value lanes and vector operands: engine-planned BFS equivalence
//! (push/pull/auto × every lane) against the reference BFS on random and
//! R-MAT graphs, mixed-lane heterogeneous batches through one streamed
//! sink, `MinInto` accumulation against serial oracles, the calibratable
//! serial cutoff, and the uniform lane/polarity error surface.

use engine::{
    AccumMonoid, AccumTarget, Algorithm, Choice, Context, OpOutput, SemiringKind, ValueKind,
    ValueVec,
};
use graph_algos::bfs::bfs_reference;
use graph_algos::reference::sssp_reference;
use graph_algos::{bfs_auto_with_value, sssp_auto, Direction};
use masked_spgemm::{masked_spgemm, masked_spgevm, masked_spgevm_csc, Phases};
use proptest::prelude::*;
use sparse::{BoolAndOr, CscMatrix, CsrMatrix, Idx, MinPlus, PlusTimes, SparseError, SparseVec};

/// Small undirected test graphs: Erdős–Rényi and R-MAT, parameterized by
/// seed and density so proptest explores both regular and hub-skewed
/// structure.
fn graph_strategy() -> impl Strategy<Value = CsrMatrix<f64>> {
    (0u64..1000, 1u32..5, 0u8..2).prop_map(|(seed, deg, kind)| {
        if kind == 1 {
            graphs::to_undirected_simple(&graphs::rmat(6, graphs::RmatParams::default(), seed))
        } else {
            graphs::to_undirected_simple(&graphs::erdos_renyi(100, deg as f64, seed))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Engine-planned BFS levels equal the serial reference for every
    /// direction policy on every value lane.
    #[test]
    fn bfs_auto_matches_reference_everywhere(adj in graph_strategy()) {
        let expect = bfs_reference(&adj, 0);
        let ctx = Context::with_threads(2);
        let h = ctx.insert(adj);
        for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
            for value in ValueKind::ALL {
                let got = bfs_auto_with_value(&ctx, h, 0, policy, value).unwrap();
                prop_assert_eq!(&got.levels, &expect, "{:?} {:?}", policy, value);
            }
        }
    }

    /// Engine-planned integer SSSP equals the serial Bellman-Ford oracle.
    #[test]
    fn sssp_auto_matches_reference(adj in graph_strategy()) {
        let expect = sssp_reference(&adj, 0);
        let ctx = Context::with_threads(2);
        let h = ctx.insert(adj);
        prop_assert_eq!(sssp_auto(&ctx, h, 0).unwrap(), expect);
    }

    /// A mixed-lane batch — a `bool` BFS frontier step, an `f64`
    /// `plus_times` product, and an `i64` `min_plus` product — streams
    /// bit-correct typed results through ONE `for_each_result` call.
    #[test]
    fn mixed_lane_batch_streams_through_one_sink(adj in graph_strategy()) {
        let n = adj.nrows();
        if n < 4 || adj.nnz() == 0 {
            return Ok(()); // degenerate draw — nothing to exercise
        }
        let ctx = Context::with_threads(3);
        let ha = ctx.insert(adj.clone());
        let hm = ctx.insert(graphs::erdos_renyi(n, 6.0, 77));

        // Lane views for the direct (engine-free) expectations.
        let adj_bool = adj.map(|&v| v != 0.0);
        let adj_i64 = adj.map(|&v| v as i64);
        let mask = ctx.matrix(hm);

        // Vector operands of the BFS step: frontier = {0}, visited = {0}.
        let frontier = ctx.insert_vec(SparseVec::try_new(n, vec![0], vec![true]).unwrap());
        let visited = ctx.insert_vec(SparseVec::try_new(n, vec![0], vec![true]).unwrap());

        let ops = vec![
            // BoolAndOr BFS step: next = ¬visited ⊙ (frontier · A).
            ctx.vec_op(visited, frontier, ha).complemented(true).build(),
            // PlusTimes f64 op.
            ctx.op(hm, ha, ha).build(),
            // MinPlus i64 op.
            ctx.op(hm, ha, ha)
                .semiring(SemiringKind::MinPlus)
                .value(ValueKind::I64)
                .build(),
        ];

        let vis_pat = SparseVec::try_new(n, vec![0u32], vec![()]).unwrap();
        let front_bool = SparseVec::try_new(n, vec![0u32], vec![true]).unwrap();
        let expect_bfs = masked_spgevm(
            Algorithm::Msa, true, BoolAndOr, &vis_pat, &front_bool, &adj_bool,
        ).unwrap();
        let expect_f64 = masked_spgemm(
            Algorithm::Msa, Phases::One, false, PlusTimes::<f64>::new(), &mask, &adj, &adj,
        ).unwrap();
        let expect_i64 = masked_spgemm(
            Algorithm::Msa, Phases::One, false, MinPlus::<i64>::new(), &mask, &adj_i64, &adj_i64,
        ).unwrap();

        let mut seen = vec![0usize; ops.len()];
        let mut failure: Option<String> = None;
        ctx.for_each_result(&ops, |i: usize, r: Result<OpOutput, SparseError>| {
            seen[i] += 1;
            let ok = match (i, r.expect("well-shaped op")) {
                (0, OpOutput::VecBool(v)) => v == expect_bfs,
                (1, OpOutput::MatF64(m)) => m == expect_f64,
                (2, OpOutput::MatI64(m)) => m == expect_i64,
                (idx, other) => {
                    failure.get_or_insert(format!(
                        "op {idx} delivered wrong kind {:?}", other.value_kind()
                    ));
                    return;
                }
            };
            if !ok && failure.is_none() {
                failure = Some(format!("op {i} diverged from direct result"));
            }
        });
        prop_assert_eq!(failure, None);
        prop_assert!(seen.iter().all(|&c| c == 1), "delivery counts {:?}", seen);
    }
}

#[test]
fn min_into_matrix_accumulation_matches_serial_oracle() {
    let ctx = Context::with_threads(2);
    let a = graphs::erdos_renyi(30, 5.0, 201);
    let m = graphs::erdos_renyi(30, 8.0, 202);
    let (ha, hm) = (ctx.insert(a), ctx.insert(m));

    // Seed the target with a shifted copy of the plain product.
    let product = ctx.op(hm, ha, ha).run().unwrap();
    let shifted = product.map(|v| v + 5.0);
    let target = ctx.insert(shifted.clone());

    // MinInto: the monoid is `min` even though the multiply is plus_times.
    let merged = ctx.op(hm, ha, ha).min_into(target).run().unwrap();

    // Serial oracle: union of patterns, min where both present.
    for i in 0..merged.nrows() {
        let (cols, vals) = merged.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let want = match (shifted.get(i, j), product.get(i, j)) {
                (Some(&x), Some(&y)) => x.min(y),
                (Some(&x), None) => x,
                (None, Some(&y)) => y,
                (None, None) => unreachable!("entry came from somewhere"),
            };
            assert_eq!(v, want, "row {i} col {j}");
        }
        // No union entry lost.
        let expected_count = (0..merged.ncols() as Idx)
            .filter(|&j| shifted.get(i, j).is_some() || product.get(i, j).is_some())
            .count();
        assert_eq!(cols.len(), expected_count, "row {i} pattern");
    }
    // The handle was updated with the merged matrix.
    assert_eq!(*ctx.matrix(target), merged);
}

#[test]
fn min_into_vec_accumulation_matches_serial_oracle() {
    let ctx = Context::with_threads(1);
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(40, 4.0, 210));
    let adj_i64 = adj.map(|&v| v as i64);
    let h = ctx.insert(adj);
    let n = adj_i64.nrows();

    let dist0 = SparseVec::try_new(n, vec![0, 3], vec![0i64, 7]).unwrap();
    let dist = ctx.insert_vec(dist0.clone());
    let frontier = ctx.insert_vec(dist0.clone());
    let mask = ctx.insert_vec(SparseVec::<i64>::empty(n));

    let merged: SparseVec<i64> = ctx
        .vec_op(mask, frontier, h)
        .complemented(true)
        .semiring(SemiringKind::MinPlus)
        .min_into_vec(dist)
        .run_out()
        .unwrap()
        .into_typed()
        .unwrap();

    // Oracle: direct SpGEVM candidates min-merged with the old vector.
    let empty_mask = SparseVec::<()>::empty(n);
    let candidates = masked_spgevm(
        Algorithm::Msa,
        true,
        MinPlus::<i64>::new(),
        &empty_mask,
        &dist0,
        &adj_i64,
    )
    .unwrap();
    let expect = dist0.union_with(&candidates, |x, y| x.min(y));
    assert_eq!(merged, expect);
    // The registered vector was updated to the merged value.
    assert_eq!(ctx.vector(dist), ValueVec::from(expect));
}

#[test]
fn custom_monoid_accumulates_with_caller_function() {
    let ctx = Context::with_threads(1);
    let a = graphs::erdos_renyi(20, 4.0, 220);
    let m = graphs::erdos_renyi(20, 6.0, 221);
    let (ha, hm) = (ctx.insert(a), ctx.insert(m));
    let product = ctx.op(hm, ha, ha).run().unwrap();
    let target = ctx.insert(product.clone());

    // max-merge: a monoid none of the built-ins provide.
    let merged = ctx
        .op(hm, ha, ha)
        .merge_into(
            AccumTarget::Mat(target),
            AccumMonoid::CustomF64(|x, y| if y > x { y } else { x }),
        )
        .run()
        .unwrap();
    assert_eq!(merged, product, "max(x, x) == x everywhere");

    // A custom monoid on the wrong lane is a uniform error.
    let err = ctx
        .op(hm, ha, ha)
        .merge_into(AccumTarget::Mat(target), AccumMonoid::CustomI64(|x, _| x))
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        SparseError::Unsupported(engine::op_errors::ACCUM_MONOID_LANE_MISMATCH)
    );
}

#[test]
fn lane_mismatches_are_uniform_errors_everywhere() {
    let ctx = Context::with_threads(2);
    let adj = graphs::erdos_renyi(16, 3.0, 230);
    let h = ctx.insert(adj);
    let vb = ctx.insert_vec(SparseVec::try_new(16, vec![1], vec![true]).unwrap());
    let vi = ctx.insert_vec(SparseVec::try_new(16, vec![1], vec![1i64]).unwrap());

    // BoolAndOr is not defined on the f64 lane.
    let expected = SparseError::Unsupported(engine::op_errors::SEMIRING_LANE_UNSUPPORTED);
    let op = ctx
        .op(h, h, h)
        .semiring(SemiringKind::BoolAndOr)
        .value(ValueKind::F64)
        .build();
    assert_eq!(ctx.run_op_out(&op).unwrap_err(), expected);
    // Same error from the batch path, in its slot only.
    let good = ctx.op(h, h, h).build();
    let results = ctx.run_batch_outputs(&[good, op]);
    assert!(results[0].is_ok());
    assert_eq!(results[1].as_ref().unwrap_err(), &expected);

    // A vector operand on a different lane than the op (the semiring is
    // valid for the op's lane, so the operand check is what fires).
    let expected = SparseError::Unsupported(engine::op_errors::OPERAND_LANE_MISMATCH);
    let op = ctx
        .vec_op(vb, vi, h)
        .semiring(SemiringKind::BoolAndOr)
        .value(ValueKind::Bool)
        .build();
    assert_eq!(ctx.run_op_out(&op).unwrap_err(), expected);

    // A non-f64 matrix product cannot merge into the f64 matrix registry.
    let expected = SparseError::Unsupported(engine::op_errors::ACCUM_TARGET_MISMATCH);
    let op = ctx
        .op(h, h, h)
        .value(ValueKind::I64)
        .accumulate_into(h)
        .build();
    assert_eq!(ctx.run_op_out(&op).unwrap_err(), expected);

    // Consuming a typed batch through the wrong concrete sink type is a
    // uniform per-index error, not a panic.
    let expected = SparseError::Unsupported(engine::op_errors::OUTPUT_KIND_MISMATCH);
    let i64_op = ctx.op(h, h, h).value(ValueKind::I64).build();
    let mut got = None;
    ctx.for_each_result(&[i64_op], |_i, r: Result<CsrMatrix<f64>, SparseError>| {
        got = Some(r)
    });
    assert_eq!(got.expect("delivered").unwrap_err(), expected);
}

#[test]
fn complemented_mca_is_uniform_on_vector_paths() {
    let expected = SparseError::Unsupported(masked_spgemm::api::COMPLEMENT_UNSUPPORTED);
    let adj = graphs::erdos_renyi(12, 3.0, 240);
    let adj_bool = adj.map(|&v| v != 0.0);
    let u = SparseVec::try_new(12, vec![0], vec![true]).unwrap();
    let m = SparseVec::<()>::empty(12);

    // Direct SpGEVM path.
    let direct = masked_spgevm(Algorithm::Mca, true, BoolAndOr, &m, &u, &adj_bool);
    assert_eq!(direct.unwrap_err(), expected);
    // The CSC path funnels through the same gate (Inner supports
    // complement, so it succeeds — the gate is present, not bypassed).
    let csc = CscMatrix::from_csr(&adj_bool);
    assert!(masked_spgevm_csc(true, BoolAndOr, &m, &u, &csc).is_ok());

    // Engine vector descriptor with the same forced combination.
    let ctx = Context::with_threads(1);
    let h = ctx.insert(adj);
    let hu = ctx.insert_vec(u);
    let hm = ctx.insert_vec(SparseVec::<bool>::empty(12));
    let err = ctx
        .vec_op(hm, hu, h)
        .complemented(true)
        .algorithm(Algorithm::Mca)
        .run_out()
        .unwrap_err();
    assert_eq!(err, expected);
}

#[test]
fn serial_cutoff_routes_small_products_without_changing_results() {
    let ctx = Context::with_threads(4);
    let a = graphs::erdos_renyi(48, 4.0, 250);
    let m = graphs::erdos_renyi(48, 6.0, 251);
    let (ha, hm) = (ctx.insert(a), ctx.insert(m));

    // No cutoff (the default): plans dispatch the pool.
    assert_eq!(ctx.serial_cutoff_flops(), 0.0);
    let parallel_plan = ctx.op(hm, ha, ha).plan().unwrap();
    assert!(!parallel_plan.serial);
    let parallel = ctx.op(hm, ha, ha).run().unwrap();

    // A huge cutoff classifies this product as below dispatch cost.
    ctx.set_serial_cutoff_flops(1e18);
    let serial_plan = ctx.op(hm, ha, ha).plan().unwrap();
    assert!(serial_plan.serial, "tiny product must be routed serial");
    let serial = ctx.op(hm, ha, ha).run().unwrap();
    assert_eq!(serial, parallel, "serial routing changed the bits");

    // Forced-algorithm ops honor the routing too (plan carries it) —
    // including fully-overridden ops where both algorithm and phases skip
    // the cost model.
    for alg in [Algorithm::Msa, Algorithm::Hash, Algorithm::Inner] {
        let direct = ctx.op(hm, ha, ha).algorithm(alg).run().unwrap();
        assert_eq!(direct, parallel, "{alg:?} serial result diverged");
        let full = ctx.op(hm, ha, ha).algorithm(alg).phases(Phases::One);
        assert!(
            full.plan().unwrap().serial,
            "{alg:?}: fully-overridden op ignored the serial cutoff"
        );
        assert_eq!(full.run().unwrap(), parallel);
    }

    // Dropping the cutoff restores pool dispatch (plan cache invalidated).
    ctx.set_serial_cutoff_flops(0.0);
    assert!(!ctx.op(hm, ha, ha).plan().unwrap().serial);

    // Vector plans are always serial, cutoff or not.
    let u = ctx.insert_vec(SparseVec::try_new(48, vec![0], vec![true]).unwrap());
    let vm = ctx.insert_vec(SparseVec::<bool>::empty(48));
    assert!(ctx.vec_op(vm, u, ha).plan().unwrap().serial);
}

#[test]
fn vector_plans_cache_under_fingerprint_classes() {
    let ctx = Context::with_threads(1);
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(200, 6.0, 260));
    let h = ctx.insert(adj);
    let frontier = ctx.insert_vec(SparseVec::try_new(200, vec![0], vec![true]).unwrap());
    let visited = ctx.insert_vec(SparseVec::try_new(200, vec![0], vec![true]).unwrap());

    let misses0 = ctx.plan_cache_stats().misses;
    let p1 = ctx.plan_vec(visited, true, frontier, h).unwrap();
    assert!(matches!(p1.choice, Choice::Fixed(_)));
    assert_eq!(ctx.plan_cache_stats().misses, misses0 + 1);

    // Same shapes → a hit, even after an update in the same nnz regime.
    let hits0 = ctx.plan_cache_stats().hits;
    ctx.update_vec(
        frontier,
        SparseVec::try_new(200, vec![5], vec![true]).unwrap(),
    );
    ctx.plan_vec(visited, true, frontier, h).unwrap();
    assert_eq!(ctx.plan_cache_stats().hits, hits0 + 1);

    // A frontier in a different population regime is a different class.
    let wide: Vec<Idx> = (0..150).collect();
    ctx.update_vec(
        frontier,
        SparseVec::try_new(200, wide.clone(), vec![true; wide.len()]).unwrap(),
    );
    let misses1 = ctx.plan_cache_stats().misses;
    ctx.plan_vec(visited, true, frontier, h).unwrap();
    assert_eq!(ctx.plan_cache_stats().misses, misses1 + 1);

    // Lane changes the class too (bool vs i64 frontier of equal nnz).
    let misses2 = ctx.plan_cache_stats().misses;
    ctx.update_vec(
        frontier,
        SparseVec::try_new(200, wide.clone(), vec![1i64; wide.len()]).unwrap(),
    );
    ctx.plan_vec(visited, true, frontier, h).unwrap();
    assert_eq!(ctx.plan_cache_stats().misses, misses2 + 1);
}

#[test]
fn vector_registry_updates_and_versions() {
    let ctx = Context::with_threads(1);
    let h = ctx.insert_vec(SparseVec::try_new(10, vec![2], vec![true]).unwrap());
    assert_eq!(ctx.vector(h).value_kind(), ValueKind::Bool);
    assert_eq!(ctx.vector(h).nnz(), 1);
    let v0 = ctx.vec_version(h);

    // Updates may change the lane; the version advances.
    ctx.update_vec(
        h,
        SparseVec::try_new(10, vec![2, 5], vec![1i64, 9]).unwrap(),
    );
    assert_eq!(ctx.vector(h).value_kind(), ValueKind::I64);
    assert_eq!(ctx.vector(h).nnz(), 2);
    assert!(ctx.vec_version(h) > v0);
    assert_eq!(ctx.vector(h).indices(), &[2, 5]);
    assert_eq!(ctx.vector(h).pattern().indices(), &[2, 5]);
    ctx.remove_vec(h);
}
