//! Property-based tests (proptest) for the Masked SpGEMM invariants:
//!
//! * output pattern ⊆ mask pattern (plain) / disjoint from it (complement);
//! * structural validity of the produced CSR;
//! * agreement across all algorithms and with the dense reference;
//! * symbolic counts equal numeric row lengths (the 1P/2P contract).

use graph_algos::Scheme;
use proptest::prelude::*;
use sparse::dense::reference_masked_spgemm;
use sparse::{CscMatrix, CsrMatrix, Idx, PlusTimes};

/// Strategy: CSR matrix of the given shape with ~`density` fill and small
/// integer values (exact in f64).
fn csr_strategy(nrows: usize, ncols: usize, density: f64) -> impl Strategy<Value = CsrMatrix<f64>> {
    let cells = nrows * ncols;
    proptest::collection::vec((0.0f64..1.0, 1i32..50), cells..=cells).prop_map(move |draws| {
        let mut rowptr = vec![0usize];
        let mut cols: Vec<Idx> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for i in 0..nrows {
            for j in 0..ncols {
                let (p, v) = draws[i * ncols + j];
                if p < density {
                    cols.push(j as Idx);
                    vals.push(v as f64);
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    })
}

/// `sub`'s pattern is contained in `sup`'s pattern.
fn pattern_subset<T, U>(sub: &CsrMatrix<T>, sup: &CsrMatrix<U>) -> bool {
    for i in 0..sub.nrows() {
        let (sc, _) = sub.row(i);
        let (pc, _) = sup.row(i);
        let mut q = 0usize;
        for &j in sc {
            while q < pc.len() && pc[q] < j {
                q += 1;
            }
            if q >= pc.len() || pc[q] != j {
                return false;
            }
        }
    }
    true
}

/// Patterns share no position.
fn pattern_disjoint<T, U>(a: &CsrMatrix<T>, b: &CsrMatrix<U>) -> bool {
    for i in 0..a.nrows() {
        let (ac, _) = a.row(i);
        let (bc, _) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() && q < bc.len() {
            match ac[p].cmp(&bc[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
    }
    true
}

/// Validate CSR invariants by round-tripping through the checked builder.
fn structurally_valid(c: &CsrMatrix<f64>) -> bool {
    CsrMatrix::try_new(
        c.nrows(),
        c.ncols(),
        c.rowptr().to_vec(),
        c.colidx().to_vec(),
        c.values().to_vec(),
    )
    .is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plain_output_is_subset_of_mask(
        a in csr_strategy(14, 12, 0.25),
        b in csr_strategy(12, 15, 0.25),
        mask in csr_strategy(14, 15, 0.35),
    ) {
        let sr = PlusTimes::<f64>::new();
        let b_csc = CscMatrix::from_csr(&b);
        for s in Scheme::all_ours() {
            let c = s.run(sr, &mask, false, &a, &b, &b_csc).unwrap();
            prop_assert!(pattern_subset(&c, &mask), "{} violates C ⊆ M", s.label());
            prop_assert!(structurally_valid(&c), "{} invalid CSR", s.label());
        }
    }

    #[test]
    fn complemented_output_is_disjoint_from_mask(
        a in csr_strategy(12, 12, 0.3),
        b in csr_strategy(12, 12, 0.3),
        mask in csr_strategy(12, 12, 0.3),
    ) {
        let sr = PlusTimes::<f64>::new();
        let b_csc = CscMatrix::from_csr(&b);
        for s in Scheme::all_ours() {
            if !s.supports_complement() {
                continue;
            }
            let c = s.run(sr, &mask, true, &a, &b, &b_csc).unwrap();
            prop_assert!(pattern_disjoint(&c, &mask), "{} violates C ∩ M = ∅", s.label());
            prop_assert!(structurally_valid(&c), "{} invalid CSR", s.label());
        }
    }

    #[test]
    fn all_schemes_match_dense_reference(
        a in csr_strategy(10, 11, 0.3),
        b in csr_strategy(11, 9, 0.3),
        mask in csr_strategy(10, 9, 0.4),
    ) {
        let sr = PlusTimes::<f64>::new();
        let b_csc = CscMatrix::from_csr(&b);
        for compl in [false, true] {
            let expect = reference_masked_spgemm(sr, &mask, compl, &a, &b);
            for s in Scheme::all_ours().into_iter().chain(Scheme::baselines()) {
                if compl && !s.supports_complement() {
                    continue;
                }
                let got = s.run(sr, &mask, compl, &a, &b, &b_csc).unwrap();
                prop_assert_eq!(&got, &expect, "{} compl={}", s.label(), compl);
            }
        }
    }

    #[test]
    fn masked_flops_bounded_by_plain(
        a in csr_strategy(10, 10, 0.3),
        b in csr_strategy(10, 10, 0.3),
        mask in csr_strategy(10, 10, 0.5),
    ) {
        let plain = masked_spgemm::flops(&a, &b);
        let masked = masked_spgemm::flops_masked(&mask, &a, &b);
        prop_assert!(masked <= plain, "masked {masked} > plain {plain}");
    }

    #[test]
    fn ewise_mask_application_equals_masked_multiply(
        a in csr_strategy(10, 10, 0.3),
        b in csr_strategy(10, 10, 0.3),
        mask in csr_strategy(10, 10, 0.4),
    ) {
        // The strawman (full product, then mask) agrees with mask-aware
        // computation — the paper's Figure 1 in test form.
        let sr = PlusTimes::<f64>::new();
        let strawman = baselines::plain_then_mask(sr, &mask, &a, &b);
        let b_csc = CscMatrix::from_csr(&b);
        let direct = Scheme::all_ours()[0].run(sr, &mask, false, &a, &b, &b_csc).unwrap();
        prop_assert_eq!(strawman, direct);
    }
}
