//! Engine subsystem tests: planned, forced, and batched execution must be
//! bit-identical to direct `masked_spgemm` calls; the auxiliary cache must
//! never serve stale data after a matrix is updated.

use engine::{Choice, Context};
use masked_spgemm::{masked_spgemm, Algorithm, Phases};
use proptest::prelude::*;
use sparse::{CsrMatrix, Idx, PlusTimes};

/// CSR matrix of a fixed shape with ~`density` fill and small integer
/// values (exact in f64).
fn csr_strategy(nrows: usize, ncols: usize, density: f64) -> impl Strategy<Value = CsrMatrix<f64>> {
    let cells = nrows * ncols;
    proptest::collection::vec((0.0f64..1.0, 1i32..50), cells..=cells).prop_map(move |draws| {
        let mut rowptr = vec![0usize];
        let mut cols: Vec<Idx> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for i in 0..nrows {
            for j in 0..ncols {
                let (p, v) = draws[i * ncols + j];
                if p < density {
                    cols.push(j as Idx);
                    vals.push(v as f64);
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Forced execution through the context (cached CSC and all) matches
    /// direct calls for every algorithm × phase × polarity combination.
    #[test]
    fn forced_plans_match_direct_for_every_combo(
        a in csr_strategy(13, 11, 0.3),
        b in csr_strategy(11, 14, 0.3),
        mask in csr_strategy(13, 14, 0.4),
    ) {
        let ctx = Context::with_threads(2);
        let sr = PlusTimes::<f64>::new();
        let (hm, ha, hb) = (
            ctx.insert(mask.clone()),
            ctx.insert(a.clone()),
            ctx.insert(b.clone()),
        );
        for compl in [false, true] {
            for alg in Algorithm::ALL {
                for ph in Phases::ALL {
                    let direct = masked_spgemm(alg, ph, compl, sr, &mask, &a, &b);
                    let engine = ctx.run_with(alg, ph, sr, hm, compl, ha, hb);
                    match (direct, engine) {
                        (Ok(d), Ok(e)) => {
                            prop_assert_eq!(&d, &e, "{:?}-{:?} compl={}", alg, ph, compl);
                        }
                        (Err(_), Err(_)) => {} // both reject (MCA complement)
                        (d, e) => {
                            return Err(TestCaseError::fail(format!(
                                "support mismatch {alg:?}-{ph:?} compl={compl}: \
                                 direct ok={} engine ok={}",
                                d.is_ok(), e.is_ok()
                            )));
                        }
                    }
                }
            }
        }
    }

    /// The planner's own choice (through the descriptor path) also matches
    /// the direct reference result.
    #[test]
    fn planned_execution_matches_reference(
        a in csr_strategy(12, 12, 0.3),
        b in csr_strategy(12, 12, 0.3),
        mask in csr_strategy(12, 12, 0.4),
    ) {
        let ctx = Context::with_threads(2);
        let sr = PlusTimes::<f64>::new();
        let (hm, ha, hb) = (
            ctx.insert(mask.clone()),
            ctx.insert(a.clone()),
            ctx.insert(b.clone()),
        );
        for compl in [false, true] {
            let expect =
                masked_spgemm(Algorithm::Msa, Phases::One, compl, sr, &mask, &a, &b).unwrap();
            let plan = ctx.plan(hm, compl, ha, hb).unwrap();
            let got = ctx.op(hm, ha, hb).complemented(compl).run().unwrap();
            prop_assert_eq!(&got, &expect, "plan {} compl={}", plan.label(), compl);
        }
    }

    /// Batched execution (serial per-op kernels with reused scratch)
    /// produces the same bits as direct calls, op for op.
    #[test]
    fn batched_execution_matches_direct(
        a in csr_strategy(10, 10, 0.3),
        b in csr_strategy(10, 10, 0.3),
        m1 in csr_strategy(10, 10, 0.4),
        m2 in csr_strategy(10, 10, 0.1),
    ) {
        let ctx = Context::with_threads(3);
        let sr = PlusTimes::<f64>::new();
        let (ha, hb) = (ctx.insert(a.clone()), ctx.insert(b.clone()));
        let (h1, h2) = (ctx.insert(m1.clone()), ctx.insert(m2.clone()));
        let ops = vec![
            ctx.op(h1, ha, hb).build(),
            ctx.op(h2, ha, hb).build(),
            ctx.op(h1, ha, hb).complemented(true).build(),
            ctx.op(h2, hb, ha).build(),
        ];
        let results = ctx.run_batch_collect(&ops);
        prop_assert_eq!(results.len(), ops.len());
        for (op, result) in ops.iter().zip(&results) {
            let (mask, a, b) = op.mat_operands().expect("matrix operands");
            let mask_m = ctx.matrix(mask);
            let am = ctx.matrix(a);
            let bm = ctx.matrix(b);
            let expect = masked_spgemm(
                Algorithm::Msa, Phases::One, op.complemented, sr, &mask_m, &am, &bm,
            ).unwrap();
            let got = result.as_ref().expect("batch op supported");
            prop_assert_eq!(got, &expect);
        }
    }
}

#[test]
fn update_invalidates_stale_auxiliaries() {
    let ctx = Context::with_threads(1);
    let m1 = graphs::erdos_renyi(32, 4.0, 1);
    let h = ctx.insert(m1.clone());

    // Materialize every auxiliary for the first version.
    let csc1 = ctx.csc(h);
    let t1 = ctx.transposed(h);
    let deg1 = ctx.row_degrees(h);
    let status1 = ctx.aux_status(h);
    assert!(status1.has_csc && status1.has_transpose && status1.has_row_degrees);
    assert_eq!(csc1.to_csr(), m1);

    // Mutate the matrix: every cached auxiliary must be rebuilt, not reused.
    let m2 = graphs::erdos_renyi(32, 9.0, 2);
    assert_ne!(m1, m2);
    ctx.update(h, m2.clone());
    let status2 = ctx.aux_status(h);
    assert!(status2.version > status1.version, "version must advance");
    assert!(
        !status2.has_csc && !status2.has_transpose && !status2.has_row_degrees,
        "stale auxiliaries survived the update: {status2:?}"
    );
    let csc2 = ctx.csc(h);
    assert_eq!(csc2.to_csr(), m2, "CSC reflects the new matrix");
    assert_ne!(csc1.to_csr(), csc2.to_csr());
    let deg2 = ctx.row_degrees(h);
    assert_eq!(deg2.len(), 32);
    assert_ne!(&*deg1, &*deg2, "degree vector rebuilt");
    assert_eq!(t1.to_owned().nnz(), m1.nnz(), "old Arc still the old data");

    // A no-op update (identical matrix) keeps the cache warm.
    let v_before = ctx.aux_status(h).version;
    assert!(ctx.aux_status(h).has_csc);
    ctx.update(h, m2.clone());
    assert_eq!(ctx.aux_status(h).version, v_before);
    assert!(
        ctx.aux_status(h).has_csc,
        "no-op update must keep auxiliaries"
    );
}

#[test]
fn flops_cache_invalidates_with_versions() {
    let ctx = Context::with_threads(1);
    let a1 = graphs::erdos_renyi(24, 3.0, 3);
    let b1 = graphs::erdos_renyi(24, 3.0, 4);
    let (ha, hb) = (ctx.insert(a1.clone()), ctx.insert(b1.clone()));
    let f1 = ctx.flops(ha, hb);
    assert_eq!(f1, masked_spgemm::flops(&a1, &b1));
    // Updating B must change the cached answer.
    let b2 = graphs::erdos_renyi(24, 8.0, 5);
    ctx.update(hb, b2.clone());
    let f2 = ctx.flops(ha, hb);
    assert_eq!(f2, masked_spgemm::flops(&a1, &b2));
    assert_ne!(f1, f2);
}

#[test]
fn plans_are_cached_per_fingerprint_and_refreshed_by_regime_changes() {
    let ctx = Context::with_threads(1);
    let a = graphs::erdos_renyi(64, 6.0, 6);
    let m = graphs::erdos_renyi(64, 6.0, 7);
    let (ha, hm) = (ctx.insert(a), ctx.insert(m));
    let p1 = ctx.plan(hm, false, ha, ha).unwrap();
    let hits_before = ctx.plan_cache_stats().hits;
    let p2 = ctx.plan(hm, false, ha, ha).unwrap();
    assert_eq!(p1.label(), p2.label());
    assert_eq!(p1.costs.flops, p2.costs.flops);
    assert_eq!(
        ctx.plan_cache_stats().hits,
        hits_before + 1,
        "identical replan must be a cache hit"
    );
    // A 4× denser A is a different structural class: the cached cost
    // estimates must be recomputed, not served.
    ctx.update(ha, graphs::erdos_renyi(64, 24.0, 8));
    let p3 = ctx.plan(hm, false, ha, ha).unwrap();
    assert_ne!(p1.costs.flops, p3.costs.flops);
}

#[test]
fn batch_handles_mixed_shapes_and_errors() {
    let ctx = Context::with_threads(2);
    let sr = PlusTimes::<f64>::new();
    // Different shapes in one batch exercise scratch regrowth per worker.
    let small = ctx.insert(graphs::erdos_renyi(16, 3.0, 10));
    let big = ctx.insert(graphs::erdos_renyi(128, 6.0, 11));
    let mask_small = ctx.insert(graphs::erdos_renyi(16, 4.0, 12));
    let mask_big = ctx.insert(graphs::erdos_renyi(128, 8.0, 13));
    let ops = vec![
        ctx.op(mask_small, small, small).build(),
        ctx.op(mask_big, big, big).build(),
        // Shape mismatch: must fail in its slot only.
        ctx.op(mask_small, big, big).build(),
        ctx.op(mask_small, small, small).complemented(true).build(),
    ];
    let results = ctx.run_batch_collect(&ops);
    assert!(results[0].is_ok());
    assert!(results[1].is_ok());
    assert!(results[2].is_err(), "mismatched op must error in isolation");
    assert!(results[3].is_ok());
    for (op, result) in ops.iter().zip(&results).filter(|(_, r)| r.is_ok()) {
        let (mask, a, b) = op.mat_operands().expect("matrix operands");
        let expect = masked_spgemm(
            Algorithm::Msa,
            Phases::One,
            op.complemented,
            sr,
            &ctx.matrix(mask),
            &ctx.matrix(a),
            &ctx.matrix(b),
        )
        .unwrap();
        assert_eq!(result.as_ref().unwrap(), &expect);
    }
}

#[test]
fn complemented_plans_never_pick_pull_for_sparse_masks() {
    // Under a complemented mask the pull algorithm visits every *unmasked*
    // output column — a near-empty mask row is its worst case, not its
    // best. The BC forward sweep (wide matrices, tiny complemented masks)
    // must therefore plan a push family.
    let ctx = Context::with_threads(1);
    let adj = ctx.insert(graphs::erdos_renyi(512, 8.0, 30));
    let frontier = ctx.insert(graphs::erdos_renyi(512, 1.0, 31));
    let paths = ctx.insert(graphs::erdos_renyi(512, 1.0, 32));
    let plan = ctx.plan(paths, true, frontier, adj).unwrap();
    assert!(
        !matches!(plan.choice, Choice::Fixed(Algorithm::Inner)),
        "complemented sparse-mask multiply planned pure Inner: {}",
        plan.label()
    );
    // The estimate itself must reflect the ncols-wide dot sweep.
    assert!(
        plan.costs.inner > plan.costs.msa,
        "inner ({:.0}) should dominate msa ({:.0}) here",
        plan.costs.inner,
        plan.costs.msa
    );
    // An *empty* mask is maximal work under complement, not free: the
    // planner must still produce a push plan, never a pull one.
    let empty = ctx.insert(sparse::CsrMatrix::<f64>::empty(512, 512));
    let plan = ctx.plan(empty, true, frontier, adj).unwrap();
    assert!(!matches!(plan.choice, Choice::Fixed(Algorithm::Inner)));
    assert!(
        plan.costs.inner > 0.0,
        "empty complemented mask costed as free"
    );
}

#[test]
fn update_loops_do_not_grow_derived_caches() {
    // Regression: every update bumps the version; flops entries for
    // superseded versions must be dropped, or update-in-a-loop workloads
    // (k-truss) leak cache entries without bound. Plan entries are keyed
    // by structural class, so same-regime updates land on a handful of
    // keys (and the byte-budgeted LRU bounds them regardless).
    let ctx = Context::with_threads(1);
    let h = ctx.insert(graphs::erdos_renyi(48, 6.0, 40));
    for round in 0..20u64 {
        let _ = ctx.flops(h, h);
        let _ = ctx.plan(h, false, h, h).unwrap();
        ctx.update(h, graphs::erdos_renyi(48, 6.0, 41 + round));
    }
    let (flops_len, plan_len) = ctx.cache_sizes();
    assert!(flops_len <= 1, "flops cache grew to {flops_len}");
    assert!(
        plan_len <= 8,
        "plan cache grew to {plan_len} for one structural regime"
    );
}

#[test]
fn transpose_handle_is_cached_and_follows_updates() {
    let ctx = Context::with_threads(1);
    let m1 = graphs::erdos_renyi(32, 4.0, 50);
    let h = ctx.insert(m1.clone());
    let t1 = ctx.transpose_handle(h);
    // Second call returns the same handle (no per-call registration).
    assert_eq!(ctx.transpose_handle(h), t1);
    assert_eq!(ctx.matrix(t1).as_ref(), &sparse::transpose::transpose(&m1));
    // Updating the parent invalidates the derived handle and yields a new
    // one reflecting the new matrix.
    let m2 = graphs::erdos_renyi(32, 7.0, 51);
    ctx.update(h, m2.clone());
    let t2 = ctx.transpose_handle(h);
    assert_ne!(t2, t1);
    assert_eq!(ctx.matrix(t2).as_ref(), &sparse::transpose::transpose(&m2));
}

#[test]
fn planner_prefers_pull_for_tiny_masks_and_push_for_dense_masks() {
    let ctx = Context::with_threads(1);
    // Dense inputs, near-empty mask: the pull/dot regime.
    let a = ctx.insert(graphs::erdos_renyi(256, 48.0, 20));
    let tiny = ctx.insert(graphs::erdos_renyi(256, 0.5, 21));
    let plan = ctx.plan(tiny, false, a, a).unwrap();
    assert!(
        matches!(
            plan.choice,
            Choice::Fixed(Algorithm::Inner) | Choice::Hybrid
        ),
        "expected a pull-leaning plan, got {}",
        plan.label()
    );
    // Dense mask over the same inputs: push regime (never pure Inner).
    let dense = ctx.insert(graphs::erdos_renyi(256, 64.0, 22));
    let plan = ctx.plan(dense, false, a, a).unwrap();
    assert!(
        !matches!(plan.choice, Choice::Fixed(Algorithm::Inner)),
        "dense mask must not plan pure Inner, got {}",
        plan.label()
    );
}

/// The deprecated 0.2 entry points must keep producing the same bits as
/// the descriptor path they now wrap.
#[test]
#[allow(deprecated)]
fn deprecated_wrappers_agree_with_descriptor_path() {
    use engine::BatchOp;
    let ctx = Context::with_threads(2);
    let sr = PlusTimes::<f64>::new();
    let a = graphs::erdos_renyi(40, 6.0, 60);
    let m = graphs::erdos_renyi(40, 9.0, 61);
    let (ha, hm) = (ctx.insert(a), ctx.insert(m));

    let via_new = ctx.op(hm, ha, ha).run().unwrap();
    let via_masked_spgemm = ctx.masked_spgemm(sr, hm, false, ha, ha).unwrap();
    assert_eq!(via_new, via_masked_spgemm);

    let plan = ctx.plan(hm, false, ha, ha).unwrap();
    let via_run_planned = ctx.run_planned(&plan, sr, hm, ha, ha).unwrap();
    assert_eq!(via_new, via_run_planned);

    let old_ops = vec![
        BatchOp {
            mask: hm,
            complemented: false,
            a: ha,
            b: ha,
        };
        3
    ];
    let new_ops = vec![ctx.op(hm, ha, ha).build(); 3];
    let old_results = ctx.run_batch(sr, &old_ops);
    let new_results = ctx.run_batch_collect(&new_ops);
    for (o, n) in old_results.iter().zip(&new_results) {
        assert_eq!(o.as_ref().unwrap(), n.as_ref().unwrap());
    }
}
