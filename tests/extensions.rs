//! Integration tests for the extension features: the adaptive hybrid
//! scheme, vector-level masked SpGEVM, direction-optimized BFS, and the
//! hypersparse DCSR format — exercised together on generator output.

use graph_algos::{bfs, Direction, Scheme};
use masked_spgemm::{
    hybrid_choices, hybrid_masked_spgemm, masked_spgevm, Algorithm, HybridConfig, Phases,
};
use sparse::dense::reference_masked_spgemm;
use sparse::semiring::BoolAndOr;
use sparse::{CscMatrix, DcsrMatrix, PlusTimes, SparseVec};

#[test]
fn hybrid_matches_fixed_schemes_across_density_grid() {
    let sr = PlusTimes::<f64>::new();
    let n = 256;
    for (deg_in, deg_m) in [(2.0, 64.0), (16.0, 16.0), (48.0, 2.0)] {
        let a = graphs::erdos_renyi(n, deg_in, 1);
        let b = graphs::erdos_renyi(n, deg_in, 2);
        let m = graphs::erdos_renyi(n, deg_m, 3).pattern();
        let bc = CscMatrix::from_csr(&b);
        let expect = reference_masked_spgemm(sr, &m, false, &a, &b);
        for ph in Phases::ALL {
            let got =
                hybrid_masked_spgemm(ph, HybridConfig::default(), sr, &m, &a, &b, &bc).unwrap();
            assert_eq!(got, expect, "deg_in={deg_in} deg_m={deg_m} {ph:?}");
        }
    }
}

#[test]
fn hybrid_choice_distribution_tracks_regime() {
    let n = 512;
    let cfg = HybridConfig::default();
    // Dense inputs + near-empty mask: dots should dominate.
    let a = graphs::erdos_renyi(n, 48.0, 4);
    let m = graphs::erdos_renyi(n, 1.0, 5).pattern();
    let choices = hybrid_choices(cfg, &m, &a, &a);
    let dots = choices
        .iter()
        .filter(|c| matches!(c, masked_spgemm::hybrid::RowChoice::Inner))
        .count();
    let nonempty = choices
        .iter()
        .filter(|c| !matches!(c, masked_spgemm::hybrid::RowChoice::Empty))
        .count();
    assert!(
        dots * 2 > nonempty,
        "sparse mask regime picked only {dots}/{nonempty} dot rows"
    );
}

#[test]
fn spgevm_rows_compose_to_spgemm() {
    // Running masked SpGEVM row by row must reproduce masked SpGEMM —
    // the paper's Section 5 equivalence, verified literally.
    let sr = PlusTimes::<f64>::new();
    let a = graphs::erdos_renyi(40, 5.0, 6);
    let b = graphs::erdos_renyi(40, 5.0, 7);
    let m = graphs::erdos_renyi(40, 8.0, 8).pattern();
    let whole =
        masked_spgemm::masked_spgemm(Algorithm::Msa, Phases::One, false, sr, &m, &a, &b).unwrap();
    for i in 0..a.nrows() {
        let (mc, _) = m.row(i);
        let (ac, av) = a.row(i);
        let u = SparseVec::try_new(40, ac.to_vec(), av.to_vec()).unwrap();
        let mv = SparseVec::try_new(40, mc.to_vec(), vec![(); mc.len()]).unwrap();
        let v = masked_spgevm(Algorithm::Msa, false, sr, &mv, &u, &b).unwrap();
        let (wc, wv) = whole.row(i);
        assert_eq!(v.indices(), wc, "row {i}");
        assert_eq!(v.values(), wv, "row {i}");
    }
}

#[test]
fn bfs_consistent_across_schemes_and_graph_families() {
    for g in graphs::suite().iter().filter(|g| g.nvertices() <= 1 << 10) {
        let adj = g.build();
        let expect = graph_algos::bfs::bfs_reference(&adj, 0);
        for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
            assert_eq!(bfs(&adj, 0, policy).levels, expect, "{} {policy:?}", g.name);
        }
    }
}

#[test]
fn bfs_visited_mask_uses_boolean_semiring() {
    // The frontier expansion with BoolAndOr never produces values other
    // than `true`; depth equals eccentricity on a star.
    let mut coo = sparse::CooMatrix::new(9, 9);
    for l in 1..9u32 {
        coo.push(0, l, 1.0);
        coo.push(l, 0, 1.0);
    }
    let star = coo.to_csr();
    let r = bfs(&star, 3, Direction::Auto);
    assert_eq!(r.depth, 2);
    assert_eq!(r.levels[0], 1);
    assert_eq!(r.levels[3], 0);
    assert!(r.levels.iter().filter(|&&l| l == 2).count() == 7);
    let _ = BoolAndOr; // semiring used inside bfs
}

#[test]
fn dcsr_roundtrips_ktruss_output() {
    // Late k-truss iterations produce hypersparse matrices — the DCSR
    // use case. Compress/expand must be lossless.
    let adj = graphs::to_undirected_simple(&graphs::erdos_renyi(512, 6.0, 9));
    let r = graph_algos::ktruss(Scheme::Hybrid, &adj, 4).unwrap();
    let d = DcsrMatrix::from_csr(&r.truss);
    assert_eq!(d.to_csr(), r.truss);
    assert!(d.nnzr() <= r.truss.nrows());
    if r.truss.nnz() > 0 {
        assert!(d.row_occupancy() <= 1.0);
        let k = 0;
        let (i, cols, _) = d.compressed_row(k);
        assert_eq!(d.row(i as usize).0, cols);
    }
}

#[test]
fn hybrid_in_applications() {
    // The hybrid scheme plugs into TC and k-truss like any fixed scheme.
    let adj = graphs::to_undirected_simple(&graphs::rmat(8, graphs::RmatParams::default(), 11));
    let l = graph_algos::prepare_triangle_input(&adj);
    let lc = CscMatrix::from_csr(&l);
    let expect = graph_algos::reference::triangle_count_reference(&adj);
    assert_eq!(
        graph_algos::triangle_count(Scheme::Hybrid, &l, &lc).unwrap(),
        expect
    );
    let kt_expect = graph_algos::reference::ktruss_reference(&adj, 5);
    let kt = graph_algos::ktruss(Scheme::Hybrid, &adj, 5).unwrap();
    assert_eq!(kt.truss.pattern(), kt_expect.pattern());
}
