//! k-truss peeling: how a graph's dense cores survive increasing k.
//!
//! Each k-truss run is a loop of `A ⊙ (A·A)` Masked SpGEMMs (support
//! computation) and prunes; the mask shrinks every iteration, which is the
//! regime where pull-based algorithms start to pay off (paper Section 8.3).
//!
//! Run with `cargo run --release --example ktruss_peeling -p masked-spgemm`.

use graph_algos::{ktruss, Scheme};
use graphs::{rmat, to_undirected_simple, RmatParams};
use masked_spgemm::{Algorithm, Phases};
use std::time::Instant;

fn main() {
    let adj = to_undirected_simple(&rmat(10, RmatParams::default(), 21));
    println!(
        "R-MAT scale 10: {} vertices, {} edges",
        adj.nrows(),
        adj.nnz() / 2
    );

    let scheme = Scheme::Ours(Algorithm::Msa, Phases::One);
    println!("k-truss peeling with {} :", scheme.label());
    println!("{:>3} {:>10} {:>6} {:>14} {:>10}", "k", "edges", "iters", "flops", "time");
    for k in 3..=8 {
        let t0 = Instant::now();
        let r = ktruss(scheme, &adj, k).expect("plain mask");
        println!(
            "{:>3} {:>10} {:>6} {:>14} {:>10.2?}",
            k,
            r.truss.nnz() / 2,
            r.iterations,
            r.total_flops,
            t0.elapsed()
        );
        if r.truss.nnz() == 0 {
            println!("graph fully peeled at k = {k}");
            break;
        }
    }

    // The same decomposition with a pull-based scheme must agree.
    let a = ktruss(scheme, &adj, 4).expect("plain mask");
    let b = ktruss(Scheme::Ours(Algorithm::Inner, Phases::One), &adj, 4).expect("plain mask");
    assert_eq!(a.truss.pattern(), b.truss.pattern());
    println!("MSA-1P and Inner-1P agree on the 4-truss ✓");
}
