//! k-truss peeling: how a graph's dense cores survive increasing k.
//!
//! Each k-truss run is a loop of `A ⊙ (A·A)` Masked SpGEMMs (support
//! computation) and prunes; the mask shrinks every iteration, which is the
//! regime where pull-based algorithms start to pay off (paper Section 8.3).
//!
//! The peeling loop runs through `engine::Context`: every iteration is
//! planned from cached degree statistics, and auxiliaries (CSC copies,
//! flop counts) are built only when the chosen algorithm needs them —
//! the scheme-based path converted to CSC every iteration regardless.
//!
//! Run with `cargo run --release --example ktruss_peeling -p integration`.

use engine::{Context, SemiringKind};
use graph_algos::{ktruss, ktruss_auto, Scheme};
use graphs::{rmat, to_undirected_simple, RmatParams};
use masked_spgemm::{Algorithm, Phases};
use std::time::Instant;

fn main() {
    let adj = to_undirected_simple(&rmat(10, RmatParams::default(), 21));
    println!(
        "R-MAT scale 10: {} vertices, {} edges",
        adj.nrows(),
        adj.nnz() / 2
    );

    let ctx = Context::new();
    ctx.calibrate(); // measure this machine's cost-model constants
    let h = ctx.insert(adj.clone());
    // Describe the support computation as an operation descriptor and ask
    // what the planner would do with it.
    let plan = ctx
        .op(h, h, h)
        .semiring(SemiringKind::PlusPair)
        .plan()
        .expect("square operands");
    println!(
        "engine plan for the first support computation: {} (flops {})",
        plan.label(),
        plan.costs.flops
    );

    println!("k-truss peeling through engine::Context:");
    println!(
        "{:>3} {:>10} {:>6} {:>14} {:>10}",
        "k", "edges", "iters", "flops", "time"
    );
    for k in 3..=8 {
        let t0 = Instant::now();
        let r = ktruss_auto(&ctx, h, k).expect("plain mask");
        println!(
            "{:>3} {:>10} {:>6} {:>14} {:>10.2?}",
            k,
            r.truss.nnz() / 2,
            r.iterations,
            r.total_flops,
            t0.elapsed()
        );
        if r.truss.nnz() == 0 {
            println!("graph fully peeled at k = {k}");
            break;
        }
    }
    let stats = ctx.plan_cache_stats();
    println!(
        "fingerprint plan cache: {} hits / {} misses across all peels \
         (hits after updates are plans reused across versions)",
        stats.hits, stats.misses
    );

    // The engine-planned decomposition must agree with fixed schemes.
    let auto = ktruss_auto(&ctx, h, 4).expect("plain mask");
    let a = ktruss(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, 4).expect("plain mask");
    let b = ktruss(Scheme::Ours(Algorithm::Inner, Phases::One), &adj, 4).expect("plain mask");
    assert_eq!(a.truss.pattern(), b.truss.pattern());
    assert_eq!(auto.truss.pattern(), a.truss.pattern());
    println!("engine-auto, MSA-1P and Inner-1P agree on the 4-truss ✓");
}
