//! Batch betweenness centrality on a preferential-attachment graph.
//!
//! Exercises both mask polarities of Masked SpGEMM: the forward BFS uses a
//! complemented mask (don't rediscover visited vertices), the backward
//! dependency sweep a plain one. Hubs of the power-law graph should surface
//! with the highest centrality.
//!
//! The batch runs through `engine::Context`: the adjacency's transpose is
//! cached on its handle, so the second batch (and every benchmark rep)
//! skips the conversions the scheme-based path pays per call.
//!
//! Run with `cargo run --release --example betweenness -p integration`.

use engine::{Context, SemiringKind};
use graph_algos::{betweenness_centrality, betweenness_centrality_auto, Scheme};
use graphs::preferential_attachment;
use sparse::Idx;

fn main() {
    let n = 2000;
    let adj = preferential_attachment(n, 3, 99);
    println!(
        "preferential-attachment graph: {} vertices, {} edges",
        n,
        adj.nnz() / 2
    );

    let ctx = Context::new();
    let h = ctx.insert(adj.clone());

    // One batch of 64 sources, spread deterministically.
    let sources: Vec<Idx> = (0..64)
        .map(|i| ((i * 2654435761usize) % n) as Idx)
        .collect();
    let r = betweenness_centrality_auto(&ctx, h, &sources).expect("planned schemes");
    println!(
        "engine-auto: batch {} sources, BFS depth {}, transpose cached: {}",
        r.batch,
        r.depth,
        ctx.aux_status(h).has_transpose
    );

    // Report the ten most central vertices alongside their degree: in a
    // preferential-attachment graph these are overwhelmingly the old hubs.
    let mut ranked: Vec<(usize, f64)> = r.centrality.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    println!("top 10 by betweenness (vertex, score, degree):");
    for &(v, score) in ranked.iter().take(10) {
        println!("  v{v:<6} {score:>12.1}   deg {}", adj.row_nnz(v));
    }

    // A heterogeneous streamed batch over the same adjacency: common-
    // neighbor counts (plus_pair) and weighted two-hop mass (plus_times)
    // of existing edges, in ONE batch, consumed as workers finish.
    let ops = vec![
        ctx.op(h, h, h).semiring(SemiringKind::PlusPair).build(),
        ctx.op(h, h, h).semiring(SemiringKind::PlusTimes).build(),
    ];
    let labels = ["common neighbors per edge", "two-hop mass per edge"];
    ctx.for_each_result(&ops, |i: usize, r: Result<sparse::CsrMatrix<f64>, _>| {
        let c = r.expect("square operands");
        println!(
            "streamed op {i} ({}): {} masked entries, total {:.0}",
            labels[i],
            c.nnz(),
            sparse::reduce::sum_all(&c)
        );
        // `c` drops here — the batch never holds every output at once.
    });

    // Cross-check the direct scheme path end to end.
    let r2 = betweenness_centrality(Scheme::SsSaxpy, &adj, &sources).expect("supported");
    let max_diff = r
        .centrality
        .iter()
        .zip(&r2.centrality)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |engine-auto − SS:SAXPY| over all vertices: {max_diff:.2e}");
    assert!(max_diff < 1e-6, "engine and baseline disagree");
}
