//! A tour of the density regimes of Figure 7: which algorithm wins where,
//! and why, demonstrated live on three Erdős-Rényi configurations.
//!
//! Run with `cargo run --release --example algorithm_tour -p masked-spgemm`.

use graphs::erdos_renyi;
use masked_spgemm::{masked_spgemm, Algorithm, Phases};
use sparse::{CsrMatrix, PlusTimes};
use std::time::{Duration, Instant};

fn time_all(
    mask: &CsrMatrix<f64>,
    a: &CsrMatrix<f64>,
    b: &CsrMatrix<f64>,
) -> Vec<(Algorithm, Duration)> {
    let sr = PlusTimes::<f64>::new();
    let mut out = Vec::new();
    for alg in Algorithm::ALL {
        // warmup + timed
        let _ = masked_spgemm(alg, Phases::One, false, sr, mask, a, b).unwrap();
        let t0 = Instant::now();
        let c = masked_spgemm(alg, Phases::One, false, sr, mask, a, b).unwrap();
        let dt = t0.elapsed();
        std::hint::black_box(c.nnz());
        out.push((alg, dt));
    }
    out.sort_by_key(|&(_, d)| d);
    out
}

fn show(name: &str, explanation: &str, deg_inputs: f64, deg_mask: f64) {
    let n = 1 << 12;
    let a = erdos_renyi(n, deg_inputs, 1);
    let b = erdos_renyi(n, deg_inputs, 2);
    let m = erdos_renyi(n, deg_mask, 3);
    println!("\n--- {name}: deg(A,B) = {deg_inputs}, deg(M) = {deg_mask} ---");
    println!("{explanation}");
    for (rank, (alg, dt)) in time_all(&m, &a, &b).into_iter().enumerate() {
        let marker = if rank == 0 { "  <- winner" } else { "" };
        println!("  {:<8} {:>10.2?}{marker}", alg.name(), dt);
    }
}

fn main() {
    println!("Masked SpGEMM algorithm regimes (n = 4096, Erdős-Rényi):");

    show(
        "sparse mask",
        "Mask is ~100x sparser than the inputs: a pull-based dot product \
         per unmasked entry avoids almost all of flops(A·B).",
        64.0,
        1.0,
    );

    show(
        "comparable density",
        "Mask and inputs comparable: push-based accumulators (MSA/Hash/MCA) \
         amortize row formation across many kept outputs.",
        16.0,
        16.0,
    );

    show(
        "sparse inputs, dense mask",
        "Inputs much sparser than the mask: the k-way heap merge streams \
         short rows without touching an accumulator at all.",
        2.0,
        512.0,
    );
}
