//! Direction-optimized BFS — the computation that brought masks into
//! sparse linear algebra (paper Section 4).
//!
//! Each level is one masked SpGEVM `next = ¬visited ⊙ (frontier·A)`:
//! "push" evaluates it by scattering the frontier's rows, "pull" by one
//! dot product per unvisited vertex, and the auto policy switches when the
//! frontier's outgoing work exceeds the unvisited population. The
//! engine-planned `bfs_auto` runs the same per-level products as vector
//! descriptors on the `bool` lane: the boolean adjacency views are cached
//! on the context, and with `Auto` the push/pull switch is the planner's
//! vector cost model.
//!
//! Run with `cargo run --release --example bfs_frontier -p integration`.

use engine::Context;
use graph_algos::{bfs, bfs::bfs_reference, bfs_auto, sssp_auto, Direction};
use graphs::{rmat, to_undirected_simple, RmatParams};
use std::time::Instant;

fn main() {
    let adj = to_undirected_simple(&rmat(13, RmatParams::default(), 3));
    println!(
        "R-MAT scale 13: {} vertices, {} edges",
        adj.nrows(),
        adj.nnz() / 2
    );

    println!("-- direct masked_spgevm loop --");
    for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
        let t0 = Instant::now();
        let r = bfs(&adj, 0, policy);
        let dt = t0.elapsed();
        let reached = r.levels.iter().filter(|&&l| l >= 0).count();
        println!(
            "{policy:?}: depth {}, reached {reached}, {dt:.2?}, per-level directions {:?}",
            r.depth, r.directions
        );
    }

    println!("-- engine-planned vector descriptors --");
    let ctx = Context::new();
    ctx.calibrate();
    let h = ctx.insert(adj.clone());
    for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
        let t0 = Instant::now();
        let r = bfs_auto(&ctx, h, 0, policy).expect("well-shaped traversal");
        let dt = t0.elapsed();
        println!(
            "{policy:?}: depth {}, {dt:.2?}, planner directions {:?}",
            r.depth, r.directions
        );
    }
    // A second Auto traversal replans nothing: every level's vector plan
    // is served from the fingerprint cache.
    let before = ctx.plan_cache_stats();
    bfs_auto(&ctx, h, 0, Direction::Auto).expect("well-shaped traversal");
    let after = ctx.plan_cache_stats();
    println!(
        "repeat Auto traversal: {} plan-cache hits, {} new misses",
        after.hits - before.hits,
        after.misses - before.misses
    );

    // Integer shortest paths on the same handle: min_plus on the i64 lane
    // with engine-side MinInto accumulation (unit weights → hop counts).
    let dist = sssp_auto(&ctx, h, 0).expect("well-shaped traversal");
    let reached = dist.iter().filter(|&&d| d >= 0).count();
    println!("sssp (i64 min_plus): reached {reached}");

    // Correctness cross-checks against a serial queue BFS.
    let expect = bfs_reference(&adj, 0);
    assert_eq!(bfs(&adj, 0, Direction::Auto).levels, expect);
    assert_eq!(
        bfs_auto(&ctx, h, 0, Direction::Auto).unwrap().levels,
        expect
    );
    assert_eq!(
        dist, expect,
        "unit weights: tropical distances are BFS levels"
    );
    println!("direct, engine-planned, and sssp paths match the serial reference ✓");
}
