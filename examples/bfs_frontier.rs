//! Direction-optimized BFS — the computation that brought masks into
//! sparse linear algebra (paper Section 4).
//!
//! Each level is one masked SpGEVM `next = ¬visited ⊙ (frontier·A)`:
//! "push" evaluates it by scattering the frontier's rows, "pull" by one
//! dot product per unvisited vertex, and the auto policy switches when the
//! frontier's outgoing work exceeds the unvisited population.
//!
//! Run with `cargo run --release --example bfs_frontier -p masked-spgemm`.

use graph_algos::{bfs, bfs::bfs_reference, Direction};
use graphs::{rmat, to_undirected_simple, RmatParams};
use std::time::Instant;

fn main() {
    let adj = to_undirected_simple(&rmat(13, RmatParams::default(), 3));
    println!(
        "R-MAT scale 13: {} vertices, {} edges",
        adj.nrows(),
        adj.nnz() / 2
    );

    for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
        let t0 = Instant::now();
        let r = bfs(&adj, 0, policy);
        let dt = t0.elapsed();
        let reached = r.levels.iter().filter(|&&l| l >= 0).count();
        println!(
            "{policy:?}: depth {}, reached {reached}, {dt:.2?}, per-level directions {:?}",
            r.depth, r.directions
        );
    }

    // Correctness cross-check against a serial queue BFS.
    let expect = bfs_reference(&adj, 0);
    assert_eq!(bfs(&adj, 0, Direction::Auto).levels, expect);
    println!("auto policy matches the serial reference ✓");
}
