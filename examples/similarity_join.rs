//! Masked similarity join — the paper's data-analytics motivation
//! ("inner-product similarities" where only candidate pairs matter).
//!
//! Items are rows of a sparse feature matrix; a candidate mask (here: pairs
//! sharing a rare feature) restricts the cosine-similarity computation to
//! the pairs a blocking stage proposed, turning an O(n²)-output all-pairs
//! join into one Masked SpGEMM.
//!
//! Run with `cargo run --release --example similarity_join -p masked-spgemm`.

use graph_algos::{masked_cosine_similarity, Scheme};
use graphs::erdos_renyi;
use masked_spgemm::{Algorithm, Phases};
use sparse::triangular::remove_diagonal;
use sparse::CsrMatrix;
use std::time::Instant;

fn main() {
    // 4096 items over 2048 features, ~12 features per item: generate a
    // square ER matrix and keep the first 2048 columns.
    let square = erdos_renyi(4096, 24.0, 17);
    let kept = square.filter(|_, j, _| (j as usize) < 2048);
    let items = CsrMatrix::try_new(
        4096,
        2048,
        kept.rowptr().to_vec(),
        kept.colidx().to_vec(),
        kept.values().to_vec(),
    )
    .expect("filtered columns are in range");
    println!(
        "items: {} x {} features, {} nonzeros",
        items.nrows(),
        items.ncols(),
        items.nnz()
    );

    // Blocking stage: candidate pairs = items sharing neighborhoods in a
    // sparse ER "candidate graph" (stand-in for an LSH/blocking pass).
    let mask = remove_diagonal(&erdos_renyi(4096, 24.0, 99)).pattern();
    println!("candidate pairs (mask nnz): {}", mask.nnz());

    for scheme in [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Inner, Phases::One),
        Scheme::Hybrid,
    ] {
        let t0 = Instant::now();
        let sim = masked_cosine_similarity(scheme, &mask, &items).expect("plain mask");
        let dt = t0.elapsed();
        let strong = sim.values().iter().filter(|&&v| v > 0.15).count();
        println!(
            "  {:<10} {:>9.2?}: {} similar candidate pairs, {} with cos > 0.15",
            scheme.label(),
            dt,
            sim.nnz(),
            strong
        );
    }
}
