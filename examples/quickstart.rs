//! Quickstart: compute a masked sparse product `C = M ⊙ (A·B)`.
//!
//! Run with `cargo run --release --example quickstart -p masked-spgemm`.

use masked_spgemm::{masked_spgemm, Algorithm, Phases};
use sparse::{CsrMatrix, PlusTimes};

fn main() {
    // A small 4x4 example.
    //     A           B           M (pattern)
    // [1 . 2 .]   [. 5 . .]   [x . . x]
    // [. 3 . .]   [6 . 7 .]   [. x . .]
    // [. . . 4]   [. 8 . .]   [. . x .]
    // [5 . 6 .]   [9 . . 1]   [x x . .]
    let a = CsrMatrix::try_new(
        4,
        4,
        vec![0, 2, 3, 4, 6],
        vec![0, 2, 1, 3, 0, 2],
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
    )
    .expect("valid CSR");
    let b = CsrMatrix::try_new(
        4,
        4,
        vec![0, 1, 3, 4, 6],
        vec![1, 0, 2, 1, 0, 3],
        vec![5.0, 6.0, 7.0, 8.0, 9.0, 1.0],
    )
    .expect("valid CSR");
    let mask = CsrMatrix::try_new(
        4,
        4,
        vec![0, 2, 3, 4, 6],
        vec![0, 3, 1, 2, 0, 1],
        vec![(); 6],
    )
    .expect("valid CSR");

    println!("A·B restricted to the mask, with every algorithm:");
    let sr = PlusTimes::<f64>::new();
    for alg in Algorithm::ALL {
        let c =
            masked_spgemm(alg, Phases::One, false, sr, &mask, &a, &b).expect("dimensions agree");
        println!("  {:<8} -> {} stored entries", alg.name(), c.nnz());
        for (i, j, v) in c.iter() {
            println!("      C({i},{j}) = {v}");
        }
    }

    // The complemented mask computes everything *outside* M instead.
    let c = masked_spgemm(Algorithm::Msa, Phases::One, true, sr, &mask, &a, &b)
        .expect("dimensions agree");
    println!("complemented mask -> {} stored entries", c.nnz());

    // Two-phase execution trades a symbolic pass for exact allocation.
    let c2 = masked_spgemm(Algorithm::Hash, Phases::Two, false, sr, &mask, &a, &b)
        .expect("dimensions agree");
    println!(
        "two-phase Hash agrees with one-phase MSA: {}",
        c2 == masked_spgemm(Algorithm::Msa, Phases::One, false, sr, &mask, &a, &b).unwrap()
    );
}
