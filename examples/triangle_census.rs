//! Triangle counting on a power-law graph, comparing every scheme's time.
//!
//! This is the paper's Section 8.2 workload at example scale:
//! `triangles = sum(L .* (L·L))` after degree relabeling, computed with one
//! Masked SpGEMM on the `plus_pair` semiring.
//!
//! Run with `cargo run --release --example triangle_census -p masked-spgemm`.

use graph_algos::{prepare_triangle_input, triangle_count, Scheme};
use graphs::{rmat, to_undirected_simple, RmatParams};
use sparse::CscMatrix;
use std::time::Instant;

fn main() {
    let scale = 11;
    let adj = to_undirected_simple(&rmat(scale, RmatParams::default(), 7));
    println!(
        "R-MAT scale {scale}: {} vertices, {} edges",
        adj.nrows(),
        adj.nnz() / 2
    );

    let l = prepare_triangle_input(&adj);
    let lc = CscMatrix::from_csr(&l);
    println!("lower-triangular L: nnz = {}", l.nnz());
    println!(
        "flops(L·L) = {}, of which the mask keeps {}",
        masked_spgemm::flops(&l, &l),
        masked_spgemm::flops_masked(&l, &l, &l)
    );

    let mut expected = None;
    for scheme in Scheme::all_ours().into_iter().chain(Scheme::baselines()) {
        let t0 = Instant::now();
        let count = triangle_count(scheme, &l, &lc).expect("plain mask");
        let dt = t0.elapsed();
        match expected {
            None => expected = Some(count),
            Some(e) => assert_eq!(e, count, "schemes disagree!"),
        }
        println!(
            "  {:<12} {:>10.3?}  ({count} triangles)",
            scheme.label(),
            dt
        );
    }
}
