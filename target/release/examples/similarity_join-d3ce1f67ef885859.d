/root/repo/target/release/examples/similarity_join-d3ce1f67ef885859.d: crates/integration/../../examples/similarity_join.rs Cargo.toml

/root/repo/target/release/examples/libsimilarity_join-d3ce1f67ef885859.rmeta: crates/integration/../../examples/similarity_join.rs Cargo.toml

crates/integration/../../examples/similarity_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
