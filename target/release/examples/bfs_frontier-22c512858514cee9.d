/root/repo/target/release/examples/bfs_frontier-22c512858514cee9.d: crates/integration/../../examples/bfs_frontier.rs

/root/repo/target/release/examples/bfs_frontier-22c512858514cee9: crates/integration/../../examples/bfs_frontier.rs

crates/integration/../../examples/bfs_frontier.rs:
