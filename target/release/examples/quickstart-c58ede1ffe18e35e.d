/root/repo/target/release/examples/quickstart-c58ede1ffe18e35e.d: crates/integration/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-c58ede1ffe18e35e.rmeta: crates/integration/../../examples/quickstart.rs Cargo.toml

crates/integration/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
