/root/repo/target/release/examples/ktruss_peeling-b235ffbbfca3777d.d: crates/integration/../../examples/ktruss_peeling.rs Cargo.toml

/root/repo/target/release/examples/libktruss_peeling-b235ffbbfca3777d.rmeta: crates/integration/../../examples/ktruss_peeling.rs Cargo.toml

crates/integration/../../examples/ktruss_peeling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
