/root/repo/target/release/examples/algorithm_tour-9f41609172c36a4d.d: crates/integration/../../examples/algorithm_tour.rs Cargo.toml

/root/repo/target/release/examples/libalgorithm_tour-9f41609172c36a4d.rmeta: crates/integration/../../examples/algorithm_tour.rs Cargo.toml

crates/integration/../../examples/algorithm_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
