/root/repo/target/release/examples/betweenness-8b29e0aeaa5621b4.d: crates/integration/../../examples/betweenness.rs

/root/repo/target/release/examples/betweenness-8b29e0aeaa5621b4: crates/integration/../../examples/betweenness.rs

crates/integration/../../examples/betweenness.rs:
