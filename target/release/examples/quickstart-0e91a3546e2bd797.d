/root/repo/target/release/examples/quickstart-0e91a3546e2bd797.d: crates/integration/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0e91a3546e2bd797: crates/integration/../../examples/quickstart.rs

crates/integration/../../examples/quickstart.rs:
