/root/repo/target/release/examples/bfs_frontier-a2dcca3bb264bafd.d: crates/integration/../../examples/bfs_frontier.rs Cargo.toml

/root/repo/target/release/examples/libbfs_frontier-a2dcca3bb264bafd.rmeta: crates/integration/../../examples/bfs_frontier.rs Cargo.toml

crates/integration/../../examples/bfs_frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
