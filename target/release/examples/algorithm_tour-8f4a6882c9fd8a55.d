/root/repo/target/release/examples/algorithm_tour-8f4a6882c9fd8a55.d: crates/integration/../../examples/algorithm_tour.rs

/root/repo/target/release/examples/algorithm_tour-8f4a6882c9fd8a55: crates/integration/../../examples/algorithm_tour.rs

crates/integration/../../examples/algorithm_tour.rs:
