/root/repo/target/release/examples/triangle_census-4344ec24a7e0d19b.d: crates/integration/../../examples/triangle_census.rs Cargo.toml

/root/repo/target/release/examples/libtriangle_census-4344ec24a7e0d19b.rmeta: crates/integration/../../examples/triangle_census.rs Cargo.toml

crates/integration/../../examples/triangle_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
