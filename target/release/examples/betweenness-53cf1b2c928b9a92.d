/root/repo/target/release/examples/betweenness-53cf1b2c928b9a92.d: crates/integration/../../examples/betweenness.rs Cargo.toml

/root/repo/target/release/examples/libbetweenness-53cf1b2c928b9a92.rmeta: crates/integration/../../examples/betweenness.rs Cargo.toml

crates/integration/../../examples/betweenness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
