/root/repo/target/release/examples/similarity_join-cc52d41e53800f0e.d: crates/integration/../../examples/similarity_join.rs

/root/repo/target/release/examples/similarity_join-cc52d41e53800f0e: crates/integration/../../examples/similarity_join.rs

crates/integration/../../examples/similarity_join.rs:
