/root/repo/target/release/examples/ktruss_peeling-3bc58ce060442477.d: crates/integration/../../examples/ktruss_peeling.rs

/root/repo/target/release/examples/ktruss_peeling-3bc58ce060442477: crates/integration/../../examples/ktruss_peeling.rs

crates/integration/../../examples/ktruss_peeling.rs:
