/root/repo/target/release/examples/triangle_census-8601ae1e74762e9c.d: crates/integration/../../examples/triangle_census.rs

/root/repo/target/release/examples/triangle_census-8601ae1e74762e9c: crates/integration/../../examples/triangle_census.rs

crates/integration/../../examples/triangle_census.rs:
