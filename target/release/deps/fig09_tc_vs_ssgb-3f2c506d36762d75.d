/root/repo/target/release/deps/fig09_tc_vs_ssgb-3f2c506d36762d75.d: crates/bench/src/bin/fig09_tc_vs_ssgb.rs

/root/repo/target/release/deps/fig09_tc_vs_ssgb-3f2c506d36762d75: crates/bench/src/bin/fig09_tc_vs_ssgb.rs

crates/bench/src/bin/fig09_tc_vs_ssgb.rs:
