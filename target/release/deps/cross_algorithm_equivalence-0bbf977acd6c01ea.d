/root/repo/target/release/deps/cross_algorithm_equivalence-0bbf977acd6c01ea.d: crates/integration/../../tests/cross_algorithm_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libcross_algorithm_equivalence-0bbf977acd6c01ea.rmeta: crates/integration/../../tests/cross_algorithm_equivalence.rs Cargo.toml

crates/integration/../../tests/cross_algorithm_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
