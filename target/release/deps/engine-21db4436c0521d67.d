/root/repo/target/release/deps/engine-21db4436c0521d67.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs Cargo.toml

/root/repo/target/release/deps/libengine-21db4436c0521d67.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/calibrate.rs:
crates/engine/src/context.rs:
crates/engine/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
