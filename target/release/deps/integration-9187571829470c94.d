/root/repo/target/release/deps/integration-9187571829470c94.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libintegration-9187571829470c94.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
