/root/repo/target/release/deps/phases_ablation-f17deebb8c657550.d: crates/bench/benches/phases_ablation.rs Cargo.toml

/root/repo/target/release/deps/libphases_ablation-f17deebb8c657550.rmeta: crates/bench/benches/phases_ablation.rs Cargo.toml

crates/bench/benches/phases_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
