/root/repo/target/release/deps/fig16_bc_profiles-d176b9f8874cfe09.d: crates/bench/src/bin/fig16_bc_profiles.rs

/root/repo/target/release/deps/fig16_bc_profiles-d176b9f8874cfe09: crates/bench/src/bin/fig16_bc_profiles.rs

crates/bench/src/bin/fig16_bc_profiles.rs:
