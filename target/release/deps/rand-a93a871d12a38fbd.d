/root/repo/target/release/deps/rand-a93a871d12a38fbd.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-a93a871d12a38fbd.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
