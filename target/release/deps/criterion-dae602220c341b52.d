/root/repo/target/release/deps/criterion-dae602220c341b52.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-dae602220c341b52.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
