/root/repo/target/release/deps/applications_end_to_end-eb952a4af2e95aff.d: crates/integration/../../tests/applications_end_to_end.rs

/root/repo/target/release/deps/applications_end_to_end-eb952a4af2e95aff: crates/integration/../../tests/applications_end_to_end.rs

crates/integration/../../tests/applications_end_to_end.rs:
