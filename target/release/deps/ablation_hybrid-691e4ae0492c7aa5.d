/root/repo/target/release/deps/ablation_hybrid-691e4ae0492c7aa5.d: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

/root/repo/target/release/deps/libablation_hybrid-691e4ae0492c7aa5.rmeta: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

crates/bench/src/bin/ablation_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
