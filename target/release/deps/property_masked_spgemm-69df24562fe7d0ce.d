/root/repo/target/release/deps/property_masked_spgemm-69df24562fe7d0ce.d: crates/integration/../../tests/property_masked_spgemm.rs

/root/repo/target/release/deps/property_masked_spgemm-69df24562fe7d0ce: crates/integration/../../tests/property_masked_spgemm.rs

crates/integration/../../tests/property_masked_spgemm.rs:
