/root/repo/target/release/deps/baselines-0cfeec63764265fe.d: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

/root/repo/target/release/deps/libbaselines-0cfeec63764265fe.rlib: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

/root/repo/target/release/deps/libbaselines-0cfeec63764265fe.rmeta: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

crates/baselines/src/lib.rs:
crates/baselines/src/plain.rs:
crates/baselines/src/ssdot.rs:
crates/baselines/src/sssaxpy.rs:
