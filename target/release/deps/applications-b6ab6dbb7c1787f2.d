/root/repo/target/release/deps/applications-b6ab6dbb7c1787f2.d: crates/bench/benches/applications.rs Cargo.toml

/root/repo/target/release/deps/libapplications-b6ab6dbb7c1787f2.rmeta: crates/bench/benches/applications.rs Cargo.toml

crates/bench/benches/applications.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
