/root/repo/target/release/deps/fig16_bc_profiles-8c87611078fc367f.d: crates/bench/src/bin/fig16_bc_profiles.rs Cargo.toml

/root/repo/target/release/deps/libfig16_bc_profiles-8c87611078fc367f.rmeta: crates/bench/src/bin/fig16_bc_profiles.rs Cargo.toml

crates/bench/src/bin/fig16_bc_profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
