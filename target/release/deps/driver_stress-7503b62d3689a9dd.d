/root/repo/target/release/deps/driver_stress-7503b62d3689a9dd.d: crates/core/tests/driver_stress.rs

/root/repo/target/release/deps/driver_stress-7503b62d3689a9dd: crates/core/tests/driver_stress.rs

crates/core/tests/driver_stress.rs:
