/root/repo/target/release/deps/baselines-677521d565439f3d.d: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

/root/repo/target/release/deps/baselines-677521d565439f3d: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

crates/baselines/src/lib.rs:
crates/baselines/src/plain.rs:
crates/baselines/src/ssdot.rs:
crates/baselines/src/sssaxpy.rs:
