/root/repo/target/release/deps/engine-8f4caaced50904b9.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

/root/repo/target/release/deps/engine-8f4caaced50904b9: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/calibrate.rs:
crates/engine/src/context.rs:
crates/engine/src/plan.rs:
