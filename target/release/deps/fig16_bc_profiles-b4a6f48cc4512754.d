/root/repo/target/release/deps/fig16_bc_profiles-b4a6f48cc4512754.d: crates/bench/src/bin/fig16_bc_profiles.rs Cargo.toml

/root/repo/target/release/deps/libfig16_bc_profiles-b4a6f48cc4512754.rmeta: crates/bench/src/bin/fig16_bc_profiles.rs Cargo.toml

crates/bench/src/bin/fig16_bc_profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
