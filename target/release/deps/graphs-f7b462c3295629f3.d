/root/repo/target/release/deps/graphs-f7b462c3295629f3.d: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

/root/repo/target/release/deps/libgraphs-f7b462c3295629f3.rlib: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

/root/repo/target/release/deps/libgraphs-f7b462c3295629f3.rmeta: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

crates/graphs/src/lib.rs:
crates/graphs/src/erdos_renyi.rs:
crates/graphs/src/rmat.rs:
crates/graphs/src/stats.rs:
crates/graphs/src/structured.rs:
crates/graphs/src/suite.rs:
crates/graphs/src/util.rs:
