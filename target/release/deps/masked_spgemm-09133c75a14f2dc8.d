/root/repo/target/release/deps/masked_spgemm-09133c75a14f2dc8.d: crates/core/src/lib.rs crates/core/src/accum/mod.rs crates/core/src/accum/hash.rs crates/core/src/accum/mca.rs crates/core/src/accum/msa.rs crates/core/src/algos/mod.rs crates/core/src/algos/hash.rs crates/core/src/algos/heap.rs crates/core/src/algos/inner.rs crates/core/src/algos/mca.rs crates/core/src/algos/msa.rs crates/core/src/api.rs crates/core/src/dcsr_exec.rs crates/core/src/estimate.rs crates/core/src/exec.rs crates/core/src/hybrid.rs crates/core/src/kernel.rs crates/core/src/scratch.rs crates/core/src/spgevm.rs

/root/repo/target/release/deps/libmasked_spgemm-09133c75a14f2dc8.rlib: crates/core/src/lib.rs crates/core/src/accum/mod.rs crates/core/src/accum/hash.rs crates/core/src/accum/mca.rs crates/core/src/accum/msa.rs crates/core/src/algos/mod.rs crates/core/src/algos/hash.rs crates/core/src/algos/heap.rs crates/core/src/algos/inner.rs crates/core/src/algos/mca.rs crates/core/src/algos/msa.rs crates/core/src/api.rs crates/core/src/dcsr_exec.rs crates/core/src/estimate.rs crates/core/src/exec.rs crates/core/src/hybrid.rs crates/core/src/kernel.rs crates/core/src/scratch.rs crates/core/src/spgevm.rs

/root/repo/target/release/deps/libmasked_spgemm-09133c75a14f2dc8.rmeta: crates/core/src/lib.rs crates/core/src/accum/mod.rs crates/core/src/accum/hash.rs crates/core/src/accum/mca.rs crates/core/src/accum/msa.rs crates/core/src/algos/mod.rs crates/core/src/algos/hash.rs crates/core/src/algos/heap.rs crates/core/src/algos/inner.rs crates/core/src/algos/mca.rs crates/core/src/algos/msa.rs crates/core/src/api.rs crates/core/src/dcsr_exec.rs crates/core/src/estimate.rs crates/core/src/exec.rs crates/core/src/hybrid.rs crates/core/src/kernel.rs crates/core/src/scratch.rs crates/core/src/spgevm.rs

crates/core/src/lib.rs:
crates/core/src/accum/mod.rs:
crates/core/src/accum/hash.rs:
crates/core/src/accum/mca.rs:
crates/core/src/accum/msa.rs:
crates/core/src/algos/mod.rs:
crates/core/src/algos/hash.rs:
crates/core/src/algos/heap.rs:
crates/core/src/algos/inner.rs:
crates/core/src/algos/mca.rs:
crates/core/src/algos/msa.rs:
crates/core/src/api.rs:
crates/core/src/dcsr_exec.rs:
crates/core/src/estimate.rs:
crates/core/src/exec.rs:
crates/core/src/hybrid.rs:
crates/core/src/kernel.rs:
crates/core/src/scratch.rs:
crates/core/src/spgevm.rs:
