/root/repo/target/release/deps/extensions-d3645f8f92b306fa.d: crates/integration/../../tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-d3645f8f92b306fa.rmeta: crates/integration/../../tests/extensions.rs Cargo.toml

crates/integration/../../tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
