/root/repo/target/release/deps/engine_repeat-eed9ab994673b796.d: crates/bench/src/bin/engine_repeat.rs Cargo.toml

/root/repo/target/release/deps/libengine_repeat-eed9ab994673b796.rmeta: crates/bench/src/bin/engine_repeat.rs Cargo.toml

crates/bench/src/bin/engine_repeat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
