/root/repo/target/release/deps/rayon-c49ff069b5ce52e1.d: crates/shims/rayon/src/lib.rs crates/shims/rayon/src/iter.rs Cargo.toml

/root/repo/target/release/deps/librayon-c49ff069b5ce52e1.rmeta: crates/shims/rayon/src/lib.rs crates/shims/rayon/src/iter.rs Cargo.toml

crates/shims/rayon/src/lib.rs:
crates/shims/rayon/src/iter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
