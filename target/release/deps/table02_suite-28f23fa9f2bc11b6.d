/root/repo/target/release/deps/table02_suite-28f23fa9f2bc11b6.d: crates/bench/src/bin/table02_suite.rs Cargo.toml

/root/repo/target/release/deps/libtable02_suite-28f23fa9f2bc11b6.rmeta: crates/bench/src/bin/table02_suite.rs Cargo.toml

crates/bench/src/bin/table02_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
