/root/repo/target/release/deps/ablation_hybrid-eba30cb9e1a8d6db.d: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

/root/repo/target/release/deps/libablation_hybrid-eba30cb9e1a8d6db.rmeta: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

crates/bench/src/bin/ablation_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
