/root/repo/target/release/deps/fig13_ktruss_vs_ssgb-4fd6d52671bb7459.d: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs

/root/repo/target/release/deps/fig13_ktruss_vs_ssgb-4fd6d52671bb7459: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs

crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs:
