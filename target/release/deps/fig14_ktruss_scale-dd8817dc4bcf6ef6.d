/root/repo/target/release/deps/fig14_ktruss_scale-dd8817dc4bcf6ef6.d: crates/bench/src/bin/fig14_ktruss_scale.rs

/root/repo/target/release/deps/fig14_ktruss_scale-dd8817dc4bcf6ef6: crates/bench/src/bin/fig14_ktruss_scale.rs

crates/bench/src/bin/fig14_ktruss_scale.rs:
