/root/repo/target/release/deps/fig15_bc_scale-64401e6df9724e77.d: crates/bench/src/bin/fig15_bc_scale.rs Cargo.toml

/root/repo/target/release/deps/libfig15_bc_scale-64401e6df9724e77.rmeta: crates/bench/src/bin/fig15_bc_scale.rs Cargo.toml

crates/bench/src/bin/fig15_bc_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
