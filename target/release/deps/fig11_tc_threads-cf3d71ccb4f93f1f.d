/root/repo/target/release/deps/fig11_tc_threads-cf3d71ccb4f93f1f.d: crates/bench/src/bin/fig11_tc_threads.rs

/root/repo/target/release/deps/fig11_tc_threads-cf3d71ccb4f93f1f: crates/bench/src/bin/fig11_tc_threads.rs

crates/bench/src/bin/fig11_tc_threads.rs:
