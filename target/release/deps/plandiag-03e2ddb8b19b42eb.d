/root/repo/target/release/deps/plandiag-03e2ddb8b19b42eb.d: crates/bench/src/bin/plandiag.rs

/root/repo/target/release/deps/plandiag-03e2ddb8b19b42eb: crates/bench/src/bin/plandiag.rs

crates/bench/src/bin/plandiag.rs:
