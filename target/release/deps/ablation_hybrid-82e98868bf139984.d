/root/repo/target/release/deps/ablation_hybrid-82e98868bf139984.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/release/deps/ablation_hybrid-82e98868bf139984: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
