/root/repo/target/release/deps/rayon-7d6d121eadb01af6.d: crates/shims/rayon/src/lib.rs crates/shims/rayon/src/iter.rs

/root/repo/target/release/deps/rayon-7d6d121eadb01af6: crates/shims/rayon/src/lib.rs crates/shims/rayon/src/iter.rs

crates/shims/rayon/src/lib.rs:
crates/shims/rayon/src/iter.rs:
