/root/repo/target/release/deps/table02_suite-23bd40e16f3a2dcb.d: crates/bench/src/bin/table02_suite.rs

/root/repo/target/release/deps/table02_suite-23bd40e16f3a2dcb: crates/bench/src/bin/table02_suite.rs

crates/bench/src/bin/table02_suite.rs:
