/root/repo/target/release/deps/sparse-4092e0531cb1c7d2.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/dcsr.rs crates/sparse/src/degree.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ewise.rs crates/sparse/src/index.rs crates/sparse/src/io.rs crates/sparse/src/permute.rs crates/sparse/src/reduce.rs crates/sparse/src/semiring.rs crates/sparse/src/spmv.rs crates/sparse/src/spvec.rs crates/sparse/src/transpose.rs crates/sparse/src/triangular.rs Cargo.toml

/root/repo/target/release/deps/libsparse-4092e0531cb1c7d2.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/dcsr.rs crates/sparse/src/degree.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ewise.rs crates/sparse/src/index.rs crates/sparse/src/io.rs crates/sparse/src/permute.rs crates/sparse/src/reduce.rs crates/sparse/src/semiring.rs crates/sparse/src/spmv.rs crates/sparse/src/spvec.rs crates/sparse/src/transpose.rs crates/sparse/src/triangular.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dcsr.rs:
crates/sparse/src/degree.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/ewise.rs:
crates/sparse/src/index.rs:
crates/sparse/src/io.rs:
crates/sparse/src/permute.rs:
crates/sparse/src/reduce.rs:
crates/sparse/src/semiring.rs:
crates/sparse/src/spmv.rs:
crates/sparse/src/spvec.rs:
crates/sparse/src/transpose.rs:
crates/sparse/src/triangular.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
