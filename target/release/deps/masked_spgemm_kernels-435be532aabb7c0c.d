/root/repo/target/release/deps/masked_spgemm_kernels-435be532aabb7c0c.d: crates/bench/benches/masked_spgemm_kernels.rs Cargo.toml

/root/repo/target/release/deps/libmasked_spgemm_kernels-435be532aabb7c0c.rmeta: crates/bench/benches/masked_spgemm_kernels.rs Cargo.toml

crates/bench/benches/masked_spgemm_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
