/root/repo/target/release/deps/proptest_accumulators-315404020aab4f30.d: crates/core/tests/proptest_accumulators.rs

/root/repo/target/release/deps/proptest_accumulators-315404020aab4f30: crates/core/tests/proptest_accumulators.rs

crates/core/tests/proptest_accumulators.rs:
