/root/repo/target/release/deps/fig12_ktruss_profiles-04beaf1cebeaf1de.d: crates/bench/src/bin/fig12_ktruss_profiles.rs

/root/repo/target/release/deps/fig12_ktruss_profiles-04beaf1cebeaf1de: crates/bench/src/bin/fig12_ktruss_profiles.rs

crates/bench/src/bin/fig12_ktruss_profiles.rs:
