/root/repo/target/release/deps/engine_context-890f79078be818e9.d: crates/integration/../../tests/engine_context.rs Cargo.toml

/root/repo/target/release/deps/libengine_context-890f79078be818e9.rmeta: crates/integration/../../tests/engine_context.rs Cargo.toml

crates/integration/../../tests/engine_context.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
