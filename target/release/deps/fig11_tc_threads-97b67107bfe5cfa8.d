/root/repo/target/release/deps/fig11_tc_threads-97b67107bfe5cfa8.d: crates/bench/src/bin/fig11_tc_threads.rs Cargo.toml

/root/repo/target/release/deps/libfig11_tc_threads-97b67107bfe5cfa8.rmeta: crates/bench/src/bin/fig11_tc_threads.rs Cargo.toml

crates/bench/src/bin/fig11_tc_threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
