/root/repo/target/release/deps/fig14_ktruss_scale-1902747f080bfb40.d: crates/bench/src/bin/fig14_ktruss_scale.rs

/root/repo/target/release/deps/fig14_ktruss_scale-1902747f080bfb40: crates/bench/src/bin/fig14_ktruss_scale.rs

crates/bench/src/bin/fig14_ktruss_scale.rs:
