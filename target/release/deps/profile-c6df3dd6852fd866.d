/root/repo/target/release/deps/profile-c6df3dd6852fd866.d: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

/root/repo/target/release/deps/profile-c6df3dd6852fd866: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

crates/profile/src/lib.rs:
crates/profile/src/ascii.rs:
crates/profile/src/perf_profile.rs:
crates/profile/src/table.rs:
crates/profile/src/timer.rs:
