/root/repo/target/release/deps/fig10_tc_scale-7943c7af3a627cbc.d: crates/bench/src/bin/fig10_tc_scale.rs Cargo.toml

/root/repo/target/release/deps/libfig10_tc_scale-7943c7af3a627cbc.rmeta: crates/bench/src/bin/fig10_tc_scale.rs Cargo.toml

crates/bench/src/bin/fig10_tc_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
