/root/repo/target/release/deps/integration-013977c0fcd30810.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-013977c0fcd30810.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-013977c0fcd30810.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
