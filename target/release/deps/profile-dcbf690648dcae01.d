/root/repo/target/release/deps/profile-dcbf690648dcae01.d: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs Cargo.toml

/root/repo/target/release/deps/libprofile-dcbf690648dcae01.rmeta: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs Cargo.toml

crates/profile/src/lib.rs:
crates/profile/src/ascii.rs:
crates/profile/src/perf_profile.rs:
crates/profile/src/table.rs:
crates/profile/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
