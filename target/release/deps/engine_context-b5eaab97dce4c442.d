/root/repo/target/release/deps/engine_context-b5eaab97dce4c442.d: crates/integration/../../tests/engine_context.rs

/root/repo/target/release/deps/engine_context-b5eaab97dce4c442: crates/integration/../../tests/engine_context.rs

crates/integration/../../tests/engine_context.rs:
