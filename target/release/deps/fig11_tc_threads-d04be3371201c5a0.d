/root/repo/target/release/deps/fig11_tc_threads-d04be3371201c5a0.d: crates/bench/src/bin/fig11_tc_threads.rs

/root/repo/target/release/deps/fig11_tc_threads-d04be3371201c5a0: crates/bench/src/bin/fig11_tc_threads.rs

crates/bench/src/bin/fig11_tc_threads.rs:
