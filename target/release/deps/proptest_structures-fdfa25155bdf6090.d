/root/repo/target/release/deps/proptest_structures-fdfa25155bdf6090.d: crates/sparse/tests/proptest_structures.rs

/root/repo/target/release/deps/proptest_structures-fdfa25155bdf6090: crates/sparse/tests/proptest_structures.rs

crates/sparse/tests/proptest_structures.rs:
