/root/repo/target/release/deps/engine_repeat-4248b4862faed030.d: crates/bench/src/bin/engine_repeat.rs

/root/repo/target/release/deps/engine_repeat-4248b4862faed030: crates/bench/src/bin/engine_repeat.rs

crates/bench/src/bin/engine_repeat.rs:
