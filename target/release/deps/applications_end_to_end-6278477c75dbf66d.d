/root/repo/target/release/deps/applications_end_to_end-6278477c75dbf66d.d: crates/integration/../../tests/applications_end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libapplications_end_to_end-6278477c75dbf66d.rmeta: crates/integration/../../tests/applications_end_to_end.rs Cargo.toml

crates/integration/../../tests/applications_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
