/root/repo/target/release/deps/fig10_tc_scale-e1ace376fd7b2bf2.d: crates/bench/src/bin/fig10_tc_scale.rs

/root/repo/target/release/deps/fig10_tc_scale-e1ace376fd7b2bf2: crates/bench/src/bin/fig10_tc_scale.rs

crates/bench/src/bin/fig10_tc_scale.rs:
