/root/repo/target/release/deps/driver_stress-69e9580023681a83.d: crates/core/tests/driver_stress.rs Cargo.toml

/root/repo/target/release/deps/libdriver_stress-69e9580023681a83.rmeta: crates/core/tests/driver_stress.rs Cargo.toml

crates/core/tests/driver_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
