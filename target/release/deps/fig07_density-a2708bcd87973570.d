/root/repo/target/release/deps/fig07_density-a2708bcd87973570.d: crates/bench/src/bin/fig07_density.rs

/root/repo/target/release/deps/fig07_density-a2708bcd87973570: crates/bench/src/bin/fig07_density.rs

crates/bench/src/bin/fig07_density.rs:
