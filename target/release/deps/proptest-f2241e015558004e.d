/root/repo/target/release/deps/proptest-f2241e015558004e.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs

/root/repo/target/release/deps/proptest-f2241e015558004e: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
