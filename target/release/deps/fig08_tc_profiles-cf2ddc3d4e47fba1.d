/root/repo/target/release/deps/fig08_tc_profiles-cf2ddc3d4e47fba1.d: crates/bench/src/bin/fig08_tc_profiles.rs Cargo.toml

/root/repo/target/release/deps/libfig08_tc_profiles-cf2ddc3d4e47fba1.rmeta: crates/bench/src/bin/fig08_tc_profiles.rs Cargo.toml

crates/bench/src/bin/fig08_tc_profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
