/root/repo/target/release/deps/integration-95ffb0c17e06017e.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/integration-95ffb0c17e06017e: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
