/root/repo/target/release/deps/rand-74bf9524d55b5287.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-74bf9524d55b5287.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-74bf9524d55b5287.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
