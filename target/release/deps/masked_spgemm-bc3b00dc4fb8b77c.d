/root/repo/target/release/deps/masked_spgemm-bc3b00dc4fb8b77c.d: crates/core/src/lib.rs crates/core/src/accum/mod.rs crates/core/src/accum/hash.rs crates/core/src/accum/mca.rs crates/core/src/accum/msa.rs crates/core/src/algos/mod.rs crates/core/src/algos/hash.rs crates/core/src/algos/heap.rs crates/core/src/algos/inner.rs crates/core/src/algos/mca.rs crates/core/src/algos/msa.rs crates/core/src/api.rs crates/core/src/dcsr_exec.rs crates/core/src/estimate.rs crates/core/src/exec.rs crates/core/src/hybrid.rs crates/core/src/kernel.rs crates/core/src/scratch.rs crates/core/src/spgevm.rs Cargo.toml

/root/repo/target/release/deps/libmasked_spgemm-bc3b00dc4fb8b77c.rmeta: crates/core/src/lib.rs crates/core/src/accum/mod.rs crates/core/src/accum/hash.rs crates/core/src/accum/mca.rs crates/core/src/accum/msa.rs crates/core/src/algos/mod.rs crates/core/src/algos/hash.rs crates/core/src/algos/heap.rs crates/core/src/algos/inner.rs crates/core/src/algos/mca.rs crates/core/src/algos/msa.rs crates/core/src/api.rs crates/core/src/dcsr_exec.rs crates/core/src/estimate.rs crates/core/src/exec.rs crates/core/src/hybrid.rs crates/core/src/kernel.rs crates/core/src/scratch.rs crates/core/src/spgevm.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accum/mod.rs:
crates/core/src/accum/hash.rs:
crates/core/src/accum/mca.rs:
crates/core/src/accum/msa.rs:
crates/core/src/algos/mod.rs:
crates/core/src/algos/hash.rs:
crates/core/src/algos/heap.rs:
crates/core/src/algos/inner.rs:
crates/core/src/algos/mca.rs:
crates/core/src/algos/msa.rs:
crates/core/src/api.rs:
crates/core/src/dcsr_exec.rs:
crates/core/src/estimate.rs:
crates/core/src/exec.rs:
crates/core/src/hybrid.rs:
crates/core/src/kernel.rs:
crates/core/src/scratch.rs:
crates/core/src/spgevm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
