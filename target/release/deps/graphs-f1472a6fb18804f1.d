/root/repo/target/release/deps/graphs-f1472a6fb18804f1.d: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs Cargo.toml

/root/repo/target/release/deps/libgraphs-f1472a6fb18804f1.rmeta: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs Cargo.toml

crates/graphs/src/lib.rs:
crates/graphs/src/erdos_renyi.rs:
crates/graphs/src/rmat.rs:
crates/graphs/src/stats.rs:
crates/graphs/src/structured.rs:
crates/graphs/src/suite.rs:
crates/graphs/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
