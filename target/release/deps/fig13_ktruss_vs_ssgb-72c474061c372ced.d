/root/repo/target/release/deps/fig13_ktruss_vs_ssgb-72c474061c372ced.d: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs Cargo.toml

/root/repo/target/release/deps/libfig13_ktruss_vs_ssgb-72c474061c372ced.rmeta: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs Cargo.toml

crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
