/root/repo/target/release/deps/fig07_density-73f613682219341d.d: crates/bench/src/bin/fig07_density.rs

/root/repo/target/release/deps/fig07_density-73f613682219341d: crates/bench/src/bin/fig07_density.rs

crates/bench/src/bin/fig07_density.rs:
