/root/repo/target/release/deps/fig07_density-aafeeb09dd473598.d: crates/bench/src/bin/fig07_density.rs Cargo.toml

/root/repo/target/release/deps/libfig07_density-aafeeb09dd473598.rmeta: crates/bench/src/bin/fig07_density.rs Cargo.toml

crates/bench/src/bin/fig07_density.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
