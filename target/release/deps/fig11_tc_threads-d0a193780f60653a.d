/root/repo/target/release/deps/fig11_tc_threads-d0a193780f60653a.d: crates/bench/src/bin/fig11_tc_threads.rs Cargo.toml

/root/repo/target/release/deps/libfig11_tc_threads-d0a193780f60653a.rmeta: crates/bench/src/bin/fig11_tc_threads.rs Cargo.toml

crates/bench/src/bin/fig11_tc_threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
