/root/repo/target/release/deps/fig15_bc_scale-0c5c02d17ab23233.d: crates/bench/src/bin/fig15_bc_scale.rs

/root/repo/target/release/deps/fig15_bc_scale-0c5c02d17ab23233: crates/bench/src/bin/fig15_bc_scale.rs

crates/bench/src/bin/fig15_bc_scale.rs:
