/root/repo/target/release/deps/io_and_suite-717e2b213ab0ca2d.d: crates/integration/../../tests/io_and_suite.rs

/root/repo/target/release/deps/io_and_suite-717e2b213ab0ca2d: crates/integration/../../tests/io_and_suite.rs

crates/integration/../../tests/io_and_suite.rs:
