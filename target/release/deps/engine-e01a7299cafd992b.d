/root/repo/target/release/deps/engine-e01a7299cafd992b.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

/root/repo/target/release/deps/libengine-e01a7299cafd992b.rlib: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

/root/repo/target/release/deps/libengine-e01a7299cafd992b.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/calibrate.rs:
crates/engine/src/context.rs:
crates/engine/src/plan.rs:
