/root/repo/target/release/deps/rayon-8c04f7476fb2b0ed.d: crates/shims/rayon/src/lib.rs crates/shims/rayon/src/iter.rs Cargo.toml

/root/repo/target/release/deps/librayon-8c04f7476fb2b0ed.rmeta: crates/shims/rayon/src/lib.rs crates/shims/rayon/src/iter.rs Cargo.toml

crates/shims/rayon/src/lib.rs:
crates/shims/rayon/src/iter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
