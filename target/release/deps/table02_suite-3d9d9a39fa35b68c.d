/root/repo/target/release/deps/table02_suite-3d9d9a39fa35b68c.d: crates/bench/src/bin/table02_suite.rs Cargo.toml

/root/repo/target/release/deps/libtable02_suite-3d9d9a39fa35b68c.rmeta: crates/bench/src/bin/table02_suite.rs Cargo.toml

crates/bench/src/bin/table02_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
