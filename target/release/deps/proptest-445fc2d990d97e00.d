/root/repo/target/release/deps/proptest-445fc2d990d97e00.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-445fc2d990d97e00.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-445fc2d990d97e00.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
