/root/repo/target/release/deps/fig12_ktruss_profiles-9896106ab7f5b94c.d: crates/bench/src/bin/fig12_ktruss_profiles.rs Cargo.toml

/root/repo/target/release/deps/libfig12_ktruss_profiles-9896106ab7f5b94c.rmeta: crates/bench/src/bin/fig12_ktruss_profiles.rs Cargo.toml

crates/bench/src/bin/fig12_ktruss_profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
