/root/repo/target/release/deps/fig14_ktruss_scale-ba3fa1ee7223ec63.d: crates/bench/src/bin/fig14_ktruss_scale.rs Cargo.toml

/root/repo/target/release/deps/libfig14_ktruss_scale-ba3fa1ee7223ec63.rmeta: crates/bench/src/bin/fig14_ktruss_scale.rs Cargo.toml

crates/bench/src/bin/fig14_ktruss_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
