/root/repo/target/release/deps/bench-45247568b9c8a64b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-45247568b9c8a64b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
