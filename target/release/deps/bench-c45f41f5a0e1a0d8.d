/root/repo/target/release/deps/bench-c45f41f5a0e1a0d8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbench-c45f41f5a0e1a0d8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
