/root/repo/target/release/deps/criterion-5f803fb97779bca3.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-5f803fb97779bca3.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
