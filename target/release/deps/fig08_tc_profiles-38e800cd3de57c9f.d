/root/repo/target/release/deps/fig08_tc_profiles-38e800cd3de57c9f.d: crates/bench/src/bin/fig08_tc_profiles.rs

/root/repo/target/release/deps/fig08_tc_profiles-38e800cd3de57c9f: crates/bench/src/bin/fig08_tc_profiles.rs

crates/bench/src/bin/fig08_tc_profiles.rs:
