/root/repo/target/release/deps/rand-1e1eb23e4cbc5a3b.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-1e1eb23e4cbc5a3b: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
