/root/repo/target/release/deps/fig12_ktruss_profiles-4f854f87818a28d5.d: crates/bench/src/bin/fig12_ktruss_profiles.rs

/root/repo/target/release/deps/fig12_ktruss_profiles-4f854f87818a28d5: crates/bench/src/bin/fig12_ktruss_profiles.rs

crates/bench/src/bin/fig12_ktruss_profiles.rs:
