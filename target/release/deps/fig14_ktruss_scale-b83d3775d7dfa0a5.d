/root/repo/target/release/deps/fig14_ktruss_scale-b83d3775d7dfa0a5.d: crates/bench/src/bin/fig14_ktruss_scale.rs Cargo.toml

/root/repo/target/release/deps/libfig14_ktruss_scale-b83d3775d7dfa0a5.rmeta: crates/bench/src/bin/fig14_ktruss_scale.rs Cargo.toml

crates/bench/src/bin/fig14_ktruss_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
