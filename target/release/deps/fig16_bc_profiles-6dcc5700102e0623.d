/root/repo/target/release/deps/fig16_bc_profiles-6dcc5700102e0623.d: crates/bench/src/bin/fig16_bc_profiles.rs

/root/repo/target/release/deps/fig16_bc_profiles-6dcc5700102e0623: crates/bench/src/bin/fig16_bc_profiles.rs

crates/bench/src/bin/fig16_bc_profiles.rs:
