/root/repo/target/release/deps/cross_algorithm_equivalence-a7d7d2540b14133f.d: crates/integration/../../tests/cross_algorithm_equivalence.rs

/root/repo/target/release/deps/cross_algorithm_equivalence-a7d7d2540b14133f: crates/integration/../../tests/cross_algorithm_equivalence.rs

crates/integration/../../tests/cross_algorithm_equivalence.rs:
