/root/repo/target/release/deps/engine_repeat-b07d40fa33cef44b.d: crates/bench/src/bin/engine_repeat.rs

/root/repo/target/release/deps/engine_repeat-b07d40fa33cef44b: crates/bench/src/bin/engine_repeat.rs

crates/bench/src/bin/engine_repeat.rs:
