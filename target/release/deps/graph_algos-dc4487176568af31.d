/root/repo/target/release/deps/graph_algos-dc4487176568af31.d: crates/graph-algos/src/lib.rs crates/graph-algos/src/auto.rs crates/graph-algos/src/bc.rs crates/graph-algos/src/bfs.rs crates/graph-algos/src/ktruss.rs crates/graph-algos/src/reference.rs crates/graph-algos/src/scheme.rs crates/graph-algos/src/similarity.rs crates/graph-algos/src/triangle.rs

/root/repo/target/release/deps/graph_algos-dc4487176568af31: crates/graph-algos/src/lib.rs crates/graph-algos/src/auto.rs crates/graph-algos/src/bc.rs crates/graph-algos/src/bfs.rs crates/graph-algos/src/ktruss.rs crates/graph-algos/src/reference.rs crates/graph-algos/src/scheme.rs crates/graph-algos/src/similarity.rs crates/graph-algos/src/triangle.rs

crates/graph-algos/src/lib.rs:
crates/graph-algos/src/auto.rs:
crates/graph-algos/src/bc.rs:
crates/graph-algos/src/bfs.rs:
crates/graph-algos/src/ktruss.rs:
crates/graph-algos/src/reference.rs:
crates/graph-algos/src/scheme.rs:
crates/graph-algos/src/similarity.rs:
crates/graph-algos/src/triangle.rs:
