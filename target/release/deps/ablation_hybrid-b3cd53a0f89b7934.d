/root/repo/target/release/deps/ablation_hybrid-b3cd53a0f89b7934.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/release/deps/ablation_hybrid-b3cd53a0f89b7934: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
