/root/repo/target/release/deps/io_and_suite-1e8f24d297bb67e2.d: crates/integration/../../tests/io_and_suite.rs Cargo.toml

/root/repo/target/release/deps/libio_and_suite-1e8f24d297bb67e2.rmeta: crates/integration/../../tests/io_and_suite.rs Cargo.toml

crates/integration/../../tests/io_and_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
