/root/repo/target/release/deps/bench-3c63dc75bdaf11c8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-3c63dc75bdaf11c8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-3c63dc75bdaf11c8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
