/root/repo/target/release/deps/fig13_ktruss_vs_ssgb-54d32cdcae6dbd10.d: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs

/root/repo/target/release/deps/fig13_ktruss_vs_ssgb-54d32cdcae6dbd10: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs

crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs:
