/root/repo/target/release/deps/criterion-b03ba82225abea43.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-b03ba82225abea43: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
