/root/repo/target/release/deps/fig08_tc_profiles-b3a34d4de7f0691d.d: crates/bench/src/bin/fig08_tc_profiles.rs

/root/repo/target/release/deps/fig08_tc_profiles-b3a34d4de7f0691d: crates/bench/src/bin/fig08_tc_profiles.rs

crates/bench/src/bin/fig08_tc_profiles.rs:
