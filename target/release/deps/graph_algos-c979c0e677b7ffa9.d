/root/repo/target/release/deps/graph_algos-c979c0e677b7ffa9.d: crates/graph-algos/src/lib.rs crates/graph-algos/src/auto.rs crates/graph-algos/src/bc.rs crates/graph-algos/src/bfs.rs crates/graph-algos/src/ktruss.rs crates/graph-algos/src/reference.rs crates/graph-algos/src/scheme.rs crates/graph-algos/src/similarity.rs crates/graph-algos/src/triangle.rs Cargo.toml

/root/repo/target/release/deps/libgraph_algos-c979c0e677b7ffa9.rmeta: crates/graph-algos/src/lib.rs crates/graph-algos/src/auto.rs crates/graph-algos/src/bc.rs crates/graph-algos/src/bfs.rs crates/graph-algos/src/ktruss.rs crates/graph-algos/src/reference.rs crates/graph-algos/src/scheme.rs crates/graph-algos/src/similarity.rs crates/graph-algos/src/triangle.rs Cargo.toml

crates/graph-algos/src/lib.rs:
crates/graph-algos/src/auto.rs:
crates/graph-algos/src/bc.rs:
crates/graph-algos/src/bfs.rs:
crates/graph-algos/src/ktruss.rs:
crates/graph-algos/src/reference.rs:
crates/graph-algos/src/scheme.rs:
crates/graph-algos/src/similarity.rs:
crates/graph-algos/src/triangle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
