/root/repo/target/release/deps/profile-f64538924d3f5b94.d: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

/root/repo/target/release/deps/libprofile-f64538924d3f5b94.rlib: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

/root/repo/target/release/deps/libprofile-f64538924d3f5b94.rmeta: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

crates/profile/src/lib.rs:
crates/profile/src/ascii.rs:
crates/profile/src/perf_profile.rs:
crates/profile/src/table.rs:
crates/profile/src/timer.rs:
