/root/repo/target/release/deps/fig09_tc_vs_ssgb-3980100965629e2c.d: crates/bench/src/bin/fig09_tc_vs_ssgb.rs Cargo.toml

/root/repo/target/release/deps/libfig09_tc_vs_ssgb-3980100965629e2c.rmeta: crates/bench/src/bin/fig09_tc_vs_ssgb.rs Cargo.toml

crates/bench/src/bin/fig09_tc_vs_ssgb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
