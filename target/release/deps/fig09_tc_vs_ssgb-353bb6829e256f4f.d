/root/repo/target/release/deps/fig09_tc_vs_ssgb-353bb6829e256f4f.d: crates/bench/src/bin/fig09_tc_vs_ssgb.rs

/root/repo/target/release/deps/fig09_tc_vs_ssgb-353bb6829e256f4f: crates/bench/src/bin/fig09_tc_vs_ssgb.rs

crates/bench/src/bin/fig09_tc_vs_ssgb.rs:
