/root/repo/target/release/deps/bench-e8e4dd5ed9faaf3c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbench-e8e4dd5ed9faaf3c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
