/root/repo/target/release/deps/extensions-060a1c465256e6a8.d: crates/integration/../../tests/extensions.rs

/root/repo/target/release/deps/extensions-060a1c465256e6a8: crates/integration/../../tests/extensions.rs

crates/integration/../../tests/extensions.rs:
