/root/repo/target/release/deps/rand-8df6450b65b9c335.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-8df6450b65b9c335.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
