/root/repo/target/release/deps/baselines-47d980574069329b.d: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs Cargo.toml

/root/repo/target/release/deps/libbaselines-47d980574069329b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/plain.rs:
crates/baselines/src/ssdot.rs:
crates/baselines/src/sssaxpy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
