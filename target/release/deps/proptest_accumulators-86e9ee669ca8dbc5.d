/root/repo/target/release/deps/proptest_accumulators-86e9ee669ca8dbc5.d: crates/core/tests/proptest_accumulators.rs Cargo.toml

/root/repo/target/release/deps/libproptest_accumulators-86e9ee669ca8dbc5.rmeta: crates/core/tests/proptest_accumulators.rs Cargo.toml

crates/core/tests/proptest_accumulators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
