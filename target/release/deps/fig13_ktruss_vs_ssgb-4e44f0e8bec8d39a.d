/root/repo/target/release/deps/fig13_ktruss_vs_ssgb-4e44f0e8bec8d39a.d: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs Cargo.toml

/root/repo/target/release/deps/libfig13_ktruss_vs_ssgb-4e44f0e8bec8d39a.rmeta: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs Cargo.toml

crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
