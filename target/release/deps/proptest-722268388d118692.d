/root/repo/target/release/deps/proptest-722268388d118692.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs Cargo.toml

/root/repo/target/release/deps/libproptest-722268388d118692.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
