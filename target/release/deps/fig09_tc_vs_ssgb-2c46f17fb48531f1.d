/root/repo/target/release/deps/fig09_tc_vs_ssgb-2c46f17fb48531f1.d: crates/bench/src/bin/fig09_tc_vs_ssgb.rs Cargo.toml

/root/repo/target/release/deps/libfig09_tc_vs_ssgb-2c46f17fb48531f1.rmeta: crates/bench/src/bin/fig09_tc_vs_ssgb.rs Cargo.toml

crates/bench/src/bin/fig09_tc_vs_ssgb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
