/root/repo/target/release/deps/proptest_structures-4e99ef8be8249eb1.d: crates/sparse/tests/proptest_structures.rs Cargo.toml

/root/repo/target/release/deps/libproptest_structures-4e99ef8be8249eb1.rmeta: crates/sparse/tests/proptest_structures.rs Cargo.toml

crates/sparse/tests/proptest_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
