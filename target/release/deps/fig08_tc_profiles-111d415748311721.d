/root/repo/target/release/deps/fig08_tc_profiles-111d415748311721.d: crates/bench/src/bin/fig08_tc_profiles.rs Cargo.toml

/root/repo/target/release/deps/libfig08_tc_profiles-111d415748311721.rmeta: crates/bench/src/bin/fig08_tc_profiles.rs Cargo.toml

crates/bench/src/bin/fig08_tc_profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
