/root/repo/target/release/deps/table02_suite-b9a6ea5a8bdcf015.d: crates/bench/src/bin/table02_suite.rs

/root/repo/target/release/deps/table02_suite-b9a6ea5a8bdcf015: crates/bench/src/bin/table02_suite.rs

crates/bench/src/bin/table02_suite.rs:
