/root/repo/target/release/deps/driver_stress-b960e0f13f5c405d.d: crates/core/tests/driver_stress.rs

/root/repo/target/release/deps/driver_stress-b960e0f13f5c405d: crates/core/tests/driver_stress.rs

crates/core/tests/driver_stress.rs:
