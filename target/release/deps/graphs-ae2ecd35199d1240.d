/root/repo/target/release/deps/graphs-ae2ecd35199d1240.d: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

/root/repo/target/release/deps/graphs-ae2ecd35199d1240: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

crates/graphs/src/lib.rs:
crates/graphs/src/erdos_renyi.rs:
crates/graphs/src/rmat.rs:
crates/graphs/src/stats.rs:
crates/graphs/src/structured.rs:
crates/graphs/src/suite.rs:
crates/graphs/src/util.rs:
