/root/repo/target/release/deps/fig15_bc_scale-07ff4696451aeca5.d: crates/bench/src/bin/fig15_bc_scale.rs

/root/repo/target/release/deps/fig15_bc_scale-07ff4696451aeca5: crates/bench/src/bin/fig15_bc_scale.rs

crates/bench/src/bin/fig15_bc_scale.rs:
