/root/repo/target/release/deps/fig15_bc_scale-624dae7a2c8bcd7b.d: crates/bench/src/bin/fig15_bc_scale.rs Cargo.toml

/root/repo/target/release/deps/libfig15_bc_scale-624dae7a2c8bcd7b.rmeta: crates/bench/src/bin/fig15_bc_scale.rs Cargo.toml

crates/bench/src/bin/fig15_bc_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
