/root/repo/target/release/deps/fig10_tc_scale-57644d6a943fb03f.d: crates/bench/src/bin/fig10_tc_scale.rs

/root/repo/target/release/deps/fig10_tc_scale-57644d6a943fb03f: crates/bench/src/bin/fig10_tc_scale.rs

crates/bench/src/bin/fig10_tc_scale.rs:
