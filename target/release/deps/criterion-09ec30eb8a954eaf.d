/root/repo/target/release/deps/criterion-09ec30eb8a954eaf.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-09ec30eb8a954eaf.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-09ec30eb8a954eaf.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
