/root/repo/target/release/deps/property_masked_spgemm-d4c244741f7de112.d: crates/integration/../../tests/property_masked_spgemm.rs Cargo.toml

/root/repo/target/release/deps/libproperty_masked_spgemm-d4c244741f7de112.rmeta: crates/integration/../../tests/property_masked_spgemm.rs Cargo.toml

crates/integration/../../tests/property_masked_spgemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
