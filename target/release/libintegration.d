/root/repo/target/release/libintegration.rlib: /root/repo/crates/integration/src/lib.rs
