/root/repo/target/release/librayon.rlib: /root/repo/crates/shims/rayon/src/iter.rs /root/repo/crates/shims/rayon/src/lib.rs
