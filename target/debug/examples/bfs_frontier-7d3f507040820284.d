/root/repo/target/debug/examples/bfs_frontier-7d3f507040820284.d: crates/integration/../../examples/bfs_frontier.rs

/root/repo/target/debug/examples/bfs_frontier-7d3f507040820284: crates/integration/../../examples/bfs_frontier.rs

crates/integration/../../examples/bfs_frontier.rs:
