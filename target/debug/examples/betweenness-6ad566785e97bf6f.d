/root/repo/target/debug/examples/betweenness-6ad566785e97bf6f.d: crates/integration/../../examples/betweenness.rs

/root/repo/target/debug/examples/betweenness-6ad566785e97bf6f: crates/integration/../../examples/betweenness.rs

crates/integration/../../examples/betweenness.rs:
