/root/repo/target/debug/examples/similarity_join-5e8267a5e79aacf5.d: crates/integration/../../examples/similarity_join.rs

/root/repo/target/debug/examples/similarity_join-5e8267a5e79aacf5: crates/integration/../../examples/similarity_join.rs

crates/integration/../../examples/similarity_join.rs:
