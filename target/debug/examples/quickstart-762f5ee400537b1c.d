/root/repo/target/debug/examples/quickstart-762f5ee400537b1c.d: crates/integration/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-762f5ee400537b1c: crates/integration/../../examples/quickstart.rs

crates/integration/../../examples/quickstart.rs:
