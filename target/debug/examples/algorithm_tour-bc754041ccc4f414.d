/root/repo/target/debug/examples/algorithm_tour-bc754041ccc4f414.d: crates/integration/../../examples/algorithm_tour.rs

/root/repo/target/debug/examples/algorithm_tour-bc754041ccc4f414: crates/integration/../../examples/algorithm_tour.rs

crates/integration/../../examples/algorithm_tour.rs:
