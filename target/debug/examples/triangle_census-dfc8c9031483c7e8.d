/root/repo/target/debug/examples/triangle_census-dfc8c9031483c7e8.d: crates/integration/../../examples/triangle_census.rs

/root/repo/target/debug/examples/triangle_census-dfc8c9031483c7e8: crates/integration/../../examples/triangle_census.rs

crates/integration/../../examples/triangle_census.rs:
