/root/repo/target/debug/examples/ktruss_peeling-3fd1596cabecaaf9.d: crates/integration/../../examples/ktruss_peeling.rs

/root/repo/target/debug/examples/ktruss_peeling-3fd1596cabecaaf9: crates/integration/../../examples/ktruss_peeling.rs

crates/integration/../../examples/ktruss_peeling.rs:
