/root/repo/target/debug/deps/fig11_tc_threads-b5ce14cc8b798ceb.d: crates/bench/src/bin/fig11_tc_threads.rs

/root/repo/target/debug/deps/fig11_tc_threads-b5ce14cc8b798ceb: crates/bench/src/bin/fig11_tc_threads.rs

crates/bench/src/bin/fig11_tc_threads.rs:
