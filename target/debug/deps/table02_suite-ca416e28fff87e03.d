/root/repo/target/debug/deps/table02_suite-ca416e28fff87e03.d: crates/bench/src/bin/table02_suite.rs

/root/repo/target/debug/deps/table02_suite-ca416e28fff87e03: crates/bench/src/bin/table02_suite.rs

crates/bench/src/bin/table02_suite.rs:
