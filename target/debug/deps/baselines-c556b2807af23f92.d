/root/repo/target/debug/deps/baselines-c556b2807af23f92.d: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

/root/repo/target/debug/deps/libbaselines-c556b2807af23f92.rlib: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

/root/repo/target/debug/deps/libbaselines-c556b2807af23f92.rmeta: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

crates/baselines/src/lib.rs:
crates/baselines/src/plain.rs:
crates/baselines/src/ssdot.rs:
crates/baselines/src/sssaxpy.rs:
