/root/repo/target/debug/deps/fig16_bc_profiles-759f41726e11b7bc.d: crates/bench/src/bin/fig16_bc_profiles.rs

/root/repo/target/debug/deps/fig16_bc_profiles-759f41726e11b7bc: crates/bench/src/bin/fig16_bc_profiles.rs

crates/bench/src/bin/fig16_bc_profiles.rs:
