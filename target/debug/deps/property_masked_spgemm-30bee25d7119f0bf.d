/root/repo/target/debug/deps/property_masked_spgemm-30bee25d7119f0bf.d: crates/integration/../../tests/property_masked_spgemm.rs

/root/repo/target/debug/deps/property_masked_spgemm-30bee25d7119f0bf: crates/integration/../../tests/property_masked_spgemm.rs

crates/integration/../../tests/property_masked_spgemm.rs:
