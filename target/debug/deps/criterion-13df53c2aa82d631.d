/root/repo/target/debug/deps/criterion-13df53c2aa82d631.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-13df53c2aa82d631: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
