/root/repo/target/debug/deps/integration-983aed7896cbbb29.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-983aed7896cbbb29.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-983aed7896cbbb29.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
