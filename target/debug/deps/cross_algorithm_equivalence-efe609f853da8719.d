/root/repo/target/debug/deps/cross_algorithm_equivalence-efe609f853da8719.d: crates/integration/../../tests/cross_algorithm_equivalence.rs

/root/repo/target/debug/deps/cross_algorithm_equivalence-efe609f853da8719: crates/integration/../../tests/cross_algorithm_equivalence.rs

crates/integration/../../tests/cross_algorithm_equivalence.rs:
