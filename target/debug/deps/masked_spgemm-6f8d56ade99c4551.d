/root/repo/target/debug/deps/masked_spgemm-6f8d56ade99c4551.d: crates/core/src/lib.rs crates/core/src/accum/mod.rs crates/core/src/accum/hash.rs crates/core/src/accum/mca.rs crates/core/src/accum/msa.rs crates/core/src/algos/mod.rs crates/core/src/algos/hash.rs crates/core/src/algos/heap.rs crates/core/src/algos/inner.rs crates/core/src/algos/mca.rs crates/core/src/algos/msa.rs crates/core/src/api.rs crates/core/src/dcsr_exec.rs crates/core/src/estimate.rs crates/core/src/exec.rs crates/core/src/hybrid.rs crates/core/src/kernel.rs crates/core/src/scratch.rs crates/core/src/spgevm.rs

/root/repo/target/debug/deps/masked_spgemm-6f8d56ade99c4551: crates/core/src/lib.rs crates/core/src/accum/mod.rs crates/core/src/accum/hash.rs crates/core/src/accum/mca.rs crates/core/src/accum/msa.rs crates/core/src/algos/mod.rs crates/core/src/algos/hash.rs crates/core/src/algos/heap.rs crates/core/src/algos/inner.rs crates/core/src/algos/mca.rs crates/core/src/algos/msa.rs crates/core/src/api.rs crates/core/src/dcsr_exec.rs crates/core/src/estimate.rs crates/core/src/exec.rs crates/core/src/hybrid.rs crates/core/src/kernel.rs crates/core/src/scratch.rs crates/core/src/spgevm.rs

crates/core/src/lib.rs:
crates/core/src/accum/mod.rs:
crates/core/src/accum/hash.rs:
crates/core/src/accum/mca.rs:
crates/core/src/accum/msa.rs:
crates/core/src/algos/mod.rs:
crates/core/src/algos/hash.rs:
crates/core/src/algos/heap.rs:
crates/core/src/algos/inner.rs:
crates/core/src/algos/mca.rs:
crates/core/src/algos/msa.rs:
crates/core/src/api.rs:
crates/core/src/dcsr_exec.rs:
crates/core/src/estimate.rs:
crates/core/src/exec.rs:
crates/core/src/hybrid.rs:
crates/core/src/kernel.rs:
crates/core/src/scratch.rs:
crates/core/src/spgevm.rs:
