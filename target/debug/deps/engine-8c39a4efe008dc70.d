/root/repo/target/debug/deps/engine-8c39a4efe008dc70.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

/root/repo/target/debug/deps/engine-8c39a4efe008dc70: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/calibrate.rs:
crates/engine/src/context.rs:
crates/engine/src/plan.rs:
