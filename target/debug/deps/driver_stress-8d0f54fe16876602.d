/root/repo/target/debug/deps/driver_stress-8d0f54fe16876602.d: crates/core/tests/driver_stress.rs

/root/repo/target/debug/deps/driver_stress-8d0f54fe16876602: crates/core/tests/driver_stress.rs

crates/core/tests/driver_stress.rs:
