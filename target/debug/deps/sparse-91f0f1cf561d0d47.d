/root/repo/target/debug/deps/sparse-91f0f1cf561d0d47.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/dcsr.rs crates/sparse/src/degree.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ewise.rs crates/sparse/src/index.rs crates/sparse/src/io.rs crates/sparse/src/permute.rs crates/sparse/src/reduce.rs crates/sparse/src/semiring.rs crates/sparse/src/spmv.rs crates/sparse/src/spvec.rs crates/sparse/src/transpose.rs crates/sparse/src/triangular.rs

/root/repo/target/debug/deps/libsparse-91f0f1cf561d0d47.rlib: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/dcsr.rs crates/sparse/src/degree.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ewise.rs crates/sparse/src/index.rs crates/sparse/src/io.rs crates/sparse/src/permute.rs crates/sparse/src/reduce.rs crates/sparse/src/semiring.rs crates/sparse/src/spmv.rs crates/sparse/src/spvec.rs crates/sparse/src/transpose.rs crates/sparse/src/triangular.rs

/root/repo/target/debug/deps/libsparse-91f0f1cf561d0d47.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/dcsr.rs crates/sparse/src/degree.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ewise.rs crates/sparse/src/index.rs crates/sparse/src/io.rs crates/sparse/src/permute.rs crates/sparse/src/reduce.rs crates/sparse/src/semiring.rs crates/sparse/src/spmv.rs crates/sparse/src/spvec.rs crates/sparse/src/transpose.rs crates/sparse/src/triangular.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dcsr.rs:
crates/sparse/src/degree.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/ewise.rs:
crates/sparse/src/index.rs:
crates/sparse/src/io.rs:
crates/sparse/src/permute.rs:
crates/sparse/src/reduce.rs:
crates/sparse/src/semiring.rs:
crates/sparse/src/spmv.rs:
crates/sparse/src/spvec.rs:
crates/sparse/src/transpose.rs:
crates/sparse/src/triangular.rs:
