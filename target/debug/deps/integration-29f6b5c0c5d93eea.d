/root/repo/target/debug/deps/integration-29f6b5c0c5d93eea.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/integration-29f6b5c0c5d93eea: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
