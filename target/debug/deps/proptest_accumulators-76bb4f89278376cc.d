/root/repo/target/debug/deps/proptest_accumulators-76bb4f89278376cc.d: crates/core/tests/proptest_accumulators.rs

/root/repo/target/debug/deps/proptest_accumulators-76bb4f89278376cc: crates/core/tests/proptest_accumulators.rs

crates/core/tests/proptest_accumulators.rs:
