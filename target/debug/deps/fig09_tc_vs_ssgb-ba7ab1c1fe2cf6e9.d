/root/repo/target/debug/deps/fig09_tc_vs_ssgb-ba7ab1c1fe2cf6e9.d: crates/bench/src/bin/fig09_tc_vs_ssgb.rs

/root/repo/target/debug/deps/fig09_tc_vs_ssgb-ba7ab1c1fe2cf6e9: crates/bench/src/bin/fig09_tc_vs_ssgb.rs

crates/bench/src/bin/fig09_tc_vs_ssgb.rs:
