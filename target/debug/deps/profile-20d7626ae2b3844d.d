/root/repo/target/debug/deps/profile-20d7626ae2b3844d.d: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

/root/repo/target/debug/deps/libprofile-20d7626ae2b3844d.rlib: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

/root/repo/target/debug/deps/libprofile-20d7626ae2b3844d.rmeta: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

crates/profile/src/lib.rs:
crates/profile/src/ascii.rs:
crates/profile/src/perf_profile.rs:
crates/profile/src/table.rs:
crates/profile/src/timer.rs:
