/root/repo/target/debug/deps/fig08_tc_profiles-7aa35a7ed1120fb1.d: crates/bench/src/bin/fig08_tc_profiles.rs

/root/repo/target/debug/deps/fig08_tc_profiles-7aa35a7ed1120fb1: crates/bench/src/bin/fig08_tc_profiles.rs

crates/bench/src/bin/fig08_tc_profiles.rs:
