/root/repo/target/debug/deps/graph_algos-56836d7edbd7b7f7.d: crates/graph-algos/src/lib.rs crates/graph-algos/src/auto.rs crates/graph-algos/src/bc.rs crates/graph-algos/src/bfs.rs crates/graph-algos/src/ktruss.rs crates/graph-algos/src/reference.rs crates/graph-algos/src/scheme.rs crates/graph-algos/src/similarity.rs crates/graph-algos/src/triangle.rs

/root/repo/target/debug/deps/libgraph_algos-56836d7edbd7b7f7.rlib: crates/graph-algos/src/lib.rs crates/graph-algos/src/auto.rs crates/graph-algos/src/bc.rs crates/graph-algos/src/bfs.rs crates/graph-algos/src/ktruss.rs crates/graph-algos/src/reference.rs crates/graph-algos/src/scheme.rs crates/graph-algos/src/similarity.rs crates/graph-algos/src/triangle.rs

/root/repo/target/debug/deps/libgraph_algos-56836d7edbd7b7f7.rmeta: crates/graph-algos/src/lib.rs crates/graph-algos/src/auto.rs crates/graph-algos/src/bc.rs crates/graph-algos/src/bfs.rs crates/graph-algos/src/ktruss.rs crates/graph-algos/src/reference.rs crates/graph-algos/src/scheme.rs crates/graph-algos/src/similarity.rs crates/graph-algos/src/triangle.rs

crates/graph-algos/src/lib.rs:
crates/graph-algos/src/auto.rs:
crates/graph-algos/src/bc.rs:
crates/graph-algos/src/bfs.rs:
crates/graph-algos/src/ktruss.rs:
crates/graph-algos/src/reference.rs:
crates/graph-algos/src/scheme.rs:
crates/graph-algos/src/similarity.rs:
crates/graph-algos/src/triangle.rs:
