/root/repo/target/debug/deps/fig14_ktruss_scale-82783a4b671770ba.d: crates/bench/src/bin/fig14_ktruss_scale.rs

/root/repo/target/debug/deps/fig14_ktruss_scale-82783a4b671770ba: crates/bench/src/bin/fig14_ktruss_scale.rs

crates/bench/src/bin/fig14_ktruss_scale.rs:
