/root/repo/target/debug/deps/engine_repeat-1a5342bfe01aebac.d: crates/bench/src/bin/engine_repeat.rs

/root/repo/target/debug/deps/engine_repeat-1a5342bfe01aebac: crates/bench/src/bin/engine_repeat.rs

crates/bench/src/bin/engine_repeat.rs:
