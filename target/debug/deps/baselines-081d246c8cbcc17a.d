/root/repo/target/debug/deps/baselines-081d246c8cbcc17a.d: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

/root/repo/target/debug/deps/baselines-081d246c8cbcc17a: crates/baselines/src/lib.rs crates/baselines/src/plain.rs crates/baselines/src/ssdot.rs crates/baselines/src/sssaxpy.rs

crates/baselines/src/lib.rs:
crates/baselines/src/plain.rs:
crates/baselines/src/ssdot.rs:
crates/baselines/src/sssaxpy.rs:
