/root/repo/target/debug/deps/engine-29989662c4ecddcf.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

/root/repo/target/debug/deps/libengine-29989662c4ecddcf.rlib: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

/root/repo/target/debug/deps/libengine-29989662c4ecddcf.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/calibrate.rs crates/engine/src/context.rs crates/engine/src/plan.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/calibrate.rs:
crates/engine/src/context.rs:
crates/engine/src/plan.rs:
