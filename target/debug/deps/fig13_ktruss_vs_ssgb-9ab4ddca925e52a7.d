/root/repo/target/debug/deps/fig13_ktruss_vs_ssgb-9ab4ddca925e52a7.d: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs

/root/repo/target/debug/deps/fig13_ktruss_vs_ssgb-9ab4ddca925e52a7: crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs

crates/bench/src/bin/fig13_ktruss_vs_ssgb.rs:
