/root/repo/target/debug/deps/fig07_density-7d3f8adbb4a1de84.d: crates/bench/src/bin/fig07_density.rs

/root/repo/target/debug/deps/fig07_density-7d3f8adbb4a1de84: crates/bench/src/bin/fig07_density.rs

crates/bench/src/bin/fig07_density.rs:
