/root/repo/target/debug/deps/graphs-da08039354ada8b2.d: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

/root/repo/target/debug/deps/libgraphs-da08039354ada8b2.rlib: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

/root/repo/target/debug/deps/libgraphs-da08039354ada8b2.rmeta: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

crates/graphs/src/lib.rs:
crates/graphs/src/erdos_renyi.rs:
crates/graphs/src/rmat.rs:
crates/graphs/src/stats.rs:
crates/graphs/src/structured.rs:
crates/graphs/src/suite.rs:
crates/graphs/src/util.rs:
