/root/repo/target/debug/deps/criterion-fcf2792ab42a117e.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-fcf2792ab42a117e.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-fcf2792ab42a117e.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
