/root/repo/target/debug/deps/fig15_bc_scale-cb9c3628e8b02d33.d: crates/bench/src/bin/fig15_bc_scale.rs

/root/repo/target/debug/deps/fig15_bc_scale-cb9c3628e8b02d33: crates/bench/src/bin/fig15_bc_scale.rs

crates/bench/src/bin/fig15_bc_scale.rs:
