/root/repo/target/debug/deps/extensions-99d02b986a5d114c.d: crates/integration/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-99d02b986a5d114c: crates/integration/../../tests/extensions.rs

crates/integration/../../tests/extensions.rs:
