/root/repo/target/debug/deps/applications_end_to_end-0a7b5dd916217ea8.d: crates/integration/../../tests/applications_end_to_end.rs

/root/repo/target/debug/deps/applications_end_to_end-0a7b5dd916217ea8: crates/integration/../../tests/applications_end_to_end.rs

crates/integration/../../tests/applications_end_to_end.rs:
