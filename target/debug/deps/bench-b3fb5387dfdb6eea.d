/root/repo/target/debug/deps/bench-b3fb5387dfdb6eea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-b3fb5387dfdb6eea: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
