/root/repo/target/debug/deps/rand-b8da08ea7679654f.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b8da08ea7679654f.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b8da08ea7679654f.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
