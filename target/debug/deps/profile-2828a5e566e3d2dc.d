/root/repo/target/debug/deps/profile-2828a5e566e3d2dc.d: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

/root/repo/target/debug/deps/profile-2828a5e566e3d2dc: crates/profile/src/lib.rs crates/profile/src/ascii.rs crates/profile/src/perf_profile.rs crates/profile/src/table.rs crates/profile/src/timer.rs

crates/profile/src/lib.rs:
crates/profile/src/ascii.rs:
crates/profile/src/perf_profile.rs:
crates/profile/src/table.rs:
crates/profile/src/timer.rs:
