/root/repo/target/debug/deps/rand-dc38beb98f2b9091.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-dc38beb98f2b9091: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
