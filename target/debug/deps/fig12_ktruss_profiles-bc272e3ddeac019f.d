/root/repo/target/debug/deps/fig12_ktruss_profiles-bc272e3ddeac019f.d: crates/bench/src/bin/fig12_ktruss_profiles.rs

/root/repo/target/debug/deps/fig12_ktruss_profiles-bc272e3ddeac019f: crates/bench/src/bin/fig12_ktruss_profiles.rs

crates/bench/src/bin/fig12_ktruss_profiles.rs:
