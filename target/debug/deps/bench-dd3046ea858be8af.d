/root/repo/target/debug/deps/bench-dd3046ea858be8af.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-dd3046ea858be8af.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-dd3046ea858be8af.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
