/root/repo/target/debug/deps/io_and_suite-e9759f2b9775baff.d: crates/integration/../../tests/io_and_suite.rs

/root/repo/target/debug/deps/io_and_suite-e9759f2b9775baff: crates/integration/../../tests/io_and_suite.rs

crates/integration/../../tests/io_and_suite.rs:
