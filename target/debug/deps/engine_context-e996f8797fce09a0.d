/root/repo/target/debug/deps/engine_context-e996f8797fce09a0.d: crates/integration/../../tests/engine_context.rs

/root/repo/target/debug/deps/engine_context-e996f8797fce09a0: crates/integration/../../tests/engine_context.rs

crates/integration/../../tests/engine_context.rs:
