/root/repo/target/debug/deps/ablation_hybrid-d11e955517592d47.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-d11e955517592d47: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
