/root/repo/target/debug/deps/graphs-5275d88eb203b3f4.d: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

/root/repo/target/debug/deps/graphs-5275d88eb203b3f4: crates/graphs/src/lib.rs crates/graphs/src/erdos_renyi.rs crates/graphs/src/rmat.rs crates/graphs/src/stats.rs crates/graphs/src/structured.rs crates/graphs/src/suite.rs crates/graphs/src/util.rs

crates/graphs/src/lib.rs:
crates/graphs/src/erdos_renyi.rs:
crates/graphs/src/rmat.rs:
crates/graphs/src/stats.rs:
crates/graphs/src/structured.rs:
crates/graphs/src/suite.rs:
crates/graphs/src/util.rs:
