/root/repo/target/debug/deps/fig10_tc_scale-51b2c9d650994c44.d: crates/bench/src/bin/fig10_tc_scale.rs

/root/repo/target/debug/deps/fig10_tc_scale-51b2c9d650994c44: crates/bench/src/bin/fig10_tc_scale.rs

crates/bench/src/bin/fig10_tc_scale.rs:
