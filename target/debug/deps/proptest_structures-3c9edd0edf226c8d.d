/root/repo/target/debug/deps/proptest_structures-3c9edd0edf226c8d.d: crates/sparse/tests/proptest_structures.rs

/root/repo/target/debug/deps/proptest_structures-3c9edd0edf226c8d: crates/sparse/tests/proptest_structures.rs

crates/sparse/tests/proptest_structures.rs:
