//! Wall-clock timing helpers.

use std::time::{Duration, Instant};

/// A single timed run: the result and its wall-clock duration.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Best (minimum) duration across the timed repeats.
    pub best: Duration,
    /// Mean duration across the timed repeats.
    pub mean: Duration,
    /// Number of timed repeats.
    pub reps: usize,
}

impl Measurement {
    /// Best time in seconds.
    pub fn secs(&self) -> f64 {
        self.best.as_secs_f64()
    }
}

/// Time one execution of `f`, returning its result and duration.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` once for warmup, then `reps` timed repetitions; report best and
/// mean. Minimum-of-N is the conventional noise filter for memory-bound
/// kernels (any slowdown is interference, never the kernel being "lucky").
pub fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Measurement) {
    assert!(reps > 0);
    let mut out = f(); // warmup (also produces the returned value)
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let (o, d) = time_once(&mut f);
        out = o;
        best = best.min(d);
        total += d;
    }
    (
        out,
        Measurement {
            best,
            mean: total / reps as u32,
            reps,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures_something() {
        let (v, d) = time_once(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn best_of_reports_min_and_mean() {
        let mut calls = 0u32;
        let (_, m) = best_of(3, || {
            calls += 1;
            std::hint::black_box(42)
        });
        assert_eq!(calls, 4); // warmup + 3
        assert_eq!(m.reps, 3);
        assert!(m.best <= m.mean);
    }

    #[test]
    #[should_panic]
    fn zero_reps_rejected() {
        let _ = best_of(0, || ());
    }
}
