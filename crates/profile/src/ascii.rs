//! Terminal renditions of the paper's plot types: line charts (GFLOPS vs
//! scale, performance profiles) and heat maps (Figure 7's best-scheme
//! grid). No plotting dependencies — output goes straight to stdout and
//! into EXPERIMENTS.md.

/// Render series as a fixed-size ASCII line chart. Each series is a list of
/// `(x, y)` points; all series share axes. Returns a multi-line string.
pub fn line_chart(
    title: &str,
    series: &[(String, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    let mut out = format!("## {title}\n");
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    if pts.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (xmin, xmax) = min_max(pts.iter().map(|p| p.0));
    let (ymin, ymax) = min_max(pts.iter().map(|p| p.1));
    let yspan = if ymax > ymin { ymax - ymin } else { 1.0 };
    let xspan = if xmax > xmin { xmax - xmin } else { 1.0 };
    let mut grid = vec![vec![b' '; width]; height];
    let marks: &[u8] = b"*o+x#@%&$~^=";
    for (si, (_, points)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in points {
            let cx = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let cy = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }
    out.push_str(&format!("y: {ymin:.3} .. {ymax:.3}\n"));
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("x: {xmin:.3} .. {xmax:.3}\n"));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "  {} = {}\n",
            marks[si % marks.len()] as char,
            name
        ));
    }
    out
}

/// Render a labeled heat map of categorical cells (Figure 7: which scheme
/// wins at each (mask degree, input degree) point). `cell(r, c)` returns a
/// single display character.
pub fn category_grid(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    cell: impl Fn(usize, usize) -> char,
) -> String {
    let mut out = format!("## {title}\n");
    let rw = row_labels.iter().map(|l| l.len()).max().unwrap_or(1);
    // Header: one character per column, labels printed vertically compact.
    out.push_str(&format!("{:>rw$} ", ""));
    for c in col_labels {
        out.push_str(&format!("{c:>6}"));
    }
    out.push('\n');
    for (r, rl) in row_labels.iter().enumerate() {
        out.push_str(&format!("{rl:>rw$} "));
        for c in 0..col_labels.len() {
            out.push_str(&format!("{:>6}", cell(r, c)));
        }
        out.push('\n');
    }
    out
}

fn min_max(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    for v in vals {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    (mn, mx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_marks_and_legend() {
        let s = vec![
            ("up".to_string(), vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]),
            ("down".to_string(), vec![(0.0, 2.0), (2.0, 0.0)]),
        ];
        let c = line_chart("test", &s, 20, 8);
        assert!(c.contains("## test"));
        assert!(c.contains('*'));
        assert!(c.contains('o'));
        assert!(c.contains("up"));
        assert!(c.lines().count() > 10);
    }

    #[test]
    fn chart_handles_empty() {
        let c = line_chart("empty", &[], 10, 4);
        assert!(c.contains("(no data)"));
    }

    #[test]
    fn chart_handles_constant_series() {
        let s = vec![("flat".to_string(), vec![(1.0, 5.0), (2.0, 5.0)])];
        let c = line_chart("flat", &s, 10, 4);
        assert!(c.contains('*'));
    }

    #[test]
    fn grid_renders_cells() {
        let rows = vec!["r1".to_string(), "r2".to_string()];
        let cols = vec!["c1".to_string(), "c2".to_string(), "c3".to_string()];
        let g = category_grid("grid", &rows, &cols, |r, c| {
            char::from_digit((r * 3 + c) as u32, 10).unwrap()
        });
        assert!(g.contains("r1"));
        assert!(g.contains('5'));
    }
}
