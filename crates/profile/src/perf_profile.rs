//! Dolan-Moré performance profiles (the paper's Figures 8/9/12/13/16).
//!
//! Given a matrix of runtimes `t[case][scheme]`, scheme `s`'s profile is
//! the cumulative distribution `ρ_s(τ) = |{cases : t[case][s] ≤ τ·min_case}| / ncases`
//! — at `x = τ`, the fraction of cases where the scheme is within a factor
//! `τ` of the best scheme. The closer a curve hugs the y-axis, the better.

/// Runtimes for `cases × schemes`, with `None` = scheme failed/excluded on
/// that case (treated as infinitely slow).
#[derive(Clone, Debug)]
pub struct ProfileMatrix {
    /// Case (graph) names, row labels.
    pub cases: Vec<String>,
    /// Scheme names, column labels.
    pub schemes: Vec<String>,
    /// `times[case][scheme]` in seconds.
    pub times: Vec<Vec<Option<f64>>>,
}

impl ProfileMatrix {
    /// Empty matrix with the given scheme labels.
    pub fn new(schemes: Vec<String>) -> Self {
        ProfileMatrix {
            cases: Vec::new(),
            schemes,
            times: Vec::new(),
        }
    }

    /// Append one case's runtimes (must match the scheme count).
    pub fn push_case(&mut self, case: impl Into<String>, times: Vec<Option<f64>>) {
        assert_eq!(times.len(), self.schemes.len(), "scheme count mismatch");
        self.cases.push(case.into());
        self.times.push(times);
    }

    /// Per-case minimum runtime (the denominator of the ratios).
    fn case_best(&self, case: usize) -> Option<f64> {
        self.times[case]
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }

    /// Compute the performance profile.
    pub fn profile(&self) -> PerfProfile {
        let nschemes = self.schemes.len();
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); nschemes];
        for case in 0..self.cases.len() {
            let Some(best) = self.case_best(case) else {
                continue; // every scheme failed: case is uninformative
            };
            for (s, t) in self.times[case].iter().enumerate() {
                ratios[s].push(match t {
                    Some(t) => t / best,
                    None => f64::INFINITY,
                });
            }
        }
        for r in &mut ratios {
            r.sort_by(|a, b| a.partial_cmp(b).expect("ratios are not NaN"));
        }
        PerfProfile {
            schemes: self.schemes.clone(),
            ratios,
        }
    }

    /// Emit the raw matrix as CSV (`case,scheme1,scheme2,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("case");
        for s in &self.schemes {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (case, times) in self.cases.iter().zip(&self.times) {
            out.push_str(case);
            for t in times {
                out.push(',');
                match t {
                    Some(t) => out.push_str(&format!("{t:.6e}")),
                    None => out.push_str("NA"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A computed performance profile: per scheme, the sorted runtime ratios.
#[derive(Clone, Debug)]
pub struct PerfProfile {
    /// Scheme names.
    pub schemes: Vec<String>,
    /// Sorted `t/t_best` ratios per scheme (∞ = failed case).
    pub ratios: Vec<Vec<f64>>,
}

impl PerfProfile {
    /// `ρ_s(τ)`: fraction of cases where scheme `s` is within factor `τ` of
    /// the best.
    pub fn fraction_within(&self, scheme: usize, tau: f64) -> f64 {
        let r = &self.ratios[scheme];
        if r.is_empty() {
            return 0.0;
        }
        let count = r.partition_point(|&x| x <= tau);
        count as f64 / r.len() as f64
    }

    /// Fraction of cases where the scheme is the (possibly tied) fastest —
    /// `ρ_s(1)`, the number the paper quotes ("MSA-1P outperforms all other
    /// algorithms for 65% of the test cases").
    pub fn win_rate(&self, scheme: usize) -> f64 {
        self.fraction_within(scheme, 1.0 + 1e-12)
    }

    /// Index of the scheme with the highest win rate.
    pub fn best_scheme(&self) -> usize {
        (0..self.schemes.len())
            .max_by(|&a, &b| {
                self.win_rate(a)
                    .partial_cmp(&self.win_rate(b))
                    .expect("win rates are not NaN")
            })
            .expect("at least one scheme")
    }

    /// Sampled curve for plotting: `(τ, ρ_s(τ))` points for each scheme at
    /// the given τ values.
    pub fn curves(&self, taus: &[f64]) -> Vec<Vec<(f64, f64)>> {
        (0..self.schemes.len())
            .map(|s| {
                taus.iter()
                    .map(|&t| (t, self.fraction_within(s, t)))
                    .collect()
            })
            .collect()
    }

    /// CSV rendition: `tau,scheme1,...` rows over the τ grid the paper uses
    /// (1.0 to 2.4).
    pub fn to_csv(&self) -> String {
        let taus: Vec<f64> = (0..=56).map(|i| 1.0 + i as f64 * 0.025).collect();
        let mut out = String::from("tau");
        for s in &self.schemes {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for &tau in &taus {
            out.push_str(&format!("{tau:.3}"));
            for s in 0..self.schemes.len() {
                out.push_str(&format!(",{:.4}", self.fraction_within(s, tau)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileMatrix {
        let mut m = ProfileMatrix::new(vec!["fast".into(), "slow".into(), "flaky".into()]);
        m.push_case("g1", vec![Some(1.0), Some(2.0), None]);
        m.push_case("g2", vec![Some(2.0), Some(2.0), Some(4.0)]);
        m.push_case("g3", vec![Some(3.0), Some(1.5), Some(3.0)]);
        m
    }

    #[test]
    fn win_rates() {
        let p = sample().profile();
        // "fast" is best on g1 and tied-best on g2 -> 2/3.
        assert!((p.win_rate(0) - 2.0 / 3.0).abs() < 1e-9);
        // "slow" tied-best on g2, best on g3 -> 2/3.
        assert!((p.win_rate(1) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.win_rate(2), 0.0);
    }

    #[test]
    fn fraction_is_monotone_in_tau() {
        let p = sample().profile();
        for s in 0..3 {
            let mut prev = 0.0;
            for tau in [1.0, 1.2, 1.5, 2.0, 3.0, 10.0] {
                let f = p.fraction_within(s, tau);
                assert!(f >= prev, "scheme {s} not monotone at tau={tau}");
                prev = f;
            }
        }
    }

    #[test]
    fn failed_cases_never_reach_one() {
        let p = sample().profile();
        assert!(p.fraction_within(2, 1e9) < 1.0, "flaky failed one case");
        assert!((p.fraction_within(0, 1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_failed_case_is_skipped() {
        let mut m = ProfileMatrix::new(vec!["a".into(), "b".into()]);
        m.push_case("dead", vec![None, None]);
        m.push_case("ok", vec![Some(1.0), Some(2.0)]);
        let p = m.profile();
        assert_eq!(p.ratios[0].len(), 1);
        assert_eq!(p.win_rate(0), 1.0);
    }

    #[test]
    fn csv_shapes() {
        let m = sample();
        let csv = m.to_csv();
        assert!(csv.starts_with("case,fast,slow,flaky\n"));
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("NA"));
        let pcsv = m.profile().to_csv();
        assert!(pcsv.starts_with("tau,"));
        assert!(pcsv.lines().count() > 50);
    }

    #[test]
    fn best_scheme_selection() {
        let p = sample().profile();
        let b = p.best_scheme();
        assert!(b == 0 || b == 1);
    }
}
