#![warn(missing_docs)]

//! Measurement substrate for the benchmark harnesses.
//!
//! * [`timer`] — wall-clock measurement with warmup and best-of-N repeats;
//! * [`perf_profile`] — Dolan-Moré performance profiles \[20\], the plot type
//!   of the paper's Figures 8, 9, 12, 13, 16;
//! * [`table`] — CSV emission and fixed-width console tables;
//! * [`ascii`] — terminal line charts and heat maps so every figure has a
//!   visual rendition without a plotting stack.

pub mod ascii;
pub mod perf_profile;
pub mod table;
pub mod timer;

pub use perf_profile::{PerfProfile, ProfileMatrix};
pub use timer::{best_of, time_once, Measurement};
