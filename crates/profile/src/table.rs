//! CSV emission and fixed-width console tables for harness output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple row-oriented table with string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as an aligned console table.
    pub fn to_console(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        for (c, h) in self.header.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", h, w = widths[c]);
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[c]);
            }
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendition to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Write arbitrary text to `path`, creating parent directories.
pub fn write_text(path: impl AsRef<Path>, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_console() {
        let mut t = Table::new(&["name", "value"]);
        t.push(vec!["alpha".into(), "1".into()]);
        t.push(vec!["b".into(), "22".into()]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\nalpha,1\nb,22\n");
        let con = t.to_console();
        assert!(con.contains("alpha"));
        assert!(con.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_creates_dirs() {
        let dir = std::env::temp_dir().join("profile_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub/out.csv");
        let mut t = Table::new(&["x"]);
        t.push(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
