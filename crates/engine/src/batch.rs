//! Concurrent execution of many independent masked multiplies, streamed.
//!
//! Batch mode inverts the parallelization axis: instead of one product
//! parallelized across rows, the [`Context`]'s workers each run whole
//! products serially and pull the next operation from a shared queue. Each
//! worker holds one [`masked_spgemm::ScratchSet`] for the entire batch, so
//! accumulator scratch (the `O(ncols)` MSA arrays, hash tables, heap state)
//! is allocated once per worker rather than once per product.
//!
//! The op queue is drained by the context's own persistent pool workers
//! ([`rayon::ThreadPool::with_workers`]) — batch execution spawns no
//! threads of its own, so inter-op parallelism here and intra-op row
//! parallelism elsewhere share one set of threads and a batch issued while
//! other work is in flight cannot oversubscribe the machine.
//!
//! Two things distinguish this from a plain parallel map:
//!
//! * **heterogeneous semirings** — each [`MaskedOp`] carries its own
//!   [`SemiringKind`](masked_spgemm::SemiringKind); execution erases them
//!   through [`DynSemiring`], so one batch mixes plus-pair triangle ops
//!   with plus-times BC sweeps on the same worker scratch;
//! * **streamed delivery** — finished products flow through a channel to
//!   the calling thread, which hands them to a [`ResultSink`] in
//!   *completion order*. A sink that consumes-and-drops keeps memory flat
//!   regardless of batch size; [`Context::run_batch_collect`] is the
//!   convenience that collects into input order when you do want them all.
//!
//! Plans are computed up front on the calling thread (they read cached
//! auxiliaries, so this is cheap) and forced to fixed algorithms: per-row
//! hybrid dispatch buys nothing when the batch already saturates the
//! workers, and fixed plans let scratch be reused by family.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use masked_spgemm::{Algorithm, DynSemiring, ScratchSet};
use sparse::{CscMatrix, CsrMatrix, Semiring, SparseError};

use crate::context::{Context, MatrixHandle};
use crate::op::{AccumMode, MaskedOp, ResultSink};
use crate::plan::{Choice, Plan};

/// One masked multiply in a legacy homogeneous batch: `C = M ⊙ (A·B)` or
/// `¬M ⊙ (A·B)` on the batch-wide semiring.
#[deprecated(
    since = "0.3.0",
    note = "describe operations with `MaskedOp` (via `Context::op(..).build()`), \
            which carries its own semiring and overrides"
)]
#[derive(Copy, Clone, Debug)]
pub struct BatchOp {
    /// Mask handle.
    pub mask: MatrixHandle,
    /// Mask polarity.
    pub complemented: bool,
    /// Left operand handle.
    pub a: MatrixHandle,
    /// Right operand handle.
    pub b: MatrixHandle,
}

/// A batch entry resolved to the data a worker needs: operand `Arc`s, a
/// fixed algorithm, and the per-op semiring value.
struct Prepared<S: Semiring> {
    sr: S,
    mask: Arc<CsrMatrix<f64>>,
    a: Arc<CsrMatrix<f64>>,
    b: Arc<CsrMatrix<f64>>,
    b_csc: Option<Arc<CscMatrix<S::B>>>,
    algorithm: Algorithm,
    complemented: bool,
}

/// Reduce a plan to the fixed algorithm batch workers run: when the
/// planner wanted the per-row hybrid, take the fixed family its own cost
/// breakdown ranked best.
fn fixed_algorithm(plan: &Plan) -> Algorithm {
    match plan.choice {
        Choice::Fixed(alg) => alg,
        Choice::Hybrid => {
            let c = &plan.costs;
            let mut best = (Algorithm::Msa, c.msa);
            for cand in [
                (Algorithm::Mca, c.mca),
                (Algorithm::Heap, c.heap),
                (Algorithm::Inner, c.inner),
            ] {
                let supported = !plan.complemented || cand.0.supports_complement();
                if supported && cand.1 < best.1 {
                    best = cand;
                }
            }
            best.0
        }
    }
}

impl Context {
    /// Resolve one descriptor for batch execution.
    fn prepare_op(&self, op: &MaskedOp) -> Result<Prepared<DynSemiring>, SparseError> {
        let plan = self.resolve_plan(op)?;
        let algorithm = fixed_algorithm(&plan);
        Ok(Prepared {
            sr: DynSemiring::new(op.semiring),
            mask: self.matrix(op.mask),
            a: self.matrix(op.a),
            b: self.matrix(op.b),
            // Materialize the cached CSC only when the plan actually pulls.
            b_csc: (algorithm == Algorithm::Inner).then(|| self.csc(op.b)),
            algorithm,
            complemented: op.complemented,
        })
    }

    /// The shared batch engine: the context's pool workers drain the op
    /// queue with per-worker reused scratch and send `(index, result)`
    /// pairs to the calling thread, which invokes `deliver` in completion
    /// order while execution is still in flight.
    fn execute_batch<S, F>(&self, prepared: &[Result<Prepared<S>, SparseError>], mut deliver: F)
    where
        S: Semiring<A = f64, B = f64> + Send + Sync,
        S::C: Default + Send + Sync,
        F: FnMut(usize, Result<CsrMatrix<S::C>, SparseError>),
    {
        if prepared.is_empty() {
            return;
        }
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(prepared.len()).max(1);
        let (tx, rx) = mpsc::channel::<(usize, Result<CsrMatrix<S::C>, SparseError>)>();
        // Each pool worker takes one pre-cloned sender; the channel closes
        // when the last worker finishes (or unwinds), which is what ends
        // the foreground delivery loop below.
        let senders: Vec<std::sync::Mutex<Option<mpsc::Sender<_>>>> = (0..workers)
            .map(|_| std::sync::Mutex::new(Some(tx.clone())))
            .collect();
        drop(tx);
        self.pool.with_workers(
            workers,
            |slot| {
                let tx = senders[slot]
                    .lock()
                    .expect("sender slot lock")
                    .take()
                    .expect("each worker slot claimed once");
                let mut scratch: ScratchSet<S> = ScratchSet::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= prepared.len() {
                        break;
                    }
                    let result = match &prepared[i] {
                        Err(e) => Err(e.clone()),
                        Ok(p) => scratch.run(
                            p.algorithm,
                            p.complemented,
                            p.sr,
                            &p.mask,
                            &p.a,
                            &p.b,
                            p.b_csc.as_deref(),
                        ),
                    };
                    if tx.send((i, result)).is_err() {
                        break; // receiver gone — nothing left to deliver to
                    }
                }
            },
            || {
                // Deliver on the calling thread as workers finish — this
                // loop IS the streaming path.
                for (i, result) in rx {
                    deliver(i, result);
                }
            },
        );
    }

    /// Execute a heterogeneous batch, streaming each result to `sink` as
    /// its worker finishes (completion order, calling thread).
    ///
    /// Each [`MaskedOp`] is planned individually (forced to a fixed
    /// algorithm; the serial drivers assemble rows exactly, so the 1P/2P
    /// phase distinction does not arise here — see [`MaskedOp::phases`])
    /// and runs on its own semiring. Operations are independent:
    /// one failing op (dimension mismatch, unsupported override) delivers
    /// an `Err` for its index without affecting the rest. Accumulating ops
    /// ([`AccumMode::AddInto`]) are merged on the calling thread before the
    /// sink sees them, so concurrent ops never race on a target handle.
    ///
    /// ```
    /// use engine::{Context, SemiringKind};
    /// use sparse::CsrMatrix;
    ///
    /// let ctx = Context::with_threads(2);
    /// let h = ctx.insert(CsrMatrix::diagonal(6, 2.0));
    /// let ops = vec![
    ///     ctx.op(h, h, h).build(),
    ///     ctx.op(h, h, h).semiring(SemiringKind::PlusPair).build(),
    /// ];
    /// let mut seen = 0;
    /// ctx.for_each_result(&ops, |_i, r: Result<CsrMatrix<f64>, _>| {
    ///     seen += usize::from(r.unwrap().nnz() == 6);
    /// });
    /// assert_eq!(seen, 2);
    /// ```
    pub fn for_each_result(&self, ops: &[MaskedOp], mut sink: impl ResultSink) {
        let prepared: Vec<Result<Prepared<DynSemiring>, SparseError>> =
            ops.iter().map(|op| self.prepare_op(op)).collect();
        self.execute_batch(&prepared, |i, result| {
            let result = match result {
                Ok(c) if !matches!(ops[i].accum, AccumMode::Replace) => {
                    self.apply_accum(&ops[i], c)
                }
                other => other,
            };
            sink.absorb(i, result);
        });
    }

    /// Execute a heterogeneous batch and collect every result in input
    /// order — the convenience wrapper over [`Context::for_each_result`]
    /// for callers that do want all outputs resident.
    pub fn run_batch_collect(&self, ops: &[MaskedOp]) -> Vec<Result<CsrMatrix<f64>, SparseError>> {
        let mut slots: Vec<Option<Result<CsrMatrix<f64>, SparseError>>> =
            (0..ops.len()).map(|_| None).collect();
        self.for_each_result(ops, |i: usize, result| {
            slots[i] = Some(result);
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every op delivered"))
            .collect()
    }

    /// Execute all `ops` concurrently on one semiring; results arrive in
    /// input order.
    #[deprecated(
        since = "0.3.0",
        note = "build `MaskedOp`s with `Context::op` and use \
                `run_batch_collect` (or stream with `for_each_result`)"
    )]
    #[allow(deprecated)]
    pub fn run_batch<S>(&self, sr: S, ops: &[BatchOp]) -> Vec<Result<CsrMatrix<S::C>, SparseError>>
    where
        S: Semiring<A = f64, B = f64> + Send + Sync,
        S::C: Default + Send + Sync,
    {
        let prepared: Vec<Result<Prepared<S>, SparseError>> = ops
            .iter()
            .map(|op| {
                self.plan(op.mask, op.complemented, op.a, op.b).map(|plan| {
                    let algorithm = fixed_algorithm(&plan);
                    Prepared {
                        sr,
                        mask: self.matrix(op.mask),
                        a: self.matrix(op.a),
                        b: self.matrix(op.b),
                        b_csc: (algorithm == Algorithm::Inner).then(|| self.csc(op.b)),
                        algorithm,
                        complemented: op.complemented,
                    }
                })
            })
            .collect();
        let mut slots: Vec<Option<Result<CsrMatrix<S::C>, SparseError>>> =
            (0..ops.len()).map(|_| None).collect();
        self.execute_batch(&prepared, |i, result| {
            slots[i] = Some(result);
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every op delivered"))
            .collect()
    }
}
