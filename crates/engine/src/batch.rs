//! Concurrent execution of many independent masked multiplies.
//!
//! Batch mode inverts the parallelization axis: instead of one product
//! parallelized across rows, the [`Context`]'s workers each run whole
//! products serially and pull the next operation from a shared queue. Each
//! worker holds one [`masked_spgemm::ScratchSet`] for the entire batch, so
//! accumulator scratch (the `O(ncols)` MSA arrays, hash tables, heap state)
//! is allocated once per worker rather than once per product — the
//! per-worker reuse the paper's row-parallel drivers already do within one
//! multiply, extended across a workload.
//!
//! Plans are computed up front on the calling thread (they read cached
//! auxiliaries, so this is cheap) and forced to fixed algorithms: per-row
//! hybrid dispatch buys nothing when the batch already saturates the
//! workers, and fixed plans let scratch be reused by family.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use masked_spgemm::{Algorithm, ScratchSet};
use sparse::{CsrMatrix, Semiring, SparseError};

use crate::context::{Context, MatrixHandle};
use crate::plan::Choice;

/// One masked multiply in a batch: `C = M ⊙ (A·B)` or `¬M ⊙ (A·B)`.
#[derive(Copy, Clone, Debug)]
pub struct BatchOp {
    /// Mask handle.
    pub mask: MatrixHandle,
    /// Mask polarity.
    pub complemented: bool,
    /// Left operand handle.
    pub a: MatrixHandle,
    /// Right operand handle.
    pub b: MatrixHandle,
}

impl Context {
    /// Execute all `ops` concurrently; results arrive in input order.
    ///
    /// Each operation is planned individually (forced to a fixed
    /// algorithm), then the context's workers drain the queue with
    /// per-worker reused kernel scratch. Operations are independent: one
    /// failing plan (dimension mismatch) yields an `Err` in its slot
    /// without affecting the rest.
    pub fn run_batch<S>(&self, sr: S, ops: &[BatchOp]) -> Vec<Result<CsrMatrix<S::C>, SparseError>>
    where
        S: Semiring<A = f64, B = f64> + Send + Sync,
        S::C: Default + Send + Sync,
    {
        // Resolve handles and plans on the caller; workers touch only Arcs.
        struct Prepared<S: Semiring> {
            mask: std::sync::Arc<CsrMatrix<f64>>,
            a: std::sync::Arc<CsrMatrix<f64>>,
            b: std::sync::Arc<CsrMatrix<f64>>,
            b_csc: Option<std::sync::Arc<sparse::CscMatrix<S::B>>>,
            algorithm: Algorithm,
            complemented: bool,
        }
        let mut prepared: Vec<Result<Prepared<S>, SparseError>> = Vec::with_capacity(ops.len());
        for op in ops {
            prepared.push(self.plan(op.mask, op.complemented, op.a, op.b).map(|plan| {
                let algorithm = match plan.choice {
                    Choice::Fixed(alg) => alg,
                    // Batch mode forces fixed plans; when the planner wanted
                    // the per-row hybrid, take the fixed family its own cost
                    // breakdown ranked best.
                    Choice::Hybrid => {
                        let c = &plan.costs;
                        let mut best = (Algorithm::Msa, c.msa);
                        for cand in [
                            (Algorithm::Mca, c.mca),
                            (Algorithm::Heap, c.heap),
                            (Algorithm::Inner, c.inner),
                        ] {
                            let supported = !plan.complemented || cand.0.supports_complement();
                            if supported && cand.1 < best.1 {
                                best = cand;
                            }
                        }
                        best.0
                    }
                };
                Prepared {
                    mask: self.matrix(op.mask),
                    a: self.matrix(op.a),
                    b: self.matrix(op.b),
                    // Materialize the cached CSC only when the plan
                    // actually pulls.
                    b_csc: (algorithm == Algorithm::Inner).then(|| self.csc(op.b)),
                    algorithm,
                    complemented: op.complemented,
                }
            }));
        }

        let slots: Vec<OnceLock<Result<CsrMatrix<S::C>, SparseError>>> =
            (0..ops.len()).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(ops.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch: ScratchSet<S> = ScratchSet::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= prepared.len() {
                            break;
                        }
                        let result = match &prepared[i] {
                            Err(e) => Err(e.clone()),
                            Ok(p) => scratch.run(
                                p.algorithm,
                                p.complemented,
                                sr,
                                &p.mask,
                                &p.a,
                                &p.b,
                                p.b_csc.as_deref(),
                            ),
                        };
                        slots[i].set(result).ok().expect("slot set once");
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all slots filled"))
            .collect()
    }
}
