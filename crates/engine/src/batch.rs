//! Concurrent execution of many independent masked multiplies, streamed.
//!
//! Batch mode inverts the parallelization axis: instead of one product
//! parallelized across rows, the [`Context`]'s workers each run whole
//! products serially and pull the next operation from a shared queue. Each
//! worker holds one scratch set *per value lane* ([`LaneScratch`]) for the
//! entire batch, so accumulator scratch (the `O(ncols)` MSA arrays, hash
//! tables, heap state) is allocated once per worker and lane rather than
//! once per product.
//!
//! The op queue is drained by the context's own persistent pool workers
//! ([`rayon::ThreadPool::with_workers`]) — batch execution spawns no
//! threads of its own, so inter-op parallelism here and intra-op row
//! parallelism elsewhere share one set of threads and a batch issued while
//! other work is in flight cannot oversubscribe the machine.
//!
//! Three things distinguish this from a plain parallel map:
//!
//! * **heterogeneous semirings *and* lanes** — each [`MaskedOp`] carries
//!   its own [`SemiringKind`](masked_spgemm::SemiringKind) and
//!   [`ValueKind`](masked_spgemm::ValueKind); execution erases the
//!   semiring through [`DynLane`] per lane, so one batch mixes `bool`
//!   BFS steps, exact `i64` counting ops, and `f64` products on the same
//!   worker scratch;
//! * **vector operands** — [`Operands::VecMat`] ops run the serial masked
//!   SpGEVM kernels, so frontier expansions batch alongside matrix
//!   products;
//! * **streamed delivery** — finished products flow through a channel to
//!   the calling thread, which hands them to a [`ResultSink`] in
//!   *completion order*. A sink that consumes-and-drops keeps memory flat
//!   regardless of batch size; [`Context::run_batch_collect`] is the
//!   convenience that collects into input order when you do want them all.
//!
//! Plans are computed up front on the calling thread (they read cached
//! auxiliaries, so this is cheap) and forced to fixed algorithms: per-row
//! hybrid dispatch buys nothing when the batch already saturates the
//! workers, and fixed plans let scratch be reused by family.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use masked_spgemm::{masked_spgevm_csc, Algorithm, DynLane, LaneValue, ScratchSet, ValueKind};
use sparse::{CscMatrix, CsrMatrix, Semiring, SparseError, SparseVec};

use crate::context::{Context, MatrixHandle, ValueMat, ValueVec};
use crate::op::{FromOpOutput, MaskedOp, OpOutput, Operands, ResultSink, OPERAND_LANE_MISMATCH};
use crate::plan::{Choice, Plan};

/// One masked multiply in a legacy homogeneous batch: `C = M ⊙ (A·B)` or
/// `¬M ⊙ (A·B)` on the batch-wide semiring.
#[deprecated(
    since = "0.3.0",
    note = "describe operations with `MaskedOp` (via `Context::op(..).build()`), \
            which carries its own semiring, value lane, and overrides"
)]
#[derive(Copy, Clone, Debug)]
pub struct BatchOp {
    /// Mask handle.
    pub mask: MatrixHandle,
    /// Mask polarity.
    pub complemented: bool,
    /// Left operand handle.
    pub a: MatrixHandle,
    /// Right operand handle.
    pub b: MatrixHandle,
}

/// A matrix-product batch entry resolved to the data a worker needs:
/// the mask in its **native** stored lane (kernels read only its pattern),
/// operand `Arc`s on the op's lane (the stored matrices themselves when
/// the lanes agree — no canonical copy), a fixed algorithm, and the per-op
/// erased semiring.
struct PreparedMat<T: LaneValue> {
    sr: DynLane<T>,
    mask: ValueMat,
    a: Arc<CsrMatrix<T>>,
    b: Arc<CsrMatrix<T>>,
    b_csc: Option<Arc<CscMatrix<T>>>,
    algorithm: Algorithm,
    complemented: bool,
}

impl<T: LaneValue> PreparedMat<T> {
    fn run(&self, scratch: &mut ScratchSet<DynLane<T>>) -> Result<CsrMatrix<T>, SparseError> {
        macro_rules! go {
            ($mask:expr) => {
                scratch.run(
                    self.algorithm,
                    self.complemented,
                    self.sr,
                    $mask,
                    &self.a,
                    &self.b,
                    self.b_csc.as_deref(),
                )
            };
        }
        match &self.mask {
            ValueMat::Bool(m) => go!(m.as_ref()),
            ValueMat::I64(m) => go!(m.as_ref()),
            ValueMat::F64(m) => go!(m.as_ref()),
        }
    }
}

/// A vector-product batch entry: the mask pattern, the typed operand
/// vector, and `B` in the form the fixed algorithm consumes.
struct PreparedVec<T: LaneValue> {
    sr: DynLane<T>,
    mask: SparseVec<()>,
    u: Arc<SparseVec<T>>,
    b_view: Option<Arc<CsrMatrix<T>>>,
    b_csc: Option<Arc<CscMatrix<T>>>,
    algorithm: Algorithm,
    complemented: bool,
}

impl<T: LaneValue> PreparedVec<T> {
    /// Push products run through the worker's reused per-lane scratch
    /// (ROADMAP follow-on: SpGEVM accumulators were rebuilt per call); the
    /// pull path carries no accumulator.
    fn run(&self, scratch: &mut ScratchSet<DynLane<T>>) -> Result<SparseVec<T>, SparseError> {
        if self.algorithm == Algorithm::Inner {
            let csc = self.b_csc.as_ref().expect("pull plan materialized CSC");
            masked_spgevm_csc(self.complemented, self.sr, &self.mask, &self.u, csc)
        } else {
            let view = self.b_view.as_ref().expect("push plan materialized view");
            scratch.run_vec(
                self.algorithm,
                self.complemented,
                self.sr,
                &self.mask,
                &self.u,
                view,
                None,
            )
        }
    }
}

/// One resolved batch entry of any operand kind and lane.
enum PreparedAny {
    MatF64(PreparedMat<f64>),
    MatI64(PreparedMat<i64>),
    MatBool(PreparedMat<bool>),
    VecF64(PreparedVec<f64>),
    VecI64(PreparedVec<i64>),
    VecBool(PreparedVec<bool>),
}

impl PreparedAny {
    fn run(&self, scratch: &mut LaneScratch) -> Result<OpOutput, SparseError> {
        match self {
            PreparedAny::MatF64(p) => p.run(&mut scratch.f64).map(OpOutput::MatF64),
            PreparedAny::MatI64(p) => p.run(&mut scratch.i64).map(OpOutput::MatI64),
            PreparedAny::MatBool(p) => p.run(&mut scratch.boolean).map(OpOutput::MatBool),
            PreparedAny::VecF64(p) => p.run(&mut scratch.f64).map(OpOutput::VecF64),
            PreparedAny::VecI64(p) => p.run(&mut scratch.i64).map(OpOutput::VecI64),
            PreparedAny::VecBool(p) => p.run(&mut scratch.boolean).map(OpOutput::VecBool),
        }
    }
}

/// One reusable kernel scratch set per value lane — what each batch worker
/// holds for its lifetime. Lanes a batch never touches stay empty (the
/// kernels inside a `ScratchSet` are built on first use per family).
struct LaneScratch {
    f64: ScratchSet<DynLane<f64>>,
    i64: ScratchSet<DynLane<i64>>,
    boolean: ScratchSet<DynLane<bool>>,
}

impl LaneScratch {
    fn new() -> Self {
        LaneScratch {
            f64: ScratchSet::new(),
            i64: ScratchSet::new(),
            boolean: ScratchSet::new(),
        }
    }
}

/// Reduce a plan to one fixed algorithm (batch workers and the serial
/// in-thread path both need one): when the planner wanted the per-row
/// hybrid, take the fixed family its own cost breakdown ranked best.
pub(crate) fn fixed_algorithm(plan: &Plan) -> Algorithm {
    match plan.choice {
        Choice::Fixed(alg) => alg,
        Choice::Hybrid => {
            let c = &plan.costs;
            let mut best = (Algorithm::Msa, c.msa);
            for cand in [
                (Algorithm::Mca, c.mca),
                (Algorithm::Heap, c.heap),
                (Algorithm::Inner, c.inner),
            ] {
                let supported = !plan.complemented || cand.0.supports_complement();
                if supported && cand.1 < best.1 {
                    best = cand;
                }
            }
            best.0
        }
    }
}

impl Context {
    /// Resolve one descriptor for batch execution: plan it, fix the
    /// algorithm, and materialize the lane views the workers will read.
    fn prepare_any(&self, op: &MaskedOp) -> Result<PreparedAny, SparseError> {
        let plan = self.resolve_plan(op)?;
        let algorithm = fixed_algorithm(&plan);
        match op.operands {
            Operands::MatMat { mask, a, b } => {
                macro_rules! prep {
                    ($variant:ident, $view:ident, $csc:ident) => {
                        Ok(PreparedAny::$variant(PreparedMat {
                            sr: DynLane::new(op.semiring),
                            // Native mask — no lane cast for a pattern-only
                            // operand.
                            mask: self.value_mat(mask),
                            a: self.$view(a),
                            b: self.$view(b),
                            // Materialize the cached CSC only when the plan
                            // actually pulls.
                            b_csc: (algorithm == Algorithm::Inner).then(|| self.$csc(b)),
                            algorithm,
                            complemented: op.complemented,
                        }))
                    };
                }
                match op.value {
                    ValueKind::F64 => prep!(MatF64, f64_view, csc),
                    ValueKind::I64 => prep!(MatI64, i64_view, i64_csc),
                    ValueKind::Bool => prep!(MatBool, bool_view, bool_csc),
                }
            }
            Operands::VecMat { mask, u, b } => {
                let mask_pat = self.vector(mask).pattern();
                macro_rules! prep {
                    ($variant:ident, $uv:ident, $view:ident, $csc:ident) => {
                        Ok(PreparedAny::$variant(PreparedVec {
                            sr: DynLane::new(op.semiring),
                            mask: mask_pat,
                            u: $uv,
                            b_view: (algorithm != Algorithm::Inner).then(|| self.$view(b)),
                            b_csc: (algorithm == Algorithm::Inner).then(|| self.$csc(b)),
                            algorithm,
                            complemented: op.complemented,
                        }))
                    };
                }
                match (op.value, self.vector(u)) {
                    (ValueKind::F64, ValueVec::F64(uv)) => prep!(VecF64, uv, f64_view, csc),
                    (ValueKind::I64, ValueVec::I64(uv)) => prep!(VecI64, uv, i64_view, i64_csc),
                    (ValueKind::Bool, ValueVec::Bool(uv)) => {
                        prep!(VecBool, uv, bool_view, bool_csc)
                    }
                    // Lane agreement was validated by `resolve_plan`;
                    // reaching here means a concurrent lane change.
                    _ => Err(SparseError::Unsupported(OPERAND_LANE_MISMATCH)),
                }
            }
        }
    }

    /// The shared batch scaffold: the context's pool workers drain an
    /// indexed job queue with per-worker state (built once per worker by
    /// `make_state`) and send `(index, result)` pairs to the calling
    /// thread, which invokes `deliver` in completion order while execution
    /// is still in flight — this receive loop IS the streaming path.
    pub(crate) fn stream_indexed<St, R>(
        &self,
        count: usize,
        make_state: impl Fn() -> St + Sync,
        run: impl Fn(&mut St, usize) -> R + Sync,
        mut deliver: impl FnMut(usize, R),
    ) where
        R: Send,
    {
        if count == 0 {
            return;
        }
        /// One pre-cloned result sender per batch worker slot.
        type SenderSlots<R> = Vec<Mutex<Option<mpsc::Sender<(usize, R)>>>>;
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(count).max(1);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        // Each pool worker takes one pre-cloned sender; the channel closes
        // when the last worker finishes (or unwinds), which is what ends
        // the foreground delivery loop below.
        let senders: SenderSlots<R> = (0..workers).map(|_| Mutex::new(Some(tx.clone()))).collect();
        drop(tx);
        self.pool.with_workers(
            workers,
            |slot| {
                let tx = senders[slot]
                    .lock()
                    .expect("sender slot lock")
                    .take()
                    .expect("each worker slot claimed once");
                let mut state = make_state();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = run(&mut state, i);
                    if tx.send((i, result)).is_err() {
                        break; // receiver gone — nothing left to deliver to
                    }
                }
            },
            || {
                for (i, result) in rx {
                    deliver(i, result);
                }
            },
        );
    }

    /// Execute a heterogeneous batch, streaming each result to `sink` as
    /// its worker finishes (completion order, calling thread).
    ///
    /// Each [`MaskedOp`] is planned individually (forced to a fixed
    /// algorithm; the serial drivers assemble rows exactly, so the 1P/2P
    /// phase distinction does not arise here — see [`MaskedOp::phases`])
    /// and runs on its own semiring and value lane. The sink's payload type
    /// chooses the consumption mode: sink [`OpOutput`] for mixed-kind
    /// batches, or a concrete type like `CsrMatrix<f64>` when the batch is
    /// homogeneous (a wrong kind delivers a uniform error for that index).
    /// Operations are independent: one failing op (dimension mismatch,
    /// unsupported override) delivers an `Err` for its index without
    /// affecting the rest. Accumulating ops ([`AccumMode::MergeInto`]) are
    /// merged on the calling thread before the sink sees them, so
    /// concurrent ops never race on a target handle.
    ///
    /// ```
    /// use engine::{Context, OpOutput, SemiringKind, ValueKind};
    /// use sparse::CsrMatrix;
    ///
    /// let ctx = Context::with_threads(2);
    /// let h = ctx.insert(CsrMatrix::diagonal(6, 2.0));
    /// let ops = vec![
    ///     ctx.op(h, h, h).build(),
    ///     ctx.op(h, h, h)
    ///         .semiring(SemiringKind::PlusPair)
    ///         .value(ValueKind::I64)
    ///         .build(),
    /// ];
    /// let mut seen = 0;
    /// ctx.for_each_result(&ops, |_i, r: Result<OpOutput, _>| {
    ///     seen += usize::from(r.unwrap().nnz() == 6);
    /// });
    /// assert_eq!(seen, 2);
    /// ```
    ///
    /// [`AccumMode::MergeInto`]: crate::AccumMode::MergeInto
    pub fn for_each_result<T: FromOpOutput>(&self, ops: &[MaskedOp], mut sink: impl ResultSink<T>) {
        let prepared: Vec<Result<PreparedAny, SparseError>> =
            ops.iter().map(|op| self.prepare_any(op)).collect();
        self.stream_indexed(
            prepared.len(),
            LaneScratch::new,
            |scratch, i| match &prepared[i] {
                Err(e) => Err(e.clone()),
                Ok(p) => p.run(scratch),
            },
            |i, result| {
                let result = result
                    .and_then(|out| self.apply_accum(&ops[i], out))
                    .and_then(T::from_output);
                sink.absorb(i, result);
            },
        );
    }

    /// Stream a batch into input-order slots — the one collect discipline
    /// behind both typed collectors.
    fn collect_batch<T: FromOpOutput>(&self, ops: &[MaskedOp]) -> Vec<Result<T, SparseError>> {
        let mut slots: Vec<Option<Result<T, SparseError>>> = (0..ops.len()).map(|_| None).collect();
        self.for_each_result(ops, |i: usize, result| {
            slots[i] = Some(result);
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every op delivered"))
            .collect()
    }

    /// Execute a heterogeneous batch and collect every typed result in
    /// input order — the mixed-kind counterpart of
    /// [`Context::run_batch_collect`].
    pub fn run_batch_outputs(&self, ops: &[MaskedOp]) -> Vec<Result<OpOutput, SparseError>> {
        self.collect_batch(ops)
    }

    /// Execute a batch of `f64` matrix products and collect every result in
    /// input order — the convenience wrapper over
    /// [`Context::for_each_result`] for callers that do want all outputs
    /// resident (ops of another kind deliver an `Err` in their slot; use
    /// [`Context::run_batch_outputs`] for mixed-kind batches).
    pub fn run_batch_collect(&self, ops: &[MaskedOp]) -> Vec<Result<CsrMatrix<f64>, SparseError>> {
        self.collect_batch(ops)
    }

    /// Execute all `ops` concurrently on one typed semiring; results arrive
    /// in input order.
    #[deprecated(
        since = "0.3.0",
        note = "build `MaskedOp`s with `Context::op` and use \
                `run_batch_collect` (or stream with `for_each_result`)"
    )]
    #[allow(deprecated)]
    pub fn run_batch<S>(&self, sr: S, ops: &[BatchOp]) -> Vec<Result<CsrMatrix<S::C>, SparseError>>
    where
        S: Semiring<A = f64, B = f64> + Send + Sync,
        S::C: Default + Send + Sync,
    {
        struct Prepared<S: Semiring> {
            sr: S,
            mask: Arc<CsrMatrix<f64>>,
            a: Arc<CsrMatrix<f64>>,
            b: Arc<CsrMatrix<f64>>,
            b_csc: Option<Arc<CscMatrix<S::B>>>,
            algorithm: Algorithm,
            complemented: bool,
        }
        let prepared: Vec<Result<Prepared<S>, SparseError>> = ops
            .iter()
            .map(|op| {
                self.plan(op.mask, op.complemented, op.a, op.b).map(|plan| {
                    let algorithm = fixed_algorithm(&plan);
                    Prepared {
                        sr,
                        mask: self.matrix(op.mask),
                        a: self.matrix(op.a),
                        b: self.matrix(op.b),
                        b_csc: (algorithm == Algorithm::Inner).then(|| self.csc(op.b)),
                        algorithm,
                        complemented: op.complemented,
                    }
                })
            })
            .collect();
        let mut slots: Vec<Option<Result<CsrMatrix<S::C>, SparseError>>> =
            (0..ops.len()).map(|_| None).collect();
        self.stream_indexed(
            prepared.len(),
            ScratchSet::<S>::new,
            |scratch, i| match &prepared[i] {
                Err(e) => Err(e.clone()),
                Ok(p) => scratch.run(
                    p.algorithm,
                    p.complemented,
                    p.sr,
                    &p.mask,
                    &p.a,
                    &p.b,
                    p.b_csc.as_deref(),
                ),
            },
            |i, result| {
                slots[i] = Some(result);
            },
        );
        slots
            .into_iter()
            .map(|slot| slot.expect("every op delivered"))
            .collect()
    }
}
