//! The [`Context`]: matrix registry, budgeted auxiliary cache, and
//! execution entry points.

use std::collections::HashMap;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use masked_spgemm::{
    hybrid_masked_spgemm, masked_spgemm, masked_spgemm_csc, Algorithm, HybridConfig, LaneValue,
    Phases, ScratchSet, ValueKind,
};
use sparse::transpose::transpose;
use sparse::{CscMatrix, CsrMatrix, Semiring, SparseError, SparseVec};

use crate::plan::{self, Choice, Plan};

/// Handle to a matrix registered in a [`Context`].
///
/// Handles are cheap copies; the matrix and its cached auxiliaries live in
/// the context. A handle stays valid across [`Context::update`] calls (the
/// auxiliaries are invalidated, the identity persists) and dangles only
/// after [`Context::remove`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MatrixHandle(pub(crate) u64);

/// Handle to a sparse vector registered in a [`Context`] (BFS frontiers,
/// visited sets, distance vectors). Like [`MatrixHandle`], handles are
/// cheap copies; the vector lives in the context and stays addressable
/// across [`Context::update_vec`] calls.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct VectorHandle(pub(crate) u64);

/// A registered sparse vector, tagged with its value lane.
///
/// The variants hold `Arc`s, so a `ValueVec` is a cheap clone — reading a
/// vector out of the context never copies its entries.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueVec {
    /// Boolean lane (frontiers, reachability).
    Bool(Arc<SparseVec<bool>>),
    /// Integer lane (exact counts, tropical distances).
    I64(Arc<SparseVec<i64>>),
    /// Float lane.
    F64(Arc<SparseVec<f64>>),
}

impl ValueVec {
    /// Dimension (number of addressable positions).
    pub fn dim(&self) -> usize {
        match self {
            ValueVec::Bool(v) => v.dim(),
            ValueVec::I64(v) => v.dim(),
            ValueVec::F64(v) => v.dim(),
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        match self {
            ValueVec::Bool(v) => v.nnz(),
            ValueVec::I64(v) => v.nnz(),
            ValueVec::F64(v) => v.nnz(),
        }
    }

    /// Which value lane the entries live on.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            ValueVec::Bool(_) => ValueKind::Bool,
            ValueVec::I64(_) => ValueKind::I64,
            ValueVec::F64(_) => ValueKind::F64,
        }
    }

    /// Sorted indices of stored entries (the pattern — what a mask operand
    /// contributes regardless of lane).
    pub fn indices(&self) -> &[sparse::Idx] {
        match self {
            ValueVec::Bool(v) => v.indices(),
            ValueVec::I64(v) => v.indices(),
            ValueVec::F64(v) => v.indices(),
        }
    }

    /// Pattern-only copy (for mask operands of SpGEVM kernels).
    pub fn pattern(&self) -> SparseVec<()> {
        match self {
            ValueVec::Bool(v) => v.pattern(),
            ValueVec::I64(v) => v.pattern(),
            ValueVec::F64(v) => v.pattern(),
        }
    }
}

impl From<SparseVec<bool>> for ValueVec {
    fn from(v: SparseVec<bool>) -> Self {
        ValueVec::Bool(Arc::new(v))
    }
}

impl From<SparseVec<i64>> for ValueVec {
    fn from(v: SparseVec<i64>) -> Self {
        ValueVec::I64(Arc::new(v))
    }
}

impl From<SparseVec<f64>> for ValueVec {
    fn from(v: SparseVec<f64>) -> Self {
        ValueVec::F64(Arc::new(v))
    }
}

/// One registered vector: the current value plus a version stamp (bumped on
/// every [`Context::update_vec`], which is how plan-cache coherence works
/// for frontier-style vectors that change every level).
#[derive(Clone)]
struct VecEntry {
    vec: ValueVec,
    version: u64,
}

/// An evictable auxiliary slot: built on demand, dropped under memory
/// pressure, rebuilt on the next request.
type Slot<T> = RwLock<Option<Arc<T>>>;

/// One registered matrix plus lazily-computed auxiliaries.
///
/// The heavyweight auxiliaries (CSC copy, transpose, degree vector) live in
/// evictable [`Slot`]s accounted against the context's byte budget; cheap
/// scalar statistics stay in `OnceLock`s. [`Context::update`] replaces the
/// whole entry, which is what makes invalidation correct by construction:
/// stale auxiliaries are unreachable, not flagged.
pub(crate) struct Entry {
    pub(crate) matrix: Arc<CsrMatrix<f64>>,
    pub(crate) version: u64,
    csc: Slot<CscMatrix<f64>>,
    transposed: Slot<CsrMatrix<f64>>,
    /// Registered handle for the transpose, so engine operations can use
    /// `Aᵀ` as an operand with its own cached auxiliaries. Owned by this
    /// entry: removed alongside it on update/remove.
    transpose_handle: OnceLock<MatrixHandle>,
    row_degrees: Slot<Vec<u32>>,
    /// Typed value-lane views of the matrix (`bool`/`i64` copies in CSR
    /// and CSC form), built lazily for operations that run on a non-`f64`
    /// lane and evicted like every other auxiliary.
    bool_view: Slot<CsrMatrix<bool>>,
    i64_view: Slot<CsrMatrix<i64>>,
    bool_csc: Slot<CscMatrix<bool>>,
    i64_csc: Slot<CscMatrix<i64>>,
    max_row_nnz: OnceLock<usize>,
    nonempty_rows: OnceLock<usize>,
    plan_class: OnceLock<u64>,
}

impl Entry {
    fn new(matrix: Arc<CsrMatrix<f64>>, version: u64) -> Self {
        Entry {
            matrix,
            version,
            csc: RwLock::new(None),
            transposed: RwLock::new(None),
            transpose_handle: OnceLock::new(),
            row_degrees: RwLock::new(None),
            bool_view: RwLock::new(None),
            i64_view: RwLock::new(None),
            bool_csc: RwLock::new(None),
            i64_csc: RwLock::new(None),
            max_row_nnz: OnceLock::new(),
            nonempty_rows: OnceLock::new(),
            plan_class: OnceLock::new(),
        }
    }

    pub(crate) fn max_row_nnz(&self) -> usize {
        *self.max_row_nnz.get_or_init(|| self.matrix.max_row_nnz())
    }

    pub(crate) fn nonempty_rows(&self) -> usize {
        *self
            .nonempty_rows
            .get_or_init(|| self.matrix.nonempty_rows())
    }

    fn clear_aux(&self, kind: AuxKind) {
        match kind {
            AuxKind::Csc => *self.csc.write().expect("csc slot lock") = None,
            AuxKind::Transpose => *self.transposed.write().expect("transpose slot lock") = None,
            AuxKind::RowDegrees => *self.row_degrees.write().expect("degrees slot lock") = None,
            AuxKind::BoolView => *self.bool_view.write().expect("bool view slot lock") = None,
            AuxKind::I64View => *self.i64_view.write().expect("i64 view slot lock") = None,
            AuxKind::BoolCsc => *self.bool_csc.write().expect("bool csc slot lock") = None,
            AuxKind::I64Csc => *self.i64_csc.write().expect("i64 csc slot lock") = None,
        }
    }
}

/// Which evictable auxiliary a ledger record tracks.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
enum AuxKind {
    Csc,
    Transpose,
    RowDegrees,
    BoolView,
    I64View,
    BoolCsc,
    I64Csc,
}

/// Byte accounting for the evictable auxiliaries, LRU-stamped.
struct AuxLedger {
    total_bytes: usize,
    budget_bytes: usize,
    stamp: u64,
    /// `(matrix id, kind)` → `(bytes, entry version, recency stamp)`.
    records: HashMap<(u64, AuxKind), (usize, u64, u64)>,
    evictions: u64,
}

impl AuxLedger {
    fn new() -> Self {
        AuxLedger {
            total_bytes: 0,
            budget_bytes: usize::MAX,
            stamp: 0,
            records: HashMap::new(),
            evictions: 0,
        }
    }
}

/// Observable state of the auxiliary cache (diagnostics and eviction
/// tests); obtained from [`Context::aux_cache_stats`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AuxCacheStats {
    /// Bytes currently charged for materialized CSC copies, transposes, and
    /// degree vectors.
    pub bytes: usize,
    /// Budget the cache is held under (`usize::MAX` = unbounded, the
    /// default).
    pub budget_bytes: usize,
    /// Auxiliaries dropped to stay under budget since the context was
    /// created.
    pub evictions: u64,
}

/// Which auxiliaries a handle currently has materialized (diagnostics and
/// cache-invalidation tests).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AuxStatus {
    /// Entry version (bumped by every [`Context::update`] that changes the
    /// matrix).
    pub version: u64,
    /// CSC copy built.
    pub has_csc: bool,
    /// Transpose built.
    pub has_transpose: bool,
    /// Row-degree vector built.
    pub has_row_degrees: bool,
    /// `bool`-lane CSR view built.
    pub has_bool_view: bool,
    /// `i64`-lane CSR view built.
    pub has_i64_view: bool,
}

/// Cheap per-matrix statistics read from the cache.
#[derive(Copy, Clone, Debug)]
pub struct MatrixStats {
    /// `(nrows, ncols)`.
    pub shape: (usize, usize),
    /// Stored entries.
    pub nnz: usize,
    /// Largest row population.
    pub max_row_nnz: usize,
    /// Rows with at least one entry.
    pub nonempty_rows: usize,
}

/// Plan-cache key: the structural fingerprint classes of the three operands
/// plus mask polarity. Versions and handle identities are deliberately
/// *absent* — structurally-similar matrices (same shape, same nnz regime)
/// share plans, which is what lets k-truss peels reuse a plan across
/// versions without even one re-planning pass.
type PlanKey = (u64, u64, u64, bool);

/// Approximate heap footprint of one plan-cache entry (key + plan + LRU
/// stamp + hash-map overhead), used for the byte budget.
const PLAN_ENTRY_BYTES: usize = mem::size_of::<(PlanKey, (Plan, u64))>() + 48;

struct PlanCacheState {
    map: HashMap<PlanKey, (Plan, u64)>,
    stamp: u64,
    budget_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCacheState {
    fn new() -> Self {
        PlanCacheState {
            map: HashMap::new(),
            stamp: 0,
            // ~1500 plans — far more operation classes than any workload
            // here produces, small enough to stay cache-resident.
            budget_bytes: 256 * 1024,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

/// Hit/miss/eviction counters of the fingerprint-keyed plan cache
/// ([`Context::plan_cache_stats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from cache. A hit after [`Context::update`] is a plan
    /// reused *across versions* — the k-truss peeling payoff.
    pub hits: u64,
    /// Plans computed by the cost model.
    pub misses: u64,
    /// Entries dropped by the byte-budgeted LRU.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached.
    pub bytes: usize,
}

/// Orchestration context for masked SpGEMM workloads.
///
/// Owns the worker pool, a registry of matrices with lazily-cached
/// auxiliaries (CSC form, transpose, degree vectors, row statistics, flop
/// estimates), and the cost-model configuration used by [`Context::plan`].
/// Operations are described by [`crate::MaskedOp`] descriptors built with
/// [`Context::op`] and executed one at a time ([`crate::OpBuilder::run`]) or
/// as heterogeneous streaming batches ([`Context::for_each_result`]).
///
/// ```
/// use engine::{Context, SemiringKind};
/// use sparse::CsrMatrix;
///
/// let ctx = Context::new();
/// let tri = CsrMatrix::try_new(
///     3, 3,
///     vec![0, 2, 4, 6],
///     vec![1, 2, 0, 2, 0, 1],
///     vec![1.0f64; 6],
/// ).unwrap();
/// let h = ctx.insert(tri);
/// // Count wedges closing each edge: M ⊙ (A·A) planned automatically.
/// let c = ctx.op(h, h, h).semiring(SemiringKind::PlusPair).run().unwrap();
/// assert_eq!(c.nnz(), 6);
/// ```
pub struct Context {
    pub(crate) pool: rayon::ThreadPool,
    pub(crate) threads: usize,
    pub(crate) cfg: RwLock<HybridConfig>,
    store: RwLock<HashMap<u64, Arc<Entry>>>,
    vec_store: RwLock<HashMap<u64, VecEntry>>,
    next_id: AtomicU64,
    next_version: AtomicU64,
    flops_cache: RwLock<HashMap<(u64, u64, u64, u64), u64>>,
    plan_cache: Mutex<PlanCacheState>,
    aux_ledger: Mutex<AuxLedger>,
    /// Flop count below which planned products skip the worker pool and run
    /// serially on the calling thread (0 = never; installed by
    /// [`Context::calibrate`] from the measured dispatch overhead).
    serial_cutoff: RwLock<f64>,
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

/// Approximate heap footprint of a CSR matrix, for the aux-cache ledger.
fn csr_bytes<T>(m: &CsrMatrix<T>) -> usize {
    (m.nrows() + 1) * mem::size_of::<usize>()
        + m.nnz() * (mem::size_of::<u32>() + mem::size_of::<T>())
}

/// Approximate heap footprint of a CSC matrix, for the aux-cache ledger.
fn csc_bytes<T>(m: &CscMatrix<T>) -> usize {
    (m.ncols() + 1) * mem::size_of::<usize>()
        + m.nnz() * (mem::size_of::<u32>() + mem::size_of::<T>())
}

/// Quantize a count to ~1.5× steps (most-significant bit plus the bit
/// below): counts within one step land in the same structural class.
fn log_bucket(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let b = 63 - (n as u64).leading_zeros() as u64;
    let half = if b >= 1 { (n as u64 >> (b - 1)) & 1 } else { 0 };
    1 + ((b << 1) | half)
}

impl Context {
    /// Context using the ambient parallelism (the `THREADS` env override,
    /// an enclosing `ThreadPool::install`, or available cores) and the
    /// default cost model.
    pub fn new() -> Self {
        Self::with_threads(rayon::current_num_threads())
    }

    /// Context with a fixed worker count (intra-op parallelism and batch
    /// width). The workers are persistent: spawned here, parked between
    /// operations, and shared by single-op row parallelism and batch
    /// execution alike.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        Context {
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build worker pool"),
            threads,
            cfg: RwLock::new(HybridConfig::default()),
            store: RwLock::new(HashMap::new()),
            vec_store: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            next_version: AtomicU64::new(1),
            flops_cache: RwLock::new(HashMap::new()),
            plan_cache: Mutex::new(PlanCacheState::new()),
            aux_ledger: Mutex::new(AuxLedger::new()),
            serial_cutoff: RwLock::new(0.0),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current cost-model constants.
    pub fn config(&self) -> HybridConfig {
        *self.cfg.read().expect("config lock")
    }

    /// Replace the cost-model constants (see [`Context::calibrate`]).
    pub fn set_config(&self, cfg: HybridConfig) {
        *self.cfg.write().expect("config lock") = cfg;
        // Plans embed cost estimates; a new model invalidates them.
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.map.clear();
    }

    // ------------------------------------------------------------- budgets

    /// Cap the bytes held by evictable auxiliaries (CSC copies, transposes,
    /// degree vectors). When a newly built auxiliary pushes the total over
    /// the budget, the least-recently-used auxiliaries are dropped (and
    /// transparently rebuilt if requested again). Default: unbounded.
    pub fn set_aux_budget(&self, bytes: usize) {
        {
            let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
            ledger.budget_bytes = bytes;
        }
        self.enforce_aux_budget(None);
    }

    /// Current auxiliary-cache accounting.
    pub fn aux_cache_stats(&self) -> AuxCacheStats {
        let ledger = self.aux_ledger.lock().expect("aux ledger lock");
        AuxCacheStats {
            bytes: ledger.total_bytes,
            budget_bytes: ledger.budget_bytes,
            evictions: ledger.evictions,
        }
    }

    /// Cap the bytes held by the fingerprint-keyed plan cache (LRU
    /// eviction). Default: 256 KiB.
    pub fn set_plan_budget(&self, bytes: usize) {
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.budget_bytes = bytes;
        Self::enforce_plan_budget(&mut pc);
    }

    /// Hit/miss/eviction counters of the plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let pc = self.plan_cache.lock().expect("plan lock");
        PlanCacheStats {
            hits: pc.hits,
            misses: pc.misses,
            evictions: pc.evictions,
            entries: pc.map.len(),
            bytes: pc.map.len() * PLAN_ENTRY_BYTES,
        }
    }

    // ------------------------------------------------------------ registry

    /// Register a matrix and return its handle.
    pub fn insert(&self, matrix: CsrMatrix<f64>) -> MatrixHandle {
        self.insert_shared(Arc::new(matrix))
    }

    /// Register an already-shared matrix without copying it (e.g. a cached
    /// transpose obtained from [`Context::transposed`]).
    pub fn insert_shared(&self, matrix: Arc<CsrMatrix<f64>>) -> MatrixHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(Entry::new(matrix, version));
        self.store.write().expect("store lock").insert(id, entry);
        MatrixHandle(id)
    }

    /// Replace the matrix behind `handle`, invalidating all cached
    /// auxiliaries (including superseded flops-cache entries and any
    /// derived transpose handle). An update with an identical matrix (same
    /// structure and values) keeps the cache warm instead.
    pub fn update(&self, handle: MatrixHandle, matrix: CsrMatrix<f64>) {
        let derived;
        {
            let mut store = self.store.write().expect("store lock");
            let entry = store.get_mut(&handle.0).expect("handle not registered");
            if entry.matrix.nnz() == matrix.nnz()
                && entry.matrix.shape() == matrix.shape()
                && *entry.matrix == matrix
            {
                return; // no change — cached auxiliaries stay valid
            }
            derived = entry.transpose_handle.get().copied();
            let version = self.next_version.fetch_add(1, Ordering::Relaxed);
            *entry = Arc::new(Entry::new(Arc::new(matrix), version));
            if let Some(d) = derived {
                store.remove(&d.0);
            }
        }
        // Superseded versions can never be queried again; drop their
        // derived-cache entries so update-in-a-loop workloads stay bounded.
        self.purge_caches(handle.0);
        if let Some(d) = derived {
            self.purge_caches(d.0);
        }
    }

    /// Drop a matrix, its auxiliaries, and any derived transpose handle.
    pub fn remove(&self, handle: MatrixHandle) {
        let derived = {
            let mut store = self.store.write().expect("store lock");
            let derived = store
                .remove(&handle.0)
                .and_then(|e| e.transpose_handle.get().copied());
            if let Some(d) = derived {
                store.remove(&d.0);
            }
            derived
        };
        self.purge_caches(handle.0);
        if let Some(d) = derived {
            self.purge_caches(d.0);
        }
    }

    /// Current sizes of the derived caches, `(flops entries, plan entries)`
    /// — diagnostics and leak tests.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            self.flops_cache.read().expect("flops lock").len(),
            self.plan_cache.lock().expect("plan lock").map.len(),
        )
    }

    /// Drop every flops-cache and ledger record mentioning matrix id `id`.
    /// (Plan-cache entries are keyed by structural class, not identity, so
    /// they stay — they remain valid for any future operand of the same
    /// class and are bounded by the LRU budget.)
    fn purge_caches(&self, id: u64) {
        self.flops_cache
            .write()
            .expect("flops lock")
            .retain(|&(a, _, b, _), _| a != id && b != id);
        let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
        let AuxLedger {
            records,
            total_bytes,
            ..
        } = &mut *ledger;
        records.retain(|&(rid, _), &mut (bytes, _, _)| {
            if rid == id {
                *total_bytes -= bytes;
                false
            } else {
                true
            }
        });
    }

    pub(crate) fn entry(&self, handle: MatrixHandle) -> Arc<Entry> {
        self.store
            .read()
            .expect("store lock")
            .get(&handle.0)
            .expect("handle not registered")
            .clone()
    }

    /// The matrix behind a handle.
    pub fn matrix(&self, handle: MatrixHandle) -> Arc<CsrMatrix<f64>> {
        self.entry(handle).matrix.clone()
    }

    // ------------------------------------------------------ vector registry

    /// Register a sparse vector (any value lane) and return its handle.
    ///
    /// ```
    /// use engine::Context;
    /// use sparse::SparseVec;
    ///
    /// let ctx = Context::with_threads(1);
    /// let h = ctx.insert_vec(SparseVec::try_new(8, vec![2], vec![true]).unwrap());
    /// assert_eq!(ctx.vector(h).nnz(), 1);
    /// ```
    pub fn insert_vec(&self, vec: impl Into<ValueVec>) -> VectorHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        self.vec_store.write().expect("vec store lock").insert(
            id,
            VecEntry {
                vec: vec.into(),
                version,
            },
        );
        VectorHandle(id)
    }

    /// Replace the vector behind `handle` (the lane may change). Frontier
    /// and visited sets evolve every BFS level; the handle identity — and
    /// therefore the descriptor referencing it — stays stable.
    pub fn update_vec(&self, handle: VectorHandle, vec: impl Into<ValueVec>) {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let mut store = self.vec_store.write().expect("vec store lock");
        let entry = store
            .get_mut(&handle.0)
            .expect("vector handle not registered");
        *entry = VecEntry {
            vec: vec.into(),
            version,
        };
    }

    /// Drop a registered vector.
    pub fn remove_vec(&self, handle: VectorHandle) {
        self.vec_store
            .write()
            .expect("vec store lock")
            .remove(&handle.0);
    }

    /// The vector behind a handle (cheap clone — the entries are shared).
    pub fn vector(&self, handle: VectorHandle) -> ValueVec {
        self.vec_entry(handle).vec
    }

    /// Version stamp of the vector behind `handle` (bumped by every
    /// [`Context::update_vec`]) — diagnostics and cache-coherence tests.
    pub fn vec_version(&self, handle: VectorHandle) -> u64 {
        self.vec_entry(handle).version
    }

    fn vec_entry(&self, handle: VectorHandle) -> VecEntry {
        self.vec_store
            .read()
            .expect("vec store lock")
            .get(&handle.0)
            .expect("vector handle not registered")
            .clone()
    }

    /// The structural fingerprint class of the vector behind `handle`:
    /// dimension, nnz quantized to ~1.5× steps, and value lane — the
    /// vector analogue of [`Context::plan_fingerprint`], so vector-operand
    /// plans are cached across BFS levels whose frontiers stay in the same
    /// population regime.
    pub fn vec_plan_fingerprint(&self, handle: VectorHandle) -> u64 {
        let e = self.vec_entry(handle);
        let mut h = 0x9e37_79b9_7f4a_7c15u64; // distinct seed: never collides
        let mut mix = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(e.vec.dim() as u64);
        mix(log_bucket(e.vec.nnz()));
        mix(match e.vec.value_kind() {
            ValueKind::Bool => 1,
            ValueKind::I64 => 2,
            ValueKind::F64 => 3,
        });
        h
    }

    // ------------------------------------------------------- serial cutoff

    /// Route planned products whose estimated flop count falls below
    /// `flops` to the serial in-thread path instead of dispatching the
    /// worker pool ([`Plan::serial`](crate::Plan)). [`Context::calibrate`]
    /// installs `dispatch_overhead / msa_secs_per_flop` here — the work
    /// level at which waking the pool costs as much as the product itself.
    /// `0.0` (the default before calibration) disables the cutoff.
    pub fn set_serial_cutoff_flops(&self, flops: f64) {
        *self.serial_cutoff.write().expect("cutoff lock") = flops;
        // Cached plans embed the serial decision; recompute them.
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.map.clear();
    }

    /// The current planner serial cutoff, in estimated flops.
    pub fn serial_cutoff_flops(&self) -> f64 {
        *self.serial_cutoff.read().expect("cutoff lock")
    }

    // --------------------------------------------------- evictable caches

    /// Record use of `(id, kind)` in the ledger (insert or touch), then
    /// evict least-recently-used auxiliaries if over budget.
    fn charge_aux(&self, handle: MatrixHandle, version: u64, kind: AuxKind, bytes: usize) {
        // An update/remove may have superseded `version` while the builder
        // ran (it held the old entry Arc, not the store lock). Charging
        // then would leave a phantom record: the purge already happened,
        // and the built auxiliary is reachable only through the caller's
        // transient Arc. Holding the store read lock across the check and
        // the insert excludes a concurrent update's replace-then-purge
        // (update purges only after releasing its store write lock, so it
        // will see and remove any record inserted here first).
        {
            let store = self.store.read().expect("store lock");
            if store.get(&handle.0).is_none_or(|e| e.version != version) {
                return;
            }
            let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
            ledger.stamp += 1;
            let stamp = ledger.stamp;
            if let Some(old) = ledger
                .records
                .insert((handle.0, kind), (bytes, version, stamp))
            {
                ledger.total_bytes -= old.0;
            }
            ledger.total_bytes += bytes;
        }
        self.enforce_aux_budget(Some((handle.0, kind)));
    }

    /// Bump the recency stamp of `(id, kind)` on a cache hit.
    fn touch_aux(&self, handle: MatrixHandle, kind: AuxKind) {
        let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
        ledger.stamp += 1;
        let stamp = ledger.stamp;
        if let Some(rec) = ledger.records.get_mut(&(handle.0, kind)) {
            rec.2 = stamp;
        }
    }

    /// Evict LRU auxiliaries until the ledger is back under budget.
    /// `protect` (the auxiliary just built) is evicted only last, so one
    /// oversized auxiliary cannot thrash itself out while still in use.
    fn enforce_aux_budget(&self, protect: Option<(u64, AuxKind)>) {
        loop {
            let victim = {
                let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
                if ledger.total_bytes <= ledger.budget_bytes {
                    return;
                }
                let victim_key = ledger
                    .records
                    .iter()
                    .filter(|(k, _)| Some(**k) != protect)
                    .min_by_key(|(_, (_, _, stamp))| *stamp)
                    .map(|(k, _)| *k);
                match victim_key {
                    None => return, // only the protected record remains
                    Some(key) => {
                        let (bytes, version, _) =
                            ledger.records.remove(&key).expect("victim present");
                        ledger.total_bytes -= bytes;
                        ledger.evictions += 1;
                        (key, version)
                    }
                }
            };
            let ((id, kind), version) = victim;
            // Drop the Arc from the slot (borrowers keep theirs alive).
            // Skip if the entry was replaced since the record was written.
            let entry = self.store.read().expect("store lock").get(&id).cloned();
            if let Some(entry) = entry {
                if entry.version == version {
                    entry.clear_aux(kind);
                }
            }
        }
    }

    /// The shared slot discipline of every evictable auxiliary: serve and
    /// LRU-touch a resident value, otherwise build it, publish it (first
    /// writer wins a build race), and charge the ledger.
    fn cached_aux<T: Send + Sync>(
        &self,
        handle: MatrixHandle,
        kind: AuxKind,
        slot: impl for<'a> Fn(&'a Entry) -> &'a Slot<T>,
        build: impl FnOnce(&CsrMatrix<f64>) -> T,
        bytes: impl FnOnce(&T) -> usize,
    ) -> Arc<T> {
        let e = self.entry(handle);
        if let Some(v) = slot(&e).read().expect("aux slot lock").clone() {
            self.touch_aux(handle, kind);
            return v;
        }
        let built = Arc::new(build(&e.matrix));
        let nbytes = bytes(&built);
        let out = {
            let mut s = slot(&e).write().expect("aux slot lock");
            match &*s {
                Some(existing) => existing.clone(), // lost a build race
                None => {
                    *s = Some(built.clone());
                    built
                }
            }
        };
        self.charge_aux(handle, e.version, kind, nbytes);
        out
    }

    /// Cached CSC form (built on first call, dropped under budget
    /// pressure, rebuilt on demand).
    pub fn csc(&self, handle: MatrixHandle) -> Arc<CscMatrix<f64>> {
        self.cached_aux(
            handle,
            AuxKind::Csc,
            |e| &e.csc,
            CscMatrix::from_csr,
            csc_bytes,
        )
    }

    /// Cached transpose (built on first call, dropped under budget
    /// pressure, rebuilt on demand).
    pub fn transposed(&self, handle: MatrixHandle) -> Arc<CsrMatrix<f64>> {
        self.cached_aux(
            handle,
            AuxKind::Transpose,
            |e| &e.transposed,
            transpose,
            csr_bytes,
        )
    }

    /// Cached `bool`-lane view of the matrix (`v != 0.0` per entry) —
    /// what boolean-semiring operations (BFS frontier expansion) multiply
    /// against instead of re-deriving a boolean copy per call.
    pub fn bool_view(&self, handle: MatrixHandle) -> Arc<CsrMatrix<bool>> {
        self.cached_aux(
            handle,
            AuxKind::BoolView,
            |e| &e.bool_view,
            |m| m.map(|&v| bool::from_f64(v)),
            csr_bytes,
        )
    }

    /// Cached `i64`-lane view of the matrix (values truncated) — the
    /// operand of exact integer-semiring operations.
    pub fn i64_view(&self, handle: MatrixHandle) -> Arc<CsrMatrix<i64>> {
        self.cached_aux(
            handle,
            AuxKind::I64View,
            |e| &e.i64_view,
            |m| m.map(|&v| i64::from_f64(v)),
            csr_bytes,
        )
    }

    /// Cached CSC form of the `bool`-lane view (pull-based boolean ops).
    /// The CSR view is fetched inside the build closure, so a resident CSC
    /// is served without touching (or rebuilding) the view slot.
    pub fn bool_csc(&self, handle: MatrixHandle) -> Arc<CscMatrix<bool>> {
        self.cached_aux(
            handle,
            AuxKind::BoolCsc,
            |e| &e.bool_csc,
            |_| CscMatrix::from_csr(&self.bool_view(handle)),
            csc_bytes,
        )
    }

    /// Cached CSC form of the `i64`-lane view (pull-based integer ops; see
    /// [`Context::bool_csc`] for the lazy-view discipline).
    pub fn i64_csc(&self, handle: MatrixHandle) -> Arc<CscMatrix<i64>> {
        self.cached_aux(
            handle,
            AuxKind::I64Csc,
            |e| &e.i64_csc,
            |_| CscMatrix::from_csr(&self.i64_view(handle)),
            csc_bytes,
        )
    }

    /// Handle for the cached transpose, registered on first call and owned
    /// by the parent entry: it shares the cached `Aᵀ` storage, carries its
    /// own auxiliaries (degrees, CSC, plans), and is removed or invalidated
    /// together with the parent. Lets repeated calls (BC sweeps, similarity
    /// joins) use `Aᵀ` as an operand without re-registering it per call.
    pub fn transpose_handle(&self, handle: MatrixHandle) -> MatrixHandle {
        let e = self.entry(handle);
        *e.transpose_handle
            .get_or_init(|| self.insert_shared(self.transposed(handle)))
    }

    /// Cached row-degree vector (built on first call, dropped under budget
    /// pressure, rebuilt on demand).
    pub fn row_degrees(&self, handle: MatrixHandle) -> Arc<Vec<u32>> {
        self.cached_aux(
            handle,
            AuxKind::RowDegrees,
            |e| &e.row_degrees,
            |m| (0..m.nrows()).map(|i| m.row_nnz(i) as u32).collect(),
            |d| d.len() * mem::size_of::<u32>(),
        )
    }

    /// Cheap cached statistics.
    pub fn stats(&self, handle: MatrixHandle) -> MatrixStats {
        let e = self.entry(handle);
        MatrixStats {
            shape: e.matrix.shape(),
            nnz: e.matrix.nnz(),
            max_row_nnz: e.max_row_nnz(),
            nonempty_rows: e.nonempty_rows(),
        }
    }

    /// Which auxiliaries are currently materialized for `handle`.
    pub fn aux_status(&self, handle: MatrixHandle) -> AuxStatus {
        let e = self.entry(handle);
        let has_csc = e.csc.read().expect("csc slot lock").is_some();
        let has_transpose = e.transposed.read().expect("transpose slot lock").is_some();
        let has_row_degrees = e.row_degrees.read().expect("degrees slot lock").is_some();
        let has_bool_view = e.bool_view.read().expect("bool view slot lock").is_some();
        let has_i64_view = e.i64_view.read().expect("i64 view slot lock").is_some();
        AuxStatus {
            version: e.version,
            has_csc,
            has_transpose,
            has_row_degrees,
            has_bool_view,
            has_i64_view,
        }
    }

    /// The structural fingerprint class of the matrix behind `handle` —
    /// the quantity that keys the plan cache.
    ///
    /// Where [`CsrMatrix::structural_fingerprint`] hashes the exact
    /// structure (equal only for identical patterns), this class hashes the
    /// *regime* the planner's cost model actually discriminates on: the
    /// shape plus the nonzero count quantized to ~1.5× steps. Two versions
    /// of a peeled edge set whose nnz stays within one step share a class,
    /// so a plan computed for one is served for the other.
    pub fn plan_fingerprint(&self, handle: MatrixHandle) -> u64 {
        let e = self.entry(handle);
        *e.plan_class.get_or_init(|| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |word: u64| {
                h ^= word;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            };
            mix(e.matrix.nrows() as u64);
            mix(e.matrix.ncols() as u64);
            mix(log_bucket(e.matrix.nnz()));
            h
        })
    }

    /// `flops(A·B)` with pair-level caching (invalidated by updates to
    /// either operand, since entry versions key the cache).
    pub fn flops(&self, a: MatrixHandle, b: MatrixHandle) -> u64 {
        let (ea, eb) = (self.entry(a), self.entry(b));
        let key = (a.0, ea.version, b.0, eb.version);
        if let Some(&f) = self.flops_cache.read().expect("flops lock").get(&key) {
            return f;
        }
        let bdeg = self.row_degrees(b);
        let f: u64 = ea
            .matrix
            .colidx()
            .iter()
            .map(|&k| bdeg[k as usize] as u64)
            .sum();
        self.flops_cache.write().expect("flops lock").insert(key, f);
        f
    }

    // ----------------------------------------------------------- planning

    fn enforce_plan_budget(pc: &mut PlanCacheState) {
        while pc.map.len() * PLAN_ENTRY_BYTES > pc.budget_bytes {
            let victim = pc
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    pc.map.remove(&k);
                    pc.evictions += 1;
                }
                None => return,
            }
        }
    }

    /// Choose an algorithm and phase discipline for `M ⊙ (A·B)`
    /// (or `¬M ⊙` with `complemented`) from cached statistics.
    ///
    /// Plans are cached under the operands' structural fingerprint classes
    /// ([`Context::plan_fingerprint`]): re-planning the same multiply is a
    /// map lookup, and so is planning a *structurally similar* one — after
    /// a [`Context::update`] that stays in the same nnz regime (a k-truss
    /// peel, a re-weighted graph), the cached plan is served without even
    /// one cost-model pass. The cache is a byte-budgeted LRU
    /// ([`Context::set_plan_budget`], [`Context::plan_cache_stats`]).
    pub fn plan(
        &self,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<Plan, SparseError> {
        plan::validate(self, mask, a, b)?;
        let key: PlanKey = (
            self.plan_fingerprint(mask),
            self.plan_fingerprint(a),
            self.plan_fingerprint(b),
            complemented,
        );
        {
            let mut pc = self.plan_cache.lock().expect("plan lock");
            pc.stamp += 1;
            let stamp = pc.stamp;
            let cached = pc.map.get_mut(&key).map(|entry| {
                entry.1 = stamp;
                entry.0
            });
            if let Some(plan) = cached {
                pc.hits += 1;
                return Ok(plan);
            }
        }
        let plan = plan::plan(self, mask, complemented, a, b)?;
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.misses += 1;
        pc.stamp += 1;
        let stamp = pc.stamp;
        pc.map.insert(key, (plan, stamp));
        Self::enforce_plan_budget(&mut pc);
        Ok(plan)
    }

    /// Choose push or pull for the vector-operand multiply `v = m ⊙ (u·B)`
    /// (or `¬m ⊙`) — Beamer's direction heuristic as a planner decision
    /// (see [`crate::Plan`]); plans are cached under the operands'
    /// structural fingerprint classes like matrix plans, with the vector
    /// classes covering dimension, nnz regime, and value lane
    /// ([`Context::vec_plan_fingerprint`]). Consecutive BFS levels whose
    /// frontiers stay in the same population regime — and repeated
    /// traversals of the same graph — are served from cache.
    pub fn plan_vec(
        &self,
        mask: VectorHandle,
        complemented: bool,
        u: VectorHandle,
        b: MatrixHandle,
    ) -> Result<Plan, SparseError> {
        plan::validate_vec(self, mask, u, b)?;
        let key: PlanKey = (
            self.vec_plan_fingerprint(mask),
            self.vec_plan_fingerprint(u),
            self.plan_fingerprint(b),
            complemented,
        );
        {
            let mut pc = self.plan_cache.lock().expect("plan lock");
            pc.stamp += 1;
            let stamp = pc.stamp;
            let cached = pc.map.get_mut(&key).map(|entry| {
                entry.1 = stamp;
                entry.0
            });
            if let Some(plan) = cached {
                pc.hits += 1;
                return Ok(plan);
            }
        }
        let plan = plan::plan_vec(self, mask, complemented, u, b)?;
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.misses += 1;
        pc.stamp += 1;
        let stamp = pc.stamp;
        pc.map.insert(key, (plan, stamp));
        Self::enforce_plan_budget(&mut pc);
        Ok(plan)
    }

    // ----------------------------------------------------------- execution

    /// Run one masked SpGEMM under an explicit plan against caller-supplied
    /// typed operand views — the lane-generic core every execution entry
    /// point (the `f64` handle path and the typed-lane dispatch in
    /// [`crate::MaskedOp`] execution) shares. `b_csc` is invoked only when
    /// the plan actually pulls, so CSC views are materialized on demand.
    ///
    /// A [`Plan::serial`](crate::Plan) plan with a fixed algorithm runs the
    /// serial scratch driver on the calling thread (bit-identical rows, no
    /// pool dispatch) — the calibrated cutoff for products whose work is
    /// smaller than the cost of waking the workers.
    pub(crate) fn execute_mat_views<S>(
        &self,
        plan: &Plan,
        sr: S,
        mask: &CsrMatrix<f64>,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
        b_csc: &mut dyn FnMut() -> Arc<CscMatrix<S::B>>,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring,
        S::B: Clone,
        S::C: Default + Send + Sync,
    {
        let cfg = self.config();
        if plan.serial {
            // A sub-cutoff product is not worth per-row hybrid dispatch
            // either: reduce a Hybrid choice to its best-ranked fixed
            // family (same reduction the batch workers use) so `serial`
            // always means "no pool wake", as documented.
            let alg = crate::batch::fixed_algorithm(plan);
            let csc = (alg == Algorithm::Inner).then(&mut *b_csc);
            let mut scratch: ScratchSet<S> = ScratchSet::new();
            return scratch.run(alg, plan.complemented, sr, mask, a, b, csc.as_deref());
        }
        match plan.choice {
            Choice::Fixed(Algorithm::Inner) => {
                let csc = b_csc();
                self.pool.install(|| {
                    masked_spgemm_csc(
                        Algorithm::Inner,
                        plan.phases,
                        plan.complemented,
                        sr,
                        mask,
                        a,
                        &csc,
                    )
                })
            }
            Choice::Fixed(alg) => self
                .pool
                .install(|| masked_spgemm(alg, plan.phases, plan.complemented, sr, mask, a, b)),
            Choice::Hybrid => {
                let csc = b_csc();
                self.pool
                    .install(|| hybrid_masked_spgemm(plan.phases, cfg, sr, mask, a, b, &csc))
            }
        }
    }

    /// Run one masked SpGEMM under an explicit plan (row-parallel kernels
    /// on the context's pool, cached auxiliaries) on the canonical `f64`
    /// lane.
    pub(crate) fn execute_planned<S>(
        &self,
        plan: &Plan,
        sr: S,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let (em, ea, eb) = (self.entry(mask), self.entry(a), self.entry(b));
        self.execute_mat_views(plan, sr, &em.matrix, &ea.matrix, &eb.matrix, &mut || {
            self.csc(b)
        })
    }

    /// Run one masked SpGEMM under an explicit plan.
    #[deprecated(
        since = "0.3.0",
        note = "build a `MaskedOp` with `Context::op` and set explicit \
                `algorithm`/`phases` overrides instead"
    )]
    pub fn run_planned<S>(
        &self,
        plan: &Plan,
        sr: S,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        self.execute_planned(plan, sr, mask, a, b)
    }

    /// Plan and run one masked SpGEMM: `C = M ⊙ (A·B)` (or `¬M ⊙`).
    #[deprecated(
        since = "0.3.0",
        note = "use `Context::op(mask, a, b).semiring(...).run()`"
    )]
    pub fn masked_spgemm<S>(
        &self,
        sr: S,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let plan = self.plan(mask, complemented, a, b)?;
        self.execute_planned(&plan, sr, mask, a, b)
    }

    /// Run with a forced algorithm and phase discipline (bypasses the
    /// planner but still uses cached auxiliaries). The typed-semiring
    /// counterpart of `Context::op(..).algorithm(..).phases(..).run()`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with<S>(
        &self,
        algorithm: Algorithm,
        phases: Phases,
        sr: S,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let plan = Plan::fixed(algorithm, phases, complemented);
        self.execute_planned(&plan, sr, mask, a, b)
    }
}
