//! The [`Context`]: matrix registry, budgeted auxiliary cache, and
//! execution entry points.

use std::collections::HashMap;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use masked_spgemm::{
    hybrid_masked_spgemm, masked_spgemm, masked_spgemm_csc, Algorithm, DynLane, HybridConfig,
    LaneValue, Phases, ScratchSet, ValueKind,
};
use sparse::transpose::transpose;
use sparse::{CscMatrix, CsrMatrix, Idx, Semiring, SparseError, SparseVec};

use crate::plan::{self, Choice, Plan};

/// Handle to a matrix registered in a [`Context`].
///
/// Handles are cheap copies; the matrix and its cached auxiliaries live in
/// the context. A handle stays valid across [`Context::update`] calls (the
/// auxiliaries are invalidated, the identity persists) and dangles only
/// after [`Context::remove`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MatrixHandle(pub(crate) u64);

/// Handle to a sparse vector registered in a [`Context`] (BFS frontiers,
/// visited sets, distance vectors). Like [`MatrixHandle`], handles are
/// cheap copies; the vector lives in the context and stays addressable
/// across [`Context::update_vec`] calls.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct VectorHandle(pub(crate) u64);

/// A registered sparse vector, tagged with its value lane.
///
/// The variants hold `Arc`s, so a `ValueVec` is a cheap clone — reading a
/// vector out of the context never copies its entries.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueVec {
    /// Boolean lane (frontiers, reachability).
    Bool(Arc<SparseVec<bool>>),
    /// Integer lane (exact counts, tropical distances).
    I64(Arc<SparseVec<i64>>),
    /// Float lane.
    F64(Arc<SparseVec<f64>>),
}

impl ValueVec {
    /// Dimension (number of addressable positions).
    pub fn dim(&self) -> usize {
        match self {
            ValueVec::Bool(v) => v.dim(),
            ValueVec::I64(v) => v.dim(),
            ValueVec::F64(v) => v.dim(),
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        match self {
            ValueVec::Bool(v) => v.nnz(),
            ValueVec::I64(v) => v.nnz(),
            ValueVec::F64(v) => v.nnz(),
        }
    }

    /// Which value lane the entries live on.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            ValueVec::Bool(_) => ValueKind::Bool,
            ValueVec::I64(_) => ValueKind::I64,
            ValueVec::F64(_) => ValueKind::F64,
        }
    }

    /// Sorted indices of stored entries (the pattern — what a mask operand
    /// contributes regardless of lane).
    pub fn indices(&self) -> &[sparse::Idx] {
        match self {
            ValueVec::Bool(v) => v.indices(),
            ValueVec::I64(v) => v.indices(),
            ValueVec::F64(v) => v.indices(),
        }
    }

    /// Pattern-only copy (for mask operands of SpGEVM kernels).
    pub fn pattern(&self) -> SparseVec<()> {
        match self {
            ValueVec::Bool(v) => v.pattern(),
            ValueVec::I64(v) => v.pattern(),
            ValueVec::F64(v) => v.pattern(),
        }
    }
}

impl From<SparseVec<bool>> for ValueVec {
    fn from(v: SparseVec<bool>) -> Self {
        ValueVec::Bool(Arc::new(v))
    }
}

impl From<SparseVec<i64>> for ValueVec {
    fn from(v: SparseVec<i64>) -> Self {
        ValueVec::I64(Arc::new(v))
    }
}

impl From<SparseVec<f64>> for ValueVec {
    fn from(v: SparseVec<f64>) -> Self {
        ValueVec::F64(Arc::new(v))
    }
}

/// A registered matrix, stored **natively** on one value lane — the matrix
/// counterpart of [`ValueVec`] and the storage unit of the registry.
///
/// This is the inversion of the old `f64`-canonical scheme: a boolean
/// adjacency matrix registered with [`Context::insert_bool`] keeps its
/// entries at 1 byte/nnz and is multiplied directly by `bool`-lane kernels
/// (zero-copy), while *cross-lane casts* — not the native storage — are the
/// on-demand, byte-budgeted auxiliaries ([`Context::bool_view`] /
/// [`Context::i64_view`] / [`Context::f64_view`] when the requested lane
/// differs from the stored one).
///
/// The variants hold `Arc`s, so a `ValueMat` is a cheap clone — reading a
/// matrix out of the context never copies its entries.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueMat {
    /// Boolean lane (adjacency patterns, reachability).
    Bool(Arc<CsrMatrix<bool>>),
    /// Integer lane (exact counts, tropical distances).
    I64(Arc<CsrMatrix<i64>>),
    /// Float lane (the historical canonical storage).
    F64(Arc<CsrMatrix<f64>>),
}

impl ValueMat {
    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            ValueMat::Bool(m) => m.shape(),
            ValueMat::I64(m) => m.shape(),
            ValueMat::F64(m) => m.shape(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.shape().0
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.shape().1
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        match self {
            ValueMat::Bool(m) => m.nnz(),
            ValueMat::I64(m) => m.nnz(),
            ValueMat::F64(m) => m.nnz(),
        }
    }

    /// Which value lane the entries live on.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            ValueMat::Bool(_) => ValueKind::Bool,
            ValueMat::I64(_) => ValueKind::I64,
            ValueMat::F64(_) => ValueKind::F64,
        }
    }

    /// Heap bytes of the native storage, with values billed at the stored
    /// lane's actual width ([`ValueKind::value_bytes`] — 1 byte/nnz for
    /// `bool`, not `f64` width).
    pub fn bytes(&self) -> usize {
        let structure = match self {
            ValueMat::Bool(m) => m.structure_bytes(),
            ValueMat::I64(m) => m.structure_bytes(),
            ValueMat::F64(m) => m.structure_bytes(),
        };
        structure + self.nnz() * self.value_kind().value_bytes()
    }

    /// Row pointers — the structure is lane-independent, so structural
    /// consumers (planner, flop counting) read it without dispatching.
    pub(crate) fn rowptr(&self) -> &[usize] {
        match self {
            ValueMat::Bool(m) => m.rowptr(),
            ValueMat::I64(m) => m.rowptr(),
            ValueMat::F64(m) => m.rowptr(),
        }
    }

    /// Column indices of all stored entries, row-major (lane-independent).
    pub(crate) fn colidx(&self) -> &[Idx] {
        match self {
            ValueMat::Bool(m) => m.colidx(),
            ValueMat::I64(m) => m.colidx(),
            ValueMat::F64(m) => m.colidx(),
        }
    }

    /// Column indices of row `i`.
    pub(crate) fn row_cols(&self, i: usize) -> &[Idx] {
        let (s, e) = (self.rowptr()[i], self.rowptr()[i + 1]);
        &self.colidx()[s..e]
    }

    /// Stored entries in row `i`.
    pub(crate) fn row_nnz(&self, i: usize) -> usize {
        self.rowptr()[i + 1] - self.rowptr()[i]
    }

    fn max_row_nnz(&self) -> usize {
        match self {
            ValueMat::Bool(m) => m.max_row_nnz(),
            ValueMat::I64(m) => m.max_row_nnz(),
            ValueMat::F64(m) => m.max_row_nnz(),
        }
    }

    fn nonempty_rows(&self) -> usize {
        match self {
            ValueMat::Bool(m) => m.nonempty_rows(),
            ValueMat::I64(m) => m.nonempty_rows(),
            ValueMat::F64(m) => m.nonempty_rows(),
        }
    }

    /// Native-lane transpose (the lane travels with the structure).
    fn transposed(&self) -> ValueMat {
        match self {
            ValueMat::Bool(m) => ValueMat::Bool(Arc::new(transpose(m))),
            ValueMat::I64(m) => ValueMat::I64(Arc::new(transpose(m))),
            ValueMat::F64(m) => ValueMat::F64(Arc::new(transpose(m))),
        }
    }

    /// Cast to lane `T` (see [`LaneValue`]'s cast rules). Callers are
    /// expected to have taken the zero-copy native path already when
    /// `T::KIND == self.value_kind()`.
    fn cast<T: LaneValue>(&self) -> CsrMatrix<T> {
        match self {
            ValueMat::Bool(m) => m.map_values(T::cast_from),
            ValueMat::I64(m) => m.map_values(T::cast_from),
            ValueMat::F64(m) => m.map_values(T::cast_from),
        }
    }
}

impl From<CsrMatrix<bool>> for ValueMat {
    fn from(m: CsrMatrix<bool>) -> Self {
        ValueMat::Bool(Arc::new(m))
    }
}

impl From<CsrMatrix<i64>> for ValueMat {
    fn from(m: CsrMatrix<i64>) -> Self {
        ValueMat::I64(Arc::new(m))
    }
}

impl From<CsrMatrix<f64>> for ValueMat {
    fn from(m: CsrMatrix<f64>) -> Self {
        ValueMat::F64(Arc::new(m))
    }
}

impl From<Arc<CsrMatrix<bool>>> for ValueMat {
    fn from(m: Arc<CsrMatrix<bool>>) -> Self {
        ValueMat::Bool(m)
    }
}

impl From<Arc<CsrMatrix<i64>>> for ValueMat {
    fn from(m: Arc<CsrMatrix<i64>>) -> Self {
        ValueMat::I64(m)
    }
}

impl From<Arc<CsrMatrix<f64>>> for ValueMat {
    fn from(m: Arc<CsrMatrix<f64>>) -> Self {
        ValueMat::F64(m)
    }
}

/// One registered vector: the current value plus a version stamp (bumped on
/// every [`Context::update_vec`], which is how plan-cache coherence works
/// for frontier-style vectors that change every level).
#[derive(Clone)]
struct VecEntry {
    vec: ValueVec,
    version: u64,
}

/// An evictable auxiliary slot: built on demand, dropped under memory
/// pressure, rebuilt on the next request.
type Slot<T> = RwLock<Option<Arc<T>>>;

/// One registered matrix plus lazily-computed auxiliaries.
///
/// The matrix itself is stored **natively typed** ([`ValueMat`]); the
/// heavyweight auxiliaries — per-lane cast views and CSC forms, the
/// native-lane transpose, the degree vector — live in evictable [`Slot`]s
/// accounted against the context's byte budget, and cheap scalar
/// statistics stay in `OnceLock`s. A cast/CSC slot exists per lane, but
/// the slot of the *stored* lane is never populated: requests for the
/// native lane are served zero-copy from `matrix` itself.
/// [`Context::update_typed`] replaces the whole entry, which is what makes
/// invalidation correct by construction: stale auxiliaries (every lane's)
/// are unreachable, not flagged.
pub(crate) struct Entry {
    pub(crate) matrix: ValueMat,
    pub(crate) version: u64,
    /// Cross-lane cast views in CSR form, one slot per non-native lane.
    cast_bool: Slot<CsrMatrix<bool>>,
    cast_i64: Slot<CsrMatrix<i64>>,
    cast_f64: Slot<CsrMatrix<f64>>,
    /// CSC forms per lane (the stored lane's slot holds the CSC of the
    /// native matrix; others hold the CSC of the lane's cast view).
    csc_bool: Slot<CscMatrix<bool>>,
    csc_i64: Slot<CscMatrix<i64>>,
    csc_f64: Slot<CscMatrix<f64>>,
    /// Native-lane transpose.
    transposed: Slot<ValueMat>,
    /// Registered handle for the transpose, so engine operations can use
    /// `Aᵀ` as an operand with its own cached auxiliaries. Owned by this
    /// entry: removed alongside it on update/remove.
    transpose_handle: OnceLock<MatrixHandle>,
    row_degrees: Slot<Vec<u32>>,
    max_row_nnz: OnceLock<usize>,
    nonempty_rows: OnceLock<usize>,
    plan_class: OnceLock<u64>,
}

impl Entry {
    fn new(matrix: ValueMat, version: u64) -> Self {
        Entry {
            matrix,
            version,
            cast_bool: RwLock::new(None),
            cast_i64: RwLock::new(None),
            cast_f64: RwLock::new(None),
            csc_bool: RwLock::new(None),
            csc_i64: RwLock::new(None),
            csc_f64: RwLock::new(None),
            transposed: RwLock::new(None),
            transpose_handle: OnceLock::new(),
            row_degrees: RwLock::new(None),
            max_row_nnz: OnceLock::new(),
            nonempty_rows: OnceLock::new(),
            plan_class: OnceLock::new(),
        }
    }

    pub(crate) fn max_row_nnz(&self) -> usize {
        *self.max_row_nnz.get_or_init(|| self.matrix.max_row_nnz())
    }

    pub(crate) fn nonempty_rows(&self) -> usize {
        *self
            .nonempty_rows
            .get_or_init(|| self.matrix.nonempty_rows())
    }

    fn clear_aux(&self, kind: AuxKind) {
        match kind {
            AuxKind::Cast(ValueKind::Bool) => {
                *self.cast_bool.write().expect("bool cast slot lock") = None
            }
            AuxKind::Cast(ValueKind::I64) => {
                *self.cast_i64.write().expect("i64 cast slot lock") = None
            }
            AuxKind::Cast(ValueKind::F64) => {
                *self.cast_f64.write().expect("f64 cast slot lock") = None
            }
            AuxKind::Csc(ValueKind::Bool) => {
                *self.csc_bool.write().expect("bool csc slot lock") = None
            }
            AuxKind::Csc(ValueKind::I64) => {
                *self.csc_i64.write().expect("i64 csc slot lock") = None
            }
            AuxKind::Csc(ValueKind::F64) => {
                *self.csc_f64.write().expect("f64 csc slot lock") = None
            }
            AuxKind::Transpose => *self.transposed.write().expect("transpose slot lock") = None,
            AuxKind::RowDegrees => *self.row_degrees.write().expect("degrees slot lock") = None,
        }
    }
}

/// Which evictable auxiliary a ledger record tracks. Cast views and CSC
/// forms are tracked *per lane*, which is what lets eviction, status
/// reporting, and invalidation reason about exactly one lane's slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
enum AuxKind {
    /// Cross-lane CSR cast view on the given lane.
    Cast(ValueKind),
    /// CSC form on the given lane.
    Csc(ValueKind),
    Transpose,
    RowDegrees,
}

/// Byte accounting for the evictable auxiliaries, LRU-stamped.
struct AuxLedger {
    total_bytes: usize,
    budget_bytes: usize,
    stamp: u64,
    /// `(matrix id, kind)` → `(bytes, entry version, recency stamp)`.
    records: HashMap<(u64, AuxKind), (usize, u64, u64)>,
    evictions: u64,
}

impl AuxLedger {
    fn new() -> Self {
        AuxLedger {
            total_bytes: 0,
            budget_bytes: usize::MAX,
            stamp: 0,
            records: HashMap::new(),
            evictions: 0,
        }
    }
}

/// Observable state of the auxiliary cache (diagnostics and eviction
/// tests); obtained from [`Context::aux_cache_stats`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AuxCacheStats {
    /// Bytes currently charged for materialized CSC copies, transposes, and
    /// degree vectors.
    pub bytes: usize,
    /// Budget the cache is held under (`usize::MAX` = unbounded, the
    /// default).
    pub budget_bytes: usize,
    /// Auxiliaries dropped to stay under budget since the context was
    /// created.
    pub evictions: u64,
}

/// Which auxiliaries a handle currently has materialized (diagnostics and
/// cache-invalidation tests).
///
/// The `has_*_view` flags report **cross-lane cast slots** only: the
/// stored lane is served zero-copy from the native matrix, so its flag is
/// always `false` — which is exactly how a test asserts that a natively
/// registered matrix never materialized a canonical copy on another lane.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AuxStatus {
    /// Entry version (bumped by every [`Context::update`] /
    /// [`Context::update_typed`] that changes the matrix).
    pub version: u64,
    /// CSC form of the **stored** lane built.
    pub has_csc: bool,
    /// Native-lane transpose built.
    pub has_transpose: bool,
    /// Row-degree vector built.
    pub has_row_degrees: bool,
    /// `bool`-lane CSR cast built (always `false` when stored `bool`).
    pub has_bool_view: bool,
    /// `i64`-lane CSR cast built (always `false` when stored `i64`).
    pub has_i64_view: bool,
    /// `f64`-lane CSR cast built (always `false` when stored `f64` — one
    /// half of the "no f64 canonical was ever manufactured" witness for
    /// natively `bool`/`i64` matrices; [`AuxStatus::has_f64_csc`] is the
    /// other).
    pub has_f64_view: bool,
    /// `bool`-lane CSC built (for the stored lane this duplicates
    /// [`AuxStatus::has_csc`]).
    pub has_bool_csc: bool,
    /// `i64`-lane CSC built.
    pub has_i64_csc: bool,
    /// `f64`-lane CSC built — an `f64`-valued CSC on a `bool`/`i64`-stored
    /// entry is as much an f64 detour as a cast view, so the witness must
    /// see it.
    pub has_f64_csc: bool,
}

/// Cheap per-matrix statistics read from the cache.
#[derive(Copy, Clone, Debug)]
pub struct MatrixStats {
    /// `(nrows, ncols)`.
    pub shape: (usize, usize),
    /// Stored entries.
    pub nnz: usize,
    /// Largest row population.
    pub max_row_nnz: usize,
    /// Rows with at least one entry.
    pub nonempty_rows: usize,
    /// The lane the matrix is natively stored on.
    pub value: ValueKind,
    /// Heap bytes of the native storage (values billed at the stored
    /// lane's width — see [`ValueMat::bytes`]).
    pub bytes: usize,
}

/// Plan-cache key: the structural fingerprint classes of the three operands
/// plus mask polarity. Versions and handle identities are deliberately
/// *absent* — structurally-similar matrices (same shape, same nnz regime)
/// share plans, which is what lets k-truss peels reuse a plan across
/// versions without even one re-planning pass.
type PlanKey = (u64, u64, u64, bool);

/// Approximate heap footprint of one plan-cache entry (key + plan + LRU
/// stamp + hash-map overhead), used for the byte budget.
const PLAN_ENTRY_BYTES: usize = mem::size_of::<(PlanKey, (Plan, u64))>() + 48;

struct PlanCacheState {
    map: HashMap<PlanKey, (Plan, u64)>,
    stamp: u64,
    budget_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCacheState {
    fn new() -> Self {
        PlanCacheState {
            map: HashMap::new(),
            stamp: 0,
            // ~1500 plans — far more operation classes than any workload
            // here produces, small enough to stay cache-resident.
            budget_bytes: 256 * 1024,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

/// Hit/miss/eviction counters of the fingerprint-keyed plan cache
/// ([`Context::plan_cache_stats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from cache. A hit after [`Context::update`] is a plan
    /// reused *across versions* — the k-truss peeling payoff.
    pub hits: u64,
    /// Plans computed by the cost model.
    pub misses: u64,
    /// Entries dropped by the byte-budgeted LRU.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached.
    pub bytes: usize,
}

/// Orchestration context for masked SpGEMM workloads.
///
/// Owns the worker pool, a registry of matrices with lazily-cached
/// auxiliaries (CSC form, transpose, degree vectors, row statistics, flop
/// estimates), and the cost-model configuration used by [`Context::plan`].
/// Operations are described by [`crate::MaskedOp`] descriptors built with
/// [`Context::op`] and executed one at a time ([`crate::OpBuilder::run`]) or
/// as heterogeneous streaming batches ([`Context::for_each_result`]).
///
/// ```
/// use engine::{Context, SemiringKind};
/// use sparse::CsrMatrix;
///
/// let ctx = Context::new();
/// let tri = CsrMatrix::try_new(
///     3, 3,
///     vec![0, 2, 4, 6],
///     vec![1, 2, 0, 2, 0, 1],
///     vec![1.0f64; 6],
/// ).unwrap();
/// let h = ctx.insert(tri);
/// // Count wedges closing each edge: M ⊙ (A·A) planned automatically.
/// let c = ctx.op(h, h, h).semiring(SemiringKind::PlusPair).run().unwrap();
/// assert_eq!(c.nnz(), 6);
/// ```
pub struct Context {
    pub(crate) pool: rayon::ThreadPool,
    pub(crate) threads: usize,
    pub(crate) cfg: RwLock<HybridConfig>,
    store: RwLock<HashMap<u64, Arc<Entry>>>,
    vec_store: RwLock<HashMap<u64, VecEntry>>,
    next_id: AtomicU64,
    next_version: AtomicU64,
    flops_cache: RwLock<HashMap<(u64, u64, u64, u64), u64>>,
    plan_cache: Mutex<PlanCacheState>,
    aux_ledger: Mutex<AuxLedger>,
    /// Flop count below which planned products skip the worker pool and run
    /// serially on the calling thread (0 = never; installed by
    /// [`Context::calibrate`] from the measured dispatch overhead).
    serial_cutoff: RwLock<f64>,
    /// Reusable per-lane SpGEVM kernel scratch for the single-op vector
    /// path (batch workers hold their own sets). Guarded by `try_lock`
    /// with a transient-scratch fallback, so concurrent single ops never
    /// block each other — they just skip the reuse.
    pub(crate) vec_scratch: VecScratch,
}

/// One reusable erased-semiring SpGEVM scratch set per value lane.
pub(crate) struct VecScratch {
    pub(crate) bool_: Mutex<ScratchSet<DynLane<bool>>>,
    pub(crate) i64_: Mutex<ScratchSet<DynLane<i64>>>,
    pub(crate) f64_: Mutex<ScratchSet<DynLane<f64>>>,
}

impl VecScratch {
    fn new() -> Self {
        VecScratch {
            bool_: Mutex::new(ScratchSet::new()),
            i64_: Mutex::new(ScratchSet::new()),
            f64_: Mutex::new(ScratchSet::new()),
        }
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

/// Heap footprint of a CSR matrix for the aux-cache ledger — delegates to
/// [`CsrMatrix::heap_bytes`], which bills values at the *actual* stored
/// lane's width (a `bool` cast view costs 1 byte/nnz, not `f64` width).
fn csr_bytes<T>(m: &CsrMatrix<T>) -> usize {
    m.heap_bytes()
}

/// Heap footprint of a CSC matrix for the aux-cache ledger (same
/// per-stored-lane accounting as [`csr_bytes`]).
fn csc_bytes<T>(m: &CscMatrix<T>) -> usize {
    m.heap_bytes()
}

/// Quantize a count to ~1.5× steps (most-significant bit plus the bit
/// below): counts within one step land in the same structural class.
fn log_bucket(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let b = 63 - (n as u64).leading_zeros() as u64;
    let half = if b >= 1 { (n as u64 >> (b - 1)) & 1 } else { 0 };
    1 + ((b << 1) | half)
}

impl Context {
    /// Context using the ambient parallelism (the `THREADS` env override,
    /// an enclosing `ThreadPool::install`, or available cores) and the
    /// default cost model.
    pub fn new() -> Self {
        Self::with_threads(rayon::current_num_threads())
    }

    /// Context with a fixed worker count (intra-op parallelism and batch
    /// width). The workers are persistent: spawned here, parked between
    /// operations, and shared by single-op row parallelism and batch
    /// execution alike.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        Context {
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build worker pool"),
            threads,
            cfg: RwLock::new(HybridConfig::default()),
            store: RwLock::new(HashMap::new()),
            vec_store: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            next_version: AtomicU64::new(1),
            flops_cache: RwLock::new(HashMap::new()),
            plan_cache: Mutex::new(PlanCacheState::new()),
            aux_ledger: Mutex::new(AuxLedger::new()),
            serial_cutoff: RwLock::new(0.0),
            vec_scratch: VecScratch::new(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current cost-model constants.
    pub fn config(&self) -> HybridConfig {
        *self.cfg.read().expect("config lock")
    }

    /// Replace the cost-model constants (see [`Context::calibrate`]).
    pub fn set_config(&self, cfg: HybridConfig) {
        *self.cfg.write().expect("config lock") = cfg;
        // Plans embed cost estimates; a new model invalidates them.
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.map.clear();
    }

    // ------------------------------------------------------------- budgets

    /// Cap the bytes held by evictable auxiliaries (CSC copies, transposes,
    /// degree vectors). When a newly built auxiliary pushes the total over
    /// the budget, the least-recently-used auxiliaries are dropped (and
    /// transparently rebuilt if requested again). Default: unbounded.
    pub fn set_aux_budget(&self, bytes: usize) {
        {
            let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
            ledger.budget_bytes = bytes;
        }
        self.enforce_aux_budget(None);
    }

    /// Current auxiliary-cache accounting.
    pub fn aux_cache_stats(&self) -> AuxCacheStats {
        let ledger = self.aux_ledger.lock().expect("aux ledger lock");
        AuxCacheStats {
            bytes: ledger.total_bytes,
            budget_bytes: ledger.budget_bytes,
            evictions: ledger.evictions,
        }
    }

    /// Cap the bytes held by the fingerprint-keyed plan cache (LRU
    /// eviction). Default: 256 KiB.
    pub fn set_plan_budget(&self, bytes: usize) {
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.budget_bytes = bytes;
        Self::enforce_plan_budget(&mut pc);
    }

    /// Hit/miss/eviction counters of the plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let pc = self.plan_cache.lock().expect("plan lock");
        PlanCacheStats {
            hits: pc.hits,
            misses: pc.misses,
            evictions: pc.evictions,
            entries: pc.map.len(),
            bytes: pc.map.len() * PLAN_ENTRY_BYTES,
        }
    }

    // ------------------------------------------------------------ registry

    /// Register a matrix on the `f64` lane and return its handle —
    /// equivalent to [`Context::insert_typed`] with an `f64` matrix; the
    /// historical entry point, kept so existing call sites compile
    /// unchanged.
    pub fn insert(&self, matrix: CsrMatrix<f64>) -> MatrixHandle {
        self.insert_typed(matrix)
    }

    /// Register an already-shared `f64` matrix without copying it (e.g. a
    /// cached transpose obtained from [`Context::transposed`]).
    pub fn insert_shared(&self, matrix: Arc<CsrMatrix<f64>>) -> MatrixHandle {
        self.insert_typed(ValueMat::F64(matrix))
    }

    /// Register a matrix with **native** storage on its own value lane.
    ///
    /// Accepts a typed `CsrMatrix<bool|i64|f64>`, a shared
    /// `Arc<CsrMatrix<_>>`, or a [`ValueMat`]; the entries are stored as-is
    /// (a boolean adjacency costs 1 byte/nnz, with *no* `f64` canonical
    /// copy anywhere), operations whose lane matches the stored lane read
    /// it zero-copy, and cross-lane casts are built on demand as evictable
    /// auxiliaries.
    ///
    /// ```
    /// use engine::{Context, ValueKind};
    /// use sparse::CsrMatrix;
    ///
    /// let ctx = Context::with_threads(1);
    /// let adj = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![true, true]).unwrap();
    /// let h = ctx.insert_typed(adj);
    /// assert_eq!(ctx.stats(h).value, ValueKind::Bool);
    /// ```
    pub fn insert_typed(&self, matrix: impl Into<ValueMat>) -> MatrixHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(Entry::new(matrix.into(), version));
        self.store.write().expect("store lock").insert(id, entry);
        MatrixHandle(id)
    }

    /// Register a boolean matrix natively ([`Context::insert_typed`] on
    /// the `bool` lane).
    pub fn insert_bool(&self, matrix: CsrMatrix<bool>) -> MatrixHandle {
        self.insert_typed(matrix)
    }

    /// Register an integer matrix natively ([`Context::insert_typed`] on
    /// the `i64` lane).
    pub fn insert_i64(&self, matrix: CsrMatrix<i64>) -> MatrixHandle {
        self.insert_typed(matrix)
    }

    /// Replace the matrix behind `handle` on the `f64` lane — equivalent
    /// to [`Context::update_typed`] with an `f64` matrix.
    pub fn update(&self, handle: MatrixHandle, matrix: CsrMatrix<f64>) {
        self.update_typed(handle, matrix)
    }

    /// Replace the boolean matrix behind `handle`
    /// ([`Context::update_typed`] on the `bool` lane).
    pub fn update_bool(&self, handle: MatrixHandle, matrix: CsrMatrix<bool>) {
        self.update_typed(handle, matrix)
    }

    /// Replace the integer matrix behind `handle`
    /// ([`Context::update_typed`] on the `i64` lane).
    pub fn update_i64(&self, handle: MatrixHandle, matrix: CsrMatrix<i64>) {
        self.update_typed(handle, matrix)
    }

    /// Replace the matrix behind `handle` (the stored lane may change),
    /// invalidating all cached auxiliaries — every lane's cast and CSC
    /// slots, the transpose, degrees, superseded flops-cache entries, and
    /// any derived transpose handle. An update with an identical matrix
    /// (same lane, structure, and values) keeps the cache warm instead.
    pub fn update_typed(&self, handle: MatrixHandle, matrix: impl Into<ValueMat>) {
        let matrix = matrix.into();
        let derived;
        {
            let mut store = self.store.write().expect("store lock");
            let entry = store.get_mut(&handle.0).expect("handle not registered");
            if entry.matrix == matrix {
                return; // no change — cached auxiliaries stay valid
            }
            derived = entry.transpose_handle.get().copied();
            let version = self.next_version.fetch_add(1, Ordering::Relaxed);
            *entry = Arc::new(Entry::new(matrix, version));
            if let Some(d) = derived {
                store.remove(&d.0);
            }
        }
        // Superseded versions can never be queried again; drop their
        // derived-cache entries so update-in-a-loop workloads stay bounded.
        self.purge_caches(handle.0);
        if let Some(d) = derived {
            self.purge_caches(d.0);
        }
    }

    /// Drop a matrix, its auxiliaries, and any derived transpose handle.
    pub fn remove(&self, handle: MatrixHandle) {
        let derived = {
            let mut store = self.store.write().expect("store lock");
            let derived = store
                .remove(&handle.0)
                .and_then(|e| e.transpose_handle.get().copied());
            if let Some(d) = derived {
                store.remove(&d.0);
            }
            derived
        };
        self.purge_caches(handle.0);
        if let Some(d) = derived {
            self.purge_caches(d.0);
        }
    }

    /// Current sizes of the derived caches, `(flops entries, plan entries)`
    /// — diagnostics and leak tests.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            self.flops_cache.read().expect("flops lock").len(),
            self.plan_cache.lock().expect("plan lock").map.len(),
        )
    }

    /// Drop every flops-cache and ledger record mentioning matrix id `id`.
    /// (Plan-cache entries are keyed by structural class, not identity, so
    /// they stay — they remain valid for any future operand of the same
    /// class and are bounded by the LRU budget.)
    fn purge_caches(&self, id: u64) {
        self.flops_cache
            .write()
            .expect("flops lock")
            .retain(|&(a, _, b, _), _| a != id && b != id);
        let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
        let AuxLedger {
            records,
            total_bytes,
            ..
        } = &mut *ledger;
        records.retain(|&(rid, _), &mut (bytes, _, _)| {
            if rid == id {
                *total_bytes -= bytes;
                false
            } else {
                true
            }
        });
    }

    pub(crate) fn entry(&self, handle: MatrixHandle) -> Arc<Entry> {
        self.store
            .read()
            .expect("store lock")
            .get(&handle.0)
            .expect("handle not registered")
            .clone()
    }

    /// The natively-stored matrix behind a handle (cheap clone — the
    /// entries are shared, whatever lane they live on).
    pub fn value_mat(&self, handle: MatrixHandle) -> ValueMat {
        self.entry(handle).matrix.clone()
    }

    /// The value lane the matrix behind `handle` is natively stored on.
    pub fn matrix_kind(&self, handle: MatrixHandle) -> ValueKind {
        self.entry(handle).matrix.value_kind()
    }

    /// The `f64`-lane view of the matrix behind a handle: the native
    /// storage itself (zero-copy) when the entry is stored `f64`, else the
    /// cached cast ([`Context::f64_view`]). The historical accessor — for
    /// `f64`-registered matrices it behaves exactly as before; callers
    /// that want the native lane use [`Context::value_mat`].
    pub fn matrix(&self, handle: MatrixHandle) -> Arc<CsrMatrix<f64>> {
        self.f64_view(handle)
    }

    /// Total heap bytes of all natively-stored registry entries (cast/CSC
    /// auxiliaries are accounted separately — [`Context::aux_cache_stats`]).
    pub fn registry_bytes(&self) -> usize {
        self.store
            .read()
            .expect("store lock")
            .values()
            .map(|e| e.matrix.bytes())
            .sum()
    }

    // ------------------------------------------------------ vector registry

    /// Register a sparse vector (any value lane) and return its handle.
    ///
    /// ```
    /// use engine::Context;
    /// use sparse::SparseVec;
    ///
    /// let ctx = Context::with_threads(1);
    /// let h = ctx.insert_vec(SparseVec::try_new(8, vec![2], vec![true]).unwrap());
    /// assert_eq!(ctx.vector(h).nnz(), 1);
    /// ```
    pub fn insert_vec(&self, vec: impl Into<ValueVec>) -> VectorHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        self.vec_store.write().expect("vec store lock").insert(
            id,
            VecEntry {
                vec: vec.into(),
                version,
            },
        );
        VectorHandle(id)
    }

    /// Replace the vector behind `handle` (the lane may change). Frontier
    /// and visited sets evolve every BFS level; the handle identity — and
    /// therefore the descriptor referencing it — stays stable.
    pub fn update_vec(&self, handle: VectorHandle, vec: impl Into<ValueVec>) {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let mut store = self.vec_store.write().expect("vec store lock");
        let entry = store
            .get_mut(&handle.0)
            .expect("vector handle not registered");
        *entry = VecEntry {
            vec: vec.into(),
            version,
        };
    }

    /// Drop a registered vector.
    pub fn remove_vec(&self, handle: VectorHandle) {
        self.vec_store
            .write()
            .expect("vec store lock")
            .remove(&handle.0);
    }

    /// The vector behind a handle (cheap clone — the entries are shared).
    pub fn vector(&self, handle: VectorHandle) -> ValueVec {
        self.vec_entry(handle).vec
    }

    /// Version stamp of the vector behind `handle` (bumped by every
    /// [`Context::update_vec`]) — diagnostics and cache-coherence tests.
    pub fn vec_version(&self, handle: VectorHandle) -> u64 {
        self.vec_entry(handle).version
    }

    fn vec_entry(&self, handle: VectorHandle) -> VecEntry {
        self.vec_store
            .read()
            .expect("vec store lock")
            .get(&handle.0)
            .expect("vector handle not registered")
            .clone()
    }

    /// The structural fingerprint class of the vector behind `handle`:
    /// dimension, nnz quantized to ~1.5× steps, and value lane — the
    /// vector analogue of [`Context::plan_fingerprint`], so vector-operand
    /// plans are cached across BFS levels whose frontiers stay in the same
    /// population regime.
    pub fn vec_plan_fingerprint(&self, handle: VectorHandle) -> u64 {
        let e = self.vec_entry(handle);
        let mut h = 0x9e37_79b9_7f4a_7c15u64; // distinct seed: never collides
        let mut mix = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(e.vec.dim() as u64);
        mix(log_bucket(e.vec.nnz()));
        mix(match e.vec.value_kind() {
            ValueKind::Bool => 1,
            ValueKind::I64 => 2,
            ValueKind::F64 => 3,
        });
        h
    }

    // ------------------------------------------------------- serial cutoff

    /// Route planned products whose estimated flop count falls below
    /// `flops` to the serial in-thread path instead of dispatching the
    /// worker pool ([`Plan::serial`](crate::Plan)). [`Context::calibrate`]
    /// installs `dispatch_overhead / msa_secs_per_flop` here — the work
    /// level at which waking the pool costs as much as the product itself.
    /// `0.0` (the default before calibration) disables the cutoff.
    pub fn set_serial_cutoff_flops(&self, flops: f64) {
        *self.serial_cutoff.write().expect("cutoff lock") = flops;
        // Cached plans embed the serial decision; recompute them.
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.map.clear();
    }

    /// The current planner serial cutoff, in estimated flops.
    pub fn serial_cutoff_flops(&self) -> f64 {
        *self.serial_cutoff.read().expect("cutoff lock")
    }

    // --------------------------------------------------- evictable caches

    /// Record use of `(id, kind)` in the ledger (insert or touch), then
    /// evict least-recently-used auxiliaries if over budget.
    fn charge_aux(&self, handle: MatrixHandle, version: u64, kind: AuxKind, bytes: usize) {
        // An update/remove may have superseded `version` while the builder
        // ran (it held the old entry Arc, not the store lock). Charging
        // then would leave a phantom record: the purge already happened,
        // and the built auxiliary is reachable only through the caller's
        // transient Arc. Holding the store read lock across the check and
        // the insert excludes a concurrent update's replace-then-purge
        // (update purges only after releasing its store write lock, so it
        // will see and remove any record inserted here first).
        {
            let store = self.store.read().expect("store lock");
            if store.get(&handle.0).is_none_or(|e| e.version != version) {
                return;
            }
            let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
            ledger.stamp += 1;
            let stamp = ledger.stamp;
            if let Some(old) = ledger
                .records
                .insert((handle.0, kind), (bytes, version, stamp))
            {
                ledger.total_bytes -= old.0;
            }
            ledger.total_bytes += bytes;
        }
        self.enforce_aux_budget(Some((handle.0, kind)));
    }

    /// Bump the recency stamp of `(id, kind)` on a cache hit.
    fn touch_aux(&self, handle: MatrixHandle, kind: AuxKind) {
        let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
        ledger.stamp += 1;
        let stamp = ledger.stamp;
        if let Some(rec) = ledger.records.get_mut(&(handle.0, kind)) {
            rec.2 = stamp;
        }
    }

    /// Drop the ledger record of `(id, kind)` without clearing the slot —
    /// for auxiliaries whose ownership moved elsewhere (a transpose
    /// promoted to a registry entry), where eviction would free nothing.
    fn uncharge_aux(&self, handle: MatrixHandle, kind: AuxKind) {
        let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
        if let Some((bytes, _, _)) = ledger.records.remove(&(handle.0, kind)) {
            ledger.total_bytes -= bytes;
        }
    }

    /// Evict LRU auxiliaries until the ledger is back under budget.
    /// `protect` (the auxiliary just built) is evicted only last, so one
    /// oversized auxiliary cannot thrash itself out while still in use.
    fn enforce_aux_budget(&self, protect: Option<(u64, AuxKind)>) {
        loop {
            let victim = {
                let mut ledger = self.aux_ledger.lock().expect("aux ledger lock");
                if ledger.total_bytes <= ledger.budget_bytes {
                    return;
                }
                let victim_key = ledger
                    .records
                    .iter()
                    .filter(|(k, _)| Some(**k) != protect)
                    .min_by_key(|(_, (_, _, stamp))| *stamp)
                    .map(|(k, _)| *k);
                match victim_key {
                    None => return, // only the protected record remains
                    Some(key) => {
                        let (bytes, version, _) =
                            ledger.records.remove(&key).expect("victim present");
                        ledger.total_bytes -= bytes;
                        ledger.evictions += 1;
                        (key, version)
                    }
                }
            };
            let ((id, kind), version) = victim;
            // Drop the Arc from the slot (borrowers keep theirs alive).
            // Skip if the entry was replaced since the record was written.
            let entry = self.store.read().expect("store lock").get(&id).cloned();
            if let Some(entry) = entry {
                if entry.version == version {
                    entry.clear_aux(kind);
                }
            }
        }
    }

    /// The shared slot discipline of every evictable auxiliary: serve and
    /// LRU-touch a resident value, otherwise build it, publish it (first
    /// writer wins a build race), and charge the ledger. Only the
    /// **publishing** thread charges — a build-race loser must not insert
    /// a record for a value it did not publish, because the winner may
    /// have been [`Context::transposed_for_promote`], whose value is
    /// deliberately uncharged (owned by a registry entry); a loser's
    /// late charge would double-bill those bytes.
    fn cached_aux<T: Send + Sync>(
        &self,
        handle: MatrixHandle,
        kind: AuxKind,
        slot: impl for<'a> Fn(&'a Entry) -> &'a Slot<T>,
        build: impl FnOnce(&Entry) -> T,
        bytes: impl FnOnce(&T) -> usize,
    ) -> Arc<T> {
        let e = self.entry(handle);
        if let Some(v) = slot(&e).read().expect("aux slot lock").clone() {
            self.touch_aux(handle, kind);
            return v;
        }
        let built = Arc::new(build(&e));
        let nbytes = bytes(&built);
        let (out, published) = {
            let mut s = slot(&e).write().expect("aux slot lock");
            match &*s {
                Some(existing) => (existing.clone(), false), // lost a build race
                None => {
                    *s = Some(built.clone());
                    (built, true)
                }
            }
        };
        if published {
            self.charge_aux(handle, e.version, kind, nbytes);
        } else {
            self.touch_aux(handle, kind);
        }
        out
    }

    /// The `bool`-lane CSR form of the matrix: the native storage itself
    /// (zero-copy) when the entry was registered on the `bool` lane,
    /// otherwise the cached cast view (`v != 0` per entry) built on first
    /// call, dropped under budget pressure, and rebuilt on demand — what
    /// boolean-semiring operations (BFS frontier expansion) multiply
    /// against.
    pub fn bool_view(&self, handle: MatrixHandle) -> Arc<CsrMatrix<bool>> {
        if let ValueMat::Bool(m) = &self.entry(handle).matrix {
            return m.clone();
        }
        self.cached_aux(
            handle,
            AuxKind::Cast(ValueKind::Bool),
            |e| &e.cast_bool,
            |e| e.matrix.cast(),
            csr_bytes,
        )
    }

    /// The `i64`-lane CSR form (native zero-copy or cached cast; `f64`
    /// values truncate) — the operand of exact integer-semiring operations.
    pub fn i64_view(&self, handle: MatrixHandle) -> Arc<CsrMatrix<i64>> {
        if let ValueMat::I64(m) = &self.entry(handle).matrix {
            return m.clone();
        }
        self.cached_aux(
            handle,
            AuxKind::Cast(ValueKind::I64),
            |e| &e.cast_i64,
            |e| e.matrix.cast(),
            csr_bytes,
        )
    }

    /// The `f64`-lane CSR form (native zero-copy or cached cast) — the
    /// compatibility view behind [`Context::matrix`]. Natively `bool`/`i64`
    /// matrices only ever pay for this when an `f64`-lane operation
    /// actually asks for them.
    pub fn f64_view(&self, handle: MatrixHandle) -> Arc<CsrMatrix<f64>> {
        if let ValueMat::F64(m) = &self.entry(handle).matrix {
            return m.clone();
        }
        self.cached_aux(
            handle,
            AuxKind::Cast(ValueKind::F64),
            |e| &e.cast_f64,
            |e| e.matrix.cast(),
            csr_bytes,
        )
    }

    /// Cached CSC form on the `f64` lane (built from the `f64` view on
    /// first call, dropped under budget pressure, rebuilt on demand).
    pub fn csc(&self, handle: MatrixHandle) -> Arc<CscMatrix<f64>> {
        self.cached_aux(
            handle,
            AuxKind::Csc(ValueKind::F64),
            |e| &e.csc_f64,
            |_| CscMatrix::from_csr(&self.f64_view(handle)),
            csc_bytes,
        )
    }

    /// Cached CSC form on the `bool` lane (pull-based boolean ops). The
    /// CSR form is fetched inside the build closure, so a resident CSC is
    /// served without touching (or rebuilding) the cast slot; for natively
    /// `bool` matrices this is the CSC of the native storage.
    pub fn bool_csc(&self, handle: MatrixHandle) -> Arc<CscMatrix<bool>> {
        self.cached_aux(
            handle,
            AuxKind::Csc(ValueKind::Bool),
            |e| &e.csc_bool,
            |_| CscMatrix::from_csr(&self.bool_view(handle)),
            csc_bytes,
        )
    }

    /// Cached CSC form on the `i64` lane (pull-based integer ops; see
    /// [`Context::bool_csc`] for the lazy-view discipline).
    pub fn i64_csc(&self, handle: MatrixHandle) -> Arc<CscMatrix<i64>> {
        self.cached_aux(
            handle,
            AuxKind::Csc(ValueKind::I64),
            |e| &e.csc_i64,
            |_| CscMatrix::from_csr(&self.i64_view(handle)),
            csc_bytes,
        )
    }

    /// Cached native-lane transpose (built on first call, dropped under
    /// budget pressure, rebuilt on demand). The lane travels with the
    /// structure: a `bool`-stored matrix has a `bool` transpose.
    pub fn transposed_mat(&self, handle: MatrixHandle) -> ValueMat {
        (*self.cached_aux(
            handle,
            AuxKind::Transpose,
            |e| &e.transposed,
            |e| e.matrix.transposed(),
            |t| t.bytes(),
        ))
        .clone()
    }

    /// Cached transpose on the `f64` lane — the historical accessor,
    /// unchanged for `f64`-stored matrices (an evictable aux slot). For
    /// natively `bool`/`i64` matrices the native transpose is computed
    /// first and its `f64` cast is cached on the derived transpose
    /// handle, which this call registers ([`Context::transpose_handle`] —
    /// owned by the parent entry, freed with it).
    pub fn transposed(&self, handle: MatrixHandle) -> Arc<CsrMatrix<f64>> {
        match self.transposed_mat(handle) {
            ValueMat::F64(m) => m,
            _ => self.f64_view(self.transpose_handle(handle)),
        }
    }

    /// The transpose for promotion to a registry entry: serve or build the
    /// slot like [`Context::transposed_mat`], but **without** charging the
    /// ledger — the bytes are about to be owned by a registry entry
    /// (counted by `registry_bytes`), and charging first would evict
    /// unrelated hot auxiliaries to make room for a record that is
    /// immediately released again. Any record a concurrent
    /// [`Context::transposed_mat`] managed to charge is dropped (evicting
    /// the slot would free nothing once the entry pins the Arc).
    fn transposed_for_promote(&self, e: &Entry, handle: MatrixHandle) -> ValueMat {
        let resident = e.transposed.read().expect("transpose slot lock").clone();
        let out = match resident {
            Some(t) => (*t).clone(),
            None => {
                let built = Arc::new(e.matrix.transposed());
                let mut s = e.transposed.write().expect("transpose slot lock");
                match &*s {
                    Some(existing) => (**existing).clone(), // lost a build race
                    None => {
                        *s = Some(built.clone());
                        (*built).clone()
                    }
                }
            }
        };
        self.uncharge_aux(handle, AuxKind::Transpose);
        out
    }

    /// Handle for the cached transpose, registered on first call and owned
    /// by the parent entry: it shares the cached `Aᵀ` storage (on the
    /// parent's native lane), carries its own auxiliaries (degrees, CSC,
    /// plans), and is removed or invalidated together with the parent.
    /// Lets repeated calls (BC sweeps, similarity joins) use `Aᵀ` as an
    /// operand without re-registering it per call.
    pub fn transpose_handle(&self, handle: MatrixHandle) -> MatrixHandle {
        loop {
            let e = self.entry(handle);
            let derived = *e
                .transpose_handle
                .get_or_init(|| self.insert_typed(self.transposed_for_promote(&e, handle)));
            // A concurrent update/remove may have superseded `e` while the
            // init ran; its OnceLock (and the derived entry registered
            // into it) are then unreachable from the store, so the
            // update's derived-handle cleanup never saw them. Detect the
            // supersede, drop the orphan, and retry against the current
            // entry (same discipline as `charge_aux`'s version guard).
            let current = self
                .store
                .read()
                .expect("store lock")
                .get(&handle.0)
                .cloned();
            match current {
                Some(cur)
                    if cur.version == e.version || cur.transpose_handle.get() == Some(&derived) =>
                {
                    return derived;
                }
                Some(_) => self.remove(derived), // orphaned by an update — retry
                None => {
                    // Parent removed mid-init: the derived entry must not
                    // outlive it.
                    self.remove(derived);
                    panic!("handle not registered");
                }
            }
        }
    }

    /// Cached row-degree vector (structure-only; built on first call,
    /// dropped under budget pressure, rebuilt on demand).
    pub fn row_degrees(&self, handle: MatrixHandle) -> Arc<Vec<u32>> {
        self.cached_aux(
            handle,
            AuxKind::RowDegrees,
            |e| &e.row_degrees,
            |e| {
                (0..e.matrix.nrows())
                    .map(|i| e.matrix.row_nnz(i) as u32)
                    .collect()
            },
            |d| d.len() * mem::size_of::<u32>(),
        )
    }

    /// Cheap cached statistics.
    pub fn stats(&self, handle: MatrixHandle) -> MatrixStats {
        let e = self.entry(handle);
        MatrixStats {
            shape: e.matrix.shape(),
            nnz: e.matrix.nnz(),
            max_row_nnz: e.max_row_nnz(),
            nonempty_rows: e.nonempty_rows(),
            value: e.matrix.value_kind(),
            bytes: e.matrix.bytes(),
        }
    }

    /// Which auxiliaries are currently materialized for `handle` (see
    /// [`AuxStatus`] for the per-lane cast semantics).
    pub fn aux_status(&self, handle: MatrixHandle) -> AuxStatus {
        let e = self.entry(handle);
        let has_csc = match e.matrix.value_kind() {
            ValueKind::Bool => e.csc_bool.read().expect("csc slot lock").is_some(),
            ValueKind::I64 => e.csc_i64.read().expect("csc slot lock").is_some(),
            ValueKind::F64 => e.csc_f64.read().expect("csc slot lock").is_some(),
        };
        let status = AuxStatus {
            version: e.version,
            has_csc,
            has_transpose: e.transposed.read().expect("transpose slot lock").is_some(),
            has_row_degrees: e.row_degrees.read().expect("degrees slot lock").is_some(),
            has_bool_view: e.cast_bool.read().expect("bool cast slot lock").is_some(),
            has_i64_view: e.cast_i64.read().expect("i64 cast slot lock").is_some(),
            has_f64_view: e.cast_f64.read().expect("f64 cast slot lock").is_some(),
            has_bool_csc: e.csc_bool.read().expect("bool csc slot lock").is_some(),
            has_i64_csc: e.csc_i64.read().expect("i64 csc slot lock").is_some(),
            has_f64_csc: e.csc_f64.read().expect("f64 csc slot lock").is_some(),
        };
        status
    }

    /// The structural fingerprint class of the matrix behind `handle` —
    /// the quantity that keys the plan cache.
    ///
    /// Where [`CsrMatrix::structural_fingerprint`] hashes the exact
    /// structure (equal only for identical patterns), this class hashes the
    /// *regime* the planner's cost model actually discriminates on: the
    /// shape plus the nonzero count quantized to ~1.5× steps. Two versions
    /// of a peeled edge set whose nnz stays within one step share a class,
    /// so a plan computed for one is served for the other.
    pub fn plan_fingerprint(&self, handle: MatrixHandle) -> u64 {
        let e = self.entry(handle);
        *e.plan_class.get_or_init(|| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |word: u64| {
                h ^= word;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            };
            mix(e.matrix.nrows() as u64);
            mix(e.matrix.ncols() as u64);
            mix(log_bucket(e.matrix.nnz()));
            // The stored kind tags the class: a natively-bool operand and
            // its f64 twin resolve operands differently (zero-copy vs
            // cast), so their plans must not alias.
            mix(match e.matrix.value_kind() {
                ValueKind::Bool => 1,
                ValueKind::I64 => 2,
                ValueKind::F64 => 3,
            });
            h
        })
    }

    /// `flops(A·B)` with pair-level caching (invalidated by updates to
    /// either operand, since entry versions key the cache).
    pub fn flops(&self, a: MatrixHandle, b: MatrixHandle) -> u64 {
        let (ea, eb) = (self.entry(a), self.entry(b));
        let key = (a.0, ea.version, b.0, eb.version);
        if let Some(&f) = self.flops_cache.read().expect("flops lock").get(&key) {
            return f;
        }
        let bdeg = self.row_degrees(b);
        // Structure-only: the flop count never touches a value lane.
        let f: u64 = ea
            .matrix
            .colidx()
            .iter()
            .map(|&k| bdeg[k as usize] as u64)
            .sum();
        self.flops_cache.write().expect("flops lock").insert(key, f);
        f
    }

    // ----------------------------------------------------------- planning

    fn enforce_plan_budget(pc: &mut PlanCacheState) {
        while pc.map.len() * PLAN_ENTRY_BYTES > pc.budget_bytes {
            let victim = pc
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    pc.map.remove(&k);
                    pc.evictions += 1;
                }
                None => return,
            }
        }
    }

    /// Choose an algorithm and phase discipline for `M ⊙ (A·B)`
    /// (or `¬M ⊙` with `complemented`) from cached statistics.
    ///
    /// Plans are cached under the operands' structural fingerprint classes
    /// ([`Context::plan_fingerprint`]): re-planning the same multiply is a
    /// map lookup, and so is planning a *structurally similar* one — after
    /// a [`Context::update`] that stays in the same nnz regime (a k-truss
    /// peel, a re-weighted graph), the cached plan is served without even
    /// one cost-model pass. The cache is a byte-budgeted LRU
    /// ([`Context::set_plan_budget`], [`Context::plan_cache_stats`]).
    pub fn plan(
        &self,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<Plan, SparseError> {
        plan::validate(self, mask, a, b)?;
        let key: PlanKey = (
            self.plan_fingerprint(mask),
            self.plan_fingerprint(a),
            self.plan_fingerprint(b),
            complemented,
        );
        {
            let mut pc = self.plan_cache.lock().expect("plan lock");
            pc.stamp += 1;
            let stamp = pc.stamp;
            let cached = pc.map.get_mut(&key).map(|entry| {
                entry.1 = stamp;
                entry.0
            });
            if let Some(plan) = cached {
                pc.hits += 1;
                return Ok(plan);
            }
        }
        let plan = plan::plan(self, mask, complemented, a, b)?;
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.misses += 1;
        pc.stamp += 1;
        let stamp = pc.stamp;
        pc.map.insert(key, (plan, stamp));
        Self::enforce_plan_budget(&mut pc);
        Ok(plan)
    }

    /// Choose push or pull for the vector-operand multiply `v = m ⊙ (u·B)`
    /// (or `¬m ⊙`) — Beamer's direction heuristic as a planner decision
    /// (see [`crate::Plan`]); plans are cached under the operands'
    /// structural fingerprint classes like matrix plans, with the vector
    /// classes covering dimension, nnz regime, and value lane
    /// ([`Context::vec_plan_fingerprint`]). Consecutive BFS levels whose
    /// frontiers stay in the same population regime — and repeated
    /// traversals of the same graph — are served from cache.
    pub fn plan_vec(
        &self,
        mask: VectorHandle,
        complemented: bool,
        u: VectorHandle,
        b: MatrixHandle,
    ) -> Result<Plan, SparseError> {
        plan::validate_vec(self, mask, u, b)?;
        let key: PlanKey = (
            self.vec_plan_fingerprint(mask),
            self.vec_plan_fingerprint(u),
            self.plan_fingerprint(b),
            complemented,
        );
        {
            let mut pc = self.plan_cache.lock().expect("plan lock");
            pc.stamp += 1;
            let stamp = pc.stamp;
            let cached = pc.map.get_mut(&key).map(|entry| {
                entry.1 = stamp;
                entry.0
            });
            if let Some(plan) = cached {
                pc.hits += 1;
                return Ok(plan);
            }
        }
        let plan = plan::plan_vec(self, mask, complemented, u, b)?;
        let mut pc = self.plan_cache.lock().expect("plan lock");
        pc.misses += 1;
        pc.stamp += 1;
        let stamp = pc.stamp;
        pc.map.insert(key, (plan, stamp));
        Self::enforce_plan_budget(&mut pc);
        Ok(plan)
    }

    // ----------------------------------------------------------- execution

    /// Run one masked SpGEMM under an explicit plan against caller-supplied
    /// typed operand views — the lane-generic core every execution entry
    /// point (the `f64` handle path and the typed-lane dispatch in
    /// [`crate::MaskedOp`] execution) shares. The mask is consumed in its
    /// **native** storage (the kernels only read its pattern, so no lane
    /// cast is ever built for a mask operand); `b_csc` is invoked only when
    /// the plan actually pulls, so CSC views are materialized on demand.
    ///
    /// A [`Plan::serial`](crate::Plan) plan with a fixed algorithm runs the
    /// serial scratch driver on the calling thread (bit-identical rows, no
    /// pool dispatch) — the calibrated cutoff for products whose work is
    /// smaller than the cost of waking the workers.
    pub(crate) fn execute_mat_views<S>(
        &self,
        plan: &Plan,
        sr: S,
        mask: &ValueMat,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
        b_csc: &mut dyn FnMut() -> Arc<CscMatrix<S::B>>,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring,
        S::B: Clone,
        S::C: Default + Send + Sync,
    {
        match mask {
            ValueMat::Bool(m) => self.execute_mat_views_masked(plan, sr, m, a, b, b_csc),
            ValueMat::I64(m) => self.execute_mat_views_masked(plan, sr, m, a, b, b_csc),
            ValueMat::F64(m) => self.execute_mat_views_masked(plan, sr, m, a, b, b_csc),
        }
    }

    /// [`Context::execute_mat_views`] monomorphized per mask lane (the
    /// kernels are generic over the mask's scalar — only its pattern is
    /// read).
    fn execute_mat_views_masked<S, MT>(
        &self,
        plan: &Plan,
        sr: S,
        mask: &CsrMatrix<MT>,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
        b_csc: &mut dyn FnMut() -> Arc<CscMatrix<S::B>>,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring,
        S::B: Clone,
        S::C: Default + Send + Sync,
        MT: Copy + Sync,
    {
        let cfg = self.config();
        if plan.serial {
            // A sub-cutoff product is not worth per-row hybrid dispatch
            // either: reduce a Hybrid choice to its best-ranked fixed
            // family (same reduction the batch workers use) so `serial`
            // always means "no pool wake", as documented.
            let alg = crate::batch::fixed_algorithm(plan);
            let csc = (alg == Algorithm::Inner).then(&mut *b_csc);
            let mut scratch: ScratchSet<S> = ScratchSet::new();
            return scratch.run(alg, plan.complemented, sr, mask, a, b, csc.as_deref());
        }
        match plan.choice {
            Choice::Fixed(Algorithm::Inner) => {
                let csc = b_csc();
                self.pool.install(|| {
                    masked_spgemm_csc(
                        Algorithm::Inner,
                        plan.phases,
                        plan.complemented,
                        sr,
                        mask,
                        a,
                        &csc,
                    )
                })
            }
            Choice::Fixed(alg) => self
                .pool
                .install(|| masked_spgemm(alg, plan.phases, plan.complemented, sr, mask, a, b)),
            Choice::Hybrid => {
                let csc = b_csc();
                self.pool
                    .install(|| hybrid_masked_spgemm(plan.phases, cfg, sr, mask, a, b, &csc))
            }
        }
    }

    /// Run one masked SpGEMM under an explicit plan (row-parallel kernels
    /// on the context's pool, cached auxiliaries) on the canonical `f64`
    /// lane.
    pub(crate) fn execute_planned<S>(
        &self,
        plan: &Plan,
        sr: S,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let mask_vm = self.value_mat(mask);
        let (av, bv) = (self.f64_view(a), self.f64_view(b));
        self.execute_mat_views(plan, sr, &mask_vm, &av, &bv, &mut || self.csc(b))
    }

    /// Run one masked SpGEMM under an explicit plan.
    #[deprecated(
        since = "0.3.0",
        note = "build a `MaskedOp` with `Context::op` and set explicit \
                `algorithm`/`phases` overrides instead"
    )]
    pub fn run_planned<S>(
        &self,
        plan: &Plan,
        sr: S,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        self.execute_planned(plan, sr, mask, a, b)
    }

    /// Plan and run one masked SpGEMM: `C = M ⊙ (A·B)` (or `¬M ⊙`).
    #[deprecated(
        since = "0.3.0",
        note = "use `Context::op(mask, a, b).semiring(...).run()`"
    )]
    pub fn masked_spgemm<S>(
        &self,
        sr: S,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let plan = self.plan(mask, complemented, a, b)?;
        self.execute_planned(&plan, sr, mask, a, b)
    }

    /// Run with a forced algorithm and phase discipline (bypasses the
    /// planner but still uses cached auxiliaries). The typed-semiring
    /// counterpart of `Context::op(..).algorithm(..).phases(..).run()`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with<S>(
        &self,
        algorithm: Algorithm,
        phases: Phases,
        sr: S,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let plan = Plan::fixed(algorithm, phases, complemented);
        self.execute_planned(&plan, sr, mask, a, b)
    }
}
