//! The [`Context`]: matrix registry, auxiliary cache, and execution entry
//! points.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use masked_spgemm::{
    hybrid_masked_spgemm, masked_spgemm, masked_spgemm_csc, Algorithm, HybridConfig, Phases,
};
use sparse::transpose::transpose;
use sparse::{CscMatrix, CsrMatrix, Semiring, SparseError};

use crate::plan::{self, Choice, Plan};

/// Handle to a matrix registered in a [`Context`].
///
/// Handles are cheap copies; the matrix and its cached auxiliaries live in
/// the context. A handle stays valid across [`Context::update`] calls (the
/// auxiliaries are invalidated, the identity persists) and dangles only
/// after [`Context::remove`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MatrixHandle(u64);

/// One registered matrix plus lazily-computed auxiliaries.
///
/// Auxiliaries are built on first demand (`OnceLock`) so a workload that
/// never runs a pull-based scheme never pays for a CSC copy, and one that
/// never transposes never pays for `Aᵀ`. [`Context::update`] replaces the
/// whole entry, which is what makes invalidation correct by construction:
/// stale auxiliaries are unreachable, not flagged.
pub(crate) struct Entry {
    pub(crate) matrix: Arc<CsrMatrix<f64>>,
    pub(crate) version: u64,
    csc: OnceLock<Arc<CscMatrix<f64>>>,
    transposed: OnceLock<Arc<CsrMatrix<f64>>>,
    /// Registered handle for the transpose, so engine operations can use
    /// `Aᵀ` as an operand with its own cached auxiliaries. Owned by this
    /// entry: removed alongside it on update/remove.
    transpose_handle: OnceLock<MatrixHandle>,
    row_degrees: OnceLock<Arc<Vec<u32>>>,
    max_row_nnz: OnceLock<usize>,
    nonempty_rows: OnceLock<usize>,
}

impl Entry {
    fn new(matrix: Arc<CsrMatrix<f64>>, version: u64) -> Self {
        Entry {
            matrix,
            version,
            csc: OnceLock::new(),
            transposed: OnceLock::new(),
            transpose_handle: OnceLock::new(),
            row_degrees: OnceLock::new(),
            max_row_nnz: OnceLock::new(),
            nonempty_rows: OnceLock::new(),
        }
    }

    pub(crate) fn csc(&self) -> &Arc<CscMatrix<f64>> {
        self.csc
            .get_or_init(|| Arc::new(CscMatrix::from_csr(&self.matrix)))
    }

    pub(crate) fn transposed(&self) -> &Arc<CsrMatrix<f64>> {
        self.transposed
            .get_or_init(|| Arc::new(transpose(&self.matrix)))
    }

    pub(crate) fn row_degrees(&self) -> &Arc<Vec<u32>> {
        self.row_degrees.get_or_init(|| {
            Arc::new(
                (0..self.matrix.nrows())
                    .map(|i| self.matrix.row_nnz(i) as u32)
                    .collect(),
            )
        })
    }

    pub(crate) fn max_row_nnz(&self) -> usize {
        *self.max_row_nnz.get_or_init(|| self.matrix.max_row_nnz())
    }

    pub(crate) fn nonempty_rows(&self) -> usize {
        *self
            .nonempty_rows
            .get_or_init(|| self.matrix.nonempty_rows())
    }
}

/// Which auxiliaries a handle currently has materialized (diagnostics and
/// cache-invalidation tests).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AuxStatus {
    /// Entry version (bumped by every [`Context::update`] that changes the
    /// matrix).
    pub version: u64,
    /// CSC copy built.
    pub has_csc: bool,
    /// Transpose built.
    pub has_transpose: bool,
    /// Row-degree vector built.
    pub has_row_degrees: bool,
}

/// Cheap per-matrix statistics read from the cache.
#[derive(Copy, Clone, Debug)]
pub struct MatrixStats {
    /// `(nrows, ncols)`.
    pub shape: (usize, usize),
    /// Stored entries.
    pub nnz: usize,
    /// Largest row population.
    pub max_row_nnz: usize,
    /// Rows with at least one entry.
    pub nonempty_rows: usize,
}

/// Orchestration context for masked SpGEMM workloads.
///
/// Owns the worker pool, a registry of matrices with lazily-cached
/// auxiliaries (CSC form, transpose, degree vectors, row statistics, flop
/// estimates), and the cost-model configuration used by [`Context::plan`].
///
/// ```
/// use engine::Context;
/// use sparse::{CsrMatrix, PlusTimes};
///
/// let ctx = Context::new();
/// let tri = CsrMatrix::try_new(
///     3, 3,
///     vec![0, 2, 4, 6],
///     vec![1, 2, 0, 2, 0, 1],
///     vec![1.0f64; 6],
/// ).unwrap();
/// let h = ctx.insert(tri);
/// // Count wedges closing each edge: M ⊙ (A·A) planned automatically.
/// let c = ctx.masked_spgemm(PlusTimes::<f64>::new(), h, false, h, h).unwrap();
/// assert_eq!(c.nnz(), 6);
/// ```
pub struct Context {
    pub(crate) pool: rayon::ThreadPool,
    pub(crate) threads: usize,
    pub(crate) cfg: RwLock<HybridConfig>,
    store: RwLock<HashMap<u64, Arc<Entry>>>,
    next_id: AtomicU64,
    next_version: AtomicU64,
    flops_cache: RwLock<HashMap<(u64, u64, u64, u64), u64>>,
    plan_cache: RwLock<HashMap<PlanKey, Plan>>,
}

/// Plan-cache key: operand identities *and versions* plus polarity, so any
/// `update` to an operand automatically invalidates affected plans.
type PlanKey = (u64, u64, u64, u64, u64, u64, bool);

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    /// Context using all available parallelism and the default cost model.
    pub fn new() -> Self {
        Self::with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Context with a fixed worker count (intra-op parallelism and batch
    /// width).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        Context {
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build worker pool"),
            threads,
            cfg: RwLock::new(HybridConfig::default()),
            store: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            next_version: AtomicU64::new(1),
            flops_cache: RwLock::new(HashMap::new()),
            plan_cache: RwLock::new(HashMap::new()),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current cost-model constants.
    pub fn config(&self) -> HybridConfig {
        *self.cfg.read().expect("config lock")
    }

    /// Replace the cost-model constants (see [`crate::calibrate`]).
    pub fn set_config(&self, cfg: HybridConfig) {
        *self.cfg.write().expect("config lock") = cfg;
        // Plans embed cost estimates; a new model invalidates them.
        self.plan_cache.write().expect("plan lock").clear();
    }

    // ------------------------------------------------------------ registry

    /// Register a matrix and return its handle.
    pub fn insert(&self, matrix: CsrMatrix<f64>) -> MatrixHandle {
        self.insert_shared(Arc::new(matrix))
    }

    /// Register an already-shared matrix without copying it (e.g. a cached
    /// transpose obtained from [`Context::transposed`]).
    pub fn insert_shared(&self, matrix: Arc<CsrMatrix<f64>>) -> MatrixHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(Entry::new(matrix, version));
        self.store.write().expect("store lock").insert(id, entry);
        MatrixHandle(id)
    }

    /// Replace the matrix behind `handle`, invalidating all cached
    /// auxiliaries (including superseded plan/flops cache entries and any
    /// derived transpose handle). An update with an identical matrix (same
    /// structure and values) keeps the cache warm instead.
    pub fn update(&self, handle: MatrixHandle, matrix: CsrMatrix<f64>) {
        let derived;
        {
            let mut store = self.store.write().expect("store lock");
            let entry = store.get_mut(&handle.0).expect("handle not registered");
            if entry.matrix.nnz() == matrix.nnz()
                && entry.matrix.shape() == matrix.shape()
                && *entry.matrix == matrix
            {
                return; // no change — cached auxiliaries stay valid
            }
            derived = entry.transpose_handle.get().copied();
            let version = self.next_version.fetch_add(1, Ordering::Relaxed);
            *entry = Arc::new(Entry::new(Arc::new(matrix), version));
            if let Some(d) = derived {
                store.remove(&d.0);
            }
        }
        // Superseded versions can never be queried again; drop their
        // derived-cache entries so update-in-a-loop workloads stay bounded.
        self.purge_caches(handle.0);
        if let Some(d) = derived {
            self.purge_caches(d.0);
        }
    }

    /// Drop a matrix, its auxiliaries, and any derived transpose handle.
    pub fn remove(&self, handle: MatrixHandle) {
        let derived = {
            let mut store = self.store.write().expect("store lock");
            let derived = store
                .remove(&handle.0)
                .and_then(|e| e.transpose_handle.get().copied());
            if let Some(d) = derived {
                store.remove(&d.0);
            }
            derived
        };
        self.purge_caches(handle.0);
        if let Some(d) = derived {
            self.purge_caches(d.0);
        }
    }

    /// Current sizes of the derived caches, `(flops entries, plan entries)`
    /// — diagnostics and leak tests.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            self.flops_cache.read().expect("flops lock").len(),
            self.plan_cache.read().expect("plan lock").len(),
        )
    }

    /// Drop every flops/plan cache entry mentioning matrix id `id`.
    fn purge_caches(&self, id: u64) {
        self.flops_cache
            .write()
            .expect("flops lock")
            .retain(|&(a, _, b, _), _| a != id && b != id);
        self.plan_cache
            .write()
            .expect("plan lock")
            .retain(|&(m, _, a, _, b, _, _), _| m != id && a != id && b != id);
    }

    pub(crate) fn entry(&self, handle: MatrixHandle) -> Arc<Entry> {
        self.store
            .read()
            .expect("store lock")
            .get(&handle.0)
            .expect("handle not registered")
            .clone()
    }

    /// The matrix behind a handle.
    pub fn matrix(&self, handle: MatrixHandle) -> Arc<CsrMatrix<f64>> {
        self.entry(handle).matrix.clone()
    }

    /// Cached CSC form (built on first call).
    pub fn csc(&self, handle: MatrixHandle) -> Arc<CscMatrix<f64>> {
        self.entry(handle).csc().clone()
    }

    /// Cached transpose (built on first call).
    pub fn transposed(&self, handle: MatrixHandle) -> Arc<CsrMatrix<f64>> {
        self.entry(handle).transposed().clone()
    }

    /// Handle for the cached transpose, registered on first call and owned
    /// by the parent entry: it shares the cached `Aᵀ` storage, carries its
    /// own auxiliaries (degrees, CSC, plans), and is removed or invalidated
    /// together with the parent. Lets repeated calls (BC sweeps, similarity
    /// joins) use `Aᵀ` as an operand without re-registering it per call.
    pub fn transpose_handle(&self, handle: MatrixHandle) -> MatrixHandle {
        let e = self.entry(handle);
        *e.transpose_handle
            .get_or_init(|| self.insert_shared(e.transposed().clone()))
    }

    /// Cached row-degree vector (built on first call).
    pub fn row_degrees(&self, handle: MatrixHandle) -> Arc<Vec<u32>> {
        self.entry(handle).row_degrees().clone()
    }

    /// Cheap cached statistics.
    pub fn stats(&self, handle: MatrixHandle) -> MatrixStats {
        let e = self.entry(handle);
        MatrixStats {
            shape: e.matrix.shape(),
            nnz: e.matrix.nnz(),
            max_row_nnz: e.max_row_nnz(),
            nonempty_rows: e.nonempty_rows(),
        }
    }

    /// Which auxiliaries are currently materialized for `handle`.
    pub fn aux_status(&self, handle: MatrixHandle) -> AuxStatus {
        let e = self.entry(handle);
        AuxStatus {
            version: e.version,
            has_csc: e.csc.get().is_some(),
            has_transpose: e.transposed.get().is_some(),
            has_row_degrees: e.row_degrees.get().is_some(),
        }
    }

    /// `flops(A·B)` with pair-level caching (invalidated by updates to
    /// either operand, since entry versions key the cache).
    pub fn flops(&self, a: MatrixHandle, b: MatrixHandle) -> u64 {
        let (ea, eb) = (self.entry(a), self.entry(b));
        let key = (a.0, ea.version, b.0, eb.version);
        if let Some(&f) = self.flops_cache.read().expect("flops lock").get(&key) {
            return f;
        }
        let bdeg = eb.row_degrees();
        let f: u64 = ea
            .matrix
            .colidx()
            .iter()
            .map(|&k| bdeg[k as usize] as u64)
            .sum();
        self.flops_cache.write().expect("flops lock").insert(key, f);
        f
    }

    // ----------------------------------------------------------- execution

    /// Choose an algorithm and phase discipline for `M ⊙ (A·B)`
    /// (or `¬M ⊙` with `complemented`) from cached statistics.
    ///
    /// Plans are cached by operand identity *and version*: re-planning the
    /// same multiply (the common case in repeated-multiply loops) is a map
    /// lookup, while any [`Context::update`] to an operand transparently
    /// invalidates affected plans.
    pub fn plan(
        &self,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<Plan, SparseError> {
        let key: PlanKey = {
            let (em, ea, eb) = (self.entry(mask), self.entry(a), self.entry(b));
            (
                mask.0,
                em.version,
                a.0,
                ea.version,
                b.0,
                eb.version,
                complemented,
            )
        };
        if let Some(plan) = self.plan_cache.read().expect("plan lock").get(&key) {
            return Ok(*plan);
        }
        let plan = plan::plan(self, mask, complemented, a, b)?;
        self.plan_cache
            .write()
            .expect("plan lock")
            .insert(key, plan);
        Ok(plan)
    }

    /// Run one masked SpGEMM under an explicit plan.
    pub fn run_planned<S>(
        &self,
        plan: &Plan,
        sr: S,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let (em, ea, eb) = (self.entry(mask), self.entry(a), self.entry(b));
        let cfg = self.config();
        self.pool.install(|| match plan.choice {
            Choice::Fixed(Algorithm::Inner) => masked_spgemm_csc(
                Algorithm::Inner,
                plan.phases,
                plan.complemented,
                sr,
                &em.matrix,
                &ea.matrix,
                eb.csc(),
            ),
            Choice::Fixed(alg) => masked_spgemm(
                alg,
                plan.phases,
                plan.complemented,
                sr,
                &em.matrix,
                &ea.matrix,
                &eb.matrix,
            ),
            Choice::Hybrid => hybrid_masked_spgemm(
                plan.phases,
                cfg,
                sr,
                &em.matrix,
                &ea.matrix,
                &eb.matrix,
                eb.csc(),
            ),
        })
    }

    /// Plan and run one masked SpGEMM: `C = M ⊙ (A·B)` (or `¬M ⊙`).
    pub fn masked_spgemm<S>(
        &self,
        sr: S,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let plan = self.plan(mask, complemented, a, b)?;
        self.run_planned(&plan, sr, mask, a, b)
    }

    /// Run with a forced algorithm and phase discipline (bypasses the
    /// planner but still uses cached auxiliaries).
    #[allow(clippy::too_many_arguments)]
    pub fn run_with<S>(
        &self,
        algorithm: Algorithm,
        phases: Phases,
        sr: S,
        mask: MatrixHandle,
        complemented: bool,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring<A = f64, B = f64>,
        S::C: Default + Send + Sync,
    {
        let plan = Plan::fixed(algorithm, phases, complemented);
        self.run_planned(&plan, sr, mask, a, b)
    }
}
