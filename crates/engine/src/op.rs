//! First-class operation descriptors: [`MaskedOp`], its fluent
//! [`OpBuilder`], the typed [`OpOutput`], and the [`ResultSink`] consumer
//! interface.
//!
//! The paper's central claim is that no single masked-SpGEMM scheme wins
//! everywhere — selection must happen *per operation*. The descriptor API
//! encodes that: a [`MaskedOp`] says **what** to compute and the
//! [`Context`](crate::Context) decides **how** (planner, cached
//! auxiliaries, worker scheduling). A descriptor carries:
//!
//! * [`Operands`] — either a matrix product `M ⊙ (A·B)` ([`Operands::MatMat`])
//!   or a vector-matrix product `m ⊙ (u·B)` ([`Operands::VecMat`], the
//!   frontier-expansion step of BFS-style traversals, where the planner's
//!   push/pull choice is Beamer's direction heuristic);
//! * a runtime [`SemiringKind`] **and** a [`ValueKind`] lane — `bool`
//!   frontiers, exact `i64` counts, and `f64` products each run on real
//!   monomorphized kernels, and one batch can mix all three;
//! * an [`AccumMode`]: deliver the product as-is, or merge it into a
//!   registered matrix/vector with an [`AccumMonoid`] chosen independently
//!   of the multiply semiring (`add`, `min`, the semiring's own `add`, or
//!   a custom function).
//!
//! ```
//! use engine::{Context, OpOutput, SemiringKind, ValueKind};
//! use sparse::{CsrMatrix, SparseVec};
//!
//! let ctx = Context::with_threads(2);
//! let a = ctx.insert(CsrMatrix::diagonal(8, 2.0));
//! let m = ctx.insert(CsrMatrix::diagonal(8, 1.0));
//!
//! // One planned multiply…
//! let c = ctx.op(m, a, a).run().unwrap();
//! assert_eq!(c.get(3, 3), Some(&4.0));
//!
//! // …a typed vector-operand op (a BFS-style frontier step)…
//! let frontier = ctx.insert_vec(SparseVec::try_new(8, vec![3], vec![true]).unwrap());
//! let visited = ctx.insert_vec(SparseVec::try_new(8, vec![3], vec![true]).unwrap());
//! let next = ctx.vec_op(visited, frontier, a).complemented(true).run_out().unwrap();
//! assert_eq!(next.value_kind(), ValueKind::Bool);
//!
//! // …and a heterogeneous streamed batch mixing semirings and lanes.
//! let ops = vec![
//!     ctx.op(m, a, a).build(),                                  // f64 plus_times
//!     ctx.op(m, a, a).semiring(SemiringKind::PlusPair)
//!         .value(ValueKind::I64).build(),                       // i64 plus_pair
//! ];
//! let mut nnz_total = 0;
//! ctx.for_each_result(&ops, |_idx, result: Result<OpOutput, _>| {
//!     nnz_total += result.unwrap().nnz(); // consumed and dropped here
//! });
//! assert_eq!(nnz_total, 16);
//! ```

use masked_spgemm::{
    masked_spgevm_csc, Algorithm, DynLane, LaneValue, Phases, ScratchSet, SemiringKind, ValueKind,
};
use sparse::ewise::ewise_union;
use sparse::{
    BoolAndOr, CscMatrix, CsrMatrix, MinPlus, PlusFirst, PlusPair, PlusSecond, PlusTimes, Semiring,
    SparseError, SparseVec,
};
use std::sync::{Arc, Mutex};

use crate::context::{Context, MatrixHandle, ValueMat, ValueVec, VectorHandle};
use crate::plan::{self, Choice, Plan};

/// Uniform error text: the semiring kind is not defined on the value lane.
pub const SEMIRING_LANE_UNSUPPORTED: &str =
    "semiring kind is not defined on the operation's value lane";
/// Uniform error text: a vector operand's lane differs from the op's lane.
pub const OPERAND_LANE_MISMATCH: &str =
    "vector operand lane differs from the operation's value lane";
/// Uniform error text: the accumulation target cannot absorb this result.
pub const ACCUM_TARGET_MISMATCH: &str =
    "accumulation target cannot absorb this operation's result kind";
/// Uniform error text: a custom accumulation monoid is for another lane.
pub const ACCUM_MONOID_LANE_MISMATCH: &str =
    "custom accumulation monoid is defined on a different value lane";
/// Uniform error text: the output is not the kind the caller requested.
pub const OUTPUT_KIND_MISMATCH: &str =
    "operation output is a different kind; consume it as an OpOutput";

/// The operands of a masked multiply: today's matrix product, or a masked
/// sparse vector-matrix product over [`masked_spgemm::masked_spgevm`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Operands {
    /// `C = M ⊙ (A·B)` — three registered matrices.
    MatMat {
        /// Mask handle.
        mask: MatrixHandle,
        /// Left operand handle.
        a: MatrixHandle,
        /// Right operand handle.
        b: MatrixHandle,
    },
    /// `v = m ⊙ (u·B)` — a vector mask, a vector operand, and a matrix.
    /// With a complemented mask this is the BFS frontier expansion
    /// `next = ¬visited ⊙ (frontier · A)`.
    VecMat {
        /// Mask vector handle (only its pattern matters).
        mask: VectorHandle,
        /// Operand vector handle (its lane must match the op's
        /// [`MaskedOp::value`]).
        u: VectorHandle,
        /// Matrix handle.
        b: MatrixHandle,
    },
}

/// Where an accumulating operation merges its result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccumTarget {
    /// A registered matrix (for matrix products whose value lane matches
    /// the target's natively stored lane).
    Mat(MatrixHandle),
    /// A registered vector (for vector products; lanes must agree).
    Vec(VectorHandle),
}

/// The monoid an accumulating operation folds with — chosen independently
/// of the multiply semiring, so a `plus_times` product can `min`-merge into
/// a running distance vector.
#[derive(Copy, Clone, Debug)]
pub enum AccumMonoid {
    /// The `add` of the operation's own semiring (the historical
    /// `AddInto` behavior: `min_plus` products min-merge, additive
    /// semirings sum).
    Semiring,
    /// Lane addition (`||` on `bool`).
    Add,
    /// Lane minimum (`&&` on `bool`).
    Min,
    /// A custom monoid on the `f64` lane.
    CustomF64(fn(f64, f64) -> f64),
    /// A custom monoid on the `i64` lane.
    CustomI64(fn(i64, i64) -> i64),
    /// A custom monoid on the `bool` lane.
    CustomBool(fn(bool, bool) -> bool),
}

/// What happens to an operation's result before it reaches the caller.
#[derive(Copy, Clone, Debug)]
pub enum AccumMode {
    /// Deliver the product as computed (the default).
    Replace,
    /// Merge the product into the matrix or vector behind the target with
    /// the given monoid, [`Context::update`] / [`Context::update_vec`] the
    /// handle with the merged value, and deliver the merged value.
    ///
    /// In a batch, accumulation is applied on the *calling* thread in
    /// completion order, so two operations targeting the same handle never
    /// race — but their merge order (and therefore float rounding on the
    /// `f64` lane) follows completion order, which is nondeterministic
    /// across runs.
    ///
    /// Both the handle and the caller receive the merged value, which
    /// costs one `O(nnz)` copy on top of the merge itself (the two owners
    /// cannot share storage through an owned return type).
    MergeInto(AccumTarget, AccumMonoid),
}

/// A fully-described masked multiply on a runtime-selected semiring and
/// value lane, with optional execution overrides.
///
/// Build one with [`Context::op`] (matrix operands) or [`Context::vec_op`]
/// (vector operand); run it alone ([`OpBuilder::run`] /
/// [`OpBuilder::run_out`]) or in a heterogeneous batch
/// ([`Context::for_each_result`], [`Context::run_batch_collect`]). All
/// fields are public — a descriptor is plain data, inspectable and
/// rewritable by schedulers layered above the engine.
#[derive(Copy, Clone, Debug)]
pub struct MaskedOp {
    /// What is multiplied (see [`Operands`]).
    pub operands: Operands,
    /// Mask polarity (`true` = `¬M ⊙ (A·B)`).
    pub complemented: bool,
    /// Which semiring the multiply runs on.
    pub semiring: SemiringKind,
    /// Which value lane the multiply runs on — each lane is a real
    /// monomorphized kernel instantiation ([`ValueKind`]).
    pub value: ValueKind,
    /// Force this algorithm instead of consulting the planner.
    pub algorithm: Option<Algorithm>,
    /// Force this phase discipline instead of the planner's choice.
    ///
    /// Honored by the row-parallel single-op path ([`OpBuilder::run`]).
    /// Batch execution and vector-operand products instead use serial
    /// exact-assembly drivers, where the 1P/2P distinction does not arise
    /// (rows are appended in order with no transient copy) — results are
    /// bit-identical either way.
    pub phases: Option<Phases>,
    /// What happens to the result (see [`AccumMode`]).
    pub accum: AccumMode,
}

impl MaskedOp {
    /// The matrix operands, when this is a [`Operands::MatMat`] op —
    /// `(mask, a, b)`.
    pub fn mat_operands(&self) -> Option<(MatrixHandle, MatrixHandle, MatrixHandle)> {
        match self.operands {
            Operands::MatMat { mask, a, b } => Some((mask, a, b)),
            Operands::VecMat { .. } => None,
        }
    }
}

/// The result of one executed [`MaskedOp`]: a matrix or vector on the
/// operation's value lane.
#[derive(Clone, Debug, PartialEq)]
pub enum OpOutput {
    /// `f64` matrix product.
    MatF64(CsrMatrix<f64>),
    /// `i64` matrix product.
    MatI64(CsrMatrix<i64>),
    /// `bool` matrix product.
    MatBool(CsrMatrix<bool>),
    /// `f64` vector product.
    VecF64(SparseVec<f64>),
    /// `i64` vector product.
    VecI64(SparseVec<i64>),
    /// `bool` vector product.
    VecBool(SparseVec<bool>),
}

impl OpOutput {
    /// The value lane of the result.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            OpOutput::MatF64(_) | OpOutput::VecF64(_) => ValueKind::F64,
            OpOutput::MatI64(_) | OpOutput::VecI64(_) => ValueKind::I64,
            OpOutput::MatBool(_) | OpOutput::VecBool(_) => ValueKind::Bool,
        }
    }

    /// Whether the result is a vector (a [`Operands::VecMat`] product).
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            OpOutput::VecF64(_) | OpOutput::VecI64(_) | OpOutput::VecBool(_)
        )
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        match self {
            OpOutput::MatF64(m) => m.nnz(),
            OpOutput::MatI64(m) => m.nnz(),
            OpOutput::MatBool(m) => m.nnz(),
            OpOutput::VecF64(v) => v.nnz(),
            OpOutput::VecI64(v) => v.nnz(),
            OpOutput::VecBool(v) => v.nnz(),
        }
    }

    /// Convert into the concrete matrix/vector type, or report
    /// [`OUTPUT_KIND_MISMATCH`] (see [`FromOpOutput`]).
    pub fn into_typed<T: FromOpOutput>(self) -> Result<T, SparseError> {
        T::from_output(self)
    }

    /// Convert a vector result into a registerable [`ValueVec`] (lane
    /// preserved), or `None` for matrix results — the bridge between an
    /// executed frontier step and [`Context::update_vec`].
    pub fn into_vec(self) -> Option<ValueVec> {
        match self {
            OpOutput::VecF64(v) => Some(ValueVec::from(v)),
            OpOutput::VecI64(v) => Some(ValueVec::from(v)),
            OpOutput::VecBool(v) => Some(ValueVec::from(v)),
            _ => None,
        }
    }
}

/// Conversion from an executed operation's [`OpOutput`] into the concrete
/// type a caller wants to consume — the typed side of the streaming APIs.
///
/// Implemented by [`OpOutput`] itself (identity: mixed-kind batches) and by
/// every lane's matrix and vector type (kind-checked: a batch known to be
/// all-`f64`-matrix can sink `CsrMatrix<f64>` directly, and a wrong kind is
/// a uniform [`SparseError::Unsupported`]).
pub trait FromOpOutput: Sized {
    /// Convert, or report [`OUTPUT_KIND_MISMATCH`].
    fn from_output(output: OpOutput) -> Result<Self, SparseError>;
}

impl FromOpOutput for OpOutput {
    fn from_output(output: OpOutput) -> Result<Self, SparseError> {
        Ok(output)
    }
}

macro_rules! impl_from_output {
    ($t:ty, $variant:ident) => {
        impl FromOpOutput for $t {
            fn from_output(output: OpOutput) -> Result<Self, SparseError> {
                match output {
                    OpOutput::$variant(v) => Ok(v),
                    _ => Err(SparseError::Unsupported(OUTPUT_KIND_MISMATCH)),
                }
            }
        }
    };
}

impl_from_output!(CsrMatrix<f64>, MatF64);
impl_from_output!(CsrMatrix<i64>, MatI64);
impl_from_output!(CsrMatrix<bool>, MatBool);
impl_from_output!(SparseVec<f64>, VecF64);
impl_from_output!(SparseVec<i64>, VecI64);
impl_from_output!(SparseVec<bool>, VecBool);

/// Fluent constructor for [`MaskedOp`], obtained from [`Context::op`] or
/// [`Context::vec_op`].
///
/// Defaults: plain mask, [`SemiringKind::PlusTimes`] on the
/// [`ValueKind::F64`] lane (vector ops default to the operand vector's own
/// lane, with [`SemiringKind::BoolAndOr`] on `bool`), planner-chosen
/// algorithm and phases, [`AccumMode::Replace`].
#[derive(Copy, Clone)]
#[must_use = "an OpBuilder does nothing until .run(), .run_out() or .build()"]
pub struct OpBuilder<'c> {
    ctx: &'c Context,
    op: MaskedOp,
}

impl<'c> OpBuilder<'c> {
    /// Select the semiring the multiply runs on.
    pub fn semiring(mut self, kind: SemiringKind) -> Self {
        self.op.semiring = kind;
        self
    }

    /// Select the value lane the multiply runs on (see [`ValueKind`]).
    /// Non-`f64` matrix operands are read through the context's cached
    /// typed views ([`Context::bool_view`], [`Context::i64_view`]).
    pub fn value(mut self, value: ValueKind) -> Self {
        self.op.value = value;
        self
    }

    /// Use the complement of the mask (`C = ¬M ⊙ (A·B)`).
    pub fn complemented(mut self, yes: bool) -> Self {
        self.op.complemented = yes;
        self
    }

    /// Force an algorithm instead of consulting the planner.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.op.algorithm = Some(algorithm);
        self
    }

    /// Force a phase discipline instead of the planner's choice (see
    /// [`MaskedOp::phases`] for how batch execution treats this).
    pub fn phases(mut self, phases: Phases) -> Self {
        self.op.phases = Some(phases);
        self
    }

    /// Merge the result into the matrix behind `target` with the
    /// operation's own semiring `add` (see [`AccumMode::MergeInto`]).
    pub fn accumulate_into(mut self, target: MatrixHandle) -> Self {
        self.op.accum = AccumMode::MergeInto(AccumTarget::Mat(target), AccumMonoid::Semiring);
        self
    }

    /// Min-merge the result into the matrix behind `target`, regardless of
    /// the multiply semiring.
    pub fn min_into(mut self, target: MatrixHandle) -> Self {
        self.op.accum = AccumMode::MergeInto(AccumTarget::Mat(target), AccumMonoid::Min);
        self
    }

    /// Add-merge the result into the vector behind `target` (`||` on the
    /// `bool` lane — the visited-set union of a BFS).
    pub fn accumulate_into_vec(mut self, target: VectorHandle) -> Self {
        self.op.accum = AccumMode::MergeInto(AccumTarget::Vec(target), AccumMonoid::Add);
        self
    }

    /// Min-merge the result into the vector behind `target` — the
    /// distance-relaxation step of a tropical traversal.
    pub fn min_into_vec(mut self, target: VectorHandle) -> Self {
        self.op.accum = AccumMode::MergeInto(AccumTarget::Vec(target), AccumMonoid::Min);
        self
    }

    /// Merge the result into an arbitrary target with an arbitrary
    /// [`AccumMonoid`] (the fully general form of the accumulation modes).
    pub fn merge_into(mut self, target: AccumTarget, monoid: AccumMonoid) -> Self {
        self.op.accum = AccumMode::MergeInto(target, monoid);
        self
    }

    /// The finished descriptor, for batching or later execution.
    pub fn build(self) -> MaskedOp {
        self.op
    }

    /// Resolve the execution plan this descriptor would run under
    /// (overrides applied), without executing.
    pub fn plan(&self) -> Result<Plan, SparseError> {
        self.ctx.resolve_plan(&self.op)
    }

    /// Plan (or apply overrides) and execute now, returning the typed
    /// [`OpOutput`].
    pub fn run_out(self) -> Result<OpOutput, SparseError> {
        self.ctx.run_op_out(&self.op)
    }

    /// Plan and execute now, returning the `f64` matrix product — the
    /// historical convenience for the default lane. Operations on other
    /// lanes (or vector operands) report [`OUTPUT_KIND_MISMATCH`]; consume
    /// those through [`OpBuilder::run_out`].
    pub fn run(self) -> Result<CsrMatrix<f64>, SparseError> {
        self.ctx.run_op(&self.op)
    }
}

/// Consumer of streamed batch results.
///
/// [`Context::for_each_result`] hands each finished operation to the sink
/// **in completion order** (not input order) together with its index into
/// the submitted slice, on the calling thread. A sink that drops the
/// result immediately (e.g. one that only tallies `nnz`) keeps at most a
/// few results resident at any moment, no matter how large the batch.
///
/// The payload type `T` is any [`FromOpOutput`] implementor: sink
/// [`OpOutput`] to consume mixed-kind batches, or a concrete type like
/// `CsrMatrix<f64>` for homogeneous ones. Any
/// `FnMut(usize, Result<T, SparseError>)` closure is a sink.
pub trait ResultSink<T = OpOutput> {
    /// Receive the result of `ops[index]`.
    fn absorb(&mut self, index: usize, result: Result<T, SparseError>);
}

impl<T, F> ResultSink<T> for F
where
    F: FnMut(usize, Result<T, SparseError>),
{
    fn absorb(&mut self, index: usize, result: Result<T, SparseError>) {
        self(index, result)
    }
}

/// Resolve an accumulation monoid on lane `T` (custom functions for other
/// lanes are rejected by descriptor validation before execution).
#[inline]
fn apply_monoid<T: LaneValue>(
    monoid: AccumMonoid,
    kind: SemiringKind,
    custom: Option<fn(T, T) -> T>,
    x: T,
    y: T,
) -> T {
    match monoid {
        AccumMonoid::Semiring => DynLane::<T>::new(kind).add(x, y),
        AccumMonoid::Add => T::lane_add(x, y),
        AccumMonoid::Min => T::lane_min(x, y),
        AccumMonoid::CustomF64(_) | AccumMonoid::CustomI64(_) | AccumMonoid::CustomBool(_) => {
            custom.expect("custom monoid lane validated")(x, y)
        }
    }
}

impl Context {
    /// Start describing the masked matrix multiply `M ⊙ (A·B)`.
    ///
    /// ```
    /// use engine::{Context, SemiringKind};
    /// use sparse::CsrMatrix;
    ///
    /// let ctx = Context::with_threads(1);
    /// let h = ctx.insert(CsrMatrix::diagonal(4, 3.0));
    /// let c = ctx.op(h, h, h).semiring(SemiringKind::PlusPair).run().unwrap();
    /// assert_eq!(c.get(2, 2), Some(&1.0)); // one contributing product
    /// ```
    pub fn op(&self, mask: MatrixHandle, a: MatrixHandle, b: MatrixHandle) -> OpBuilder<'_> {
        OpBuilder {
            ctx: self,
            op: MaskedOp {
                operands: Operands::MatMat { mask, a, b },
                complemented: false,
                semiring: SemiringKind::PlusTimes,
                value: ValueKind::F64,
                algorithm: None,
                phases: None,
                accum: AccumMode::Replace,
            },
        }
    }

    /// Start describing the masked vector-matrix multiply `v = m ⊙ (u·B)`
    /// — with a complemented mask, the BFS frontier expansion
    /// `next = ¬visited ⊙ (frontier · A)`.
    ///
    /// The value lane defaults to the operand vector's own lane, and the
    /// semiring to [`SemiringKind::BoolAndOr`] on `bool` /
    /// [`SemiringKind::PlusTimes`] elsewhere.
    ///
    /// ```
    /// use engine::{Context, ValueKind};
    /// use sparse::{CsrMatrix, SparseVec};
    ///
    /// let ctx = Context::with_threads(1);
    /// let adj = ctx.insert(CsrMatrix::try_new(
    ///     3, 3, vec![0, 1, 2, 2], vec![1, 2], vec![1.0, 1.0],
    /// ).unwrap());
    /// let frontier = ctx.insert_vec(SparseVec::try_new(3, vec![0], vec![true]).unwrap());
    /// let visited = ctx.insert_vec(SparseVec::try_new(3, vec![0], vec![true]).unwrap());
    /// let next: SparseVec<bool> = ctx
    ///     .vec_op(visited, frontier, adj)
    ///     .complemented(true)
    ///     .run_out()
    ///     .unwrap()
    ///     .into_typed()
    ///     .unwrap();
    /// assert_eq!(next.indices(), &[1]);
    /// ```
    pub fn vec_op(&self, mask: VectorHandle, u: VectorHandle, b: MatrixHandle) -> OpBuilder<'_> {
        let value = self.vector(u).value_kind();
        let semiring = match value {
            ValueKind::Bool => SemiringKind::BoolAndOr,
            _ => SemiringKind::PlusTimes,
        };
        OpBuilder {
            ctx: self,
            op: MaskedOp {
                operands: Operands::VecMat { mask, u, b },
                complemented: false,
                semiring,
                value,
                algorithm: None,
                phases: None,
                accum: AccumMode::Replace,
            },
        }
    }

    /// Validate the lane structure of a descriptor: the semiring must be
    /// defined on the value lane, vector operands must live on it, and the
    /// accumulation target/monoid must be able to absorb the result. Every
    /// execution path (single-op, batch) runs this first, so violations
    /// are uniform [`SparseError::Unsupported`] values everywhere.
    fn validate_op(&self, op: &MaskedOp) -> Result<(), SparseError> {
        if !op.semiring.supports_value(op.value) {
            return Err(SparseError::Unsupported(SEMIRING_LANE_UNSUPPORTED));
        }
        if let Operands::VecMat { u, .. } = op.operands {
            if self.vector(u).value_kind() != op.value {
                return Err(SparseError::Unsupported(OPERAND_LANE_MISMATCH));
            }
        }
        if let AccumMode::MergeInto(target, monoid) = op.accum {
            let monoid_lane = match monoid {
                AccumMonoid::CustomF64(_) => Some(ValueKind::F64),
                AccumMonoid::CustomI64(_) => Some(ValueKind::I64),
                AccumMonoid::CustomBool(_) => Some(ValueKind::Bool),
                AccumMonoid::Semiring | AccumMonoid::Add | AccumMonoid::Min => None,
            };
            if monoid_lane.is_some_and(|lane| lane != op.value) {
                return Err(SparseError::Unsupported(ACCUM_MONOID_LANE_MISMATCH));
            }
            match target {
                AccumTarget::Mat(tm) => {
                    // The registry stores matrices natively typed: a matrix
                    // product merges back into a target stored on the same
                    // lane (zero-cast merge), any other combination is a
                    // uniform mismatch.
                    let ok = matches!(op.operands, Operands::MatMat { .. })
                        && self.matrix_kind(tm) == op.value;
                    if !ok {
                        return Err(SparseError::Unsupported(ACCUM_TARGET_MISMATCH));
                    }
                }
                AccumTarget::Vec(tv) => {
                    let ok = matches!(op.operands, Operands::VecMat { .. })
                        && self.vector(tv).value_kind() == op.value;
                    if !ok {
                        return Err(SparseError::Unsupported(ACCUM_TARGET_MISMATCH));
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolve the plan a descriptor runs under: the planner's choice, with
    /// the descriptor's algorithm/phase overrides applied on top. A forced
    /// algorithm that cannot honor the mask polarity (MCA × complemented)
    /// is a uniform [`SparseError::Unsupported`].
    pub(crate) fn resolve_plan(&self, op: &MaskedOp) -> Result<Plan, SparseError> {
        self.validate_op(op)?;
        match op.operands {
            Operands::MatMat { mask, a, b } => {
                if let Some(alg) = op.algorithm {
                    alg.check_complement_support(op.complemented)?;
                    plan::validate(self, mask, a, b)?;
                    // A fully-overridden op skips the cost model entirely —
                    // but still honors the calibrated serial cutoff (the
                    // pair-cached flop count is the only quantity needed).
                    if let Some(ph) = op.phases {
                        let mut fixed = Plan::fixed(alg, ph, op.complemented);
                        let cutoff = self.serial_cutoff_flops();
                        if cutoff > 0.0 {
                            fixed.serial = (self.flops(a, b) as f64) < cutoff;
                        }
                        return Ok(fixed);
                    }
                    let planned = self.plan(mask, op.complemented, a, b)?;
                    return Ok(Plan {
                        choice: Choice::Fixed(alg),
                        ..planned
                    });
                }
                let mut planned = self.plan(mask, op.complemented, a, b)?;
                if let Some(ph) = op.phases {
                    planned.phases = ph;
                }
                Ok(planned)
            }
            Operands::VecMat { mask, u, b } => {
                if let Some(alg) = op.algorithm {
                    alg.check_complement_support(op.complemented)?;
                    plan::validate_vec(self, mask, u, b)?;
                    let mut fixed =
                        Plan::fixed(alg, op.phases.unwrap_or(Phases::One), op.complemented);
                    fixed.serial = true; // single-row products never dispatch the pool
                    return Ok(fixed);
                }
                let mut planned = self.plan_vec(mask, op.complemented, u, b)?;
                if let Some(ph) = op.phases {
                    planned.phases = ph;
                }
                Ok(planned)
            }
        }
    }

    /// Execute one descriptor now, applying its accumulation mode, and
    /// return the typed [`OpOutput`].
    ///
    /// Operands resolve to their **native** stored lane with zero copies
    /// when the op's lane matches ([`crate::ValueMat`]); cross-lane casts
    /// come from the aux cache. Matrix products dispatch to *typed* lane
    /// semirings for the descriptor's `(semiring, value)` pair, so the
    /// kernels' inner loops are monomorphized and inlined exactly as on
    /// the engine-free entry points; they run row-parallel on the
    /// context's pool unless the plan's calibrated serial cutoff applies.
    /// Vector products are single-row, always run on the calling thread,
    /// and reuse the context's per-lane kernel scratch through the erased
    /// [`DynLane`] (bit-identical to the typed semirings) instead of
    /// rebuilding their accumulator per call.
    pub fn run_op_out(&self, op: &MaskedOp) -> Result<OpOutput, SparseError> {
        let plan = self.resolve_plan(op)?;
        let out = match op.operands {
            Operands::MatMat { mask, a, b } => match op.value {
                ValueKind::F64 => OpOutput::MatF64(self.run_mat_f64(&plan, op, mask, a, b)?),
                ValueKind::I64 => OpOutput::MatI64(self.run_mat_i64(&plan, op, mask, a, b)?),
                ValueKind::Bool => OpOutput::MatBool(self.run_mat_bool(&plan, op, mask, a, b)?),
            },
            Operands::VecMat { mask, u, b } => self.run_vec_out(&plan, op, mask, u, b)?,
        };
        self.apply_accum(op, out)
    }

    /// Execute one descriptor now and return the `f64` matrix product (the
    /// historical signature; see [`OpBuilder::run`]).
    pub fn run_op(&self, op: &MaskedOp) -> Result<CsrMatrix<f64>, SparseError> {
        FromOpOutput::from_output(self.run_op_out(op)?)
    }

    fn run_mat_f64(
        &self,
        plan: &Plan,
        op: &MaskedOp,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<f64>, SparseError> {
        // Operand resolution is native-first: the mask is consumed in its
        // stored lane (kernels read only its pattern), and the `f64` views
        // are the stored matrices themselves when the entries were
        // registered on this lane — zero-copy, no canonical detour.
        let mm = self.value_mat(mask);
        let (av, bv) = (self.f64_view(a), self.f64_view(b));
        macro_rules! go {
            ($sr:expr) => {
                self.execute_mat_views(plan, $sr, &mm, &av, &bv, &mut || self.csc(b))
            };
        }
        match op.semiring {
            SemiringKind::PlusTimes => go!(PlusTimes::<f64>::new()),
            SemiringKind::PlusPair => go!(PlusPair::<f64, f64, f64>::new()),
            SemiringKind::PlusFirst => go!(PlusFirst::<f64>::new()),
            SemiringKind::PlusSecond => go!(PlusSecond::<f64, f64>::new()),
            SemiringKind::MinPlus => go!(MinPlus::<f64>::new()),
            SemiringKind::BoolAndOr => Err(SparseError::Unsupported(SEMIRING_LANE_UNSUPPORTED)),
        }
    }

    fn run_mat_i64(
        &self,
        plan: &Plan,
        op: &MaskedOp,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<i64>, SparseError> {
        let mm = self.value_mat(mask);
        let (av, bv) = (self.i64_view(a), self.i64_view(b));
        macro_rules! go {
            ($sr:expr) => {
                self.execute_mat_views(plan, $sr, &mm, &av, &bv, &mut || self.i64_csc(b))
            };
        }
        match op.semiring {
            SemiringKind::PlusTimes => go!(PlusTimes::<i64>::new()),
            SemiringKind::PlusPair => go!(PlusPair::<i64, i64, i64>::new()),
            SemiringKind::PlusFirst => go!(PlusFirst::<i64>::new()),
            SemiringKind::PlusSecond => go!(PlusSecond::<i64, i64>::new()),
            SemiringKind::MinPlus => go!(MinPlus::<i64>::new()),
            SemiringKind::BoolAndOr => Err(SparseError::Unsupported(SEMIRING_LANE_UNSUPPORTED)),
        }
    }

    fn run_mat_bool(
        &self,
        plan: &Plan,
        op: &MaskedOp,
        mask: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
    ) -> Result<CsrMatrix<bool>, SparseError> {
        match op.semiring {
            SemiringKind::BoolAndOr => {
                let mm = self.value_mat(mask);
                let (av, bv) = (self.bool_view(a), self.bool_view(b));
                self.execute_mat_views(plan, BoolAndOr, &mm, &av, &bv, &mut || self.bool_csc(b))
            }
            _ => Err(SparseError::Unsupported(SEMIRING_LANE_UNSUPPORTED)),
        }
    }

    fn run_vec_out(
        &self,
        plan: &Plan,
        op: &MaskedOp,
        mask: VectorHandle,
        u: VectorHandle,
        b: MatrixHandle,
    ) -> Result<OpOutput, SparseError> {
        let mask_pat = self.vector(mask).pattern();
        match (op.value, self.vector(u)) {
            (ValueKind::Bool, ValueVec::Bool(uv)) => self
                .run_vec_lane(
                    plan,
                    op,
                    &mask_pat,
                    &uv,
                    b,
                    |ctx, h| ctx.bool_view(h),
                    |ctx, h| ctx.bool_csc(h),
                    &self.vec_scratch.bool_,
                )
                .map(OpOutput::VecBool),
            (ValueKind::I64, ValueVec::I64(uv)) => self
                .run_vec_lane(
                    plan,
                    op,
                    &mask_pat,
                    &uv,
                    b,
                    |ctx, h| ctx.i64_view(h),
                    |ctx, h| ctx.i64_csc(h),
                    &self.vec_scratch.i64_,
                )
                .map(OpOutput::VecI64),
            (ValueKind::F64, ValueVec::F64(uv)) => self
                .run_vec_lane(
                    plan,
                    op,
                    &mask_pat,
                    &uv,
                    b,
                    |ctx, h| ctx.f64_view(h),
                    |ctx, h| ctx.csc(h),
                    &self.vec_scratch.f64_,
                )
                .map(OpOutput::VecF64),
            // Lane agreement was validated; reaching here means the vector
            // was concurrently replaced with another lane.
            _ => Err(SparseError::Unsupported(OPERAND_LANE_MISMATCH)),
        }
    }

    /// Execute a planned vector-operand product on one lane, reading `B`
    /// through the lane accessors (`view_of` in CSR form for push kernels,
    /// `csc_of` for the pull path — both served from the context's aux
    /// cache, built only when the plan actually needs them).
    ///
    /// Push products run through the context's **reusable per-lane
    /// [`ScratchSet`]** ([`DynLane`] erasure, bit-identical to the typed
    /// semirings), so a BFS that issues one product per level stops
    /// rebuilding its `O(ncols)` accumulator every level. The pull path
    /// (`Inner`) carries no accumulator and writes its dots directly.
    #[allow(clippy::too_many_arguments)]
    fn run_vec_lane<T>(
        &self,
        plan: &Plan,
        op: &MaskedOp,
        mask: &SparseVec<()>,
        u: &SparseVec<T>,
        b: MatrixHandle,
        view_of: impl Fn(&Context, MatrixHandle) -> Arc<CsrMatrix<T>>,
        csc_of: impl Fn(&Context, MatrixHandle) -> Arc<CscMatrix<T>>,
        scratch: &Mutex<ScratchSet<DynLane<T>>>,
    ) -> Result<SparseVec<T>, SparseError>
    where
        T: LaneValue,
    {
        let sr = DynLane::<T>::new(op.semiring);
        let algorithm = match plan.choice {
            Choice::Fixed(alg) => alg,
            Choice::Hybrid => Algorithm::Msa, // vec plans are never hybrid
        };
        if algorithm == Algorithm::Inner {
            let csc = csc_of(self, b);
            return masked_spgevm_csc(plan.complemented, sr, mask, u, &csc);
        }
        let view = view_of(self, b);
        match scratch.try_lock() {
            Ok(mut set) => set.run_vec(algorithm, plan.complemented, sr, mask, u, &view, None),
            // Another single op holds the lane's scratch right now: run on
            // transient scratch rather than serializing behind it.
            Err(_) => {
                ScratchSet::new().run_vec(algorithm, plan.complemented, sr, mask, u, &view, None)
            }
        }
    }

    /// Apply a descriptor's [`AccumMode`] to its freshly-computed product.
    pub(crate) fn apply_accum(
        &self,
        op: &MaskedOp,
        out: OpOutput,
    ) -> Result<OpOutput, SparseError> {
        let AccumMode::MergeInto(target, monoid) = op.accum else {
            return Ok(out);
        };
        match target {
            AccumTarget::Mat(handle) => {
                macro_rules! merge_mat {
                    ($c:expr, $existing:expr, $custom:expr, $variant:ident) => {{
                        let (c, existing) = ($c, $existing);
                        if existing.shape() != c.shape() {
                            return Err(SparseError::DimMismatch {
                                op: "accumulate_into",
                                lhs: existing.shape(),
                                rhs: c.shape(),
                            });
                        }
                        let merged = ewise_union(
                            existing.as_ref(),
                            &c,
                            |x, y| apply_monoid(monoid, op.semiring, $custom, *x, *y),
                            |x| *x,
                            |y| *y,
                        );
                        self.update_typed(handle, merged.clone());
                        Ok(OpOutput::$variant(merged))
                    }};
                }
                // Validation pinned the target's stored lane to the op's
                // lane; reaching a mismatch means a concurrent lane change.
                match (out, self.value_mat(handle)) {
                    (OpOutput::MatF64(c), ValueMat::F64(e)) => merge_mat!(
                        c,
                        e,
                        match monoid {
                            AccumMonoid::CustomF64(f) => Some(f),
                            _ => None,
                        },
                        MatF64
                    ),
                    (OpOutput::MatI64(c), ValueMat::I64(e)) => merge_mat!(
                        c,
                        e,
                        match monoid {
                            AccumMonoid::CustomI64(f) => Some(f),
                            _ => None,
                        },
                        MatI64
                    ),
                    (OpOutput::MatBool(c), ValueMat::Bool(e)) => merge_mat!(
                        c,
                        e,
                        match monoid {
                            AccumMonoid::CustomBool(f) => Some(f),
                            _ => None,
                        },
                        MatBool
                    ),
                    _ => Err(SparseError::Unsupported(ACCUM_TARGET_MISMATCH)),
                }
            }
            AccumTarget::Vec(handle) => {
                macro_rules! merge_vec {
                    ($v:expr, $existing:expr, $custom:expr, $variant:ident) => {{
                        let (v, existing) = ($v, $existing);
                        if existing.dim() != v.dim() {
                            return Err(SparseError::DimMismatch {
                                op: "accumulate_into_vec",
                                lhs: (1, existing.dim()),
                                rhs: (1, v.dim()),
                            });
                        }
                        let merged = existing.union_with(&v, |x, y| {
                            apply_monoid(monoid, op.semiring, $custom, x, y)
                        });
                        self.update_vec(handle, merged.clone());
                        Ok(OpOutput::$variant(merged))
                    }};
                }
                match (out, self.vector(handle)) {
                    (OpOutput::VecF64(v), ValueVec::F64(e)) => merge_vec!(
                        v,
                        e,
                        match monoid {
                            AccumMonoid::CustomF64(f) => Some(f),
                            _ => None,
                        },
                        VecF64
                    ),
                    (OpOutput::VecI64(v), ValueVec::I64(e)) => merge_vec!(
                        v,
                        e,
                        match monoid {
                            AccumMonoid::CustomI64(f) => Some(f),
                            _ => None,
                        },
                        VecI64
                    ),
                    (OpOutput::VecBool(v), ValueVec::Bool(e)) => merge_vec!(
                        v,
                        e,
                        match monoid {
                            AccumMonoid::CustomBool(f) => Some(f),
                            _ => None,
                        },
                        VecBool
                    ),
                    _ => Err(SparseError::Unsupported(ACCUM_TARGET_MISMATCH)),
                }
            }
        }
    }
}
