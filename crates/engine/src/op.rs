//! First-class operation descriptors: [`MaskedOp`], its fluent
//! [`OpBuilder`], and the [`ResultSink`] consumer interface.
//!
//! The paper's central claim is that no single masked-SpGEMM scheme wins
//! everywhere — selection must happen *per operation*. The descriptor API
//! encodes that: a [`MaskedOp`] says **what** to compute (operands, mask
//! polarity, semiring, optional algorithm/phase overrides, accumulation
//! mode) and the [`Context`](crate::Context) decides **how** (planner,
//! cached auxiliaries, worker scheduling). Because the semiring is a
//! [`SemiringKind`] value rather than a type parameter, one batch can mix
//! operations over different semirings — plus-times BC sweeps next to
//! plus-pair triangle ops — and stream their results through a sink as
//! workers finish instead of materializing every output at once.
//!
//! ```
//! use engine::{Context, SemiringKind};
//! use sparse::CsrMatrix;
//!
//! let ctx = Context::with_threads(2);
//! let a = ctx.insert(CsrMatrix::diagonal(8, 2.0));
//! let m = ctx.insert(CsrMatrix::diagonal(8, 1.0));
//!
//! // One planned multiply…
//! let c = ctx.op(m, a, a).run().unwrap();
//! assert_eq!(c.get(3, 3), Some(&4.0));
//!
//! // …and a heterogeneous streamed batch of the same shape.
//! let ops = vec![
//!     ctx.op(m, a, a).build(),                                  // plus_times
//!     ctx.op(m, a, a).semiring(SemiringKind::PlusPair).build(), // plus_pair
//! ];
//! let mut nnz_total = 0;
//! ctx.for_each_result(&ops, |_idx, result: Result<CsrMatrix<f64>, _>| {
//!     nnz_total += result.unwrap().nnz(); // consumed and dropped here
//! });
//! assert_eq!(nnz_total, 16);
//! ```

use masked_spgemm::{Algorithm, DynSemiring, Phases, SemiringKind};
use sparse::ewise::ewise_union;
use sparse::{
    CsrMatrix, MinPlus, PlusFirst, PlusPair, PlusSecond, PlusTimes, Semiring, SparseError,
};

use crate::context::{Context, MatrixHandle};
use crate::plan::{self, Choice, Plan};

/// What happens to an operation's result before it reaches the caller.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccumMode {
    /// Deliver the product as computed (the default).
    Replace,
    /// Element-wise add the product into the matrix behind the handle
    /// (using the operation's semiring `add`), [`Context::update`] the
    /// handle with the merged matrix, and deliver the merged matrix.
    ///
    /// In a batch, accumulation is applied on the *calling* thread in
    /// completion order, so two operations targeting the same handle never
    /// race — but their merge order (and therefore float rounding) follows
    /// completion order, which is nondeterministic across runs.
    ///
    /// Both the handle and the caller receive the merged matrix, which
    /// costs one `O(nnz)` copy on top of the merge itself (the two owners
    /// cannot share storage through an owned return type).
    AddInto(MatrixHandle),
}

/// A fully-described masked multiply: `C = M ⊙ (A·B)` or `¬M ⊙ (A·B)` on a
/// runtime-selected semiring, with optional execution overrides.
///
/// Build one with [`Context::op`]; run it alone ([`OpBuilder::run`]) or in
/// a heterogeneous batch ([`Context::for_each_result`],
/// [`Context::run_batch_collect`]). All fields are public — a descriptor is
/// plain data, inspectable and rewritable by schedulers layered above the
/// engine.
#[derive(Copy, Clone, Debug)]
pub struct MaskedOp {
    /// Mask handle.
    pub mask: MatrixHandle,
    /// Mask polarity (`true` = `¬M ⊙ (A·B)`).
    pub complemented: bool,
    /// Left operand handle.
    pub a: MatrixHandle,
    /// Right operand handle.
    pub b: MatrixHandle,
    /// Which semiring the multiply runs on.
    pub semiring: SemiringKind,
    /// Force this algorithm instead of consulting the planner.
    pub algorithm: Option<Algorithm>,
    /// Force this phase discipline instead of the planner's choice.
    ///
    /// Honored by the row-parallel single-op path ([`OpBuilder::run`]).
    /// Batch execution instead uses the serial exact-assembly driver, where
    /// the 1P/2P distinction does not arise (rows are appended in order
    /// with no transient copy) — results are bit-identical either way.
    pub phases: Option<Phases>,
    /// What happens to the result (see [`AccumMode`]).
    pub accum: AccumMode,
}

/// Fluent constructor for [`MaskedOp`], obtained from [`Context::op`].
///
/// Defaults: plain mask, [`SemiringKind::PlusTimes`], planner-chosen
/// algorithm and phases, [`AccumMode::Replace`].
#[derive(Copy, Clone)]
#[must_use = "an OpBuilder does nothing until .run() or .build()"]
pub struct OpBuilder<'c> {
    ctx: &'c Context,
    op: MaskedOp,
}

impl<'c> OpBuilder<'c> {
    /// Select the semiring the multiply runs on.
    pub fn semiring(mut self, kind: SemiringKind) -> Self {
        self.op.semiring = kind;
        self
    }

    /// Use the complement of the mask (`C = ¬M ⊙ (A·B)`).
    pub fn complemented(mut self, yes: bool) -> Self {
        self.op.complemented = yes;
        self
    }

    /// Force an algorithm instead of consulting the planner.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.op.algorithm = Some(algorithm);
        self
    }

    /// Force a phase discipline instead of the planner's choice (see
    /// [`MaskedOp::phases`] for how batch execution treats this).
    pub fn phases(mut self, phases: Phases) -> Self {
        self.op.phases = Some(phases);
        self
    }

    /// Element-wise add the result into the matrix behind `target` (see
    /// [`AccumMode::AddInto`]).
    pub fn accumulate_into(mut self, target: MatrixHandle) -> Self {
        self.op.accum = AccumMode::AddInto(target);
        self
    }

    /// The finished descriptor, for batching or later execution.
    pub fn build(self) -> MaskedOp {
        self.op
    }

    /// Resolve the execution plan this descriptor would run under
    /// (overrides applied), without executing.
    pub fn plan(&self) -> Result<Plan, SparseError> {
        self.ctx.resolve_plan(&self.op)
    }

    /// Plan (or apply overrides) and execute now, returning the result.
    pub fn run(self) -> Result<CsrMatrix<f64>, SparseError> {
        self.ctx.run_op(&self.op)
    }
}

/// Consumer of streamed batch results.
///
/// [`Context::for_each_result`] hands each finished operation to the sink
/// **in completion order** (not input order) together with its index into
/// the submitted slice, on the calling thread. A sink that drops the
/// matrix immediately (e.g. one that only tallies `nnz`) keeps at most a
/// few results resident at any moment, no matter how large the batch.
///
/// Any `FnMut(usize, Result<CsrMatrix<f64>, SparseError>)` closure is a
/// sink.
pub trait ResultSink {
    /// Receive the result of `ops[index]`.
    fn absorb(&mut self, index: usize, result: Result<CsrMatrix<f64>, SparseError>);
}

impl<F> ResultSink for F
where
    F: FnMut(usize, Result<CsrMatrix<f64>, SparseError>),
{
    fn absorb(&mut self, index: usize, result: Result<CsrMatrix<f64>, SparseError>) {
        self(index, result)
    }
}

impl Context {
    /// Start describing the masked multiply `M ⊙ (A·B)`.
    ///
    /// ```
    /// use engine::{Context, SemiringKind};
    /// use sparse::CsrMatrix;
    ///
    /// let ctx = Context::with_threads(1);
    /// let h = ctx.insert(CsrMatrix::diagonal(4, 3.0));
    /// let c = ctx.op(h, h, h).semiring(SemiringKind::PlusPair).run().unwrap();
    /// assert_eq!(c.get(2, 2), Some(&1.0)); // one contributing product
    /// ```
    pub fn op(&self, mask: MatrixHandle, a: MatrixHandle, b: MatrixHandle) -> OpBuilder<'_> {
        OpBuilder {
            ctx: self,
            op: MaskedOp {
                mask,
                complemented: false,
                a,
                b,
                semiring: SemiringKind::PlusTimes,
                algorithm: None,
                phases: None,
                accum: AccumMode::Replace,
            },
        }
    }

    /// Resolve the plan a descriptor runs under: the planner's choice, with
    /// the descriptor's algorithm/phase overrides applied on top. A forced
    /// algorithm that cannot honor the mask polarity (MCA × complemented)
    /// is a uniform [`SparseError::Unsupported`].
    pub(crate) fn resolve_plan(&self, op: &MaskedOp) -> Result<Plan, SparseError> {
        if let Some(alg) = op.algorithm {
            alg.check_complement_support(op.complemented)?;
            plan::validate(self, op.mask, op.a, op.b)?;
            // A fully-overridden op skips the cost model entirely.
            if let Some(ph) = op.phases {
                return Ok(Plan::fixed(alg, ph, op.complemented));
            }
            let planned = self.plan(op.mask, op.complemented, op.a, op.b)?;
            return Ok(Plan {
                choice: Choice::Fixed(alg),
                ..planned
            });
        }
        let mut planned = self.plan(op.mask, op.complemented, op.a, op.b)?;
        if let Some(ph) = op.phases {
            planned.phases = ph;
        }
        Ok(planned)
    }

    /// Execute one descriptor now (row-parallel kernels on the context's
    /// pool), applying its accumulation mode.
    ///
    /// The single-op path dispatches to the *typed* `f64`-lane semiring for
    /// the descriptor's kind, so the kernels' inner loops are monomorphized
    /// and inlined exactly as on the engine-free entry points — bit-identical
    /// to [`DynSemiring`] (which exists for heterogeneous batches, where one
    /// worker's scratch must serve every kind) but without its fn-pointer
    /// indirection on the hot path.
    pub fn run_op(&self, op: &MaskedOp) -> Result<CsrMatrix<f64>, SparseError> {
        let plan = self.resolve_plan(op)?;
        let c = match op.semiring {
            SemiringKind::PlusTimes => {
                self.execute_planned(&plan, PlusTimes::<f64>::new(), op.mask, op.a, op.b)
            }
            SemiringKind::PlusPair => {
                self.execute_planned(&plan, PlusPair::<f64, f64, f64>::new(), op.mask, op.a, op.b)
            }
            SemiringKind::PlusFirst => {
                self.execute_planned(&plan, PlusFirst::<f64>::new(), op.mask, op.a, op.b)
            }
            SemiringKind::PlusSecond => {
                self.execute_planned(&plan, PlusSecond::<f64, f64>::new(), op.mask, op.a, op.b)
            }
            SemiringKind::MinPlus => {
                self.execute_planned(&plan, MinPlus::<f64>::new(), op.mask, op.a, op.b)
            }
        }?;
        self.apply_accum(op, c)
    }

    /// Apply a descriptor's [`AccumMode`] to its freshly-computed product.
    pub(crate) fn apply_accum(
        &self,
        op: &MaskedOp,
        c: CsrMatrix<f64>,
    ) -> Result<CsrMatrix<f64>, SparseError> {
        match op.accum {
            AccumMode::Replace => Ok(c),
            AccumMode::AddInto(target) => {
                let sr = DynSemiring::new(op.semiring);
                let existing = self.matrix(target);
                if existing.shape() != c.shape() {
                    return Err(SparseError::DimMismatch {
                        op: "accumulate_into",
                        lhs: existing.shape(),
                        rhs: c.shape(),
                    });
                }
                let merged = ewise_union(&existing, &c, |x, y| sr.add(*x, *y), |x| *x, |y| *y);
                self.update(target, merged.clone());
                Ok(merged)
            }
        }
    }
}
