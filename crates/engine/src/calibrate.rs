//! Micro-calibration of the cost-model constants.
//!
//! [`HybridConfig`]'s defaults (`msa_overhead`, `heap_factor`) were tuned on
//! one development machine. The relative cost of MSA's dense-array traffic
//! and the heap's branchy merges varies with cache sizes and memory
//! latency, so [`Context::calibrate`] measures both on the actual machine
//! with two synthetic probes and rescales the constants:
//!
//! * **flop unit** — MSA on a dense-ish product (large rows, full mask):
//!   time per flop with the accumulator staying hot;
//! * **row unit** — MSA on a minimal-work product (one mask entry and one
//!   short `A` row per output row, wide `B`): the per-row cost is dominated
//!   by touching the `O(ncols)` accumulator, which is exactly what
//!   `msa_overhead` models;
//! * **heap unit** — the heap kernel on the dense-ish product, giving the
//!   per-flop multiplier `heap_factor`.
//!
//! Probes are deterministic, take a few milliseconds, and the result is
//! clamped to a sane range so a noisy measurement cannot produce a
//! pathological planner.

use std::time::Instant;

use masked_spgemm::{masked_spgemm, Algorithm, HybridConfig, Phases};
use sparse::{CsrMatrix, Idx, PlusTimes};

use crate::context::Context;

/// Outcome of a calibration pass.
#[derive(Copy, Clone, Debug)]
pub struct Calibration {
    /// The measured configuration (already applied to the context).
    pub config: HybridConfig,
    /// Seconds per flop of the hot-accumulator MSA probe.
    pub msa_secs_per_flop: f64,
    /// Seconds per output row of the sparse MSA probe.
    pub msa_secs_per_row: f64,
    /// Seconds per flop of the heap probe.
    pub heap_secs_per_flop: f64,
    /// Seconds per modeled dot unit of the pull-based probe.
    pub inner_secs_per_unit: f64,
    /// Seconds to dispatch one parallel region on the context's pool
    /// (publish chunks, wake parked workers, join) — the fixed cost a
    /// kernel invocation pays before any row work happens. With the
    /// persistent pool this is wake latency; the per-call spawn scheduler
    /// it replaced paid thread creation here instead.
    pub dispatch_overhead_secs: f64,
    /// The planner serial cutoff installed on the context
    /// ([`Context::set_serial_cutoff_flops`]): the flop count whose MSA
    /// kernel time equals the measured dispatch overhead. Products whose
    /// estimated work lands below this run serially on the calling thread
    /// — waking the pool would cost more than the product itself.
    pub serial_cutoff_flops: f64,
}

/// Deterministic pseudo-random CSR matrix (xorshift; no `rand` dependency
/// so the engine stays lean).
fn probe_matrix(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> CsrMatrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut cols: Vec<Idx> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut scratch: Vec<Idx> = Vec::new();
    for _ in 0..nrows {
        scratch.clear();
        for _ in 0..per_row {
            scratch.push((next() % ncols as u64) as Idx);
        }
        scratch.sort_unstable();
        scratch.dedup();
        for &j in &scratch {
            cols.push(j);
            vals.push(1.0);
        }
        rowptr.push(cols.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, ncols, rowptr, cols, vals)
}

fn time_secs(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let reps = 3;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

impl Context {
    /// Measure the cost-model constants on this machine, install them, and
    /// return the measurement.
    pub fn calibrate(&self) -> Calibration {
        let sr = PlusTimes::<f64>::new();

        // Pool dispatch overhead: time near-empty parallel regions (the
        // workers are woken, claim trivial chunks, and the caller joins).
        // The first region also absorbs any cold-start so the kernel
        // probes below measure steady-state scheduling.
        let dispatch_overhead_secs = self.pool.install(|| {
            use rayon::prelude::*;
            let probe = || {
                (0..rayon::current_num_threads() * 16)
                    .into_par_iter()
                    .for_each(|i| {
                        std::hint::black_box(i);
                    })
            };
            probe(); // warm the pool
            let reps = 64;
            let t0 = Instant::now();
            for _ in 0..reps {
                probe();
            }
            t0.elapsed().as_secs_f64() / reps as f64
        });

        // Dense-ish probe: 512 rows, 64 nnz per row of A and B, full mask
        // rows — accumulator initialization amortizes away.
        let n = 512;
        let a = probe_matrix(n, n, 64, 0xA5A5);
        let b = probe_matrix(n, n, 64, 0x5A5A);
        let mask = probe_matrix(n, n, 64, 0x1234).pattern();
        let flops = masked_spgemm::flops(&a, &b).max(1);
        let msa_dense = self.pool.install(|| {
            time_secs(|| {
                let c = masked_spgemm(Algorithm::Msa, Phases::One, false, sr, &mask, &a, &b)
                    .expect("probe dims agree");
                std::hint::black_box(c.nnz());
            })
        });
        let heap_dense = self.pool.install(|| {
            time_secs(|| {
                let c = masked_spgemm(Algorithm::Heap, Phases::One, false, sr, &mask, &a, &b)
                    .expect("probe dims agree");
                std::hint::black_box(c.nnz());
            })
        });
        let inner_dense = self.pool.install(|| {
            time_secs(|| {
                let c = masked_spgemm(Algorithm::Inner, Phases::One, false, sr, &mask, &a, &b)
                    .expect("probe dims agree");
                std::hint::black_box(c.nnz());
            })
        });
        // Modeled dot units of the dense probe: Σ_i mm_i · (u_i + d̄_B).
        let avg_b_col = b.nnz() as f64 / b.ncols() as f64;
        let inner_units: f64 = (0..n)
            .map(|i| mask.row_nnz(i) as f64 * (a.row_nnz(i) as f64 + avg_b_col))
            .sum();

        // Sparse probe: wide output, one mask entry and two A entries per
        // row — per-row accumulator touch dominates.
        let wide = 1 << 15;
        let rows = 4096;
        let sa = probe_matrix(rows, rows, 2, 0xBEEF);
        let sb = probe_matrix(rows, wide, 2, 0xFACE);
        let smask = probe_matrix(rows, wide, 1, 0xD00D).pattern();
        let msa_sparse = self.pool.install(|| {
            time_secs(|| {
                let c = masked_spgemm(Algorithm::Msa, Phases::One, false, sr, &smask, &sa, &sb)
                    .expect("probe dims agree");
                std::hint::black_box(c.nnz());
            })
        });

        let msa_secs_per_flop = msa_dense / flops as f64;
        let heap_secs_per_flop = heap_dense / flops as f64;
        let msa_secs_per_row = msa_sparse / rows as f64;
        let inner_secs_per_unit = inner_dense / inner_units.max(1.0);

        // Model units are "one flop of MSA work" = 1.0.
        let avg_u = 64.0f64;
        let log_term = 1.0 + (avg_u + 1.0).log2();
        let heap_factor = (heap_secs_per_flop / msa_secs_per_flop / log_term).clamp(0.25, 8.0);
        let msa_overhead = (msa_secs_per_row / msa_secs_per_flop).clamp(8.0, 4096.0);
        let inner_factor = (inner_secs_per_unit / msa_secs_per_flop).clamp(0.25, 8.0);

        let config = HybridConfig {
            msa_overhead,
            heap_factor,
            inner_factor,
        };
        self.set_config(config);
        // Serial cutoff: the work level at which one pool dispatch costs as
        // much as the whole product. Clamped so a noisy overhead sample
        // cannot capture genuinely parallel products (the dense probe above
        // is ~2M flops; one dispatch should never be worth more than a
        // small fraction of it).
        let serial_cutoff_flops =
            (dispatch_overhead_secs / msa_secs_per_flop.max(1e-12)).clamp(0.0, 262_144.0);
        self.set_serial_cutoff_flops(serial_cutoff_flops);
        Calibration {
            config,
            msa_secs_per_flop,
            msa_secs_per_row,
            heap_secs_per_flop,
            inner_secs_per_unit,
            dispatch_overhead_secs,
            serial_cutoff_flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_matrix_is_valid_and_deterministic() {
        let a = probe_matrix(64, 128, 8, 42);
        assert_eq!(a.shape(), (64, 128));
        assert!(a.nnz() > 0);
        for i in 0..64 {
            let (cols, _) = a.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
            assert!(cols.iter().all(|&j| (j as usize) < 128));
        }
        assert_eq!(a, probe_matrix(64, 128, 8, 42));
    }

    #[test]
    fn calibration_produces_sane_constants() {
        let ctx = Context::with_threads(2);
        let cal = ctx.calibrate();
        assert!(cal.config.msa_overhead >= 8.0 && cal.config.msa_overhead <= 4096.0);
        assert!(cal.config.heap_factor >= 0.25 && cal.config.heap_factor <= 8.0);
        assert!(cal.msa_secs_per_flop > 0.0);
        assert!(cal.dispatch_overhead_secs >= 0.0);
        assert!(
            cal.dispatch_overhead_secs < 0.05,
            "pool dispatch took {:.6}s — workers are not parked/woken correctly",
            cal.dispatch_overhead_secs
        );
        // The serial cutoff was derived from the measurements and installed.
        assert!(cal.serial_cutoff_flops >= 0.0 && cal.serial_cutoff_flops <= 262_144.0);
        assert_eq!(
            ctx.serial_cutoff_flops().to_bits(),
            cal.serial_cutoff_flops.to_bits()
        );
        // The installed config is what the context now plans with.
        assert_eq!(
            ctx.config().msa_overhead.to_bits(),
            cal.config.msa_overhead.to_bits()
        );
    }
}
