//! Cost-model-based algorithm selection.
//!
//! The per-row cost model of [`masked_spgemm::hybrid`] (Section 9 future
//! work of the paper) is aggregated over whole operations here: for each
//! family the planner sums the per-row estimates using cached degree
//! vectors and the pair-cached flop count, then picks the cheapest. When
//! mixing families per row is estimated to beat every fixed family by a
//! margin, the plan is [`Choice::Hybrid`] and execution routes through
//! `hybrid_masked_spgemm`.
//!
//! All quantities are `O(nnz(A) + nrows)` to evaluate and come from the
//! [`crate::Context`] auxiliary cache, so repeated planning over the same
//! operands (k-truss peeling, BC sweeps) is cheap.

use masked_spgemm::{Algorithm, Phases};
use sparse::SparseError;

use crate::context::{Context, MatrixHandle, VectorHandle};

/// What executes the multiply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Choice {
    /// One algorithm for every row.
    Fixed(Algorithm),
    /// Per-row adaptive selection (plain masks only).
    Hybrid,
}

/// Estimated unit costs per algorithm family (the planner's working).
#[derive(Copy, Clone, Debug, Default)]
pub struct CostBreakdown {
    /// Masked sparse accumulator.
    pub msa: f64,
    /// Mask-compressed accumulator.
    pub mca: f64,
    /// Heap merge.
    pub heap: f64,
    /// Pull-based dot products.
    pub inner: f64,
    /// Per-row minimum across families (the hybrid's idealized cost).
    pub hybrid: f64,
    /// Flops of the unmasked product (the model's work term).
    pub flops: u64,
}

/// A chosen execution strategy for one masked multiply.
#[derive(Copy, Clone, Debug)]
pub struct Plan {
    /// Algorithm (or per-row hybrid).
    pub choice: Choice,
    /// Phase discipline.
    pub phases: Phases,
    /// Mask polarity.
    pub complemented: bool,
    /// Run serially on the calling thread instead of dispatching the pool:
    /// the estimated work is below the calibrated dispatch overhead
    /// ([`Context::set_serial_cutoff_flops`]). Vector-operand plans are
    /// always serial — a single output row has no row parallelism to win.
    pub serial: bool,
    /// The cost estimates that produced the choice.
    pub costs: CostBreakdown,
}

impl Plan {
    /// A plan forcing `algorithm` with no cost evaluation.
    pub fn fixed(algorithm: Algorithm, phases: Phases, complemented: bool) -> Self {
        Plan {
            choice: Choice::Fixed(algorithm),
            phases,
            complemented,
            serial: false,
            costs: CostBreakdown::default(),
        }
    }

    /// Label like the paper's scheme names (`MSA-1P`, `Hybrid-1P`).
    pub fn label(&self) -> String {
        let name = match self.choice {
            Choice::Fixed(alg) => alg.name(),
            Choice::Hybrid => "Hybrid",
        };
        format!("{}-{}", name, self.phases.suffix())
    }
}

/// Relative advantage the hybrid must show over the best fixed family
/// before the planner accepts it.
const HYBRID_MARGIN: f64 = 0.85;

/// Per-active-row cost of the hybrid's choice computation and kernel
/// switching, in model units.
const HYBRID_ROW_DISPATCH: f64 = 8.0;

/// Flop count above which a complemented-mask multiply switches to
/// two-phase execution (the 1P transient copy has no mask-derived bound
/// under a complemented mask, so exact allocation wins for heavy products).
const COMPLEMENTED_TWO_PHASE_FLOPS: u64 = 1 << 22;

/// Validate that the three operands form a well-shaped masked multiply
/// (shared by the planner, the cache lookup, and the descriptor path).
pub(crate) fn validate(
    ctx: &Context,
    mask: MatrixHandle,
    a: MatrixHandle,
    b: MatrixHandle,
) -> Result<(), SparseError> {
    let (em, ea, eb) = (ctx.entry(mask), ctx.entry(a), ctx.entry(b));
    if ea.matrix.ncols() != eb.matrix.nrows() {
        return Err(SparseError::DimMismatch {
            op: "engine plan (A·B)",
            lhs: ea.matrix.shape(),
            rhs: eb.matrix.shape(),
        });
    }
    if em.matrix.shape() != (ea.matrix.nrows(), eb.matrix.ncols()) {
        return Err(SparseError::DimMismatch {
            op: "engine plan (mask)",
            lhs: em.matrix.shape(),
            rhs: (ea.matrix.nrows(), eb.matrix.ncols()),
        });
    }
    Ok(())
}

/// Cost-model planning proper. Operand shapes are the caller's
/// responsibility ([`Context::plan`] runs [`validate`] before the cache
/// lookup, which is the only path here).
pub(crate) fn plan(
    ctx: &Context,
    mask: MatrixHandle,
    complemented: bool,
    a: MatrixHandle,
    b: MatrixHandle,
) -> Result<Plan, SparseError> {
    let (ea, eb) = (ctx.entry(a), ctx.entry(b));

    let cfg = ctx.config();
    let flops_total = ctx.flops(a, b);
    let mask_deg = ctx.row_degrees(mask);
    let a_deg = ctx.row_degrees(a);
    let b_deg = ctx.row_degrees(b);
    let avg_b_col_nnz = if eb.matrix.ncols() > 0 {
        eb.matrix.nnz() as f64 / eb.matrix.ncols() as f64
    } else {
        0.0
    };

    // Aggregate the per-row model exactly: one pass over A's indices for
    // per-row flops, one pass over rows for the family sums.
    //
    // Under a complemented mask the pull algorithm's work per row is driven
    // by the *unmasked* column count (`ncols − mm` dots — an empty mask row
    // is the maximal-work row, not a free one), and such rows must not be
    // skipped.
    // Structure-only: the planner reads patterns and degrees, never a
    // value lane, so it costs the same whatever lane the operands are
    // natively stored on.
    let a_mat = &ea.matrix;
    let ncols_out = eb.matrix.ncols() as f64;
    let mut costs = CostBreakdown {
        flops: flops_total,
        ..CostBreakdown::default()
    };
    let mut row_choices_differ = false;
    let mut first_choice: Option<u8> = None;
    let mut active_rows = 0usize;
    for i in 0..a_mat.nrows() {
        let mm = mask_deg[i] as usize;
        let u = a_deg[i] as usize;
        if u == 0 || (mm == 0 && !complemented) {
            continue;
        }
        let acols = a_mat.row_cols(i);
        let f: u64 = acols.iter().map(|&k| b_deg[k as usize] as u64).sum();
        if f == 0 {
            continue;
        }
        let (mm_f, u_f, f_f) = (mm as f64, u as f64, f as f64);
        // Output positions the pull algorithm visits on this row.
        let dots_f = if complemented { ncols_out - mm_f } else { mm_f };
        let msa = mm_f + f_f + cfg.msa_overhead;
        let mca = u_f * mm_f + f_f;
        let heap = mm_f + cfg.heap_factor * f_f * (1.0 + (u_f + 1.0).log2());
        let inner = cfg.inner_factor * dots_f * (u_f + avg_b_col_nnz);
        costs.msa += msa;
        costs.mca += mca;
        costs.heap += heap;
        costs.inner += inner;
        let (mut rc, mut row_min) = (0u8, msa);
        for (tag, cost) in [(1u8, mca), (2, heap), (3, inner)] {
            if cost < row_min {
                (rc, row_min) = (tag, cost);
            }
        }
        costs.hybrid += row_min;
        active_rows += 1;
        match first_choice {
            None => first_choice = Some(rc),
            Some(prev) if prev != rc => row_choices_differ = true,
            Some(_) => {}
        }
    }

    let candidates: &[(Choice, f64)] = &[
        (Choice::Fixed(Algorithm::Msa), costs.msa),
        (Choice::Fixed(Algorithm::Mca), costs.mca),
        (Choice::Fixed(Algorithm::Heap), costs.heap),
        (Choice::Fixed(Algorithm::Inner), costs.inner),
    ];
    let mut best = candidates[0];
    for &cand in &candidates[1..] {
        let supported = match cand.0 {
            Choice::Fixed(alg) => !complemented || alg.supports_complement(),
            Choice::Hybrid => !complemented,
        };
        if supported && cand.1 < best.1 {
            best = cand;
        }
    }
    // The hybrid only pays off when rows genuinely disagree about the best
    // family and the idealized mixed cost still clears the bar after its
    // real overheads: per-row choice/dispatch, and the CSC copy of `B` its
    // pull rows require (free only if already cached for this version).
    let mut choice = best.0;
    let csc_cost = if matches!(best.0, Choice::Fixed(Algorithm::Inner)) {
        0.0 // the best fixed plan would build it anyway
    } else {
        eb.matrix.nnz() as f64
    };
    costs.hybrid += HYBRID_ROW_DISPATCH * active_rows as f64 + csc_cost;
    if !complemented && row_choices_differ && costs.hybrid < HYBRID_MARGIN * best.1 {
        choice = Choice::Hybrid;
    }

    // Paper finding (Section 8): 1P beats 2P when the transient copy is
    // affordable. Plain masks bound the output by nnz(mask); complemented
    // masks have no such bound, so heavyweight complemented products take
    // the exact-allocation path.
    let phases = if complemented && flops_total > COMPLEMENTED_TWO_PHASE_FLOPS {
        Phases::Two
    } else {
        Phases::One
    };

    // Calibrated serial cutoff (ROADMAP follow-on from the persistent
    // pool): when the whole product's estimated work is below the cost of
    // waking the workers, dispatching the pool is pure overhead — run the
    // serial scratch driver on the calling thread instead.
    let serial = (flops_total as f64) < ctx.serial_cutoff_flops();

    Ok(Plan {
        choice,
        phases,
        complemented,
        serial,
        costs,
    })
}

/// Validate that a vector-operand multiply `v = m ⊙ (u·B)` is well-shaped.
pub(crate) fn validate_vec(
    ctx: &Context,
    mask: VectorHandle,
    u: VectorHandle,
    b: MatrixHandle,
) -> Result<(), SparseError> {
    let (mv, uv) = (ctx.vector(mask), ctx.vector(u));
    // Shape checks are structure-only: never materialize a lane view here.
    let b_shape = ctx.entry(b).matrix.shape();
    if uv.dim() != b_shape.0 {
        return Err(SparseError::DimMismatch {
            op: "engine plan (u·B)",
            lhs: (1, uv.dim()),
            rhs: b_shape,
        });
    }
    if mv.dim() != b_shape.1 {
        return Err(SparseError::DimMismatch {
            op: "engine plan (vector mask)",
            lhs: (1, mv.dim()),
            rhs: (1, b_shape.1),
        });
    }
    Ok(())
}

/// Cost-model planning for a vector-operand multiply `v = m ⊙ (u·B)` (or
/// `¬m ⊙` with `complemented`) — the frontier-expansion step of BFS-style
/// traversals, where Beamer's direction heuristic becomes a planner
/// decision:
///
/// * **push** ([`Algorithm::Msa`]) scatters the operand's rows; its work is
///   the exact flop count `Σ_{k ∈ u} deg_B(k)` plus the mask touch — the
///   "frontier's outgoing work" side of the heuristic;
/// * **pull** ([`Algorithm::Inner`]) runs one dot product per admissible
///   output position (`nnz(m)` plain, `ncols − nnz(m)` complemented — the
///   "unvisited count" side under the complemented visited mask of a BFS).
///
/// Single-row products never dispatch the pool, so the plan is always
/// [`Plan::serial`]; the phase discipline is irrelevant (rows are appended
/// exactly once) and fixed at [`Phases::One`].
pub(crate) fn plan_vec(
    ctx: &Context,
    mask: VectorHandle,
    complemented: bool,
    u: VectorHandle,
    b: MatrixHandle,
) -> Result<Plan, SparseError> {
    let (mv, uv) = (ctx.vector(mask), ctx.vector(u));
    let cfg = ctx.config();
    let b_deg = ctx.row_degrees(b);
    // Structure-only statistics — no lane view is materialized to plan.
    let bs = ctx.stats(b);

    let flops: u64 = uv.indices().iter().map(|&k| b_deg[k as usize] as u64).sum();
    let (mm, un) = (mv.nnz() as f64, uv.nnz() as f64);
    let ncols = bs.shape.1 as f64;
    let avg_b_col_nnz = if bs.shape.1 > 0 {
        bs.nnz as f64 / ncols
    } else {
        0.0
    };
    // Output positions the pull algorithm visits (Beamer's "unvisited"
    // term under a complemented visited mask).
    let dots = if complemented { ncols - mm } else { mm };
    let msa = mm + flops as f64 + cfg.msa_overhead;
    let inner = cfg.inner_factor * dots * (un + avg_b_col_nnz);

    let choice = if inner < msa && flops > 0 {
        Choice::Fixed(Algorithm::Inner)
    } else {
        Choice::Fixed(Algorithm::Msa)
    };
    Ok(Plan {
        choice,
        phases: Phases::One,
        complemented,
        serial: true,
        costs: CostBreakdown {
            msa,
            inner,
            hybrid: msa.min(inner),
            flops,
            ..CostBreakdown::default()
        },
    })
}
