#![warn(missing_docs)]

//! Planning and batch-execution engine for masked SpGEMM workloads.
//!
//! The kernels in `masked-spgemm` answer *how* to run one masked multiply;
//! this crate answers *which* kernel to run and *what to keep* between
//! calls. The paper's evaluation (and its Section 9 future work on hybrid
//! execution) shows the best algorithm depends on mask density and matrix
//! structure — so iterative workloads like k-truss peeling and batched
//! betweenness centrality, which issue hundreds of masked multiplies over
//! slowly-evolving operands, want a layer that:
//!
//! * **describes operations first-class** — a [`MaskedOp`] (built with the
//!   fluent [`OpBuilder`] from [`Context::op`]) carries operands, mask
//!   polarity, a runtime [`SemiringKind`], optional algorithm/phase
//!   overrides, and an accumulation mode, decoupling *what* to compute
//!   from *how* it runs;
//! * **stores matrices natively typed** — the registry holds each matrix
//!   on its own value lane ([`ValueMat`]: `bool`, `i64`, or `f64` via
//!   [`Context::insert_typed`] / [`Context::insert_bool`] /
//!   [`Context::insert_i64`]; the historical [`Context::insert`] is the
//!   `f64` case), so a boolean adjacency costs 1 byte/nnz and is consumed
//!   zero-copy by `bool`-lane operations, with cross-lane *casts* demoted
//!   to on-demand, byte-budgeted auxiliaries;
//! * **caches auxiliaries per matrix** — per-lane CSC forms and cast views,
//!   native-lane transposes, degree vectors, row statistics, and pairwise
//!   flop counts are computed lazily, reused until the matrix changes
//!   ([`Context::insert`] / [`Context::update`] / [`Context::update_typed`],
//!   which invalidates every lane's slots), and evicted
//!   least-recently-used under a byte budget ([`Context::set_aux_budget`]);
//! * **plans per operation** — [`Context::plan`] aggregates the per-row
//!   cost model over cached statistics and picks a fixed algorithm or the
//!   per-row hybrid ([`Plan`]); plans are cached under structural
//!   *fingerprint classes* ([`Context::plan_fingerprint`]), so
//!   structurally-similar versions (k-truss peels) reuse plans without
//!   re-planning at all;
//! * **calibrates the model** — [`Context::calibrate`] measures the
//!   machine's actual MSA/heap cost ratios and rescales [`HybridConfig`];
//! * **streams heterogeneous batches** — [`Context::for_each_result`] runs
//!   many independent multiplies concurrently (one worker per product,
//!   per-worker reused kernel scratch), mixing semirings freely, and hands
//!   each result to a [`ResultSink`] as it finishes instead of keeping
//!   every output resident ([`Context::run_batch_collect`] collects when
//!   you do want them all).
//!
//! ```
//! use engine::{Context, SemiringKind};
//! use sparse::CsrMatrix;
//!
//! let ctx = Context::with_threads(2);
//! let a = ctx.insert(CsrMatrix::diagonal(8, 2.0));
//! let m = ctx.insert(CsrMatrix::diagonal(8, 1.0));
//!
//! // One planned multiply…
//! let c = ctx.op(m, a, a).run().unwrap();
//! assert_eq!(c.get(3, 3), Some(&4.0));
//!
//! // …and a streamed batch mixing two semirings over the same operands.
//! let ops = vec![
//!     ctx.op(m, a, a).build(),
//!     ctx.op(m, a, a).semiring(SemiringKind::PlusPair).build(),
//!     ctx.op(m, a, a).semiring(SemiringKind::MinPlus).build(),
//! ];
//! let mut done = 0;
//! ctx.for_each_result(&ops, |_i, r: Result<CsrMatrix<f64>, _>| {
//!     r.unwrap();
//!     done += 1;
//! });
//! assert_eq!(done, 3);
//! ```

mod batch;
mod calibrate;
mod context;
mod op;
mod plan;

#[allow(deprecated)]
pub use batch::BatchOp;
pub use calibrate::Calibration;
pub use context::{
    AuxCacheStats, AuxStatus, Context, MatrixHandle, MatrixStats, PlanCacheStats, ValueMat,
    ValueVec, VectorHandle,
};
pub use masked_spgemm::{
    Algorithm, DynLane, DynSemiring, HybridConfig, LaneValue, Phases, SemiringKind, ValueKind,
};
pub use op::{
    AccumMode, AccumMonoid, AccumTarget, FromOpOutput, MaskedOp, OpBuilder, OpOutput, Operands,
    ResultSink,
};
/// The uniform error strings of the lane/operand validation surface, for
/// callers that match on [`sparse::SparseError::Unsupported`] payloads.
pub mod op_errors {
    pub use crate::op::{
        ACCUM_MONOID_LANE_MISMATCH, ACCUM_TARGET_MISMATCH, OPERAND_LANE_MISMATCH,
        OUTPUT_KIND_MISMATCH, SEMIRING_LANE_UNSUPPORTED,
    };
}
pub use plan::{Choice, CostBreakdown, Plan};
