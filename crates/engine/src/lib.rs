#![warn(missing_docs)]

//! Planning and batch-execution engine for masked SpGEMM workloads.
//!
//! The kernels in `masked-spgemm` answer *how* to run one masked multiply;
//! this crate answers *which* kernel to run and *what to keep* between
//! calls. The paper's evaluation (and its Section 9 future work on hybrid
//! execution) shows the best algorithm depends on mask density and matrix
//! structure — so iterative workloads like k-truss peeling and batched
//! betweenness centrality, which issue hundreds of masked multiplies over
//! slowly-evolving operands, want a layer that:
//!
//! * **caches auxiliaries per matrix** — CSC copies for pull-based schemes,
//!   transposes, degree vectors, row statistics, and pairwise flop counts
//!   are computed lazily and reused until the matrix changes
//!   ([`Context::insert`] / [`Context::update`]);
//! * **plans per operation** — [`Context::plan`] aggregates the per-row
//!   cost model over cached statistics and picks a fixed algorithm or the
//!   per-row hybrid, plus a phase discipline ([`Plan`]);
//! * **calibrates the model** — [`Context::calibrate`] measures the
//!   machine's actual MSA/heap cost ratios and rescales [`HybridConfig`];
//! * **executes batches** — [`Context::run_batch`] runs many independent
//!   multiplies concurrently, one worker per product, with per-worker
//!   kernel scratch reused across the whole batch.
//!
//! ```
//! use engine::{BatchOp, Context};
//! use sparse::{CsrMatrix, PlusTimes};
//!
//! let ctx = Context::with_threads(2);
//! let a = ctx.insert(CsrMatrix::diagonal(8, 2.0));
//! let m = ctx.insert(CsrMatrix::diagonal(8, 1.0));
//! let sr = PlusTimes::<f64>::new();
//!
//! // One planned multiply…
//! let c = ctx.masked_spgemm(sr, m, false, a, a).unwrap();
//! assert_eq!(c.get(3, 3), Some(&4.0));
//!
//! // …and a concurrent batch of the same shape.
//! let ops = vec![BatchOp { mask: m, complemented: false, a, b: a }; 4];
//! for r in ctx.run_batch(sr, &ops) {
//!     assert_eq!(r.unwrap(), c);
//! }
//! ```

mod batch;
mod calibrate;
mod context;
mod plan;

pub use batch::BatchOp;
pub use calibrate::Calibration;
pub use context::{AuxStatus, Context, MatrixHandle, MatrixStats};
pub use masked_spgemm::{Algorithm, HybridConfig, Phases};
pub use plan::{Choice, CostBreakdown, Plan};
