#![warn(missing_docs)]

//! Workspace-local subset of the [criterion](https://docs.rs/criterion) API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! benchmark-definition surface the workspace uses (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_with_input`, `Bencher::iter`)
//! with a simple best-of-N wall-clock measurement and plain-text report in
//! place of criterion's statistical machinery.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement backends (only wall time in this shim).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Benchmark manager; collects and reports group timings.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored, so
    /// `cargo bench -- <filter>` does not fail).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = self.make_bencher();
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Run one benchmark without input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into();
        let mut b = self.make_bencher();
        f(&mut b);
        self.report(&label, &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn make_bencher(&self) -> Bencher {
        Bencher {
            samples: self.samples,
            warm_up: self.warm_up,
            measurement: self.measurement,
            best: None,
        }
    }

    fn report(&self, label: &str, b: &Bencher) {
        match b.best {
            Some(best) => println!("  {}/{label}: best {best:?}", self.name),
            None => println!("  {}/{label}: no measurement", self.name),
        }
    }
}

/// Times a closure under the group's sampling configuration.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    best: Option<Duration>,
}

impl Bencher {
    /// Measure `f`: warm up, then repeat until the sample count or the
    /// measurement budget is exhausted; record the best time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let budget = Instant::now() + self.measurement;
        let mut best = Duration::MAX;
        let mut taken = 0usize;
        while taken < self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            best = best.min(t0.elapsed());
            taken += 1;
            if Instant::now() >= budget && taken > 0 {
                break;
            }
        }
        self.best = Some(best);
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
