#![warn(missing_docs)]

//! Workspace-local subset of the [criterion](https://docs.rs/criterion) API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! benchmark-definition surface the workspace uses (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_with_input`, `Bencher::iter`)
//! with real wall-clock sampling in place of criterion's statistical
//! machinery: every benchmark collects individual samples and reports
//! **min / median / mean** (the min is the noise-robust point estimate the
//! harnesses compare on).
//!
//! Completed measurements are also pushed to a process-global registry so
//! harness binaries can harvest them programmatically and emit
//! machine-readable output ([`take_reports`], [`reports_to_json`] — this is
//! how `BENCH_scheduler.json` is produced).

use std::fmt::Display;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Measurement backends (only wall time in this shim).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Summary statistics of one benchmark's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Fastest sample — the point estimate comparisons use.
    pub min: Duration,
    /// Middle sample (mean of the middle two for even counts).
    pub median: Duration,
    /// Arithmetic mean of all samples.
    pub mean: Duration,
    /// Number of samples taken.
    pub count: usize,
}

impl Sample {
    fn from_durations(mut samples: Vec<Duration>) -> Option<Sample> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let min = samples[0];
        let median = if count % 2 == 1 {
            samples[count / 2]
        } else {
            (samples[count / 2 - 1] + samples[count / 2]) / 2
        };
        let total: Duration = samples.iter().sum();
        let mean = total / count as u32;
        Some(Sample {
            min,
            median,
            mean,
            count,
        })
    }
}

/// One completed benchmark measurement, as pushed to the global registry.
#[derive(Debug, Clone)]
pub struct Report {
    /// Group name.
    pub group: String,
    /// Benchmark label within the group.
    pub label: String,
    /// The sampled statistics.
    pub sample: Sample,
}

static REPORTS: Mutex<Vec<Report>> = Mutex::new(Vec::new());

/// Drain every report recorded since the last call (process-global).
pub fn take_reports() -> Vec<Report> {
    std::mem::take(&mut *REPORTS.lock().expect("reports lock"))
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render reports as a JSON array of
/// `{group, label, min_s, median_s, mean_s, samples}` objects — the
/// machine-readable benchmark format harnesses write to disk.
pub fn reports_to_json(reports: &[Report]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"label\": \"{}\", \"min_s\": {:.9}, \
             \"median_s\": {:.9}, \"mean_s\": {:.9}, \"samples\": {}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.label),
            r.sample.min.as_secs_f64(),
            r.sample.median.as_secs_f64(),
            r.sample.mean.as_secs_f64(),
            r.sample.count,
            if i + 1 == reports.len() { "" } else { "," },
        ));
    }
    out.push(']');
    out
}

/// Benchmark manager; collects and reports group timings.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored, so
    /// `cargo bench -- <filter>` does not fail).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = self.make_bencher();
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Run one benchmark without input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into();
        let mut b = self.make_bencher();
        f(&mut b);
        self.report(&label, &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn make_bencher(&self) -> Bencher {
        Bencher {
            samples: self.samples,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample: None,
        }
    }

    fn report(&self, label: &str, b: &Bencher) {
        match b.sample {
            Some(s) => {
                println!(
                    "  {}/{label}: min {:?}  median {:?}  mean {:?}  ({} samples)",
                    self.name, s.min, s.median, s.mean, s.count
                );
                REPORTS.lock().expect("reports lock").push(Report {
                    group: self.name.clone(),
                    label: label.to_string(),
                    sample: s,
                });
            }
            None => println!("  {}/{label}: no measurement", self.name),
        }
    }
}

/// Times a closure under the group's sampling configuration.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    /// Measure `f`: warm up for the configured duration, then collect
    /// individual wall-clock samples until the sample count or the
    /// measurement budget is exhausted (always at least one), and record
    /// min / median / mean.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let budget = Instant::now() + self.measurement;
        let mut samples = Vec::with_capacity(self.samples);
        while samples.len() < self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
            if Instant::now() >= budget {
                break;
            }
        }
        self.sample = Sample::from_durations(samples);
    }

    /// The statistics recorded by the last [`Bencher::iter`] call.
    pub fn sample(&self) -> Option<Sample> {
        self.sample
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_full_statistics() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
        let reports = take_reports();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.sample.count >= 1);
            assert!(r.sample.min <= r.sample.median);
            assert!(r.sample.median <= r.sample.mean.max(r.sample.median));
        }
        let json = reports_to_json(&reports);
        assert!(json.starts_with('['));
        assert!(json.contains("\"min_s\""));
        assert!(json.contains("\"median_s\""));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_escape("plain/label"), "plain/label");
        assert_eq!(json_escape("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(json_escape("back\\slash"), "back\\\\slash");
        assert_eq!(
            json_escape("line\nbreak\tand\u{1}"),
            "line\\nbreak\\tand\\u0001"
        );
    }

    #[test]
    fn sample_statistics_are_ordered() {
        let s = Sample::from_durations(vec![
            Duration::from_millis(3),
            Duration::from_millis(1),
            Duration::from_millis(2),
            Duration::from_millis(10),
        ])
        .unwrap();
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.median, Duration::from_micros(2500));
        assert_eq!(s.mean, Duration::from_millis(4));
        assert_eq!(s.count, 4);
    }
}
