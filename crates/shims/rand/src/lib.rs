#![warn(missing_docs)]

//! Workspace-local subset of the [rand](https://docs.rs/rand) API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small surface the workspace uses — [`rngs::StdRng`], [`SeedableRng`], and
//! [`Rng`] with `gen`/`gen_range` — backed by a deterministic xoshiro256**
//! generator seeded through splitmix64. Streams differ from upstream rand,
//! which is fine: the workspace only relies on determinism per seed and on
//! reasonable uniformity, never on upstream's exact streams.

/// Seed a generator from a `u64` (the only seeding mode the workspace uses).
pub trait SeedableRng: Sized {
    /// Derive the full generator state from one word via splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling over the primitive types the workspace draws.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniform value of `T` over its standard domain
    /// (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types with a standard uniform distribution for [`Rng::gen`].
pub trait Standard {
    /// Map 64 uniform random bits into the standard domain.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = rng.gen();
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
