//! Scheduler-agreement test for the legacy per-call-spawn fallback.
//!
//! [`rayon::set_legacy_spawn_scheduler`] is process-global, so this test
//! lives alone in its own integration binary: cargo runs test *binaries*
//! sequentially, which keeps the flag flip from leaking into concurrently
//! running sibling tests (worker-reuse and width-propagation assertions
//! would observe spawn-scheduler behavior mid-flight otherwise).

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Results are bitwise identical between the pool scheduler and the
/// legacy per-call spawn scheduler across several widths.
#[test]
fn pool_and_spawn_schedulers_agree() {
    let data: Vec<u64> = (0..40_000).collect();
    let compute = || -> (Vec<u64>, u64) {
        let mapped: Vec<u64> = data
            .par_iter()
            .map(|&x| x.wrapping_mul(0x9E3779B9))
            .collect();
        let total: u64 = data.par_iter().copied().sum();
        (mapped, total)
    };
    for n in [1usize, 2, 4] {
        let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
        let pooled = pool.install(compute);
        rayon::set_legacy_spawn_scheduler(true);
        let spawned = pool.install(compute);
        rayon::set_legacy_spawn_scheduler(false);
        assert_eq!(pooled, spawned, "schedulers disagree at width {n}");
    }
}
