//! Behavioral tests for the persistent worker pool: chunk claiming under
//! skewed costs, worker reuse across calls, install nesting, panic
//! propagation, and worker-index exposure.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::ThreadId;
use std::time::Duration;

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

fn pool(n: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new().num_threads(n).build().unwrap()
}

/// With one deliberately expensive chunk, claiming must let the other
/// participants drain the cheap chunks instead of a static split handing
/// a fixed share to the stalled worker.
#[test]
fn stealing_balances_skewed_chunk_costs() {
    let pool = pool(3);
    let owners: Vec<(usize, ThreadId)> = pool.install(|| {
        (0..12)
            .into_par_iter()
            .map(|i| {
                let ms = if i == 0 { 60 } else { 2 };
                std::thread::sleep(Duration::from_millis(ms));
                (i, std::thread::current().id())
            })
            .collect()
    });
    assert_eq!(owners.len(), 12);
    let heavy_owner = owners[0].1;
    let heavy_owner_small_chunks = owners[1..]
        .iter()
        .filter(|(_, id)| *id == heavy_owner)
        .count();
    let distinct: HashSet<ThreadId> = owners.iter().map(|&(_, id)| id).collect();
    // More than one thread participated, and the thread stuck on the heavy
    // chunk did not also process the bulk of the cheap ones.
    assert!(distinct.len() >= 2, "only one thread ever claimed work");
    assert!(
        heavy_owner_small_chunks <= 6,
        "heavy-chunk owner also ran {heavy_owner_small_chunks}/11 cheap chunks — no stealing"
    );
}

/// Workers are persistent: repeated parallel calls reuse the same OS
/// threads instead of spawning fresh ones per call.
#[test]
fn workers_are_reused_across_calls() {
    let pool = pool(2);
    let caller = std::thread::current().id();
    let mut all_ids: Vec<HashSet<ThreadId>> = Vec::new();
    for _ in 0..5 {
        let ids: Vec<ThreadId> = pool.install(|| {
            (0..64)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(Duration::from_micros(200));
                    std::thread::current().id()
                })
                .collect()
        });
        all_ids.push(ids.into_iter().filter(|&id| id != caller).collect());
    }
    let union: HashSet<ThreadId> = all_ids.iter().flatten().copied().collect();
    assert!(
        union.len() <= 2,
        "expected at most 2 persistent workers, saw {} distinct thread ids",
        union.len()
    );
}

/// `install` scopes the width, nested installs restore the outer width,
/// and — the part the old shim got wrong — closures running *on pool
/// workers* observe the installed width, not the machine default.
#[test]
fn install_nesting_restores_and_propagates_width() {
    let outer = pool(4);
    let inner = pool(2);
    let baseline = rayon::current_num_threads();
    outer.install(|| {
        assert_eq!(rayon::current_num_threads(), 4);
        inner.install(|| {
            assert_eq!(rayon::current_num_threads(), 2);
        });
        assert_eq!(rayon::current_num_threads(), 4, "inner install leaked");
        // Width seen from inside worker closures matches the install.
        let widths: Vec<usize> = (0..32)
            .into_par_iter()
            .map(|_| rayon::current_num_threads())
            .collect();
        assert!(
            widths.iter().all(|&w| w == 4),
            "worker closures saw widths {widths:?}, expected all 4"
        );
        // …including when the region is shorter than the pool: the job
        // width is the installed width, not min(len, width).
        let short: Vec<usize> = (0..2)
            .into_par_iter()
            .map(|_| rayon::current_num_threads())
            .collect();
        assert!(
            short.iter().all(|&w| w == 4),
            "short-region closures saw widths {short:?}, expected all 4"
        );
    });
    assert_eq!(rayon::current_num_threads(), baseline, "install leaked");
}

/// A panic in a worker closure propagates to the initiating caller, and
/// the pool stays usable afterwards.
#[test]
fn worker_panics_propagate_and_pool_survives() {
    let pool = pool(3);
    let attempted = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            (0..64).into_par_iter().for_each(|i| {
                attempted.fetch_add(1, Ordering::Relaxed);
                if i == 13 {
                    panic!("deliberate chunk panic");
                }
            });
        })
    }));
    assert!(result.is_err(), "panic did not propagate to the caller");
    // The pool is intact: a follow-up computation produces correct results.
    let sum: u64 = pool.install(|| {
        (0..1000u64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&x| x)
            .sum()
    });
    assert_eq!(sum, 499_500);
}

/// `current_thread_index` identifies pool workers stably (the scratch key
/// used by the kernel drivers): indices stay within `0..n` and the caller
/// reports `None`.
#[test]
fn worker_indices_are_stable_and_bounded() {
    let pool = pool(3);
    assert_eq!(rayon::current_thread_index(), None);
    for _ in 0..3 {
        let indices: Vec<Option<usize>> = pool.install(|| {
            (0..48)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(Duration::from_micros(100));
                    rayon::current_thread_index()
                })
                .collect()
        });
        for idx in indices {
            match idx {
                None => {} // initiating thread helping
                Some(i) => assert!(i < 3, "worker index {i} out of range"),
            }
        }
    }
}

/// The streaming-batch primitive: workers run while the foreground drains
/// a channel; every index is delivered exactly once and worker panics
/// reach the caller.
#[test]
fn with_workers_streams_and_propagates_panics() {
    let pool = pool(2);
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let senders: Vec<std::sync::Mutex<Option<std::sync::mpsc::Sender<usize>>>> = (0..4)
        .map(|_| std::sync::Mutex::new(Some(tx.clone())))
        .collect();
    drop(tx);
    let seen = pool.with_workers(
        4,
        |wid| {
            let tx = senders[wid]
                .lock()
                .unwrap()
                .take()
                .expect("index delivered once");
            tx.send(wid).unwrap();
        },
        || {
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            got
        },
    );
    assert_eq!(seen, vec![0, 1, 2, 3]);

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.with_workers(3, |wid| assert!(wid != 1, "deliberate worker panic"), || ())
    }));
    assert!(result.is_err(), "with_workers swallowed a worker panic");
}

/// Regression: a panicking work index must not starve a foreground that
/// blocks until every index has resolved its channel sender — the other
/// indices still run (and drop their senders) after the panic, the
/// channel closes, and the panic then reaches the caller.
#[test]
fn with_workers_panic_does_not_deadlock_channel_foreground() {
    let pool = pool(1); // one worker: indices run strictly after the panic
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let senders: Vec<std::sync::Mutex<Option<std::sync::mpsc::Sender<usize>>>> = (0..4)
        .map(|_| std::sync::Mutex::new(Some(tx.clone())))
        .collect();
    drop(tx);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.with_workers(
            4,
            |wid| {
                let tx = senders[wid].lock().unwrap().take().expect("taken once");
                if wid == 0 {
                    panic!("deliberate first-index panic");
                }
                tx.send(wid).unwrap();
            },
            // Blocks until all senders are gone — hangs forever if the
            // panic made the scheduler skip the remaining indices.
            || rx.iter().count(),
        )
    }));
    assert!(result.is_err(), "worker panic did not propagate");
}

// NOTE: the pool-vs-legacy-spawn agreement test lives in its own binary
// (`tests/legacy_spawn.rs`): `set_legacy_spawn_scheduler` is process-global
// and would leak into these tests' concurrent siblings.
