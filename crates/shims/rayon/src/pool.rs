//! The persistent worker pool: registries of parked worker threads and the
//! thread-local scheduling context that routes parallel calls to them.
//!
//! A [`Registry`] owns a fixed set of worker threads that live for the
//! registry's whole lifetime. Workers park on a condvar when idle and are
//! woken when a job is injected; nothing is spawned per parallel call, so
//! kernel invocations stop paying `std::thread` spawn/join latency.
//!
//! Each thread carries a *scheduling context* — which registry its parallel
//! calls execute on and the effective worker-count width. The global
//! registry is created lazily on first use; [`crate::ThreadPool::install`]
//! swaps the context for the duration of a closure (and restores the outer
//! context on exit, even across panics); worker threads are born with their
//! own registry as context, so parallelism nested inside a job stays on the
//! same set of threads.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::job::JobRef;

/// How many claimable parts the scheduler publishes per effective worker.
/// Finer than one-per-worker so skewed per-part costs rebalance through
/// chunk claiming; coarse enough that the atomic claim and per-part closure
/// overhead stays invisible. This mirrors the drivers' historical 16×
/// oversubscription, now honored by the scheduler instead of ignored.
pub(crate) const PARTS_PER_WORKER: usize = 16;

/// A set of persistent worker threads plus the queue jobs are injected
/// into. Workers park when the queue is empty.
pub(crate) struct Registry {
    shared: Mutex<Shared>,
    work_ready: Condvar,
    num_threads: usize,
    /// Join handles, taken exactly once by [`Registry::terminate_and_join`].
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

struct Shared {
    queue: VecDeque<JobRef>,
    terminate: bool,
}

impl Registry {
    /// Spawn `num_threads` parked workers (at least one).
    pub(crate) fn new(num_threads: usize) -> Arc<Registry> {
        let num_threads = num_threads.max(1);
        let registry = Arc::new(Registry {
            shared: Mutex::new(Shared {
                queue: VecDeque::new(),
                terminate: false,
            }),
            work_ready: Condvar::new(),
            num_threads,
            handles: Mutex::new(Vec::with_capacity(num_threads)),
        });
        let mut handles = registry.handles.lock().expect("registry handles lock");
        for index in 0..num_threads {
            let registry = Arc::clone(&registry);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_main(registry, index))
                    .expect("spawn pool worker"),
            );
        }
        drop(handles);
        registry
    }

    /// Worker-thread count of this registry.
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Publish `copies` claim tickets for one job and wake workers. Each
    /// popped ticket attaches one worker to the job's chunk cursor.
    pub(crate) fn inject(&self, job: JobRef, copies: usize) {
        if copies == 0 {
            return;
        }
        {
            let mut shared = self.shared.lock().expect("registry queue lock");
            for _ in 0..copies {
                shared.queue.push_back(job);
            }
        }
        if copies == 1 {
            self.work_ready.notify_one();
        } else {
            self.work_ready.notify_all();
        }
    }

    /// Non-blocking pop, used by threads that steal work while waiting for
    /// their own job to complete.
    pub(crate) fn try_pop(&self) -> Option<JobRef> {
        self.shared
            .lock()
            .expect("registry queue lock")
            .queue
            .pop_front()
    }

    /// Remove every unclaimed ticket for the job identified by `data`,
    /// returning how many were removed. Under the queue lock, a ticket is
    /// either popped by a worker (which will run it to completion) or
    /// purged here — never both — which is what lets the initiator account
    /// for outstanding attachments exactly before its stack frame unwinds.
    pub(crate) fn purge(&self, data: *const ()) -> usize {
        let mut shared = self.shared.lock().expect("registry queue lock");
        let before = shared.queue.len();
        shared.queue.retain(|job| !job.refers_to(data));
        before - shared.queue.len()
    }

    /// Signal termination and join every worker. Called from
    /// [`crate::ThreadPool`]'s `Drop`; the global registry is never
    /// terminated.
    pub(crate) fn terminate_and_join(&self) {
        {
            let mut shared = self.shared.lock().expect("registry queue lock");
            shared.terminate = true;
        }
        self.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("registry handles lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER_INDEX.with(|c| c.set(Some(index)));
    CURRENT_REGISTRY.with(|c| *c.borrow_mut() = Some(Arc::clone(&registry)));
    loop {
        let job = {
            let mut shared = registry.shared.lock().expect("registry queue lock");
            loop {
                if shared.terminate {
                    return;
                }
                if let Some(job) = shared.queue.pop_front() {
                    break job;
                }
                shared = registry
                    .work_ready
                    .wait(shared)
                    .expect("registry queue lock");
            }
        };
        // Chunk panics are caught inside the job and re-raised on the
        // initiating thread, so the worker itself never unwinds here.
        unsafe { job.execute() };
    }
}

thread_local! {
    /// Registry this thread's parallel calls run on (`None` = the lazily
    /// created global registry).
    static CURRENT_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// Effective width for parallel calls on this thread (`None` = the
    /// registry's worker count).
    static WIDTH_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Index of this thread within its registry (`None` off-pool).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Default worker count: the `THREADS` environment variable (the pool's
/// test/CI override), then `RAYON_NUM_THREADS` for rayon compatibility,
/// then [`std::thread::available_parallelism`]. Read once per process.
pub(crate) fn default_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        for var in ["THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(v) = std::env::var(var) {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n > 0 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// The lazily-created process-wide registry free-standing parallel calls
/// run on (sized by [`default_width`]).
pub(crate) fn global_registry() -> Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Registry::new(default_width())))
}

/// The registry the current thread schedules on, creating the global one
/// if the thread has no explicit context.
pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT_REGISTRY.with(|c| {
        c.borrow()
            .as_ref()
            .map(Arc::clone)
            .unwrap_or_else(global_registry)
    })
}

/// Effective worker-count width on this thread without forcing registry
/// creation.
pub(crate) fn current_width() -> usize {
    if let Some(w) = WIDTH_OVERRIDE.with(Cell::get) {
        return w;
    }
    CURRENT_REGISTRY.with(|c| {
        c.borrow()
            .as_ref()
            .map_or_else(default_width, |r| r.num_threads())
    })
}

/// Index of the current thread within its pool (rayon's
/// `current_thread_index`): `Some(0..n)` on a pool worker, `None` on any
/// other thread (including an initiator helping its own job).
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// Restores the previous scheduling context on drop (panic-safe), so
/// nested [`crate::ThreadPool::install`]s always unwind to the outer pool.
pub(crate) struct ContextGuard {
    prev_registry: Option<Arc<Registry>>,
    prev_width: Option<usize>,
}

impl ContextGuard {
    /// Enter a scheduling context: parallel calls go to `registry` with
    /// `width` effective workers.
    pub(crate) fn enter(registry: Arc<Registry>, width: usize) -> ContextGuard {
        let prev_registry = CURRENT_REGISTRY.with(|c| c.borrow_mut().replace(registry));
        let prev_width = WIDTH_OVERRIDE.with(|c| c.replace(Some(width)));
        ContextGuard {
            prev_registry,
            prev_width,
        }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT_REGISTRY.with(|c| *c.borrow_mut() = self.prev_registry.take());
        WIDTH_OVERRIDE.with(|c| c.set(self.prev_width));
    }
}

/// Restores only the width override on drop; used while a worker executes
/// chunks of a job so nested parallel calls inherit the job's width.
pub(crate) struct WidthGuard {
    prev: Option<usize>,
}

impl WidthGuard {
    pub(crate) fn enter(width: usize) -> WidthGuard {
        WidthGuard {
            prev: WIDTH_OVERRIDE.with(|c| c.replace(Some(width))),
        }
    }
}

impl Drop for WidthGuard {
    fn drop(&mut self) {
        WIDTH_OVERRIDE.with(|c| c.set(self.prev));
    }
}
