//! Indexed parallel iterators: sources, adapters, consumers.
//!
//! Every iterator here knows its exact length and can be split at an index
//! (rayon's "producer" model). Consumers hand the pipeline to the pool
//! scheduler (`job::schedule`), which oversplits it into
//! claimable chunks, runs each chunk on a persistent pool worker (or the
//! calling thread), and recombines partial results in order — so all
//! consumers are deterministic and independent of both the worker count
//! and the claim order.

use std::ops::Range;

use crate::job::schedule;

/// An exact-length, splittable parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;
    /// Sequential iterator a part decomposes into.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of remaining items.
    fn par_len(&self) -> usize;
    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Decompose into a sequential iterator.
    fn into_seq(self) -> Self::Seq;

    /// Map every item through `op`.
    fn map<F, R>(self, op: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
        R: Send,
    {
        Map { base: self, op }
    }

    /// Iterate two indexed iterators in lockstep (truncates to the shorter).
    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Copy out of `&T` items.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Run `op` on every item.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        schedule(self, &|part: Self| part.into_seq().for_each(&op));
    }

    /// Sum all items.
    fn sum<T>(self) -> T
    where
        T: std::iter::Sum<Self::Item> + std::iter::Sum<T> + Send,
    {
        schedule(self, &|part: Self| part.into_seq().sum::<T>())
            .into_iter()
            .sum()
    }

    /// Reduce with an identity-producing closure and an associative `op`.
    fn reduce<Op, Id>(self, identity: Id, op: Op) -> Self::Item
    where
        Op: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        Id: Fn() -> Self::Item + Sync + Send,
    {
        schedule(self, &|part: Self| part.into_seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), op)
    }

    /// Collect into a container (only `Vec` in this shim).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion into a [`ParallelIterator`] (rayon's `into_par_iter`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Produced iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Borrowing conversion (rayon's `par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (`&'data T`).
    type Item: Send + 'data;
    /// Produced iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrow into a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

/// `par_chunks` over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous `chunk_size`-sized pieces
    /// (the final chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksParIter {
            slice: self,
            chunk_size,
        }
    }
}

/// Collection from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Build the container, preserving item order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let parts = schedule(p, &|part: P| part.into_seq().collect::<Vec<_>>());
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------- sources

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceParIter { slice: a }, SliceParIter { slice: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecParIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecParIter { vec: tail })
    }

    fn into_seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        VecParIter { vec: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;
    type Seq = Range<usize>;

    fn par_len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            RangeParIter {
                range: self.range.start..mid,
            },
            RangeParIter {
                range: mid..self.range.end,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.range
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> Self::Iter {
        RangeParIter { range: self }
    }
}

/// Parallel iterator over slice chunks.
pub struct ChunksParIter<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksParIter<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk_size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (
            ChunksParIter {
                slice: a,
                chunk_size: self.chunk_size,
            },
            ChunksParIter {
                slice: b,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk_size)
    }
}

// --------------------------------------------------------------- adapters

/// Adapter produced by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    op: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                op: self.op.clone(),
            },
            Map {
                base: b,
                op: self.op,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.op)
    }
}

/// Adapter produced by [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Adapter produced by [`ParallelIterator::copied`].
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    P: ParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;
    type Seq = std::iter::Copied<P::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Copied { base: a }, Copied { base: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().copied()
    }
}
