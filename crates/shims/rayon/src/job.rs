//! Jobs: stack-allocated chunk sets claimed by pool workers through a
//! shared atomic cursor.
//!
//! [`schedule`] is the bridge every parallel-iterator consumer runs
//! through. It splits the iterator into [`PARTS_PER_WORKER`]× more parts
//! than effective workers, publishes claim tickets on the registry queue,
//! and then participates itself: the initiating thread and every woken
//! worker pull part indices from one shared [`AtomicUsize`] cursor until it
//! is exhausted. A worker stuck with an expensive part simply stops
//! claiming while the others drain the rest — dynamic load balancing
//! without spawning a single thread — and an initiator whose last parts
//! are still running on other workers steals *other* queued jobs while it
//! waits, so nested jobs cannot idle a thread.
//!
//! Safety protocol: the [`ChunkSet`] lives on the initiator's stack and is
//! reached by workers through a type-erased [`JobRef`]. The initiator may
//! not return until no other thread can touch the set. That is enforced by
//! exact attachment counting: `refs` starts at 1 (the initiator) plus one
//! per injected ticket; every finished attachment decrements it, tickets
//! the initiator purges from the queue are decremented by the purge (pop
//! and purge are mutually exclusive under the queue lock), and the thread
//! that brings `refs` to zero sets the completion latch.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::iter::ParallelIterator;
use crate::pool::{self, Registry, WidthGuard, PARTS_PER_WORKER};

/// Completion latch: set exactly once when a job's last attachment ends.
pub(crate) struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn set(&self) {
        // Notify while still holding the lock: the latch lives on the
        // initiator's stack, and the moment the lock is released a waiter
        // (or a `probe` poller) may observe `done`, return, and free it.
        // Notifying after unlock would touch a freed condvar.
        let mut done = self.done.lock().expect("latch lock");
        *done = true;
        self.cv.notify_all();
    }

    fn probe(&self) -> bool {
        *self.done.lock().expect("latch lock")
    }

    /// Wait until set or `timeout`, whichever first (the waiter re-checks
    /// and steals between waits).
    fn wait_timeout(&self, timeout: Duration) {
        let guard = self.done.lock().expect("latch lock");
        if !*guard {
            let _ = self.cv.wait_timeout(guard, timeout).expect("latch lock");
        }
    }
}

/// Type-erased pointer to a stack-allocated job, safe to move across
/// threads under the counting protocol above.
#[derive(Copy, Clone)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

unsafe impl Send for JobRef {}

impl JobRef {
    /// Attach to the job: claim and run chunks until the cursor is
    /// exhausted, then release the attachment.
    ///
    /// # Safety
    /// `data` must point to a live job whose initiator is blocked until
    /// every attachment releases.
    pub(crate) unsafe fn execute(self) {
        (self.execute)(self.data)
    }

    pub(crate) fn refers_to(&self, data: *const ()) -> bool {
        self.data == data
    }
}

/// A parallel-iterator job: the split parts, their result slots, the claim
/// cursor, and the completion protocol state.
struct ChunkSet<P: ParallelIterator, T, F> {
    parts: Vec<UnsafeCell<Option<P>>>,
    results: Vec<UnsafeCell<Option<T>>>,
    cursor: AtomicUsize,
    /// Live attachments + unclaimed tickets + the initiator; see module
    /// docs.
    refs: AtomicUsize,
    latch: Latch,
    /// First panic payload from any chunk; re-raised by the initiator.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Effective width nested parallel calls inside chunks observe.
    width: usize,
    f: *const F,
}

unsafe impl<P, T, F> Sync for ChunkSet<P, T, F>
where
    P: ParallelIterator,
    T: Send,
    F: Sync,
{
}

impl<P, T, F> ChunkSet<P, T, F>
where
    P: ParallelIterator,
    T: Send,
    F: Fn(P) -> T + Sync,
{
    /// Claim and run parts until the cursor passes the end. Every part
    /// runs even after another part has panicked — as under the scoped
    /// scheduler this replaced, where sibling threads ran to completion
    /// before the join re-raised. That matters beyond fidelity: a part's
    /// closure may own resources whose disposal others block on (the
    /// batch executor's channel senders), so skipping parts could leave
    /// a foreground consumer waiting forever.
    fn attach(&self) {
        let _width = WidthGuard::enter(self.width);
        let f = unsafe { &*self.f };
        let n = self.parts.len();
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            let part = unsafe { (*self.parts[i].get()).take() }.expect("part claimed once");
            match panic::catch_unwind(AssertUnwindSafe(|| f(part))) {
                Ok(value) => unsafe { *self.results[i].get() = Some(value) },
                Err(payload) => {
                    let mut slot = self.panic.lock().expect("panic slot lock");
                    slot.get_or_insert(payload);
                }
            }
        }
    }

    /// Type-erased handle for the registry queue; ties the `execute` fn to
    /// this set's concrete type.
    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: execute_chunks::<P, T, F>,
        }
    }

    /// Drop one attachment; the last one out sets the latch.
    fn release(&self, count: usize) -> bool {
        if self.refs.fetch_sub(count, Ordering::AcqRel) == count {
            self.latch.set();
            true
        } else {
            false
        }
    }
}

unsafe fn execute_chunks<P, T, F>(data: *const ())
where
    P: ParallelIterator,
    T: Send,
    F: Fn(P) -> T + Sync,
{
    let set = unsafe { &*(data as *const ChunkSet<P, T, F>) };
    set.attach();
    set.release(1);
}

/// When true, [`schedule`] bypasses the pool and reproduces the historical
/// per-call `std::thread::scope` behavior (one contiguous part per worker,
/// fresh threads every call). Benchmark-only escape hatch; see
/// [`crate::set_legacy_spawn_scheduler`].
pub(crate) static LEGACY_SPAWN: AtomicBool = AtomicBool::new(false);

/// Split `p` into parts at the scheduler's granularity, run `f` over every
/// part across the current pool, and return the per-part results in order.
pub(crate) fn schedule<P, T>(p: P, f: &(impl Fn(P) -> T + Sync)) -> Vec<T>
where
    P: ParallelIterator,
    T: Send,
{
    if LEGACY_SPAWN.load(Ordering::Relaxed) {
        return schedule_spawn(p, f);
    }
    let len = p.par_len();
    // `width` is the installed worker count — it is what nested calls
    // inside chunks must observe (`current_num_threads` contract) and what
    // sizes per-worker state, so it is NOT clamped by `len`; only the
    // participant count is.
    let width = pool::current_width().max(1);
    let participants = width.min(len.max(1));
    if participants <= 1 {
        return vec![f(p)];
    }
    let nparts = len.min(width * PARTS_PER_WORKER).max(1);
    let parts = split_into(p, len, nparts);

    let registry = pool::current_registry();
    // One attachment per participating worker beyond the initiator; extra
    // tickets beyond the part count would be claimed into an empty cursor.
    let tickets = (participants - 1).min(nparts).min(registry.num_threads());
    let set: ChunkSet<P, T, _> = ChunkSet {
        results: (0..parts.len()).map(|_| UnsafeCell::new(None)).collect(),
        parts: parts
            .into_iter()
            .map(|p| UnsafeCell::new(Some(p)))
            .collect(),
        cursor: AtomicUsize::new(0),
        refs: AtomicUsize::new(1 + tickets),
        latch: Latch::new(),
        panic: Mutex::new(None),
        width,
        f,
    };
    let job = set.as_job_ref();
    registry.inject(job, tickets);
    set.attach();
    // Tickets never popped can no longer be: the cursor is exhausted, so
    // remove them and account for them plus our own attachment.
    let purged = registry.purge(job.data);
    if !set.release(purged + 1) {
        wait_stealing(&registry, &set.latch);
    }
    if let Some(payload) = set.panic.lock().expect("panic slot lock").take() {
        panic::resume_unwind(payload);
    }
    set.results
        .into_iter()
        .map(|slot| slot.into_inner().expect("chunk completed"))
        .collect()
}

/// Block until `latch` is set, executing other queued jobs in the
/// meantime — this is what keeps a worker that initiated a nested job from
/// idling while its last chunks run elsewhere.
fn wait_stealing(registry: &Registry, latch: &Latch) {
    loop {
        if latch.probe() {
            return;
        }
        if let Some(job) = registry.try_pop() {
            unsafe { job.execute() };
            continue;
        }
        latch.wait_timeout(Duration::from_micros(200));
    }
}

/// Split `p` (of known `len`) into `nparts` near-equal contiguous parts.
fn split_into<P: ParallelIterator>(p: P, len: usize, nparts: usize) -> Vec<P> {
    let mut parts = Vec::with_capacity(nparts);
    let mut rest = p;
    let mut remaining = len;
    let mut slots = nparts;
    while slots > 1 {
        let take = remaining.div_ceil(slots);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
        remaining -= take;
        slots -= 1;
    }
    parts.push(rest);
    parts
}

/// The historical scheduler: one contiguous part per worker, each on a
/// freshly spawned scoped thread. Kept verbatim so benchmarks can measure
/// the pool against the exact code it replaced.
fn schedule_spawn<P, T>(p: P, f: &(impl Fn(P) -> T + Sync)) -> Vec<T>
where
    P: ParallelIterator,
    T: Send,
{
    let len = p.par_len();
    let workers = pool::current_width().max(1).min(len.max(1));
    if workers <= 1 {
        return vec![f(p)];
    }
    let parts = split_into(p, len, workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| s.spawn(move || f(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Run `work(0..k)` on pool workers while the initiating thread runs
/// `foreground`, returning `foreground`'s value once both are done. Worker
/// panics are re-raised here after `foreground` completes.
///
/// The initiator does *not* claim work indices — that is the point: it
/// stays free to pump a channel the workers feed (the engine's streaming
/// batch executor). It must not itself be a pool worker of `registry`
/// while every other worker is blocked the same way; the workspace only
/// calls this from application threads.
pub(crate) fn run_with_foreground<R>(
    registry: &Arc<Registry>,
    k: usize,
    work: &(impl Fn(usize) + Sync),
    foreground: impl FnOnce() -> R,
) -> R {
    let k = k.max(1);
    let width = registry.num_threads();
    let indices: crate::iter::RangeParIter = (0..k).into_par_iter_range();
    let f = |part: crate::iter::RangeParIter| {
        for i in part.into_seq() {
            work(i);
        }
    };
    let set: ChunkSet<crate::iter::RangeParIter, (), _> = ChunkSet {
        results: (0..k).map(|_| UnsafeCell::new(None)).collect(),
        parts: split_into(indices, k, k)
            .into_iter()
            .map(|p| UnsafeCell::new(Some(p)))
            .collect(),
        cursor: AtomicUsize::new(0),
        refs: AtomicUsize::new(1 + k),
        latch: Latch::new(),
        panic: Mutex::new(None),
        width,
        f: &f,
    };
    let job = set.as_job_ref();
    registry.inject(job, k);
    // If `foreground` unwinds, the completion protocol must still run —
    // workers may hold references into this stack frame.
    let result = panic::catch_unwind(AssertUnwindSafe(foreground));
    let purged = registry.purge(job.data);
    if !set.release(purged + 1) {
        wait_stealing(registry, &set.latch);
    }
    if let Some(payload) = set.panic.lock().expect("panic slot lock").take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(value) => value,
        Err(payload) => panic::resume_unwind(payload),
    }
}

// Small helper so `run_with_foreground` can build a range iterator without
// importing the public trait into this module's namespace.
trait IntoRange {
    fn into_par_iter_range(self) -> crate::iter::RangeParIter;
}

impl IntoRange for std::ops::Range<usize> {
    fn into_par_iter_range(self) -> crate::iter::RangeParIter {
        use crate::iter::IntoParallelIterator;
        self.into_par_iter()
    }
}
