#![warn(missing_docs)]

//! Workspace-local subset of the [rayon](https://docs.rs/rayon) API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements exactly the surface the workspace uses — indexed
//! parallel iterators over slices, vectors, ranges and chunks, with `map` /
//! `zip` / `copied` adapters and `collect` / `for_each` / `sum` / `reduce`
//! consumers — on top of `std::thread::scope`.
//!
//! Semantics match rayon where the workspace relies on them:
//!
//! * iterators are *indexed*: order is preserved by every consumer, so
//!   results are bitwise independent of the worker count;
//! * [`ThreadPool::install`] scopes the worker count for everything executed
//!   inside it (the workspace only nests data-parallel calls, never pool
//!   scheduling, so a thread-local override is sufficient);
//! * work is split into one contiguous part per worker. There is no work
//!   stealing; the workspace's drivers oversubscribe chunks themselves.

use std::cell::Cell;

pub mod iter;
pub use iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    ParallelSlice,
};

/// Everything the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

thread_local! {
    static NUM_THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations on this thread will use.
///
/// Defaults to [`std::thread::available_parallelism`]; overridden inside
/// [`ThreadPool::install`].
pub fn current_num_threads() -> usize {
    NUM_THREADS_OVERRIDE.with(|c| match c.get() {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Error building a [`ThreadPool`] (never produced by this shim; kept for
/// API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle fixing the worker count for operations run under
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count in effect.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                NUM_THREADS_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = NUM_THREADS_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        let _restore = Restore(prev);
        op()
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 or unset = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Finish the build. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Range-based `into_par_iter` source re-exported at the crate root so
/// `rayon::iter` look-alikes resolve.
pub use iter::RangeParIter;

#[doc(hidden)]
pub fn _shim_marker() {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_sum_and_reduce() {
        let data: Vec<u64> = (1..=100).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
        let m = data.par_iter().copied().reduce(|| 0u64, |a, b| a.max(b));
        assert_eq!(m, 100);
    }

    #[test]
    fn zip_for_each_mutates_disjoint_slices() {
        let mut a = vec![0u32; 64];
        let parts: Vec<&mut [u32]> = a.chunks_mut(8).collect();
        let idx: Vec<u32> = (0..8).collect();
        idx.par_iter().zip(parts).for_each(|(&i, p)| {
            for (k, slot) in p.iter_mut().enumerate() {
                *slot = i * 100 + k as u32;
            }
        });
        assert_eq!(a[0], 0);
        assert_eq!(a[9], 101);
        assert_eq!(a[63], 707);
    }

    #[test]
    fn par_chunks_counts() {
        let data = [1u8; 103];
        let lens: Vec<usize> = data.par_chunks(10).map(|c| c.len()).collect();
        assert_eq!(lens.len(), 11);
        assert_eq!(lens.iter().sum::<usize>(), 103);
        assert_eq!(*lens.last().unwrap(), 3);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let data: Vec<u64> = (0..10_000).collect();
        let base: Vec<u64> = data
            .par_iter()
            .map(|&x| x.wrapping_mul(2654435761))
            .collect();
        for n in [1usize, 2, 5, 16] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let got: Vec<u64> = pool.install(|| {
                data.par_iter()
                    .map(|&x| x.wrapping_mul(2654435761))
                    .collect()
            });
            assert_eq!(got, base, "n={n}");
        }
    }
}
