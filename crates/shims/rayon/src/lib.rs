#![warn(missing_docs)]

//! Workspace-local subset of the [rayon](https://docs.rs/rayon) API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements exactly the surface the workspace uses — indexed
//! parallel iterators over slices, vectors, ranges and chunks, with `map` /
//! `zip` / `copied` adapters and `collect` / `for_each` / `sum` / `reduce`
//! consumers — on top of a **persistent work-claiming thread pool**
//! (`pool.rs`, `job.rs`).
//!
//! Semantics match rayon where the workspace relies on them:
//!
//! * iterators are *indexed*: order is preserved by every consumer, so
//!   results are bitwise independent of the worker count and of which
//!   worker claims which chunk;
//! * workers are persistent: they are spawned once per pool (the global
//!   pool lazily, [`ThreadPool`]s at `build`), park when idle, and are
//!   woken per job — parallel calls never pay thread spawn/join latency;
//! * work is *claimed*, not assigned: the scheduler publishes
//!   ~16×-oversplit chunk ranges and every participating thread pulls the
//!   next chunk from a shared atomic cursor, so skewed per-chunk costs
//!   (power-law row distributions) rebalance dynamically; a thread waiting
//!   on its own job steals other queued jobs meanwhile;
//! * [`ThreadPool::install`] scopes both the registry and the worker count
//!   for everything executed inside it, including closures that run *on*
//!   pool workers; nested installs restore the outer context on exit, and
//!   panics inside worker closures propagate to the initiating caller;
//! * the `THREADS` environment variable (then `RAYON_NUM_THREADS`)
//!   overrides the global pool's worker count — the CI knob for running the
//!   test suite at fixed widths.

pub mod iter;
mod job;
mod pool;

pub use iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    ParallelSlice,
};
pub use pool::current_thread_index;

use std::sync::Arc;

/// Everything the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

/// Number of worker threads parallel operations on this thread will use.
///
/// Defaults to the `THREADS` env override or
/// [`std::thread::available_parallelism`]; scoped by
/// [`ThreadPool::install`], including inside closures running on pool
/// workers.
pub fn current_num_threads() -> usize {
    pool::current_width()
}

/// The number of claimable parts the scheduler would publish for a
/// parallel region over `len` items at the current width.
///
/// Drivers that pre-chunk work (to build per-chunk output buffers) use
/// this so their chunk granularity matches the scheduler's claim
/// granularity exactly — the balancing policy lives here, not in each
/// driver.
pub fn recommended_parts(len: usize) -> usize {
    len.min(current_num_threads().max(1) * pool::PARTS_PER_WORKER)
        .max(1)
}

/// Route all parallel iterators through the historical per-call
/// `std::thread::scope` scheduler (one contiguous part per worker, fresh
/// threads each call) instead of the persistent pool.
///
/// Benchmark-only escape hatch: it exists so harnesses can measure the
/// pool against exactly the code it replaced. Process-global; do not
/// enable it while parallel work is in flight.
pub fn set_legacy_spawn_scheduler(enabled: bool) {
    job::LEGACY_SPAWN.store(enabled, std::sync::atomic::Ordering::SeqCst);
}

/// Error building a [`ThreadPool`] (never produced by this shim; kept for
/// API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle to a dedicated registry of persistent workers. Operations run
/// under [`ThreadPool::install`] schedule on this pool's workers with this
/// pool's width; dropping the pool parks-then-joins its workers.
pub struct ThreadPool {
    registry: Arc<pool::Registry>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// Run `op` with this pool's registry and worker count in effect; the
    /// previous scheduling context is restored on exit (nested installs
    /// therefore unwind correctly, panics included).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard =
            pool::ContextGuard::enter(Arc::clone(&self.registry), self.registry.num_threads());
        op()
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Shim extension (no rayon equivalent): run `work(i)` for every
    /// `i in 0..k` on this pool's workers while the calling thread runs
    /// `foreground`, returning `foreground`'s value when both are done.
    ///
    /// This is the streaming-batch primitive: workers produce into a
    /// channel that the foreground drains, so results flow while work is
    /// in flight and batch execution shares the pool with intra-op
    /// parallelism instead of spawning a second set of threads. Worker
    /// panics propagate to the caller after `foreground` returns.
    pub fn with_workers<R>(
        &self,
        k: usize,
        work: impl Fn(usize) + Sync,
        foreground: impl FnOnce() -> R,
    ) -> R {
        job::run_with_foreground(&self.registry, k, &work, foreground)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate_and_join();
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 or unset = `THREADS` env override or
    /// available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Finish the build, spawning the pool's parked workers. Infallible in
    /// this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => pool::default_width(),
            Some(n) => n,
        };
        Ok(ThreadPool {
            registry: pool::Registry::new(n),
        })
    }
}

/// Range-based `into_par_iter` source re-exported at the crate root so
/// `rayon::iter` look-alikes resolve.
pub use iter::RangeParIter;

#[doc(hidden)]
pub fn _shim_marker() {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_sum_and_reduce() {
        let data: Vec<u64> = (1..=100).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
        let m = data.par_iter().copied().reduce(|| 0u64, |a, b| a.max(b));
        assert_eq!(m, 100);
    }

    #[test]
    fn zip_for_each_mutates_disjoint_slices() {
        let mut a = vec![0u32; 64];
        let parts: Vec<&mut [u32]> = a.chunks_mut(8).collect();
        let idx: Vec<u32> = (0..8).collect();
        idx.par_iter().zip(parts).for_each(|(&i, p)| {
            for (k, slot) in p.iter_mut().enumerate() {
                *slot = i * 100 + k as u32;
            }
        });
        assert_eq!(a[0], 0);
        assert_eq!(a[9], 101);
        assert_eq!(a[63], 707);
    }

    #[test]
    fn par_chunks_counts() {
        let data = [1u8; 103];
        let lens: Vec<usize> = data.par_chunks(10).map(|c| c.len()).collect();
        assert_eq!(lens.len(), 11);
        assert_eq!(lens.iter().sum::<usize>(), 103);
        assert_eq!(*lens.last().unwrap(), 3);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    // (Pool-vs-legacy-spawn agreement is covered in `tests/legacy_spawn.rs`,
    // alone in its own binary — the toggle is process-global and unit tests
    // run concurrently.)
    #[test]
    fn results_identical_across_worker_counts() {
        let data: Vec<u64> = (0..10_000).collect();
        let base: Vec<u64> = data
            .par_iter()
            .map(|&x| x.wrapping_mul(2654435761))
            .collect();
        for n in [1usize, 2, 5, 16] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let got: Vec<u64> = pool.install(|| {
                data.par_iter()
                    .map(|&x| x.wrapping_mul(2654435761))
                    .collect()
            });
            assert_eq!(got, base, "pool n={n}");
        }
    }

    #[test]
    fn recommended_parts_bounds() {
        assert_eq!(recommended_parts(0), 1);
        assert_eq!(recommended_parts(1), 1);
        let parts = recommended_parts(1_000_000);
        assert!(parts <= current_num_threads() * 16);
        assert!(parts >= current_num_threads());
    }
}
