#![warn(missing_docs)]

//! Workspace-local subset of the [proptest](https://docs.rs/proptest) API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! surface the workspace's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, the
//! `collection::vec` / `collection::btree_set` combinators, [`Just`],
//! `prop_oneof!`, and the [`proptest!`] / `prop_assert*` macros.
//!
//! Failing inputs are reported with their `Debug` rendering but are **not**
//! shrunk; generation is deterministic per test (seeded from the test
//! function's name) so failures reproduce across runs.

use std::fmt;

pub mod collection;

/// Deterministic generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<F, S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S2,
        S2: Strategy,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the alternatives.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Everything property tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$({
            let arm: ::std::boxed::Box<dyn $crate::Strategy<Value = _>> = ::std::boxed::Box::new($arm);
            arm
        }),+])
    };
}

/// Define property tests: each `#[test] fn name(pattern in strategy, ...)`
/// becomes a standard test running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        // `$meta` carries the `#[test]` attribute (and any doc comments)
        // from the call site, so none is added here.
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {}/{}:\n{}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i32..2, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..2).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_tuple((a, b) in (0u32..5, 0u32..5).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
            prop_assert_eq!(a, b - (b - a));
        }

        #[test]
        fn flat_map_square(v in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0u8..niche(n), n..=n)
        })) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![0u32..1, 10u32..11, Just(99u32)]) {
            prop_assert!(x == 0 || x == 10 || x == 99);
        }
    }

    fn niche(n: usize) -> u8 {
        (n as u8).max(1)
    }

    #[test]
    fn deterministic_across_instantiations() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest_inner_failing();
    }

    fn proptest_inner_failing() {
        // A property that always fails, driven manually through the macro's
        // expansion path.
        let config = ProptestConfig::with_cases(1);
        let mut rng = crate::TestRng::deterministic("fail");
        for _ in 0..config.cases {
            let result: Result<(), TestCaseError> = (|| {
                let x = Strategy::generate(&(0u32..5), &mut rng);
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            })();
            if let Err(e) = result {
                panic!("proptest failed: {e}");
            }
        }
    }
}
