//! Collection strategies (`proptest::collection`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = self.hi_inclusive - self.lo + 1;
        self.lo + (rng.next_u64() % span as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`; duplicates reduce the realized size,
/// as with upstream proptest.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Bounded extra draws so constrained element domains terminate.
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 4 + 8 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_honor_range() {
        let s = vec(0u32..10, 2usize..5);
        let mut rng = TestRng::deterministic("vec_sizes");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_exact_size() {
        let s = vec(0u32..10, 7usize..=7);
        let mut rng = TestRng::deterministic("vec_exact");
        assert_eq!(s.generate(&mut rng).len(), 7);
    }

    #[test]
    fn btree_set_bounded() {
        let s = btree_set(0u32..4, 0usize..10);
        let mut rng = TestRng::deterministic("btree");
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() <= 4);
        }
    }
}
