//! Batch (multi-source) Betweenness Centrality (paper Section 8.4).
//!
//! Brandes' two-stage algorithm \[8\] expressed over matrices, processing a
//! batch of sources at once as in the GraphBLAS C API's
//! `BC_batch` reference:
//!
//! * **forward**: a batch BFS where the frontier `F` (batch × n, values =
//!   shortest-path counts σ) expands as `F ← ¬P ⊙ (F·A)` — a
//!   **complemented**-mask SpGEMM on `plus_times` (`P` accumulates visited
//!   vertices' path counts, and the complement keeps the search from
//!   rediscovering them);
//! * **backward**: dependencies flow down level by level with a
//!   **plain**-mask SpGEMM, `W ← S_{d−1} ⊙ (T·Aᵀ)`, where `T` holds
//!   `(1 + δ)/σ` on the level-`d` pattern.
//!
//! Both mask polarities are exercised, which is why MCA (no complement
//! support) sits out this benchmark in the paper — requesting it here
//! returns an error from the forward sweep.

use rayon::prelude::*;
use sparse::ewise::{assemble_rows, ewise_mult, ewise_union};
use sparse::transpose::transpose;
use sparse::{CscMatrix, CsrMatrix, Idx, PlusTimes, SparseError};

use crate::scheme::Scheme;

/// Outcome of a batch betweenness-centrality run.
#[derive(Clone, Debug)]
pub struct BcResult {
    /// Per-vertex centrality, summed over the batch's sources
    /// (unnormalized, endpoints excluded, as in Brandes).
    pub centrality: Vec<f64>,
    /// BFS depth reached (number of forward Masked SpGEMM calls).
    pub depth: usize,
    /// Number of sources processed.
    pub batch: usize,
}

/// `(1 + delta) ./ sigma` evaluated on the pattern of `sigma`
/// (`delta` entries default to 0 where absent) — the backward sweep's `T`.
pub(crate) fn one_plus_delta_over_sigma(
    sigma: &CsrMatrix<f64>,
    delta: &CsrMatrix<f64>,
) -> CsrMatrix<f64> {
    assert_eq!(sigma.shape(), delta.shape());
    let rows: Vec<(Vec<Idx>, Vec<f64>)> = (0..sigma.nrows())
        .into_par_iter()
        .map(|i| {
            let (sc, sv) = sigma.row(i);
            let (dc, dv) = delta.row(i);
            let mut cols = Vec::with_capacity(sc.len());
            let mut vals = Vec::with_capacity(sc.len());
            let mut q = 0usize;
            for (p, &j) in sc.iter().enumerate() {
                while q < dc.len() && dc[q] < j {
                    q += 1;
                }
                let d = if q < dc.len() && dc[q] == j {
                    dv[q]
                } else {
                    0.0
                };
                cols.push(j);
                vals.push((1.0 + d) / sv[p]);
            }
            (cols, vals)
        })
        .collect();
    assemble_rows(sigma.nrows(), sigma.ncols(), rows)
}

/// Batch betweenness centrality from the given `sources`, using `scheme`
/// for every Masked SpGEMM. `adj` is the (directed or undirected, simple)
/// adjacency matrix with unit values.
pub fn betweenness_centrality(
    scheme: Scheme,
    adj: &CsrMatrix<f64>,
    sources: &[Idx],
) -> Result<BcResult, SparseError> {
    let n = adj.nrows();
    assert_eq!(adj.ncols(), n, "adjacency must be square");
    let s = sources.len();
    assert!(s > 0, "empty source batch");
    let sr = PlusTimes::<f64>::new();

    let adj_csc = CscMatrix::from_csr(adj);
    let adj_t = transpose(adj);
    let adj_t_csc = CscMatrix::from_csr(&adj_t);

    // Forward sweep.
    let mut frontier = CsrMatrix::from_rows(s, n, sources.iter().map(|&v| vec![(v, 1.0f64)]))?;
    let mut paths = frontier.clone();
    let mut levels: Vec<CsrMatrix<f64>> = vec![frontier.clone()];
    loop {
        let next = scheme.run(sr, &paths, true, &frontier, adj, &adj_csc)?;
        if next.nnz() == 0 {
            break;
        }
        // Frontier and visited sets are disjoint by construction of the
        // complemented mask, so the union never merges values.
        paths = ewise_union(
            &paths,
            &next,
            |_, _| unreachable!("disjoint"),
            |x| *x,
            |y| *y,
        );
        levels.push(next.clone());
        frontier = next;
    }

    // Backward sweep.
    let mut delta = CsrMatrix::<f64>::empty(s, n);
    for d in (1..levels.len()).rev() {
        let sigma_d = &levels[d];
        let sigma_prev = &levels[d - 1];
        let t = one_plus_delta_over_sigma(sigma_d, &delta);
        let w = scheme.run(sr, sigma_prev, false, &t, &adj_t, &adj_t_csc)?;
        let contrib = ewise_mult(&w, sigma_prev, |wv, sv| wv * sv);
        delta = ewise_union(&delta, &contrib, |x, y| x + y, |x| *x, |y| *y);
    }

    // Aggregate, excluding each source's own row entry.
    let mut centrality = vec![0.0f64; n];
    for (r, &src) in sources.iter().enumerate() {
        let (cols, vals) = delta.row(r);
        for (&j, &v) in cols.iter().zip(vals) {
            if j != src {
                centrality[j as usize] += v;
            }
        }
    }
    Ok(BcResult {
        centrality,
        depth: levels.len() - 1,
        batch: s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brandes_reference;
    use graphs::to_undirected_simple;
    use masked_spgemm::{Algorithm, Phases};

    fn assert_close(a: &[f64], b: &[f64], label: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "{label}: vertex {i}: {x} vs {y}");
        }
    }

    fn path_graph(n: usize) -> CsrMatrix<f64> {
        let mut coo = sparse::CooMatrix::new(n, n);
        for i in 0..(n - 1) as u32 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn path_graph_single_source() {
        // Path 0-1-2-3, source 0: delta(1)=2 (paths to 2,3 pass through 1),
        // delta(2)=1, delta(3)=0.
        let adj = path_graph(4);
        let r =
            betweenness_centrality(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, &[0]).unwrap();
        assert_eq!(r.depth, 3);
        assert_close(&r.centrality, &[0.0, 2.0, 1.0, 0.0], "path");
    }

    #[test]
    fn star_center_is_on_all_paths() {
        // Star with center 0 and leaves 1..=4; sources = all vertices.
        let mut coo = sparse::CooMatrix::new(5, 5);
        for l in 1..5u32 {
            coo.push(0, l, 1.0);
            coo.push(l, 0, 1.0);
        }
        let adj = coo.to_csr();
        let sources: Vec<Idx> = (0..5).collect();
        let r = betweenness_centrality(Scheme::SsSaxpy, &adj, &sources).unwrap();
        let expect = brandes_reference(&adj, &sources);
        assert_close(&r.centrality, &expect, "star");
        // Center lies on paths between each ordered leaf pair: 4*3 = 12.
        assert!((r.centrality[0] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn schemes_agree_with_brandes_on_random_graphs() {
        for seed in 0..2 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(30, 4.0, seed));
            let sources: Vec<Idx> = vec![0, 3, 7, 11];
            let expect = brandes_reference(&adj, &sources);
            for s in [
                Scheme::Ours(Algorithm::Msa, Phases::One),
                Scheme::Ours(Algorithm::Msa, Phases::Two),
                Scheme::Ours(Algorithm::Hash, Phases::One),
                Scheme::Ours(Algorithm::Heap, Phases::One),
                Scheme::Ours(Algorithm::HeapDot, Phases::Two),
                Scheme::Ours(Algorithm::Inner, Phases::One),
                Scheme::SsDot,
                Scheme::SsSaxpy,
            ] {
                let r = betweenness_centrality(s, &adj, &sources).unwrap();
                assert_close(
                    &r.centrality,
                    &expect,
                    &format!("{} seed={seed}", s.label()),
                );
            }
        }
    }

    #[test]
    fn mca_is_rejected() {
        let adj = path_graph(3);
        let r = betweenness_centrality(Scheme::Ours(Algorithm::Mca, Phases::One), &adj, &[0]);
        assert!(r.is_err());
    }

    #[test]
    fn disconnected_vertices_unreached() {
        // Two components: 0-1 and 2-3; source 0 never reaches 2,3.
        let mut coo = sparse::CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        let r = betweenness_centrality(
            Scheme::Ours(Algorithm::Hash, Phases::One),
            &coo.to_csr(),
            &[0],
        )
        .unwrap();
        assert_eq!(r.centrality, vec![0.0; 4]);
        assert_eq!(r.depth, 1);
    }
}
