//! Direction-optimized breadth-first search on masked SpGEVM.
//!
//! Masking entered sparse linear algebra through exactly this computation
//! (paper Section 4, citing Beamer's direction-optimization and
//! Yang et al.'s push-pull): the frontier expands as
//! `next = ¬visited ⊙ (frontier · A)`, where the complemented mask *is* the
//! "don't rediscover visited vertices" filter. **Push** evaluates that with
//! a row-scatter accumulator (MSA); **pull** evaluates it with one dot
//! product per unvisited vertex (Inner); the **auto** mode switches per
//! level with Beamer's work heuristic.

use sparse::semiring::BoolAndOr;
use sparse::{CscMatrix, CsrMatrix, Idx, SparseVec};

use masked_spgemm::{masked_spgevm, masked_spgevm_csc, Algorithm};

/// Traversal direction policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Always scatter from the frontier (masked MSA SpGEVM).
    Push,
    /// Always gather into unvisited vertices (masked Inner SpGEVM).
    Pull,
    /// Switch per level: pull when the frontier's outgoing work exceeds
    /// the number of unvisited vertices, push otherwise.
    Auto,
}

/// Result of a BFS traversal.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Level per vertex; `-1` = unreached.
    pub levels: Vec<i64>,
    /// Number of expansion steps taken.
    pub depth: usize,
    /// Direction actually used at each level (interesting for `Auto`).
    pub directions: Vec<Direction>,
}

/// Sorted-merge union of two ascending index lists.
pub(crate) fn union_sorted(a: &[Idx], b: &[Idx]) -> Vec<Idx> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < a.len() || q < b.len() {
        if q >= b.len() || (p < a.len() && a[p] < b[q]) {
            out.push(a[p]);
            p += 1;
        } else if p >= a.len() || b[q] < a[p] {
            out.push(b[q]);
            q += 1;
        } else {
            out.push(a[p]);
            p += 1;
            q += 1;
        }
    }
    out
}

/// BFS from `source` over the (symmetric-pattern) adjacency matrix.
pub fn bfs(adj: &CsrMatrix<f64>, source: Idx, policy: Direction) -> BfsResult {
    let n = adj.nrows();
    assert_eq!(adj.ncols(), n, "adjacency must be square");
    assert!((source as usize) < n, "source out of range");
    let adj_bool = adj.map(|_| true);
    let adj_csc = CscMatrix::from_csr(&adj_bool);
    let avg_deg = if n > 0 {
        adj.nnz() as f64 / n as f64
    } else {
        0.0
    };

    let mut levels = vec![-1i64; n];
    levels[source as usize] = 0;
    let mut visited_idx: Vec<Idx> = vec![source];
    let mut frontier = SparseVec::try_new(n, vec![source], vec![true]).expect("valid frontier");
    let mut depth = 0usize;
    let mut directions = Vec::new();

    while !frontier.is_empty() {
        let visited_mask = SparseVec::try_new(n, visited_idx.clone(), vec![(); visited_idx.len()])
            .expect("visited sorted");
        let use_pull = match policy {
            Direction::Push => false,
            Direction::Pull => true,
            Direction::Auto => {
                let frontier_work = frontier.nnz() as f64 * avg_deg;
                let unvisited = (n - visited_idx.len()) as f64;
                frontier_work > unvisited
            }
        };
        let next: SparseVec<bool> = if use_pull {
            masked_spgevm_csc(true, BoolAndOr, &visited_mask, &frontier, &adj_csc)
                .expect("dims agree")
        } else {
            masked_spgevm(
                Algorithm::Msa,
                true,
                BoolAndOr,
                &visited_mask,
                &frontier,
                &adj_bool,
            )
            .expect("dims agree")
        };
        directions.push(if use_pull {
            Direction::Pull
        } else {
            Direction::Push
        });
        if next.is_empty() {
            break;
        }
        depth += 1;
        for (v, _) in next.iter() {
            levels[v as usize] = depth as i64;
        }
        visited_idx = union_sorted(&visited_idx, next.indices());
        frontier = next;
    }
    BfsResult {
        levels,
        depth,
        directions,
    }
}

/// Serial reference BFS (queue-based), for tests.
pub fn bfs_reference(adj: &CsrMatrix<f64>, source: Idx) -> Vec<i64> {
    let n = adj.nrows();
    let mut levels = vec![-1i64; n];
    levels[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source as usize]);
    while let Some(v) = queue.pop_front() {
        let (nbrs, _) = adj.row(v);
        for &w in nbrs {
            if levels[w as usize] < 0 {
                levels[w as usize] = levels[v] + 1;
                queue.push_back(w as usize);
            }
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::to_undirected_simple;

    #[test]
    fn union_merges() {
        assert_eq!(union_sorted(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[], &[1]), vec![1]);
        assert_eq!(union_sorted(&[1], &[]), vec![1]);
    }

    #[test]
    fn all_policies_match_reference() {
        for seed in 0..3 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(200, 3.0, seed));
            let expect = bfs_reference(&adj, 0);
            for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
                let got = bfs(&adj, 0, policy);
                assert_eq!(got.levels, expect, "seed={seed} {policy:?}");
            }
        }
    }

    #[test]
    fn auto_switches_direction_on_expander() {
        // On a well-connected random graph the frontier explodes by level
        // 2-3, which should trip the pull heuristic at least once.
        let adj = to_undirected_simple(&graphs::erdos_renyi(2000, 8.0, 7));
        let r = bfs(&adj, 0, Direction::Auto);
        assert!(
            r.directions.contains(&Direction::Pull),
            "never pulled: {:?}",
            r.directions
        );
        assert!(
            r.directions.contains(&Direction::Push),
            "never pushed: {:?}",
            r.directions
        );
        assert_eq!(r.levels, bfs_reference(&adj, 0));
    }

    #[test]
    fn disconnected_component_unreached() {
        let mut coo = sparse::CooMatrix::new(5, 5);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        let adj = coo.to_csr();
        let r = bfs(&adj, 0, Direction::Auto);
        assert_eq!(r.levels, vec![0, 1, -1, -1, -1]);
        assert_eq!(r.depth, 1);
    }

    #[test]
    fn path_graph_depth() {
        let mut coo = sparse::CooMatrix::new(6, 6);
        for i in 0..5u32 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        let r = bfs(&coo.to_csr(), 0, Direction::Push);
        assert_eq!(r.depth, 5);
        assert_eq!(r.levels, vec![0, 1, 2, 3, 4, 5]);
    }
}
