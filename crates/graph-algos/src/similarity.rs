//! Masked inner-product similarity (the paper's intro motivation from
//! bioinformatics/data analytics: "computing inner-product similarities"
//! where only a candidate subset of pairs matters).
//!
//! Given a sparse feature matrix `A` (rows = items, columns = features) and
//! a candidate-pair mask `M`, computes cosine similarity
//! `S = M ⊙ (A·Aᵀ) / (‖a_i‖·‖a_j‖)` — one Masked SpGEMM plus a normalization
//! pass over the surviving entries. Without the mask this is an all-pairs
//! `O(n²)`-output join; the mask makes it proportional to the candidates.

use sparse::transpose::transpose;
use sparse::{CscMatrix, CsrMatrix, PlusTimes, SparseError};

use crate::scheme::Scheme;

/// Masked cosine similarity over the rows of `a`.
///
/// Entries of the result are in `[-1, 1]` (exactly 1 for identical rows
/// with nonnegative features). Rows with zero norm produce no output.
pub fn masked_cosine_similarity(
    scheme: Scheme,
    mask: &CsrMatrix<()>,
    a: &CsrMatrix<f64>,
) -> Result<CsrMatrix<f64>, SparseError> {
    let at = transpose(a);
    let at_csc = CscMatrix::from_csr(&at);
    let sr = PlusTimes::<f64>::new();
    let dots = scheme.run(sr, mask, false, a, &at, &at_csc)?;
    let norms: Vec<f64> = (0..a.nrows())
        .map(|i| {
            let (_, vals) = a.row(i);
            vals.iter().map(|v| v * v).sum::<f64>().sqrt()
        })
        .collect();
    let mut out = dots;
    // Normalize in place; pattern is already the masked dot pattern.
    let nrows = out.nrows();
    let rowptr = out.rowptr().to_vec();
    let colidx = out.colidx().to_vec();
    let values = out.values_mut();
    for i in 0..nrows {
        for p in rowptr[i]..rowptr[i + 1] {
            let j = colidx[p] as usize;
            let denom = norms[i] * norms[j];
            values[p] = if denom > 0.0 { values[p] / denom } else { 0.0 };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use masked_spgemm::{Algorithm, Phases};
    use sparse::Idx;

    fn features() -> CsrMatrix<f64> {
        // item 0: {f0:1, f1:1}; item 1: {f0:1, f1:1} (identical);
        // item 2: {f2:5}; item 3: {f0:3}.
        CsrMatrix::try_new(
            4,
            3,
            vec![0, 2, 4, 5, 6],
            vec![0, 1, 0, 1, 2, 0],
            vec![1.0, 1.0, 1.0, 1.0, 5.0, 3.0],
        )
        .unwrap()
    }

    fn full_offdiag_mask(n: usize) -> CsrMatrix<()> {
        let mut coo = sparse::CooMatrix::new(n, n);
        for i in 0..n as Idx {
            for j in 0..n as Idx {
                if i != j {
                    coo.push(i, j, ());
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn identical_rows_have_similarity_one() {
        let m = full_offdiag_mask(4);
        let s =
            masked_cosine_similarity(Scheme::Ours(Algorithm::Msa, Phases::One), &m, &features())
                .unwrap();
        assert!((s.get(0, 1).unwrap() - 1.0).abs() < 1e-12);
        // Orthogonal items share no feature: no stored entry at all.
        assert_eq!(s.get(0, 2), None);
        // Partial overlap: cos(items 0,3) = 3 / (√2·3) = 1/√2.
        let expect = 1.0 / 2.0f64.sqrt();
        assert!((s.get(0, 3).unwrap() - expect).abs() < 1e-12);
        // Symmetric.
        assert_eq!(s.get(0, 3), s.get(3, 0));
    }

    #[test]
    fn mask_restricts_candidate_pairs() {
        // Only the pair (0,1) is a candidate.
        let m = CsrMatrix::try_new(4, 4, vec![0, 1, 1, 1, 1], vec![1], vec![()]).unwrap();
        let s = masked_cosine_similarity(Scheme::Hybrid, &m, &features()).unwrap();
        assert_eq!(s.nnz(), 1);
        assert!((s.get(0, 1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn schemes_agree() {
        let m = full_offdiag_mask(4);
        let a = features();
        let base =
            masked_cosine_similarity(Scheme::Ours(Algorithm::Msa, Phases::One), &m, &a).unwrap();
        for s in [
            Scheme::Ours(Algorithm::Inner, Phases::Two),
            Scheme::SsSaxpy,
            Scheme::Hybrid,
        ] {
            assert_eq!(masked_cosine_similarity(s, &m, &a).unwrap(), base);
        }
    }

    #[test]
    fn similarity_values_in_unit_range() {
        let a = graphs::erdos_renyi(30, 6.0, 3);
        let m = graphs::erdos_renyi(30, 10.0, 4).pattern();
        let s =
            masked_cosine_similarity(Scheme::Ours(Algorithm::Hash, Phases::One), &m, &a).unwrap();
        for (_, _, &v) in s.iter() {
            assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&v), "{v}");
        }
    }
}
