//! Engine-backed application entry points.
//!
//! These are the ports of the paper benchmarks onto [`engine::Context`]'s
//! operation-descriptor API: instead of a caller-chosen [`crate::Scheme`]
//! with hand-threaded CSC copies, each masked multiply is described with
//! [`Context::op`] and planned per iteration from cached statistics, with
//! auxiliaries (CSC form, transposes, degree vectors, flop counts) living
//! in the context's cache. The payoff shows in the iterative benchmarks:
//!
//! * k-truss recomputed a CSC copy of the current edge set every iteration
//!   *regardless of scheme* in the direct path; here a CSC is built only
//!   when the plan actually pulls — and because the plan cache is keyed by
//!   structural fingerprint class, consecutive peels in the same nnz
//!   regime reuse the cached plan without re-running the cost model;
//! * betweenness centrality re-derived `Aᵀ` and two CSC copies on every
//!   call; here they are cached on the adjacency handle and reused across
//!   calls, batches, and repetitions;
//! * repeated runs over the same graph (parameter sweeps, benchmark reps)
//!   reuse every cached auxiliary.
//!
//! Results are bit-identical to the scheme-based entry points — the engine
//! only changes *which* kernel runs and *what* is recomputed, never the
//! arithmetic. (The erased [`engine::SemiringKind`] semirings perform the
//! same float operations in the same order as the typed ones; counting
//! semirings count in `f64`, exact to 2⁵³.)

use engine::{Context, MatrixHandle, SemiringKind};
use sparse::ewise::{ewise_mult, ewise_union};
use sparse::reduce::sum_all;
use sparse::{CsrMatrix, Idx, SparseError};

use crate::bc::{one_plus_delta_over_sigma, BcResult};
use crate::ktruss::KtrussResult;

/// Triangle count via one planned `L ⊙ (L·L)` on `plus_pair`.
///
/// `l` is the prepared lower-triangular input (see
/// [`crate::prepare_triangle_input`]) registered in `ctx`.
pub fn triangle_count_auto(ctx: &Context, l: MatrixHandle) -> Result<u64, SparseError> {
    let c = ctx.op(l, l, l).semiring(SemiringKind::PlusPair).run()?;
    Ok(sum_all(&c) as u64)
}

/// k-truss via engine-planned support computations.
///
/// `adj` must have a symmetric pattern. The shrinking edge set lives in a
/// scratch handle whose auxiliaries are invalidated by each peel —
/// [`Context::update`] is exactly the mutation the cache is built around.
/// Plan reuse across peels comes from the context's fingerprint-keyed plan
/// cache: while the edge set stays in the same nnz regime, each iteration's
/// `Context::op(..).run()` serves the cached plan instead of re-running the
/// cost model (watch it with [`Context::plan_cache_stats`]).
pub fn ktruss_auto(
    ctx: &Context,
    adj: MatrixHandle,
    k: usize,
) -> Result<KtrussResult, SparseError> {
    assert!(k >= 3, "k-truss needs k >= 3");
    let min_support = (k - 2) as f64;
    let work = ctx.insert_shared(ctx.matrix(adj));
    let mut iterations = 0usize;
    let mut total_flops = 0u64;
    let result = loop {
        iterations += 1;
        total_flops += ctx.flops(work, work);
        let current_nnz = ctx.stats(work).nnz;
        // Support of every surviving edge: common-neighbor counts masked to
        // the current edge set; algorithm re-chosen as the mask sparsifies
        // (plan served from the fingerprint cache while the regime holds).
        let support = match ctx
            .op(work, work, work)
            .semiring(SemiringKind::PlusPair)
            .run()
        {
            Ok(support) => support,
            Err(e) => {
                ctx.remove(work);
                return Err(e);
            }
        };
        let kept = support.filter(|_, _, &s| s >= min_support).map(|_| 1.0f64);
        if kept.nnz() == current_nnz || kept.nnz() == 0 {
            break KtrussResult {
                truss: kept,
                iterations,
                total_flops,
            };
        }
        ctx.update(work, kept);
    };
    ctx.remove(work);
    Ok(result)
}

/// Batch betweenness centrality with engine-planned multiplies.
///
/// The adjacency's transpose and any CSC copies are cached on the context,
/// so repeated calls (and the per-level loop) stop paying conversion costs.
pub fn betweenness_centrality_auto(
    ctx: &Context,
    adj: MatrixHandle,
    sources: &[Idx],
) -> Result<BcResult, SparseError> {
    let adj_m = ctx.matrix(adj);
    let n = adj_m.nrows();
    assert_eq!(adj_m.ncols(), n, "adjacency must be square");
    let s = sources.len();
    assert!(s > 0, "empty source batch");

    // Owned by the adjacency's entry: reused across calls, invalidated
    // with it. Not removed here.
    let adj_t = ctx.transpose_handle(adj);

    // Forward sweep: frontier and path-count masks live in scratch handles
    // updated per level.
    let first = CsrMatrix::from_rows(s, n, sources.iter().map(|&v| vec![(v, 1.0f64)]))?;
    let frontier = ctx.insert(first.clone());
    let paths_handle = ctx.insert(first.clone());
    let mut paths = first.clone();
    let mut levels: Vec<CsrMatrix<f64>> = vec![first];
    let cleanup = |r| {
        ctx.remove(frontier);
        ctx.remove(paths_handle);
        r
    };
    loop {
        let next = match ctx.op(paths_handle, frontier, adj).complemented(true).run() {
            Ok(next) => next,
            Err(e) => return cleanup(Err(e)),
        };
        if next.nnz() == 0 {
            break;
        }
        // Frontier and visited sets are disjoint under the complemented
        // mask, so the union never merges values.
        paths = ewise_union(
            &paths,
            &next,
            |_, _| unreachable!("disjoint"),
            |x| *x,
            |y| *y,
        );
        ctx.update(paths_handle, paths.clone());
        ctx.update(frontier, next.clone());
        levels.push(next);
    }

    // Backward sweep.
    let t_handle = ctx.insert(CsrMatrix::<f64>::empty(s, n));
    let sigma_handle = ctx.insert(CsrMatrix::<f64>::empty(s, n));
    let mut delta = CsrMatrix::<f64>::empty(s, n);
    for d in (1..levels.len()).rev() {
        let sigma_d = &levels[d];
        let sigma_prev = &levels[d - 1];
        let t = one_plus_delta_over_sigma(sigma_d, &delta);
        ctx.update(t_handle, t);
        ctx.update(sigma_handle, sigma_prev.clone());
        let w = match ctx.op(sigma_handle, t_handle, adj_t).run() {
            Ok(w) => w,
            Err(e) => {
                ctx.remove(t_handle);
                ctx.remove(sigma_handle);
                return cleanup(Err(e));
            }
        };
        let contrib = ewise_mult(&w, sigma_prev, |wv, sv| wv * sv);
        delta = ewise_union(&delta, &contrib, |x, y| x + y, |x| *x, |y| *y);
    }
    ctx.remove(t_handle);
    ctx.remove(sigma_handle);

    // Aggregate, excluding each source's own row entry.
    let mut centrality = vec![0.0f64; n];
    for (r, &src) in sources.iter().enumerate() {
        let (cols, vals) = delta.row(r);
        for (&j, &v) in cols.iter().zip(vals) {
            if j != src {
                centrality[j as usize] += v;
            }
        }
    }
    cleanup(Ok(BcResult {
        centrality,
        depth: levels.len() - 1,
        batch: s,
    }))
}

/// Masked cosine similarity with the engine planning the dot products.
///
/// `mask` holds the candidate pairs (values ignored); `a` is the feature
/// matrix. `Aᵀ` comes from the context's transpose cache.
pub fn masked_cosine_similarity_auto(
    ctx: &Context,
    mask: MatrixHandle,
    a: MatrixHandle,
) -> Result<CsrMatrix<f64>, SparseError> {
    // Owned by `a`'s entry: stays cached for the next call.
    let at = ctx.transpose_handle(a);
    let mut out = ctx.op(mask, a, at).run()?;
    let a_m = ctx.matrix(a);
    let norms: Vec<f64> = (0..a_m.nrows())
        .map(|i| {
            let (_, vals) = a_m.row(i);
            vals.iter().map(|v| v * v).sum::<f64>().sqrt()
        })
        .collect();
    let nrows = out.nrows();
    let rowptr = out.rowptr().to_vec();
    let colidx = out.colidx().to_vec();
    let values = out.values_mut();
    for i in 0..nrows {
        for p in rowptr[i]..rowptr[i + 1] {
            let j = colidx[p] as usize;
            let denom = norms[i] * norms[j];
            values[p] = if denom > 0.0 { values[p] / denom } else { 0.0 };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{brandes_reference, ktruss_reference, triangle_count_reference};
    use crate::{
        betweenness_centrality, ktruss, masked_cosine_similarity, prepare_triangle_input, Scheme,
    };
    use graphs::to_undirected_simple;
    use masked_spgemm::{Algorithm, Phases};
    use sparse::CscMatrix;

    #[test]
    fn triangle_auto_matches_reference_and_direct() {
        let ctx = Context::with_threads(2);
        for seed in 0..3 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(80, 8.0, seed));
            let l = prepare_triangle_input(&adj);
            let lc = CscMatrix::from_csr(&l);
            let h = ctx.insert(l.clone());
            let expect = triangle_count_reference(&adj);
            assert_eq!(triangle_count_auto(&ctx, h).unwrap(), expect, "seed {seed}");
            assert_eq!(
                crate::triangle_count(Scheme::Ours(Algorithm::Msa, Phases::One), &l, &lc).unwrap(),
                expect
            );
            ctx.remove(h);
        }
    }

    #[test]
    fn ktruss_auto_matches_reference_and_scheme_path() {
        let ctx = Context::with_threads(2);
        for seed in 0..2 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(50, 9.0, seed));
            let h = ctx.insert(adj.clone());
            for k in [3usize, 4] {
                let auto = ktruss_auto(&ctx, h, k).unwrap();
                let expect = ktruss_reference(&adj, k);
                assert_eq!(auto.truss.pattern(), expect.pattern(), "seed {seed} k={k}");
                let direct = ktruss(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, k).unwrap();
                assert_eq!(auto.truss, direct.truss);
                assert_eq!(auto.iterations, direct.iterations);
                assert_eq!(auto.total_flops, direct.total_flops);
            }
            ctx.remove(h);
        }
    }

    #[test]
    fn ktruss_auto_reuses_plans_across_peels() {
        // The fingerprint-keyed plan cache must serve at least one peel
        // iteration from cache when the edge set shrinks gradually.
        let ctx = Context::with_threads(2);
        let adj = to_undirected_simple(&graphs::erdos_renyi(96, 10.0, 5));
        let h = ctx.insert(adj);
        let before = ctx.plan_cache_stats();
        let r = ktruss_auto(&ctx, h, 4).unwrap();
        let after = ctx.plan_cache_stats();
        assert!(r.iterations >= 2, "want a multi-iteration peel");
        assert!(
            after.hits > before.hits,
            "no plan reuse across {} peels: {before:?} -> {after:?}",
            r.iterations
        );
    }

    #[test]
    fn bc_auto_matches_brandes_and_direct() {
        let ctx = Context::with_threads(2);
        for seed in 0..2 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(40, 4.0, seed));
            let sources: Vec<Idx> = vec![0, 5, 9];
            let h = ctx.insert(adj.clone());
            let auto = betweenness_centrality_auto(&ctx, h, &sources).unwrap();
            let expect = brandes_reference(&adj, &sources);
            for (v, (x, y)) in auto.centrality.iter().zip(&expect).enumerate() {
                assert!((x - y).abs() < 1e-9, "seed {seed} vertex {v}: {x} vs {y}");
            }
            let direct =
                betweenness_centrality(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, &sources)
                    .unwrap();
            assert_eq!(auto.depth, direct.depth);
            ctx.remove(h);
        }
    }

    #[test]
    fn similarity_auto_matches_direct() {
        let ctx = Context::with_threads(2);
        let a = graphs::erdos_renyi(40, 6.0, 3);
        let m = graphs::erdos_renyi(40, 10.0, 4);
        let direct =
            masked_cosine_similarity(Scheme::Ours(Algorithm::Msa, Phases::One), &m.pattern(), &a)
                .unwrap();
        let (ha, hm) = (ctx.insert(a), ctx.insert(m));
        let auto = masked_cosine_similarity_auto(&ctx, hm, ha).unwrap();
        assert_eq!(auto, direct);
    }

    #[test]
    fn bc_auto_reuses_cached_transpose_across_calls() {
        let ctx = Context::with_threads(2);
        let adj = to_undirected_simple(&graphs::erdos_renyi(30, 4.0, 7));
        let h = ctx.insert(adj);
        assert!(!ctx.aux_status(h).has_transpose);
        let r1 = betweenness_centrality_auto(&ctx, h, &[0, 3]).unwrap();
        // The transpose was materialized by the first call…
        assert!(ctx.aux_status(h).has_transpose);
        let v1 = ctx.aux_status(h).version;
        // …and the second call reuses it (same version, same result).
        let r2 = betweenness_centrality_auto(&ctx, h, &[0, 3]).unwrap();
        assert_eq!(ctx.aux_status(h).version, v1);
        assert_eq!(r1.centrality, r2.centrality);
    }
}
