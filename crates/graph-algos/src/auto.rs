//! Engine-backed application entry points.
//!
//! These are the ports of the paper benchmarks onto [`engine::Context`]'s
//! operation-descriptor API: instead of a caller-chosen [`crate::Scheme`]
//! with hand-threaded CSC copies, each masked multiply is described with
//! [`Context::op`] and planned per iteration from cached statistics, with
//! auxiliaries (CSC form, transposes, degree vectors, flop counts) living
//! in the context's cache. The payoff shows in the iterative benchmarks:
//!
//! * k-truss recomputed a CSC copy of the current edge set every iteration
//!   *regardless of scheme* in the direct path; here a CSC is built only
//!   when the plan actually pulls — and because the plan cache is keyed by
//!   structural fingerprint class, consecutive peels in the same nnz
//!   regime reuse the cached plan without re-running the cost model;
//! * betweenness centrality re-derived `Aᵀ` and two CSC copies on every
//!   call; here they are cached on the adjacency handle and reused across
//!   calls, batches, and repetitions;
//! * repeated runs over the same graph (parameter sweeps, benchmark reps)
//!   reuse every cached auxiliary.
//!
//! Results are bit-identical to the scheme-based entry points — the engine
//! only changes *which* kernel runs and *what* is recomputed, never the
//! arithmetic. (The erased [`engine::SemiringKind`] semirings perform the
//! same float operations in the same order as the typed ones; counting
//! semirings count in `f64`, exact to 2⁵³.)

use engine::{
    Algorithm, Choice, Context, FromOpOutput, LaneValue, MatrixHandle, OpOutput, SemiringKind,
    ValueKind, ValueMat, ValueVec,
};
use sparse::ewise::{ewise_mult, ewise_union};
use sparse::reduce::sum_all;
use sparse::{CsrMatrix, Idx, SparseError, SparseVec};

use crate::bc::{one_plus_delta_over_sigma, BcResult};
use crate::bfs::{union_sorted, BfsResult, Direction};
use crate::ktruss::KtrussResult;

/// Triangle count via one planned `L ⊙ (L·L)` on `plus_pair`.
///
/// `l` is the prepared lower-triangular input (see
/// [`crate::prepare_triangle_input`]) registered in `ctx`.
pub fn triangle_count_auto(ctx: &Context, l: MatrixHandle) -> Result<u64, SparseError> {
    let c = ctx.op(l, l, l).semiring(SemiringKind::PlusPair).run()?;
    Ok(sum_all(&c) as u64)
}

/// k-truss via engine-planned support computations.
///
/// `adj` must have a symmetric pattern. The shrinking edge set lives in a
/// scratch handle whose auxiliaries are invalidated by each peel —
/// [`Context::update_typed`] is exactly the mutation the cache is built
/// around. Plan reuse across peels comes from the context's
/// fingerprint-keyed plan cache: while the edge set stays in the same nnz
/// regime, each iteration's `Context::op(..)` serves the cached plan
/// instead of re-running the cost model (watch it with
/// [`Context::plan_cache_stats`]).
///
/// The peel runs on the adjacency's **native lane**: an `f64`-registered
/// graph counts in `f64` exactly as before, while natively `i64`/`bool`
/// graphs ([`Context::insert_typed`]) peel on the exact `i64` lane (the
/// `bool` lane has no counting semiring; its pattern is lifted to `i64`
/// once, never through an `f64` canonical). The surviving-edge patterns
/// are identical on every lane — support counts are small integers.
pub fn ktruss_auto(
    ctx: &Context,
    adj: MatrixHandle,
    k: usize,
) -> Result<KtrussResult, SparseError> {
    assert!(k >= 3, "k-truss needs k >= 3");
    match ctx.value_mat(adj) {
        ValueMat::F64(m) => ktruss_auto_lane::<f64>(ctx, ValueMat::F64(m), k, |m| m),
        ValueMat::I64(m) => {
            ktruss_auto_lane::<i64>(ctx, ValueMat::I64(m), k, |m| m.map_values(|v| v as f64))
        }
        ValueMat::Bool(m) => {
            // One transient i64 lift of the pattern, owned by the peel's
            // work entry (a cached `i64_view` would pin the same Arc in
            // both the aux ledger and the registry — double-billed bytes
            // and an eviction that frees nothing), then the whole peel
            // stays on the integer lane.
            let lifted = ValueMat::from(m.map_values(i64::cast_from));
            ktruss_auto_lane::<i64>(ctx, lifted, k, |m| m.map_values(|v| v as f64))
        }
    }
}

/// The lane-generic peel loop behind [`ktruss_auto`]: `initial` is the
/// starting edge set on lane `T`, `finish` converts the surviving truss to
/// the result's `f64` representation (identity for the `f64` lane).
fn ktruss_auto_lane<T>(
    ctx: &Context,
    initial: ValueMat,
    k: usize,
    finish: impl Fn(CsrMatrix<T>) -> CsrMatrix<f64>,
) -> Result<KtrussResult, SparseError>
where
    T: LaneValue + PartialOrd,
    CsrMatrix<T>: FromOpOutput + Into<ValueMat>,
{
    let min_support = T::from_f64((k - 2) as f64);
    let work = ctx.insert_typed(initial);
    let mut iterations = 0usize;
    let mut total_flops = 0u64;
    let result = loop {
        iterations += 1;
        total_flops += ctx.flops(work, work);
        let current_nnz = ctx.stats(work).nnz;
        // Support of every surviving edge: common-neighbor counts masked to
        // the current edge set; algorithm re-chosen as the mask sparsifies
        // (plan served from the fingerprint cache while the regime holds).
        let support: CsrMatrix<T> = match ctx
            .op(work, work, work)
            .semiring(SemiringKind::PlusPair)
            .value(T::KIND)
            .run_out()
            .and_then(OpOutput::into_typed)
        {
            Ok(support) => support,
            Err(e) => {
                ctx.remove(work);
                return Err(e);
            }
        };
        let kept = support
            .filter(|_, _, s| *s >= min_support)
            .map(|_| T::lane_one());
        if kept.nnz() == current_nnz || kept.nnz() == 0 {
            break KtrussResult {
                truss: finish(kept),
                iterations,
                total_flops,
            };
        }
        ctx.update_typed(work, kept);
    };
    ctx.remove(work);
    Ok(result)
}

/// Batch betweenness centrality with engine-planned multiplies.
///
/// The adjacency's transpose and any CSC copies are cached on the context,
/// so repeated calls (and the per-level loop) stop paying conversion costs.
pub fn betweenness_centrality_auto(
    ctx: &Context,
    adj: MatrixHandle,
    sources: &[Idx],
) -> Result<BcResult, SparseError> {
    let (n, ncols) = ctx.stats(adj).shape;
    assert_eq!(ncols, n, "adjacency must be square");
    let s = sources.len();
    assert!(s > 0, "empty source batch");

    // Owned by the adjacency's entry: reused across calls, invalidated
    // with it. Not removed here.
    let adj_t = ctx.transpose_handle(adj);

    // Forward sweep: frontier and path-count masks live in scratch handles
    // updated per level.
    let first = CsrMatrix::from_rows(s, n, sources.iter().map(|&v| vec![(v, 1.0f64)]))?;
    let frontier = ctx.insert(first.clone());
    let paths_handle = ctx.insert(first.clone());
    let mut paths = first.clone();
    let mut levels: Vec<CsrMatrix<f64>> = vec![first];
    let cleanup = |r| {
        ctx.remove(frontier);
        ctx.remove(paths_handle);
        r
    };
    loop {
        let next = match ctx.op(paths_handle, frontier, adj).complemented(true).run() {
            Ok(next) => next,
            Err(e) => return cleanup(Err(e)),
        };
        if next.nnz() == 0 {
            break;
        }
        // Frontier and visited sets are disjoint under the complemented
        // mask, so the union never merges values.
        paths = ewise_union(
            &paths,
            &next,
            |_, _| unreachable!("disjoint"),
            |x| *x,
            |y| *y,
        );
        ctx.update(paths_handle, paths.clone());
        ctx.update(frontier, next.clone());
        levels.push(next);
    }

    // Backward sweep.
    let t_handle = ctx.insert(CsrMatrix::<f64>::empty(s, n));
    let sigma_handle = ctx.insert(CsrMatrix::<f64>::empty(s, n));
    let mut delta = CsrMatrix::<f64>::empty(s, n);
    for d in (1..levels.len()).rev() {
        let sigma_d = &levels[d];
        let sigma_prev = &levels[d - 1];
        let t = one_plus_delta_over_sigma(sigma_d, &delta);
        ctx.update(t_handle, t);
        ctx.update(sigma_handle, sigma_prev.clone());
        let w = match ctx.op(sigma_handle, t_handle, adj_t).run() {
            Ok(w) => w,
            Err(e) => {
                ctx.remove(t_handle);
                ctx.remove(sigma_handle);
                return cleanup(Err(e));
            }
        };
        let contrib = ewise_mult(&w, sigma_prev, |wv, sv| wv * sv);
        delta = ewise_union(&delta, &contrib, |x, y| x + y, |x| *x, |y| *y);
    }
    ctx.remove(t_handle);
    ctx.remove(sigma_handle);

    // Aggregate, excluding each source's own row entry.
    let mut centrality = vec![0.0f64; n];
    for (r, &src) in sources.iter().enumerate() {
        let (cols, vals) = delta.row(r);
        for (&j, &v) in cols.iter().zip(vals) {
            if j != src {
                centrality[j as usize] += v;
            }
        }
    }
    cleanup(Ok(BcResult {
        centrality,
        depth: levels.len() - 1,
        batch: s,
    }))
}

/// A unit-valued vector on the given lane (`true` / `1` / `1.0`) — BFS
/// frontiers and visited masks, where only the pattern carries meaning.
fn lane_unit_vec(n: usize, idx: &[Idx], value: ValueKind) -> ValueVec {
    let count = idx.len();
    match value {
        ValueKind::Bool => {
            ValueVec::from(SparseVec::try_new(n, idx.to_vec(), vec![true; count]).expect("sorted"))
        }
        ValueKind::I64 => {
            ValueVec::from(SparseVec::try_new(n, idx.to_vec(), vec![1i64; count]).expect("sorted"))
        }
        ValueKind::F64 => ValueVec::from(
            SparseVec::try_new(n, idx.to_vec(), vec![1.0f64; count]).expect("sorted"),
        ),
    }
}

/// Engine-planned direction-optimized BFS on the `bool` lane.
///
/// Every level is one [`engine::Operands::VecMat`] descriptor —
/// `next = ¬visited ⊙ (frontier · A)` on [`SemiringKind::BoolAndOr`] —
/// planned and executed by the [`Context`]: the frontier and visited sets
/// live in the context as [`engine::VectorHandle`]s, the boolean adjacency view and
/// its CSC form come from the aux cache (built once, reused across levels
/// *and* traversals), and with [`Direction::Auto`] the push/pull switch is
/// the planner's vector cost model — Beamer's heuristic as a plan decision
/// rather than hand-rolled caller logic. No direct `masked_spgevm` calls.
///
/// Levels are identical to [`fn@crate::bfs`] and [`crate::bfs::bfs_reference`].
pub fn bfs_auto(
    ctx: &Context,
    adj: MatrixHandle,
    source: Idx,
    policy: Direction,
) -> Result<BfsResult, SparseError> {
    bfs_auto_with_value(ctx, adj, source, policy, ValueKind::Bool)
}

/// [`bfs_auto`] on an explicit value lane.
///
/// The expansion runs on [`SemiringKind::BoolAndOr`] for
/// [`ValueKind::Bool`] and [`SemiringKind::PlusPair`] for the numeric
/// lanes — the reached *pattern* (and therefore every level set) is
/// identical on all lanes, which is what the cross-lane equivalence tests
/// pin down.
pub fn bfs_auto_with_value(
    ctx: &Context,
    adj: MatrixHandle,
    source: Idx,
    policy: Direction,
    value: ValueKind,
) -> Result<BfsResult, SparseError> {
    let stats = ctx.stats(adj);
    let (n, ncols) = stats.shape;
    assert_eq!(ncols, n, "adjacency must be square");
    assert!((source as usize) < n, "source out of range");
    let semiring = match value {
        ValueKind::Bool => SemiringKind::BoolAndOr,
        _ => SemiringKind::PlusPair,
    };

    let mut levels = vec![-1i64; n];
    levels[source as usize] = 0;
    let mut visited_idx: Vec<Idx> = vec![source];
    let frontier = ctx.insert_vec(lane_unit_vec(n, &[source], value));
    let visited = ctx.insert_vec(lane_unit_vec(n, &[source], value));
    let mut depth = 0usize;
    let mut directions = Vec::new();

    let result = loop {
        let builder = ctx
            .vec_op(visited, frontier, adj)
            .complemented(true)
            .semiring(semiring)
            .value(value);
        // One plan resolution per level: forced policies know their
        // algorithm outright, and Auto consults the planner once, then
        // pins its choice so execution does not re-resolve (cache hits
        // stay an honest measure of cross-level/cross-traversal reuse).
        let algorithm = match policy {
            Direction::Push => Algorithm::Msa,
            Direction::Pull => Algorithm::Inner,
            Direction::Auto => match builder.plan() {
                Ok(plan) => match plan.choice {
                    Choice::Fixed(alg) => alg,
                    Choice::Hybrid => Algorithm::Msa, // vec plans are never hybrid
                },
                Err(e) => break Err(e),
            },
        };
        directions.push(if algorithm == Algorithm::Inner {
            Direction::Pull
        } else {
            Direction::Push
        });
        let next = match builder.algorithm(algorithm).run_out() {
            Ok(out) => out.into_vec().expect("vector op yields a vector"),
            Err(e) => break Err(e),
        };
        if next.nnz() == 0 {
            break Ok(());
        }
        depth += 1;
        for &v in next.indices() {
            levels[v as usize] = depth as i64;
        }
        visited_idx = union_sorted(&visited_idx, next.indices());
        ctx.update_vec(visited, lane_unit_vec(n, &visited_idx, value));
        ctx.update_vec(frontier, next);
    };
    ctx.remove_vec(frontier);
    ctx.remove_vec(visited);
    result.map(|()| BfsResult {
        levels,
        depth,
        directions,
    })
}

/// Engine-planned single-source shortest paths on the exact `i64` lane
/// (Bellman-Ford over the tropical `(min, +)` semiring, edge weights
/// truncated to integers; must be non-negative).
///
/// Each round is one vector descriptor
/// `candidates = ¬∅ ⊙ (frontier · A)` on [`SemiringKind::MinPlus`] /
/// [`ValueKind::I64`] whose result is **min-merged into the registered
/// distance vector** by the engine's accumulation monoid
/// ([`engine::OpBuilder::min_into_vec`]) — accumulation chosen
/// independently of the multiply semiring, end to end on the integer lane.
/// The next frontier is the set of strictly-improved vertices.
///
/// Returns one distance per vertex, `-1` = unreachable; agrees with
/// [`crate::reference::sssp_reference`].
pub fn sssp_auto(ctx: &Context, adj: MatrixHandle, source: Idx) -> Result<Vec<i64>, SparseError> {
    let stats = ctx.stats(adj);
    let (n, ncols) = stats.shape;
    assert_eq!(ncols, n, "adjacency must be square");
    assert!((source as usize) < n, "source out of range");

    // A complemented empty mask admits every output position.
    let mask = ctx.insert_vec(SparseVec::<i64>::empty(n));
    let start = SparseVec::try_new(n, vec![source], vec![0i64]).expect("single index");
    let dist = ctx.insert_vec(start.clone());
    let frontier = ctx.insert_vec(start);

    // Bellman-Ford settles in at most n rounds on any graph without a
    // negative-total-weight cycle; a round beyond that proves one exists
    // (truncation can make float weights negative), so bail out instead
    // of relaxing forever.
    let mut rounds = 0usize;
    let result = loop {
        rounds += 1;
        if rounds > n {
            break Err(SparseError::Unsupported(
                "sssp_auto requires non-negative weights (negative-weight \
                 cycle detected: distances kept improving after n rounds)",
            ));
        }
        let ValueVec::I64(old) = ctx.vector(dist) else {
            unreachable!("dist stays on the i64 lane");
        };
        let merged = ctx
            .vec_op(mask, frontier, adj)
            .complemented(true)
            .semiring(SemiringKind::MinPlus)
            .min_into_vec(dist)
            .run_out()
            .and_then(|out| out.into_typed::<SparseVec<i64>>());
        let merged = match merged {
            Ok(m) => m,
            Err(e) => break Err(e),
        };
        // Strictly-improved vertices form the next frontier (merged is a
        // superset of old, so one pass over it finds every change).
        let mut imp_idx = Vec::new();
        let mut imp_val = Vec::new();
        for (j, &d) in merged.iter() {
            if old.get(j).is_none_or(|&o| d < o) {
                imp_idx.push(j);
                imp_val.push(d);
            }
        }
        if imp_idx.is_empty() {
            break Ok(());
        }
        ctx.update_vec(
            frontier,
            SparseVec::try_new(n, imp_idx, imp_val).expect("ascending subset"),
        );
    };

    let out = result.map(|()| {
        let ValueVec::I64(final_dist) = ctx.vector(dist) else {
            unreachable!("dist stays on the i64 lane");
        };
        let mut dense = vec![-1i64; n];
        for (j, &d) in final_dist.iter() {
            dense[j as usize] = d;
        }
        dense
    });
    ctx.remove_vec(mask);
    ctx.remove_vec(dist);
    ctx.remove_vec(frontier);
    out
}

/// Masked cosine similarity with the engine planning the dot products.
///
/// `mask` holds the candidate pairs (values ignored); `a` is the feature
/// matrix. `Aᵀ` comes from the context's transpose cache.
pub fn masked_cosine_similarity_auto(
    ctx: &Context,
    mask: MatrixHandle,
    a: MatrixHandle,
) -> Result<CsrMatrix<f64>, SparseError> {
    // Owned by `a`'s entry: stays cached for the next call.
    let at = ctx.transpose_handle(a);
    let mut out = ctx.op(mask, a, at).run()?;
    let a_m = ctx.matrix(a);
    let norms: Vec<f64> = (0..a_m.nrows())
        .map(|i| {
            let (_, vals) = a_m.row(i);
            vals.iter().map(|v| v * v).sum::<f64>().sqrt()
        })
        .collect();
    let nrows = out.nrows();
    let rowptr = out.rowptr().to_vec();
    let colidx = out.colidx().to_vec();
    let values = out.values_mut();
    for i in 0..nrows {
        for p in rowptr[i]..rowptr[i + 1] {
            let j = colidx[p] as usize;
            let denom = norms[i] * norms[j];
            values[p] = if denom > 0.0 { values[p] / denom } else { 0.0 };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{brandes_reference, ktruss_reference, triangle_count_reference};
    use crate::{
        betweenness_centrality, ktruss, masked_cosine_similarity, prepare_triangle_input, Scheme,
    };
    use graphs::to_undirected_simple;
    use masked_spgemm::{Algorithm, Phases};
    use sparse::CscMatrix;

    #[test]
    fn triangle_auto_matches_reference_and_direct() {
        let ctx = Context::with_threads(2);
        for seed in 0..3 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(80, 8.0, seed));
            let l = prepare_triangle_input(&adj);
            let lc = CscMatrix::from_csr(&l);
            let h = ctx.insert(l.clone());
            let expect = triangle_count_reference(&adj);
            assert_eq!(triangle_count_auto(&ctx, h).unwrap(), expect, "seed {seed}");
            assert_eq!(
                crate::triangle_count(Scheme::Ours(Algorithm::Msa, Phases::One), &l, &lc).unwrap(),
                expect
            );
            ctx.remove(h);
        }
    }

    #[test]
    fn ktruss_auto_matches_reference_and_scheme_path() {
        let ctx = Context::with_threads(2);
        for seed in 0..2 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(50, 9.0, seed));
            let h = ctx.insert(adj.clone());
            for k in [3usize, 4] {
                let auto = ktruss_auto(&ctx, h, k).unwrap();
                let expect = ktruss_reference(&adj, k);
                assert_eq!(auto.truss.pattern(), expect.pattern(), "seed {seed} k={k}");
                let direct = ktruss(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, k).unwrap();
                assert_eq!(auto.truss, direct.truss);
                assert_eq!(auto.iterations, direct.iterations);
                assert_eq!(auto.total_flops, direct.total_flops);
            }
            ctx.remove(h);
        }
    }

    #[test]
    fn ktruss_auto_reuses_plans_across_peels() {
        // The fingerprint-keyed plan cache must serve at least one peel
        // iteration from cache when the edge set shrinks gradually.
        let ctx = Context::with_threads(2);
        let adj = to_undirected_simple(&graphs::erdos_renyi(96, 10.0, 5));
        let h = ctx.insert(adj);
        let before = ctx.plan_cache_stats();
        let r = ktruss_auto(&ctx, h, 4).unwrap();
        let after = ctx.plan_cache_stats();
        assert!(r.iterations >= 2, "want a multi-iteration peel");
        assert!(
            after.hits > before.hits,
            "no plan reuse across {} peels: {before:?} -> {after:?}",
            r.iterations
        );
    }

    #[test]
    fn bc_auto_matches_brandes_and_direct() {
        let ctx = Context::with_threads(2);
        for seed in 0..2 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(40, 4.0, seed));
            let sources: Vec<Idx> = vec![0, 5, 9];
            let h = ctx.insert(adj.clone());
            let auto = betweenness_centrality_auto(&ctx, h, &sources).unwrap();
            let expect = brandes_reference(&adj, &sources);
            for (v, (x, y)) in auto.centrality.iter().zip(&expect).enumerate() {
                assert!((x - y).abs() < 1e-9, "seed {seed} vertex {v}: {x} vs {y}");
            }
            let direct =
                betweenness_centrality(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, &sources)
                    .unwrap();
            assert_eq!(auto.depth, direct.depth);
            ctx.remove(h);
        }
    }

    #[test]
    fn similarity_auto_matches_direct() {
        let ctx = Context::with_threads(2);
        let a = graphs::erdos_renyi(40, 6.0, 3);
        let m = graphs::erdos_renyi(40, 10.0, 4);
        let direct =
            masked_cosine_similarity(Scheme::Ours(Algorithm::Msa, Phases::One), &m.pattern(), &a)
                .unwrap();
        let (ha, hm) = (ctx.insert(a), ctx.insert(m));
        let auto = masked_cosine_similarity_auto(&ctx, hm, ha).unwrap();
        assert_eq!(auto, direct);
    }

    #[test]
    fn bfs_auto_matches_reference_on_all_policies_and_lanes() {
        use crate::bfs::bfs_reference;
        let ctx = Context::with_threads(2);
        for seed in 0..2 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(150, 4.0, seed));
            let expect = bfs_reference(&adj, 0);
            let h = ctx.insert(adj);
            for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
                for value in ValueKind::ALL {
                    let got = bfs_auto_with_value(&ctx, h, 0, policy, value).unwrap();
                    assert_eq!(got.levels, expect, "seed={seed} {policy:?} {value:?}");
                }
            }
            let bool_lane = bfs_auto(&ctx, h, 0, Direction::Auto).unwrap();
            assert_eq!(bool_lane.levels, expect);
            ctx.remove(h);
        }
    }

    #[test]
    fn bfs_auto_forced_directions_report_correctly() {
        let ctx = Context::with_threads(1);
        let adj = to_undirected_simple(&graphs::erdos_renyi(80, 6.0, 9));
        let h = ctx.insert(adj);
        let pushed = bfs_auto(&ctx, h, 0, Direction::Push).unwrap();
        assert!(pushed.directions.iter().all(|&d| d == Direction::Push));
        let pulled = bfs_auto(&ctx, h, 0, Direction::Pull).unwrap();
        assert!(pulled.directions.iter().all(|&d| d == Direction::Pull));
        assert_eq!(pushed.levels, pulled.levels);
    }

    #[test]
    fn sssp_auto_matches_reference() {
        use crate::reference::sssp_reference;
        let ctx = Context::with_threads(2);
        for seed in 0..3 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(90, 3.0, 40 + seed));
            let expect = sssp_reference(&adj, 1);
            let h = ctx.insert(adj);
            let got = sssp_auto(&ctx, h, 1).unwrap();
            assert_eq!(got, expect, "seed={seed}");
            ctx.remove(h);
        }
    }

    #[test]
    fn sssp_auto_weighted_paths() {
        // 0 -10-> 1 -1-> 2 and 0 -2-> 2: the engine must keep the cheap
        // two-hop path 0->2 (weight 2) and relax 1 through it? No — the
        // direct edge wins for vertex 2; vertex 1 keeps weight 10.
        let mut coo = sparse::CooMatrix::new(4, 4);
        coo.push(0, 1, 10.0);
        coo.push(1, 2, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 3, 1.0);
        let ctx = Context::with_threads(1);
        let h = ctx.insert(coo.to_csr());
        let got = sssp_auto(&ctx, h, 0).unwrap();
        assert_eq!(got, vec![0, 10, 2, 3]);
    }

    #[test]
    fn sssp_auto_rejects_negative_cycles_instead_of_hanging() {
        // Truncated float weights can go negative; a negative-total cycle
        // must be a bounded error, not an endless relaxation loop.
        let mut coo = sparse::CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        let ctx = Context::with_threads(1);
        let h = ctx.insert(coo.to_csr());
        assert!(matches!(
            sssp_auto(&ctx, h, 0),
            Err(SparseError::Unsupported(_))
        ));
    }

    #[test]
    fn bfs_auto_reuses_cached_bool_views_across_runs() {
        let ctx = Context::with_threads(1);
        let adj = to_undirected_simple(&graphs::erdos_renyi(120, 5.0, 17));
        let h = ctx.insert(adj);
        assert!(!ctx.aux_status(h).has_bool_view);
        let r1 = bfs_auto(&ctx, h, 0, Direction::Auto).unwrap();
        // The boolean adjacency view was built by the first traversal…
        assert!(ctx.aux_status(h).has_bool_view);
        let hits_before = ctx.plan_cache_stats().hits;
        // …and the second traversal reuses it plus the cached vec plans.
        let r2 = bfs_auto(&ctx, h, 0, Direction::Auto).unwrap();
        assert_eq!(r1.levels, r2.levels);
        assert!(
            ctx.plan_cache_stats().hits > hits_before,
            "second BFS re-planned every level"
        );
    }

    #[test]
    fn bc_auto_reuses_cached_transpose_across_calls() {
        let ctx = Context::with_threads(2);
        let adj = to_undirected_simple(&graphs::erdos_renyi(30, 4.0, 7));
        let h = ctx.insert(adj);
        assert!(!ctx.aux_status(h).has_transpose);
        let r1 = betweenness_centrality_auto(&ctx, h, &[0, 3]).unwrap();
        // The transpose was materialized by the first call…
        assert!(ctx.aux_status(h).has_transpose);
        let v1 = ctx.aux_status(h).version;
        // …and the second call reuses it (same version, same result).
        let r2 = betweenness_centrality_auto(&ctx, h, &[0, 3]).unwrap();
        assert_eq!(ctx.aux_status(h).version, v1);
        assert_eq!(r1.centrality, r2.centrality);
    }
}
