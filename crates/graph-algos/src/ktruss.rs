//! k-truss decomposition (paper Section 8.3).
//!
//! The k-truss of a graph is the maximal subgraph in which every edge is
//! supported by at least `k − 2` triangles. The matrix formulation computes
//! edge supports with one Masked SpGEMM per iteration —
//! `S = A ⊙ (A·A)` on `plus_pair`, where the mask is the current edge set
//! itself — prunes under-supported edges, and repeats until a fixed point.
//! The mask gets sparser every iteration, which is why pull-based schemes
//! shine here (paper Figure 14).

use sparse::{CscMatrix, CsrMatrix, PlusPair, SparseError};

use crate::scheme::Scheme;

/// Outcome of a k-truss computation.
#[derive(Clone, Debug)]
pub struct KtrussResult {
    /// The surviving edge set (symmetric pattern, unit values).
    pub truss: CsrMatrix<f64>,
    /// Masked-SpGEMM iterations until the fixed point.
    pub iterations: usize,
    /// Σ flops(A·A) over all iterations — numerator of the paper's GFLOPS
    /// metric for this benchmark.
    pub total_flops: u64,
}

/// Compute the k-truss of a simple undirected graph with the given scheme.
///
/// `adj` must have a symmetric pattern (as produced by
/// [`graphs::to_undirected_simple`]).
pub fn ktruss(scheme: Scheme, adj: &CsrMatrix<f64>, k: usize) -> Result<KtrussResult, SparseError> {
    assert!(k >= 3, "k-truss needs k >= 3");
    let min_support = (k - 2) as u64;
    let sr = PlusPair::<f64, f64, u64>::new();
    let mut current = adj.clone();
    let mut iterations = 0usize;
    let mut total_flops = 0u64;
    loop {
        iterations += 1;
        total_flops += masked_spgemm::flops(&current, &current);
        let csc = CscMatrix::from_csr(&current);
        // Support of every surviving edge: common-neighbor counts masked to
        // the current edge set.
        let support = scheme.run(sr, &current, false, &current, &current, &csc)?;
        // Keep edges with enough support. `support` may lack entries for
        // edges with zero wedges — those are pruned implicitly.
        let kept = support.filter(|_, _, &s| s >= min_support).map(|_| 1.0f64);
        if kept.nnz() == current.nnz() {
            return Ok(KtrussResult {
                truss: kept,
                iterations,
                total_flops,
            });
        }
        if kept.nnz() == 0 {
            return Ok(KtrussResult {
                truss: kept,
                iterations,
                total_flops,
            });
        }
        current = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ktruss_reference;
    use graphs::to_undirected_simple;
    use masked_spgemm::{Algorithm, Phases};

    fn check_all_schemes(adj: &CsrMatrix<f64>, k: usize) {
        let expected = ktruss_reference(adj, k);
        for s in Scheme::all_ours().into_iter().chain(Scheme::baselines()) {
            let got = ktruss(s, adj, k).unwrap();
            assert_eq!(
                got.truss.pattern(),
                expected.pattern(),
                "{} k={k}",
                s.label()
            );
        }
    }

    fn k4_plus_tail() -> CsrMatrix<f64> {
        // K4 on {0,1,2,3} plus a pendant edge 3-4: the 3-truss is K4.
        let mut coo = sparse::CooMatrix::new(5, 5);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
        }
        coo.push(3, 4, 1.0);
        coo.push(4, 3, 1.0);
        coo.to_csr()
    }

    #[test]
    fn k4_tail_3truss_is_k4() {
        let adj = k4_plus_tail();
        let r = ktruss(Scheme::Ours(Algorithm::Msa, Phases::One), &adj, 3).unwrap();
        assert_eq!(r.truss.nnz(), 12); // K4 edges, both directions
        assert!(r.truss.get(3, 4).is_none());
        assert!(r.iterations >= 2);
        assert!(r.total_flops > 0);
    }

    #[test]
    fn k4_tail_5truss_is_empty() {
        // K4 edges have support 2, so the 5-truss (needs >= 3) is empty.
        let r = ktruss(
            Scheme::Ours(Algorithm::Hash, Phases::Two),
            &k4_plus_tail(),
            5,
        )
        .unwrap();
        assert_eq!(r.truss.nnz(), 0);
    }

    #[test]
    fn all_schemes_agree_on_random_graphs() {
        for seed in 0..2 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(40, 10.0, seed));
            check_all_schemes(&adj, 3);
            check_all_schemes(&adj, 4);
        }
    }

    #[test]
    fn triangle_free_graph_has_empty_truss() {
        // 4-cycle has no triangles.
        let mut coo = sparse::CooMatrix::new(4, 4);
        for (i, j) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            coo.push(i, j, 1.0);
            coo.push(j, i, 1.0);
        }
        let r = ktruss(Scheme::Ours(Algorithm::Mca, Phases::One), &coo.to_csr(), 3).unwrap();
        assert_eq!(r.truss.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn rejects_small_k() {
        let _ = ktruss(Scheme::SsSaxpy, &k4_plus_tail(), 2);
    }
}
