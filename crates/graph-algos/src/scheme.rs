//! The scheme axis of the evaluation: every Masked SpGEMM implementation a
//! benchmark can be run with, labeled as in the paper's plots.

use masked_spgemm::{masked_spgemm, masked_spgemm_csc, Algorithm, Phases};
use sparse::{CscMatrix, CsrMatrix, Semiring, SparseError};

/// One line in the paper's performance-profile plots: our 12 algorithm
/// variants (6 algorithms × 1P/2P) or one of the SS:GB-like baselines.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// One of this paper's algorithms with a phase discipline.
    Ours(Algorithm, Phases),
    /// SuiteSparse-like pull baseline (dot products, binary-search
    /// intersection).
    SsDot,
    /// SuiteSparse-like push baseline (unmasked scatter, mask at gather).
    SsSaxpy,
    /// Adaptive per-row algorithm selection (the paper's future work,
    /// implemented in [`masked_spgemm::hybrid`]). Plain masks only.
    Hybrid,
}

impl Scheme {
    /// The 12 schemes proposed in the paper (Figures 8 and 12).
    pub fn all_ours() -> Vec<Scheme> {
        let mut v = Vec::new();
        for alg in Algorithm::ALL {
            for ph in Phases::ALL {
                v.push(Scheme::Ours(alg, ph));
            }
        }
        v
    }

    /// The two baseline schemes (Figures 9, 13, 16).
    pub fn baselines() -> Vec<Scheme> {
        vec![Scheme::SsDot, Scheme::SsSaxpy]
    }

    /// Label as used in the paper's plots (`MSA-1P`, `SS:DOT`, ...).
    pub fn label(&self) -> String {
        match self {
            Scheme::Ours(alg, ph) => format!("{}-{}", alg.name(), ph.suffix()),
            Scheme::SsDot => "SS:DOT".to_string(),
            Scheme::SsSaxpy => "SS:SAXPY".to_string(),
            Scheme::Hybrid => "Hybrid-1P".to_string(),
        }
    }

    /// Whether this scheme can run `C = ¬M ⊙ (A·B)` (everything but MCA
    /// and the hybrid).
    pub fn supports_complement(&self) -> bool {
        match self {
            Scheme::Ours(alg, _) => alg.supports_complement(),
            Scheme::Hybrid => false,
            _ => true,
        }
    }

    /// Execute `C = M ⊙ (A·B)` (or `¬M ⊙` with `complemented`).
    ///
    /// Pull-based schemes consume `b_csc`; push-based schemes consume
    /// `b_csr`. Callers running iterative benchmarks provide both so
    /// format-conversion cost stays out of the kernel-time comparisons
    /// (SS:GB pays a transpose before each multiply — the paper notes this
    /// as overhead; our harnesses time it separately).
    pub fn run<S, MT>(
        &self,
        sr: S,
        mask: &CsrMatrix<MT>,
        complemented: bool,
        a: &CsrMatrix<S::A>,
        b_csr: &CsrMatrix<S::B>,
        b_csc: &CscMatrix<S::B>,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring,
        S::C: Default + Send + Sync,
        MT: Copy + Sync,
    {
        match self {
            Scheme::Ours(Algorithm::Inner, ph) => {
                masked_spgemm_csc(Algorithm::Inner, *ph, complemented, sr, mask, a, b_csc)
            }
            Scheme::Ours(alg, ph) => masked_spgemm(*alg, *ph, complemented, sr, mask, a, b_csr),
            Scheme::SsDot => Ok(baselines::ss_dot(sr, mask, complemented, a, b_csc)),
            Scheme::SsSaxpy => Ok(baselines::ss_saxpy(sr, mask, complemented, a, b_csr)),
            Scheme::Hybrid => {
                if complemented {
                    return Err(sparse::SparseError::Unsupported(
                        "hybrid scheme handles plain masks only",
                    ));
                }
                masked_spgemm::hybrid_masked_spgemm(
                    Phases::One,
                    masked_spgemm::HybridConfig::default(),
                    sr,
                    mask,
                    a,
                    b_csr,
                    b_csc,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::dense::reference_masked_spgemm;
    use sparse::PlusTimes;

    #[test]
    fn labels() {
        assert_eq!(Scheme::Ours(Algorithm::Msa, Phases::One).label(), "MSA-1P");
        assert_eq!(Scheme::SsDot.label(), "SS:DOT");
        assert_eq!(Scheme::all_ours().len(), 12);
    }

    #[test]
    fn hybrid_scheme_agrees_on_plain_masks() {
        let a = graphs::erdos_renyi(50, 6.0, 4);
        let b = graphs::erdos_renyi(50, 6.0, 5);
        let m = graphs::erdos_renyi(50, 12.0, 6).pattern();
        let bc = CscMatrix::from_csr(&b);
        let sr = PlusTimes::<f64>::new();
        let expect = reference_masked_spgemm(sr, &m, false, &a, &b);
        let got = Scheme::Hybrid.run(sr, &m, false, &a, &b, &bc).unwrap();
        assert_eq!(got, expect);
        assert!(Scheme::Hybrid.run(sr, &m, true, &a, &b, &bc).is_err());
        assert!(!Scheme::Hybrid.supports_complement());
        assert_eq!(Scheme::Hybrid.label(), "Hybrid-1P");
    }

    #[test]
    fn every_scheme_computes_the_same_product() {
        let a = graphs::erdos_renyi(40, 6.0, 1);
        let b = graphs::erdos_renyi(40, 6.0, 2);
        let m = graphs::erdos_renyi(40, 10.0, 3).pattern();
        let bc = CscMatrix::from_csr(&b);
        let sr = PlusTimes::<f64>::new();
        for compl in [false, true] {
            let expect = reference_masked_spgemm(sr, &m, compl, &a, &b);
            for s in Scheme::all_ours().into_iter().chain(Scheme::baselines()) {
                if compl && !s.supports_complement() {
                    assert!(s.run(sr, &m, compl, &a, &b, &bc).is_err());
                    continue;
                }
                let got = s.run(sr, &m, compl, &a, &b, &bc).unwrap();
                assert_eq!(got, expect, "{} compl={compl}", s.label());
            }
        }
    }
}
