//! Triangle counting (paper Section 8.2).
//!
//! After relabeling vertices in non-increasing degree order, the triangle
//! count is `sum(L .* (L·L))` where `L` is the strictly lower-triangular
//! part of the adjacency matrix — one Masked SpGEMM on the `plus_pair`
//! semiring (each surviving product is a wedge closed by a mask edge)
//! followed by a reduction.

use sparse::reduce::sum_all;
use sparse::triangular::tril;
use sparse::{CscMatrix, CsrMatrix, PlusPair, SparseError};

use crate::scheme::Scheme;

/// Degree-relabel an undirected simple graph and take the strictly
/// lower-triangular part: the `L` the benchmark multiplies.
pub fn prepare_triangle_input(adj: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    tril(&graphs::relabel_by_degree(adj))
}

/// Count triangles: one `L ⊙ (L·L)` Masked SpGEMM + reduction.
///
/// `l_csc` is the CSC copy of `l` for pull-based schemes (pass
/// `&CscMatrix::from_csr(&l)`; kept explicit so harnesses can exclude the
/// conversion from timings).
pub fn triangle_count(
    scheme: Scheme,
    l: &CsrMatrix<f64>,
    l_csc: &CscMatrix<f64>,
) -> Result<u64, SparseError> {
    let sr = PlusPair::<f64, f64, u64>::new();
    let c = scheme.run(sr, l, false, l, l, l_csc)?;
    Ok(sum_all(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::triangle_count_reference;
    use graphs::to_undirected_simple;
    use masked_spgemm::{Algorithm, Phases};

    fn count_all_schemes(adj: &CsrMatrix<f64>) -> u64 {
        let l = prepare_triangle_input(adj);
        let lc = CscMatrix::from_csr(&l);
        let expected = triangle_count_reference(adj);
        for s in Scheme::all_ours().into_iter().chain(Scheme::baselines()) {
            let got = triangle_count(s, &l, &lc).unwrap();
            assert_eq!(got, expected, "{}", s.label());
        }
        expected
    }

    #[test]
    fn k4_has_four_triangles() {
        // Complete graph K4: C(4,3) = 4 triangles.
        let mut coo = sparse::CooMatrix::new(4, 4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
        }
        assert_eq!(count_all_schemes(&coo.to_csr()), 4);
    }

    #[test]
    fn path_has_no_triangles() {
        let mut coo = sparse::CooMatrix::new(5, 5);
        for i in 0..4u32 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        assert_eq!(count_all_schemes(&coo.to_csr()), 0);
    }

    #[test]
    fn random_graphs_match_reference() {
        for seed in 0..3 {
            let adj = to_undirected_simple(&graphs::erdos_renyi(60, 8.0, seed));
            count_all_schemes(&adj);
        }
        let adj = to_undirected_simple(&graphs::rmat(6, graphs::RmatParams::default(), 9));
        count_all_schemes(&adj);
    }

    #[test]
    fn relabeling_does_not_change_count() {
        let adj = to_undirected_simple(&graphs::erdos_renyi(50, 10.0, 3));
        let l_plain = tril(&adj);
        let l_relab = prepare_triangle_input(&adj);
        let c1 = triangle_count(
            Scheme::Ours(Algorithm::Msa, Phases::One),
            &l_plain,
            &CscMatrix::from_csr(&l_plain),
        )
        .unwrap();
        let c2 = triangle_count(
            Scheme::Ours(Algorithm::Msa, Phases::One),
            &l_relab,
            &CscMatrix::from_csr(&l_relab),
        )
        .unwrap();
        assert_eq!(c1, c2);
    }
}
