#![warn(missing_docs)]

//! Graph-analytics benchmarks built on Masked SpGEMM (paper Section 7):
//! Triangle Counting, k-truss, and Betweenness Centrality, each
//! parameterized over the [`Scheme`] (our six algorithms × 1P/2P, plus the
//! SS:GB-like baselines) so the harnesses in `crates/bench` can sweep them.
//!
//! Serial textbook implementations in [`mod@reference`] validate every
//! benchmark end-to-end.

pub mod auto;
pub mod bc;
pub mod bfs;
pub mod ktruss;
pub mod reference;
pub mod scheme;
pub mod similarity;
pub mod triangle;

pub use auto::{
    betweenness_centrality_auto, bfs_auto, bfs_auto_with_value, ktruss_auto,
    masked_cosine_similarity_auto, sssp_auto, triangle_count_auto,
};
pub use bc::{betweenness_centrality, BcResult};
pub use bfs::{bfs, BfsResult, Direction};
pub use ktruss::{ktruss, KtrussResult};
pub use scheme::Scheme;
pub use similarity::masked_cosine_similarity;
pub use triangle::{prepare_triangle_input, triangle_count};
