//! Serial textbook implementations used as oracles in tests.
//!
//! These are deliberately simple (adjacency walks, BFS queues) and make no
//! use of the sparse kernels under test.

use std::collections::VecDeque;

use sparse::{CsrMatrix, Idx};

/// Brute-force triangle count of a simple undirected graph: for every edge
/// `(u,v)` with `u < v`, count common neighbors `w > v` (each triangle
/// counted once).
pub fn triangle_count_reference(adj: &CsrMatrix<f64>) -> u64 {
    let n = adj.nrows();
    let mut count = 0u64;
    for u in 0..n {
        let (nu, _) = adj.row(u);
        for &v in nu {
            let v = v as usize;
            if v <= u {
                continue;
            }
            let (nv, _) = adj.row(v);
            // common neighbors w with w > v
            let (mut p, mut q) = (0usize, 0usize);
            while p < nu.len() && q < nv.len() {
                match nu[p].cmp(&nv[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        if (nu[p] as usize) > v {
                            count += 1;
                        }
                        p += 1;
                        q += 1;
                    }
                }
            }
        }
    }
    count
}

/// Per-edge triangle support, brute force.
fn edge_supports(adj: &CsrMatrix<f64>) -> Vec<u64> {
    let mut support = vec![0u64; adj.nnz()];
    let rowptr = adj.rowptr();
    for u in 0..adj.nrows() {
        let (nu, _) = adj.row(u);
        for (off, &v) in nu.iter().enumerate() {
            let (nv, _) = adj.row(v as usize);
            let (mut p, mut q) = (0usize, 0usize);
            let mut c = 0u64;
            while p < nu.len() && q < nv.len() {
                match nu[p].cmp(&nv[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        c += 1;
                        p += 1;
                        q += 1;
                    }
                }
            }
            support[rowptr[u] + off] = c;
        }
    }
    support
}

/// Iterative k-truss by repeated support computation and pruning.
pub fn ktruss_reference(adj: &CsrMatrix<f64>, k: usize) -> CsrMatrix<f64> {
    assert!(k >= 3);
    let min_support = (k - 2) as u64;
    let mut current = adj.clone();
    loop {
        let support = edge_supports(&current);
        // `filter` visits entries in row-major order — the same order
        // `edge_supports` filled its vector in.
        let mut idx = 0usize;
        let kept = current.filter(|_, _, _| {
            let keep = support[idx] >= min_support;
            idx += 1;
            keep
        });
        if kept.nnz() == current.nnz() || kept.nnz() == 0 {
            return kept;
        }
        current = kept;
    }
}

/// Serial Brandes betweenness centrality from the given sources
/// (unnormalized, endpoints excluded).
pub fn brandes_reference(adj: &CsrMatrix<f64>, sources: &[Idx]) -> Vec<f64> {
    let n = adj.nrows();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        let mut order: Vec<usize> = Vec::new();
        let mut queue = VecDeque::new();
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s as usize);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let (nbrs, _) = adj.row(v);
            for &w in nbrs {
                let w = w as usize;
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            let (nbrs, _) = adj.row(v);
            for &w in nbrs {
                let w = w as usize;
                if dist[w] == dist[v] + 1 {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
            }
            if v != s as usize {
                bc[v] += delta[v];
            }
        }
    }
    bc
}

/// Serial Bellman-Ford single-source shortest paths with edge weights
/// truncated to `i64` (the oracle for the engine's integer `min_plus`
/// lane). Unreachable vertices are `-1`; weights must be non-negative.
pub fn sssp_reference(adj: &CsrMatrix<f64>, source: Idx) -> Vec<i64> {
    let n = adj.nrows();
    let mut dist: Vec<Option<i64>> = vec![None; n];
    dist[source as usize] = Some(0);
    let mut queue = VecDeque::from([source as usize]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v].expect("queued vertices have distances");
        let (nbrs, wts) = adj.row(v);
        for (&w, &wt) in nbrs.iter().zip(wts) {
            let cand = dv + wt as i64;
            if dist[w as usize].is_none_or(|d| cand < d) {
                dist[w as usize] = Some(cand);
                queue.push_back(w as usize);
            }
        }
    }
    dist.into_iter().map(|d| d.unwrap_or(-1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> CsrMatrix<f64> {
        let mut coo = sparse::CooMatrix::new(4, 4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn k4_triangles() {
        assert_eq!(triangle_count_reference(&k4()), 4);
    }

    #[test]
    fn k4_supports() {
        // Every edge of K4 is in exactly 2 triangles.
        assert!(edge_supports(&k4()).iter().all(|&s| s == 2));
    }

    #[test]
    fn k4_is_its_own_4truss() {
        let t = ktruss_reference(&k4(), 4);
        assert_eq!(t.nnz(), 12);
        let t = ktruss_reference(&k4(), 5);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn brandes_path() {
        // Path 0-1-2: from all sources, vertex 1 carries paths (0,2) and
        // (2,0): bc[1] = 2.
        let mut coo = sparse::CooMatrix::new(3, 3);
        for (i, j) in [(0u32, 1u32), (1, 2)] {
            coo.push(i, j, 1.0);
            coo.push(j, i, 1.0);
        }
        let adj = coo.to_csr();
        let bc = brandes_reference(&adj, &[0, 1, 2]);
        assert_eq!(bc, vec![0.0, 2.0, 0.0]);
    }
}
