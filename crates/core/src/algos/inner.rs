//! Pull-based inner-product algorithm (Section 4.1).
//!
//! For every unmasked output position `(i,j)` the sparse dot product
//! `A(i,:) · B(:,j)` is computed by a two-pointer merge of the sorted row of
//! `A` (CSR) and the sorted column of `B` (CSC). The computation is driven
//! entirely by the mask, giving at least `nnz(M)`-way parallelism, and no
//! accumulator is needed — but temporal locality on `B`'s columns is poor
//! (the paper's memory-traffic analysis:
//! `nnz(A) + nnz(M)·(1 + nnz(B)/n)`).
//!
//! With a complemented mask every position *outside* the mask needs a dot
//! product — `Θ(n·m − nnz(M))` of them — which is why the paper reports
//! `Inner` (and SS:DOT) as prohibitively slow for betweenness centrality.
//! It is implemented for completeness and measured rather than skipped.

use sparse::{CscMatrix, CsrMatrix, Idx, Semiring};

/// Sorted-merge dot product of a CSR row and a CSC column.
///
/// Returns `None` when no index pair matches (no output entry — masked
/// SpGEMM output is structural).
#[inline]
pub fn sparse_dot<S: Semiring>(
    sr: S,
    acols: &[Idx],
    avals: &[S::A],
    brows: &[Idx],
    bvals: &[S::B],
) -> Option<S::C> {
    let mut acc: Option<S::C> = None;
    let (mut p, mut q) = (0usize, 0usize);
    while p < acols.len() && q < brows.len() {
        match acols[p].cmp(&brows[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                let v = sr.mul(avals[p], bvals[q]);
                acc = Some(match acc {
                    None => v,
                    Some(x) => sr.add(x, v),
                });
                p += 1;
                q += 1;
            }
        }
    }
    acc
}

/// Compute one output row of `M ⊙ (A·B)` with dot products.
pub fn inner_row<S: Semiring>(
    sr: S,
    mcols: &[Idx],
    acols: &[Idx],
    avals: &[S::A],
    b: &CscMatrix<S::B>,
    out_cols: &mut Vec<Idx>,
    out_vals: &mut Vec<S::C>,
) {
    if acols.is_empty() {
        return;
    }
    for &j in mcols {
        let (br, bv) = b.col(j as usize);
        if let Some(v) = sparse_dot(sr, acols, avals, br, bv) {
            out_cols.push(j);
            out_vals.push(v);
        }
    }
}

/// Symbolic variant of [`inner_row`]: pattern-only dot (merge until first
/// match), counting output entries.
pub fn inner_count_row<S: Semiring>(mcols: &[Idx], acols: &[Idx], b: &CscMatrix<S::B>) -> usize {
    if acols.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    for &j in mcols {
        let (br, _) = b.col(j as usize);
        if patterns_intersect(acols, br) {
            count += 1;
        }
    }
    count
}

/// Compute one output row of `¬M ⊙ (A·B)`: a dot product for every column
/// *not* present in the mask row.
pub fn inner_row_complemented<S: Semiring>(
    sr: S,
    mcols: &[Idx],
    acols: &[Idx],
    avals: &[S::A],
    b: &CscMatrix<S::B>,
    out_cols: &mut Vec<Idx>,
    out_vals: &mut Vec<S::C>,
) {
    if acols.is_empty() {
        return;
    }
    let mut q = 0usize;
    for j in 0..b.ncols() as Idx {
        while q < mcols.len() && mcols[q] < j {
            q += 1;
        }
        if q < mcols.len() && mcols[q] == j {
            continue;
        }
        let (br, bv) = b.col(j as usize);
        if let Some(v) = sparse_dot(sr, acols, avals, br, bv) {
            out_cols.push(j);
            out_vals.push(v);
        }
    }
}

/// Symbolic variant of [`inner_row_complemented`].
pub fn inner_count_row_complemented<S: Semiring>(
    mcols: &[Idx],
    acols: &[Idx],
    b: &CscMatrix<S::B>,
) -> usize {
    if acols.is_empty() {
        return 0;
    }
    let mut q = 0usize;
    let mut count = 0usize;
    for j in 0..b.ncols() as Idx {
        while q < mcols.len() && mcols[q] < j {
            q += 1;
        }
        if q < mcols.len() && mcols[q] == j {
            continue;
        }
        let (br, _) = b.col(j as usize);
        if patterns_intersect(acols, br) {
            count += 1;
        }
    }
    count
}

/// Whether two sorted index lists share at least one element (early-exit
/// two-pointer merge).
#[inline]
pub fn patterns_intersect(a: &[Idx], b: &[Idx]) -> bool {
    let (mut p, mut q) = (0usize, 0usize);
    while p < a.len() && q < b.len() {
        match a[p].cmp(&b[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Serial whole-matrix Inner for tests; the parallel driver is in
/// [`crate::exec::inner_driver`].
pub fn inner_serial<S: Semiring, MT: Copy>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CscMatrix<S::B>,
) -> CsrMatrix<S::C> {
    let mut rowptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (mc, _) = mask.row(i);
        let (ac, av) = a.row(i);
        if complemented {
            inner_row_complemented(sr, mc, ac, av, b, &mut cols, &mut vals);
        } else {
            inner_row(sr, mc, ac, av, b, &mut cols, &mut vals);
        }
        rowptr.push(cols.len());
    }
    CsrMatrix::from_parts_unchecked(a.nrows(), b.ncols(), rowptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::random_csr;
    use sparse::dense::reference_masked_spgemm;
    use sparse::PlusTimes;

    #[test]
    fn dot_basic() {
        let sr = PlusTimes::<f64>::new();
        let v = sparse_dot(
            sr,
            &[0, 2, 5],
            &[1.0, 2.0, 3.0],
            &[2, 5, 7],
            &[10.0, 100.0, 1000.0],
        );
        assert_eq!(v, Some(320.0));
        assert_eq!(
            sparse_dot(sr, &[0, 1], &[1.0, 1.0], &[2, 3], &[1.0, 1.0]),
            None
        );
        assert_eq!(
            sparse_dot::<PlusTimes<f64>>(sr, &[], &[], &[1], &[1.0]),
            None
        );
    }

    #[test]
    fn intersect_detects() {
        assert!(patterns_intersect(&[1, 4, 9], &[0, 9]));
        assert!(!patterns_intersect(&[1, 4, 9], &[0, 2, 10]));
        assert!(!patterns_intersect(&[], &[1]));
    }

    #[test]
    fn inner_matches_reference() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..5u64 {
            let a = random_csr(7, 6, seed + 1, 45);
            let b = random_csr(6, 8, seed + 2, 45);
            let m = random_csr(7, 8, seed + 3, 55).pattern();
            let bc = sparse::CscMatrix::from_csr(&b);
            for compl in [false, true] {
                let expect = reference_masked_spgemm(sr, &m, compl, &a, &b);
                let got = inner_serial(sr, &m, compl, &a, &bc);
                assert_eq!(got, expect, "seed={seed} compl={compl}");
            }
        }
    }

    #[test]
    fn inner_counts_match_numeric() {
        let sr = PlusTimes::<f64>::new();
        let a = random_csr(6, 6, 42, 50);
        let b = random_csr(6, 6, 43, 50);
        let m = random_csr(6, 6, 44, 50).pattern();
        let bc = sparse::CscMatrix::from_csr(&b);
        for compl in [false, true] {
            let c = inner_serial(sr, &m, compl, &a, &bc);
            for i in 0..6 {
                let (mc, _) = m.row(i);
                let (ac, _) = a.row(i);
                let count = if compl {
                    inner_count_row_complemented::<PlusTimes<f64>>(mc, ac, &bc)
                } else {
                    inner_count_row::<PlusTimes<f64>>(mc, ac, &bc)
                };
                assert_eq!(count, c.row_nnz(i), "row {i} compl={compl}");
            }
        }
    }
}
