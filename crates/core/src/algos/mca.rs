//! MCA row kernel (paper Algorithm 3).
//!
//! For every nonzero `A(i,k)`, the sorted row `B(k,:)` is merged against the
//! sorted mask row; entries present in both produce a product inserted at
//! the mask *rank* of the column. The accumulator therefore needs only
//! `nnz(mask row)` slots (see [`crate::accum::Mca`]). Per-row cost is
//! `O(nnz(u)·nnz(m) + flops(u·B))` — each A-nonzero may walk the whole mask
//! row — which is why MCA excels when mask rows are short relative to the
//! accumulated rows of `B`.
//!
//! MCA does not support complemented masks: rank addressing presupposes the
//! output pattern is a subset of the mask (Section 5.4; the complement is
//! everything *but* the mask).

use sparse::{CsrMatrix, Idx, Semiring};

use crate::accum::Mca;
use crate::kernel::RowKernel;

/// Push-based row kernel backed by the Mask Compressed Accumulator.
pub struct McaKernel<S: Semiring>
where
    S::C: Default,
{
    accum: Mca<S::C>,
}

/// Merge one `B(k,:)` row against the mask row, calling `hit(rank, pos)` for
/// every column present in both. `pos` indexes into the B row slices.
#[inline(always)]
fn merge_row_with_mask(bc: &[Idx], mcols: &[Idx], mut hit: impl FnMut(usize, usize)) {
    let mut p = 0usize; // position in bc (rowIter of Algorithm 3)
    for (rank, &mj) in mcols.iter().enumerate() {
        while p < bc.len() && bc[p] < mj {
            p += 1;
        }
        if p >= bc.len() {
            break;
        }
        if bc[p] == mj {
            hit(rank, p);
        }
    }
}

impl<S: Semiring> RowKernel<S> for McaKernel<S>
where
    S::C: Default,
{
    const SUPPORTS_COMPLEMENT: bool = false;

    fn new(_ncols: usize, max_mask_row_nnz: usize) -> Self {
        McaKernel {
            accum: Mca::new(max_mask_row_nnz),
        }
    }

    fn compute_row(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    ) {
        if mcols.is_empty() || acols.is_empty() {
            return;
        }
        let accum = &mut self.accum;
        accum.reset();
        for (&k, &av) in acols.iter().zip(avals) {
            let (bc, bv) = b.row(k as usize);
            merge_row_with_mask(bc, mcols, |rank, p| {
                accum.insert(rank, sr.mul(av, bv[p]), |x, y| sr.add(x, y));
            });
        }
        for (rank, &j) in mcols.iter().enumerate() {
            if let Some(v) = accum.remove(rank) {
                out_cols.push(j);
                out_vals.push(v);
            }
        }
    }

    fn count_row(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        _avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize {
        if mcols.is_empty() || acols.is_empty() {
            return 0;
        }
        let accum = &mut self.accum;
        accum.reset();
        let mut count = 0usize;
        for &k in acols {
            let (bc, _) = b.row(k as usize);
            merge_row_with_mask(bc, mcols, |rank, _| {
                if accum.mark_set(rank) {
                    count += 1;
                }
            });
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::check_against_reference;
    use sparse::PlusTimes;

    #[test]
    fn matches_reference_plain() {
        check_against_reference::<McaKernel<PlusTimes<f64>>>(false);
    }

    #[test]
    fn merge_hits_intersection_only() {
        let bc = [1u32, 3, 4, 9];
        let mc = [0u32, 3, 4, 8, 10];
        let mut hits = Vec::new();
        merge_row_with_mask(&bc, &mc, |rank, p| hits.push((rank, p)));
        assert_eq!(hits, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn merge_empty_inputs() {
        let mut hits = 0;
        merge_row_with_mask(&[], &[1, 2], |_, _| hits += 1);
        merge_row_with_mask(&[1, 2], &[], |_, _| hits += 1);
        assert_eq!(hits, 0);
    }
}
