//! Hash row kernel (Section 5.3).
//!
//! Identical control flow to the MSA kernel, with the dense accumulator
//! replaced by the open-addressing table: initialization per row costs
//! `O(nnz(m))` instead of `O(ncols)`, so total work is
//! `O(nnz(m) + flops(u·B))` per row.
//!
//! Complemented masks use [`HashComplement`]: products are filtered by a
//! sorted two-pointer merge of each `B(k,:)` against the mask row (both are
//! sorted), then surviving products accumulate in a grow-on-demand table.

use sparse::{CsrMatrix, Idx, Semiring};

use crate::accum::{HashAccum, HashComplement};
use crate::kernel::RowKernel;

/// Push-based row kernel backed by the hash accumulator.
pub struct HashKernel<S: Semiring>
where
    S::C: Default,
{
    accum: HashAccum<S::C>,
    caccum: HashComplement<S::C>,
    /// Distinct-key count scratch for the complemented symbolic pass.
    ccount: HashComplement<()>,
}

impl<S: Semiring> RowKernel<S> for HashKernel<S>
where
    S::C: Default,
{
    const SUPPORTS_COMPLEMENT: bool = true;

    fn new(_ncols: usize, max_mask_row_nnz: usize) -> Self {
        HashKernel {
            accum: HashAccum::new(max_mask_row_nnz),
            caccum: HashComplement::new(64),
            ccount: HashComplement::new(64),
        }
    }

    fn compute_row(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    ) {
        if mcols.is_empty() || acols.is_empty() {
            return;
        }
        let accum = &mut self.accum;
        accum.reset(mcols.len());
        for &j in mcols {
            accum.set_allowed(j);
        }
        for (&k, &av) in acols.iter().zip(avals) {
            let (bc, bv) = b.row(k as usize);
            for (&j, &bvj) in bc.iter().zip(bv) {
                accum.insert_with(j, || sr.mul(av, bvj), |x, y| sr.add(x, y));
            }
        }
        for &j in mcols {
            if let Some(v) = accum.remove(j) {
                out_cols.push(j);
                out_vals.push(v);
            }
        }
    }

    fn count_row(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        _avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize {
        if mcols.is_empty() || acols.is_empty() {
            return 0;
        }
        let accum = &mut self.accum;
        accum.reset(mcols.len());
        for &j in mcols {
            accum.set_allowed(j);
        }
        let mut count = 0usize;
        for &k in acols {
            let (bc, _) = b.row(k as usize);
            for &j in bc {
                if accum.mark_set(j) {
                    count += 1;
                }
            }
        }
        count
    }

    fn compute_row_complemented(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    ) {
        if acols.is_empty() {
            return;
        }
        let accum = &mut self.caccum;
        accum.reset();
        for (&k, &av) in acols.iter().zip(avals) {
            let (bc, bv) = b.row(k as usize);
            // Two-pointer set difference B(k,:) \ m over sorted streams.
            let mut q = 0usize;
            for (&j, &bvj) in bc.iter().zip(bv) {
                while q < mcols.len() && mcols[q] < j {
                    q += 1;
                }
                if q < mcols.len() && mcols[q] == j {
                    continue; // masked out under ¬M
                }
                accum.insert(j, sr.mul(av, bvj), |x, y| sr.add(x, y));
            }
        }
        accum.gather_sorted(out_cols, out_vals);
    }

    fn count_row_complemented(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        _avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize {
        if acols.is_empty() {
            return 0;
        }
        let accum = &mut self.ccount;
        accum.reset();
        for &k in acols {
            let (bc, _) = b.row(k as usize);
            let mut q = 0usize;
            for &j in bc {
                while q < mcols.len() && mcols[q] < j {
                    q += 1;
                }
                if q < mcols.len() && mcols[q] == j {
                    continue;
                }
                accum.insert(j, (), |_, _| ());
            }
        }
        accum.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::check_against_reference;
    use sparse::PlusTimes;

    #[test]
    fn matches_reference_plain() {
        check_against_reference::<HashKernel<PlusTimes<f64>>>(false);
    }

    #[test]
    fn matches_reference_complemented() {
        check_against_reference::<HashKernel<PlusTimes<f64>>>(true);
    }

    #[test]
    fn mask_larger_than_initial_table_sizing() {
        // Kernel constructed with a small hint must still be correct when a
        // row's mask is at the constructed maximum.
        use crate::kernel::testutil::{random_csr, run_kernel};
        use sparse::dense::reference_masked_spgemm;
        let sr = PlusTimes::<f64>::new();
        let a = random_csr(8, 8, 11, 70);
        let b = random_csr(8, 8, 12, 70);
        let m = random_csr(8, 8, 13, 95).pattern();
        let expect = reference_masked_spgemm(sr, &m, false, &a, &b);
        let got = run_kernel::<_, HashKernel<_>>(sr, &m, false, &a, &b);
        assert_eq!(got, expect);
    }
}
