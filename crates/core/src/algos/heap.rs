//! Heap row kernel (Section 5.5, paper Algorithms 4 and 5).
//!
//! A binary min-heap holds one iterator per nonzero of the `A` row, each
//! pointing into a row of `B` and ordered by current column id. Popping,
//! advancing, and reinserting iterators streams the multiset
//! `S = {B(k,j) | A(i,k) ≠ 0}` in sorted column order without materializing
//! it, and a two-way merge against the sorted mask row keeps only
//! `m ∩ S` (or `S \ m` for the complemented mask).
//!
//! `NINSPECT` controls how much of the mask is scanned *before* an iterator
//! is (re)inserted (Algorithm 5): `0` inserts blindly, `1` checks only the
//! current mask element (paper scheme **Heap**), `∞` merges until the next
//! guaranteed intersection (paper scheme **HeapDot**). Inspection trades
//! heap traffic (the `log₂ nnz(u)` factor) for mask scanning.

use sparse::{CsrMatrix, Idx, Semiring};

use crate::kernel::RowKernel;

/// `NInspect` parameter values (const-generic argument of [`HeapKernel`]).
pub mod ninspect {
    /// Insert without inspecting the mask (used for complemented masks).
    pub const ZERO: usize = 0;
    /// Inspect one mask element per insertion (paper scheme `Heap`).
    pub const ONE: usize = 1;
    /// Unbounded inspection (paper scheme `HeapDot`).
    pub const INF: usize = usize::MAX;
}

/// Convenience re-export of the `NInspect` constants as an enum for APIs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NInspect {
    /// No inspection before insertion.
    Zero,
    /// Inspect a single mask element.
    One,
    /// Merge against the mask until an intersection is found.
    Infinity,
}

/// One row iterator in the heap: the current column, the cursor into `B`'s
/// flat arrays, the row end, and the scaling value `A(i,k)`.
#[derive(Copy, Clone, Debug)]
struct Entry<A> {
    col: Idx,
    pos: usize,
    end: usize,
    aval: A,
}

/// Minimal binary min-heap over `Entry`, ordered by `col`. Kept as a plain
/// `Vec` so one allocation is reused across all rows of the multiply.
struct MinHeap<A> {
    items: Vec<Entry<A>>,
}

impl<A: Copy> MinHeap<A> {
    fn new() -> Self {
        MinHeap { items: Vec::new() }
    }

    #[inline]
    fn clear(&mut self) {
        self.items.clear();
    }

    #[cfg(test)]
    #[inline]
    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    fn push(&mut self, e: Entry<A>) {
        self.items.push(e);
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[parent].col <= self.items[i].col {
                break;
            }
            self.items.swap(parent, i);
            i = parent;
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Entry<A>> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let min = self.items.pop();
        let mut i = 0usize;
        let n = self.items.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.items[l].col < self.items[smallest].col {
                smallest = l;
            }
            if r < n && self.items[r].col < self.items[smallest].col {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
        min
    }
}

/// Heap-based row kernel. `NINSPECT` is one of the [`ninspect`] constants.
pub struct HeapKernel<S: Semiring, const NINSPECT: usize> {
    heap: MinHeap<S::A>,
}

impl<S: Semiring, const NINSPECT: usize> HeapKernel<S, NINSPECT> {
    /// Insert procedure of Algorithm 5: advance `pos` within the B row and a
    /// *local copy* of the mask cursor (`q`) for up to `NINSPECT` mask
    /// steps; push the iterator only if it may still intersect the mask.
    #[inline]
    fn insert_inspect(
        heap: &mut MinHeap<S::A>,
        bcols: &[Idx],
        mut pos: usize,
        end: usize,
        aval: S::A,
        mcols: &[Idx],
        mut q: usize,
    ) {
        if pos >= end {
            return;
        }
        if NINSPECT == 0 {
            heap.push(Entry {
                col: bcols[pos],
                pos,
                end,
                aval,
            });
            return;
        }
        let mut to_inspect = NINSPECT;
        while pos < end && q < mcols.len() {
            let c = bcols[pos];
            let m = mcols[q];
            if c == m {
                heap.push(Entry {
                    col: c,
                    pos,
                    end,
                    aval,
                });
                return;
            } else if c < m {
                pos += 1;
            } else {
                q += 1;
                to_inspect -= 1;
                if to_inspect == 0 {
                    heap.push(Entry {
                        col: bcols[pos],
                        pos,
                        end,
                        aval,
                    });
                    return;
                }
            }
        }
        // Row exhausted, or no mask entries remain: the iterator can never
        // produce an output entry — drop it.
    }

    /// Shared main loop of Algorithm 4, parameterized over what to do with
    /// each surviving product (`emit(col, pos, aval)` is called in
    /// non-decreasing column order).
    #[inline]
    fn merge_loop(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        complemented: bool,
        mut emit: impl FnMut(Idx, usize, S::A),
    ) {
        let heap = &mut self.heap;
        heap.clear();
        let bptr = b.rowptr();
        let bcols = b.colidx();
        let mut q = 0usize; // global mask cursor (mIter of Algorithm 4)
        for (&k, &av) in acols.iter().zip(avals) {
            let (s, e) = (bptr[k as usize], bptr[k as usize + 1]);
            if complemented {
                if s < e {
                    heap.push(Entry {
                        col: bcols[s],
                        pos: s,
                        end: e,
                        aval: av,
                    });
                }
            } else {
                Self::insert_inspect(heap, bcols, s, e, av, mcols, q);
            }
        }
        while let Some(mut min) = heap.pop() {
            while q < mcols.len() && mcols[q] < min.col {
                q += 1;
            }
            let in_mask = q < mcols.len() && mcols[q] == min.col;
            if complemented {
                if !in_mask {
                    emit(min.col, min.pos, min.aval);
                }
            } else {
                if q >= mcols.len() {
                    break; // mask exhausted: nothing further can match
                }
                if in_mask {
                    emit(min.col, min.pos, min.aval);
                }
            }
            min.pos += 1;
            if complemented {
                if min.pos < min.end {
                    min.col = bcols[min.pos];
                    heap.push(min);
                }
            } else {
                Self::insert_inspect(heap, bcols, min.pos, min.end, min.aval, mcols, q);
            }
        }
    }
}

impl<S: Semiring, const NINSPECT: usize> RowKernel<S> for HeapKernel<S, NINSPECT> {
    const SUPPORTS_COMPLEMENT: bool = true;

    fn new(_ncols: usize, _max_mask_row_nnz: usize) -> Self {
        HeapKernel {
            heap: MinHeap::new(),
        }
    }

    fn compute_row(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    ) {
        if mcols.is_empty() || acols.is_empty() {
            return;
        }
        let bvals = b.values();
        let mut prev: Option<Idx> = None;
        self.merge_loop(mcols, acols, avals, b, false, |col, pos, aval| {
            let v = sr.mul(aval, bvals[pos]);
            if prev == Some(col) {
                let last = out_vals.last_mut().expect("prev implies an entry");
                *last = sr.add(*last, v);
            } else {
                out_cols.push(col);
                out_vals.push(v);
                prev = Some(col);
            }
        });
    }

    fn count_row(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize {
        if mcols.is_empty() || acols.is_empty() {
            return 0;
        }
        let mut prev: Option<Idx> = None;
        let mut count = 0usize;
        self.merge_loop(mcols, acols, avals, b, false, |col, _, _| {
            if prev != Some(col) {
                count += 1;
                prev = Some(col);
            }
        });
        count
    }

    fn compute_row_complemented(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    ) {
        if acols.is_empty() {
            return;
        }
        let bvals = b.values();
        let mut prev: Option<Idx> = None;
        self.merge_loop(mcols, acols, avals, b, true, |col, pos, aval| {
            let v = sr.mul(aval, bvals[pos]);
            if prev == Some(col) {
                let last = out_vals.last_mut().expect("prev implies an entry");
                *last = sr.add(*last, v);
            } else {
                out_cols.push(col);
                out_vals.push(v);
                prev = Some(col);
            }
        });
    }

    fn count_row_complemented(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize {
        if acols.is_empty() {
            return 0;
        }
        let mut prev: Option<Idx> = None;
        let mut count = 0usize;
        self.merge_loop(mcols, acols, avals, b, true, |col, _, _| {
            if prev != Some(col) {
                count += 1;
                prev = Some(col);
            }
        });
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::check_against_reference;
    use sparse::PlusTimes;

    type Heap1 = HeapKernel<PlusTimes<f64>, { ninspect::ONE }>;
    type HeapInf = HeapKernel<PlusTimes<f64>, { ninspect::INF }>;
    type Heap0 = HeapKernel<PlusTimes<f64>, { ninspect::ZERO }>;

    #[test]
    fn heap_ninspect_one_matches_reference() {
        check_against_reference::<Heap1>(false);
    }

    #[test]
    fn heap_ninspect_inf_matches_reference() {
        check_against_reference::<HeapInf>(false);
    }

    #[test]
    fn heap_ninspect_zero_matches_reference() {
        check_against_reference::<Heap0>(false);
    }

    // The paper always uses NInspect = 0 for complemented masks; our
    // complemented path ignores NINSPECT, so all three specializations
    // must agree with the reference.
    #[test]
    fn heap_complemented_matches_reference() {
        check_against_reference::<Heap0>(true);
        check_against_reference::<Heap1>(true);
    }

    #[test]
    fn minheap_pops_sorted() {
        let mut h = MinHeap::<f64>::new();
        for &c in &[5u32, 1, 9, 3, 3, 0, 7] {
            h.push(Entry {
                col: c,
                pos: 0,
                end: 1,
                aval: 0.0,
            });
        }
        let mut cols = Vec::new();
        while let Some(e) = h.pop() {
            cols.push(e.col);
        }
        assert_eq!(cols, vec![0, 1, 3, 3, 5, 7, 9]);
        assert!(h.is_empty());
    }

    #[test]
    fn minheap_clear_reuses_storage() {
        let mut h = MinHeap::<i32>::new();
        h.push(Entry {
            col: 2,
            pos: 0,
            end: 1,
            aval: 1,
        });
        h.clear();
        assert!(h.is_empty());
        assert!(h.pop().is_none());
    }
}
