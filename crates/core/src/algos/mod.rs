//! Row-kernel implementations of the paper's algorithms (Section 5).
//!
//! * [`MsaKernel`] — masked sparse accumulator (Section 5.2);
//! * [`HashKernel`] — hash accumulator (Section 5.3);
//! * [`McaKernel`] — mask-compressed accumulator (Section 5.4);
//! * [`HeapKernel`] — k-way merge heap with configurable `NInspect`
//!   (Section 5.5);
//! * [`inner`] — the pull-based dot-product algorithm (Section 4.1), which
//!   has its own driver since it consumes `B` in CSC form.

mod hash;
mod heap;
pub mod inner;
mod mca;
mod msa;

pub use hash::HashKernel;
pub use heap::{ninspect, HeapKernel, NInspect};
pub use mca::McaKernel;
pub use msa::MsaKernel;
