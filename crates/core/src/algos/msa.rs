//! MSA row kernel (paper Algorithm 2).

use sparse::{CsrMatrix, Idx, Semiring};

use crate::accum::{Msa, MsaComplement};
use crate::kernel::RowKernel;

/// Push-based row kernel backed by the Masked Sparse Accumulator.
pub struct MsaKernel<S: Semiring>
where
    S::C: Default,
{
    accum: Msa<S::C>,
    caccum: MsaComplement<S::C>,
}

impl<S: Semiring> RowKernel<S> for MsaKernel<S>
where
    S::C: Default,
{
    const SUPPORTS_COMPLEMENT: bool = true;

    fn new(ncols: usize, _max_mask_row_nnz: usize) -> Self {
        MsaKernel {
            accum: Msa::new(ncols),
            caccum: MsaComplement::new(ncols),
        }
    }

    fn compute_row(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    ) {
        if mcols.is_empty() || acols.is_empty() {
            return;
        }
        let accum = &mut self.accum;
        accum.reset();
        // Step 1: mark mask entries ALLOWED.
        for &j in mcols {
            accum.set_allowed(j);
        }
        // Step 2: scatter scaled rows of B.
        for (&k, &av) in acols.iter().zip(avals) {
            let (bc, bv) = b.row(k as usize);
            for (&j, &bvj) in bc.iter().zip(bv) {
                accum.insert_with(j, || sr.mul(av, bvj), |x, y| sr.add(x, y));
            }
        }
        // Step 3: gather in mask order (stable — mask rows are sorted).
        for &j in mcols {
            if let Some(v) = accum.remove(j) {
                out_cols.push(j);
                out_vals.push(v);
            }
        }
    }

    fn count_row(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        _avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize {
        if mcols.is_empty() || acols.is_empty() {
            return 0;
        }
        let accum = &mut self.accum;
        accum.reset();
        for &j in mcols {
            accum.set_allowed(j);
        }
        let mut count = 0usize;
        for &k in acols {
            let (bc, _) = b.row(k as usize);
            for &j in bc {
                if accum.mark_set(j) {
                    count += 1;
                }
            }
        }
        count
    }

    fn compute_row_complemented(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    ) {
        if acols.is_empty() {
            return;
        }
        let accum = &mut self.caccum;
        accum.reset();
        for &j in mcols {
            accum.set_not_allowed(j);
        }
        for (&k, &av) in acols.iter().zip(avals) {
            let (bc, bv) = b.row(k as usize);
            for (&j, &bvj) in bc.iter().zip(bv) {
                accum.insert_with(j, || sr.mul(av, bvj), |x, y| sr.add(x, y));
            }
        }
        // Gather only the inserted keys, sorted for CSR output.
        // Split borrow: copy keys out first (rows are short relative to B).
        let start = out_cols.len();
        out_cols.extend_from_slice(accum.sorted_inserted());
        for &j in &out_cols[start..] {
            out_vals.push(accum.value(j));
        }
    }

    fn count_row_complemented(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        _avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize {
        if acols.is_empty() {
            return 0;
        }
        let accum = &mut self.caccum;
        accum.reset();
        for &j in mcols {
            accum.set_not_allowed(j);
        }
        for &k in acols {
            let (bc, _) = b.row(k as usize);
            for &j in bc {
                accum.mark_set(j);
            }
        }
        accum.inserted().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::check_against_reference;
    use sparse::PlusTimes;

    #[test]
    fn matches_reference_plain() {
        check_against_reference::<MsaKernel<PlusTimes<f64>>>(false);
    }

    #[test]
    fn matches_reference_complemented() {
        check_against_reference::<MsaKernel<PlusTimes<f64>>>(true);
    }

    #[test]
    fn empty_mask_row_produces_nothing() {
        use crate::kernel::RowKernel;
        let b = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let mut k = MsaKernel::<PlusTimes<f64>>::new(2, 2);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        k.compute_row(
            PlusTimes::new(),
            &[],
            &[0, 1],
            &[1.0, 1.0],
            &b,
            &mut c,
            &mut v,
        );
        assert!(c.is_empty());
        // Complemented: empty mask allows everything.
        k.compute_row_complemented(
            PlusTimes::new(),
            &[],
            &[0, 1],
            &[1.0, 1.0],
            &b,
            &mut c,
            &mut v,
        );
        assert_eq!(c, vec![0, 1]);
    }
}
