#![warn(missing_docs)]

//! # masked-spgemm
//!
//! Parallel algorithms for **masked sparse matrix-matrix products**
//! (`C = M ⊙ (A·B)` and `C = ¬M ⊙ (A·B)`), reproducing
//! *“Parallel Algorithms for Masked Sparse Matrix-Matrix Products”*
//! (Milaković, Selvitopi, Nisa, Budimlić, Buluç — ICPP 2022,
//! arXiv:2111.09947).
//!
//! The mask `M` restricts which output entries are computed: only positions
//! where `M` has a stored entry (or, complemented, where it has none) may
//! appear in `C`, and a good algorithm exploits this *during* the
//! multiplication rather than filtering afterwards.
//!
//! ## Algorithms
//!
//! Six row-parallel algorithms are provided (see [`Algorithm`]):
//!
//! * **push-based** Gustavson row-by-row with four accumulators —
//!   [`Algorithm::Msa`] (masked sparse accumulator: dense state/value
//!   arrays), [`Algorithm::Hash`] (open-addressing hash, load factor 0.25),
//!   [`Algorithm::Mca`] (mask-compressed accumulator, the paper's novel
//!   structure sized `nnz(mask row)`), and [`Algorithm::Heap`] /
//!   [`Algorithm::HeapDot`] (k-way merge heap with `NInspect` = 1 / ∞);
//! * **pull-based** [`Algorithm::Inner`] — one sorted-merge dot product per
//!   unmasked output position, with `B` accessed column-major.
//!
//! Each runs in **one phase** (single numeric pass) or **two phases**
//! (symbolic nonzero count, then numeric), and — except MCA — with a
//! **complemented** mask.
//!
//! ## Quick example
//!
//! ```
//! use masked_spgemm::{masked_spgemm, Algorithm, Phases};
//! use sparse::{CsrMatrix, PlusTimes};
//!
//! // A = B = 2x2 with a full off-diagonal, mask keeps only (0,1).
//! let a = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0, 3.0]).unwrap();
//! let mask = CsrMatrix::try_new(2, 2, vec![0, 1, 1], vec![1], vec![()]).unwrap();
//! let c = masked_spgemm(
//!     Algorithm::Msa,
//!     Phases::One,
//!     false,
//!     PlusTimes::<f64>::new(),
//!     &mask,
//!     &a,
//!     &a,
//! )
//! .unwrap();
//! assert_eq!(c.nnz(), 0); // (A·A)(0,1) = 0 products at (0,1): A(0,1)*A(1,1) missing
//! ```

pub mod accum;
pub mod algos;
pub mod api;
pub mod dcsr_exec;
pub mod dynsr;
pub mod estimate;
pub mod exec;
pub mod hybrid;
pub mod kernel;
pub mod scratch;
pub mod spgevm;

pub use api::{masked_spgemm, masked_spgemm_csc, Algorithm, MaskedSpGemm, Phases};
pub use dcsr_exec::masked_spgemm_dcsr;
pub use dynsr::{DynLane, DynSemiring, LaneValue, SemiringKind, ValueKind};
pub use estimate::{flops, flops_masked, flops_per_row};
pub use exec::thread_pool;
pub use hybrid::{hybrid_choices, hybrid_masked_spgemm, HybridConfig};
pub use scratch::{
    masked_spgemm_serial, masked_spgemm_serial_csc, KernelScratch, ScratchSet, WorkerLocal,
};
pub use spgevm::{masked_spgevm, masked_spgevm_csc};
