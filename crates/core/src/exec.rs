//! Parallel drivers: one-phase and two-phase row-parallel execution
//! (Sections 4.2 and 6).
//!
//! Parallelism is coarse-grained across rows, as in the paper ("our
//! algorithms do not parallelize the formation of individual rows").
//! Rows are grouped into contiguous chunks at the pool scheduler's own
//! claim granularity ([`rayon::recommended_parts`]); idle workers pull the
//! next chunk from a shared atomic cursor, so load imbalance from skewed
//! degree distributions (power-law hub rows) rebalances dynamically
//! instead of relying on a hand-tuned oversubscription factor. Each worker
//! keeps one kernel (accumulator scratch) alive across every chunk it
//! claims within a driver call ([`crate::scratch::WorkerLocal`] keyed by
//! the pool's stable worker indices).
//!
//! * **One phase**: each chunk computes its rows into growable thread-local
//!   buffers; per-row counts are prefix-summed into the final row pointers
//!   and the buffers are scattered into the output arrays in parallel.
//!   Memory overhead: one transient copy of the output (the paper's
//!   "allocate enough, then copy" strategy).
//! * **Two phases**: a symbolic pass counts each row's nonzeros (pattern
//!   only), the exact output is allocated, and the numeric pass writes rows
//!   through a small per-thread scratch directly into their final slots.
//!   Memory overhead: `O(rows per thread)` scratch, at the cost of doing
//!   the traversal twice.

use rayon::prelude::*;
use sparse::{CscMatrix, CsrMatrix, Idx, Semiring};

use crate::algos::inner;
use crate::kernel::RowKernel;
use crate::scratch::WorkerLocal;

/// Produce rows of the output, one at a time. Implemented by the push
/// kernels (closing over CSR `B`), by the pull `Inner` algorithm
/// (closing over CSC `B`), and by the adaptive [`crate::hybrid`] producer;
/// lets all of them share the drivers below.
pub(crate) trait RowProducer<C>: Send {
    fn compute_row(&mut self, i: usize, out_cols: &mut Vec<Idx>, out_vals: &mut Vec<C>);
    fn count_row(&mut self, i: usize) -> usize;
}

struct PushProducer<'m, S: Semiring, K, MT> {
    sr: S,
    kernel: K,
    mask: &'m CsrMatrix<MT>,
    a: &'m CsrMatrix<S::A>,
    b: &'m CsrMatrix<S::B>,
    complemented: bool,
}

impl<'m, S, K, MT> RowProducer<S::C> for PushProducer<'m, S, K, MT>
where
    S: Semiring,
    K: RowKernel<S>,
    MT: Copy + Sync,
{
    #[inline]
    fn compute_row(&mut self, i: usize, out_cols: &mut Vec<Idx>, out_vals: &mut Vec<S::C>) {
        let (mc, _) = self.mask.row(i);
        let (ac, av) = self.a.row(i);
        if self.complemented {
            self.kernel
                .compute_row_complemented(self.sr, mc, ac, av, self.b, out_cols, out_vals);
        } else {
            self.kernel
                .compute_row(self.sr, mc, ac, av, self.b, out_cols, out_vals);
        }
    }

    #[inline]
    fn count_row(&mut self, i: usize) -> usize {
        let (mc, _) = self.mask.row(i);
        let (ac, av) = self.a.row(i);
        if self.complemented {
            self.kernel.count_row_complemented(mc, ac, av, self.b)
        } else {
            self.kernel.count_row(mc, ac, av, self.b)
        }
    }
}

struct InnerProducer<'m, S: Semiring, MT> {
    sr: S,
    mask: &'m CsrMatrix<MT>,
    a: &'m CsrMatrix<S::A>,
    b: &'m CscMatrix<S::B>,
    complemented: bool,
}

impl<'m, S, MT> RowProducer<S::C> for InnerProducer<'m, S, MT>
where
    S: Semiring,
    MT: Copy + Sync,
{
    #[inline]
    fn compute_row(&mut self, i: usize, out_cols: &mut Vec<Idx>, out_vals: &mut Vec<S::C>) {
        let (mc, _) = self.mask.row(i);
        let (ac, av) = self.a.row(i);
        if self.complemented {
            inner::inner_row_complemented(self.sr, mc, ac, av, self.b, out_cols, out_vals);
        } else {
            inner::inner_row(self.sr, mc, ac, av, self.b, out_cols, out_vals);
        }
    }

    #[inline]
    fn count_row(&mut self, i: usize) -> usize {
        let (mc, _) = self.mask.row(i);
        let (ac, _) = self.a.row(i);
        if self.complemented {
            inner::inner_count_row_complemented::<S>(mc, ac, self.b)
        } else {
            inner::inner_count_row::<S>(mc, ac, self.b)
        }
    }
}

/// Contiguous row ranges at the scheduler's claim granularity: the chunk
/// list is sized so each parallel part is exactly one chunk, making the
/// pool's atomic chunk claiming the load balancer (no local splitting
/// policy on top).
fn row_chunks(nrows: usize) -> Vec<(usize, usize)> {
    if nrows == 0 {
        return Vec::new();
    }
    let target = rayon::recommended_parts(nrows);
    let chunk = nrows.div_ceil(target).max(1);
    (0..nrows)
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(nrows)))
        .collect()
}

/// Split `buf` into mutable sub-slices at the given cumulative `bounds`
/// (ascending, last == buf.len()).
fn split_at_bounds<'a, T>(mut buf: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len());
    let mut prev = 0usize;
    for &b in bounds {
        let (head, tail) = buf.split_at_mut(b - prev);
        out.push(head);
        buf = tail;
        prev = b;
    }
    out
}

/// One-phase driver: a single numeric pass into thread-local buffers,
/// followed by a parallel scatter into the final CSR arrays.
pub(crate) fn one_phase_driver<C, P, F>(nrows: usize, ncols: usize, make: F) -> CsrMatrix<C>
where
    C: Copy + Default + Send + Sync,
    P: RowProducer<C>,
    F: Fn() -> P + Sync,
{
    let chunks = row_chunks(nrows);
    struct ChunkOut<C> {
        counts: Vec<usize>,
        cols: Vec<Idx>,
        vals: Vec<C>,
    }
    // One producer (kernel scratch) per pool worker, shared across every
    // chunk that worker claims — with skewed rows a worker may claim many.
    let producers: WorkerLocal<P> = WorkerLocal::new();
    let outs: Vec<ChunkOut<C>> = chunks
        .par_iter()
        .map(|&(s, e)| {
            producers.with(&make, |producer| {
                let mut counts = Vec::with_capacity(e - s);
                let mut cols = Vec::new();
                let mut vals = Vec::new();
                for i in s..e {
                    let before = cols.len();
                    producer.compute_row(i, &mut cols, &mut vals);
                    counts.push(cols.len() - before);
                }
                ChunkOut { counts, cols, vals }
            })
        })
        .collect();

    // Row pointers from per-row counts.
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    for out in &outs {
        for &c in &out.counts {
            rowptr.push(rowptr.last().unwrap() + c);
        }
    }
    let nnz = *rowptr.last().unwrap();

    // Parallel scatter of chunk buffers into the final arrays.
    let mut colidx: Vec<Idx> = vec![0; nnz];
    let mut values: Vec<C> = vec![C::default(); nnz];
    let bounds: Vec<usize> = chunks.iter().map(|&(_, e)| rowptr[e]).collect();
    let col_slices = split_at_bounds(&mut colidx, &bounds);
    let val_slices = split_at_bounds(&mut values, &bounds);
    outs.par_iter()
        .zip(col_slices)
        .zip(val_slices)
        .for_each(|((out, cs), vs)| {
            cs.copy_from_slice(&out.cols);
            vs.copy_from_slice(&out.vals);
        });
    CsrMatrix::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Two-phase driver: symbolic count, exact allocation, then a numeric pass
/// that writes each row through a small scratch straight into its slot.
pub(crate) fn two_phase_driver<C, P, F>(nrows: usize, ncols: usize, make: F) -> CsrMatrix<C>
where
    C: Copy + Default + Send + Sync,
    P: RowProducer<C>,
    F: Fn() -> P + Sync,
{
    let chunks = row_chunks(nrows);
    // One producer per pool worker, shared by both passes: the symbolic
    // count and the numeric write reuse the same accumulator scratch.
    let producers: WorkerLocal<P> = WorkerLocal::new();

    // Symbolic phase.
    let chunk_counts: Vec<Vec<usize>> = chunks
        .par_iter()
        .map(|&(s, e)| {
            producers.with(&make, |producer| {
                (s..e).map(|i| producer.count_row(i)).collect()
            })
        })
        .collect();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    for counts in &chunk_counts {
        for &c in counts {
            rowptr.push(rowptr.last().unwrap() + c);
        }
    }
    let nnz = *rowptr.last().unwrap();

    // Numeric phase into exact storage.
    let mut colidx: Vec<Idx> = vec![0; nnz];
    let mut values: Vec<C> = vec![C::default(); nnz];
    let bounds: Vec<usize> = chunks.iter().map(|&(_, e)| rowptr[e]).collect();
    let col_slices = split_at_bounds(&mut colidx, &bounds);
    let val_slices = split_at_bounds(&mut values, &bounds);
    chunks
        .par_iter()
        .zip(col_slices)
        .zip(val_slices)
        .for_each(|((&(s, e), cs), vs)| {
            producers.with(&make, |producer| {
                let mut rc: Vec<Idx> = Vec::new();
                let mut rv: Vec<C> = Vec::new();
                let mut cursor = 0usize;
                for i in s..e {
                    rc.clear();
                    rv.clear();
                    producer.compute_row(i, &mut rc, &mut rv);
                    debug_assert_eq!(
                        rc.len(),
                        rowptr[i + 1] - rowptr[i],
                        "symbolic/numeric mismatch at row {i}"
                    );
                    cs[cursor..cursor + rc.len()].copy_from_slice(&rc);
                    vs[cursor..cursor + rv.len()].copy_from_slice(&rv);
                    cursor += rc.len();
                }
                debug_assert_eq!(cursor, cs.len());
            });
        });
    CsrMatrix::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

pub(crate) fn check_dims<MT, A>(
    mask: &CsrMatrix<MT>,
    a: &CsrMatrix<A>,
    nrows_b: usize,
    ncols_b: usize,
) {
    assert_eq!(a.ncols(), nrows_b, "inner dimension mismatch");
    assert_eq!(mask.nrows(), a.nrows(), "mask rows mismatch");
    assert_eq!(mask.ncols(), ncols_b, "mask cols mismatch");
}

/// Largest mask-row nonzero count (sizes hash/MCA accumulators).
pub fn max_mask_row_nnz<MT>(mask: &CsrMatrix<MT>) -> usize {
    (0..mask.nrows())
        .map(|i| mask.row_nnz(i))
        .max()
        .unwrap_or(0)
}

/// Run a push-based kernel `K` in one phase.
pub fn push_one_phase<S, K, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    S::C: Default,
    K: RowKernel<S>,
    MT: Copy + Sync,
{
    check_dims(mask, a, b.nrows(), b.ncols());
    let max_m = max_mask_row_nnz(mask);
    let ncols = b.ncols();
    one_phase_driver(a.nrows(), ncols, || PushProducer {
        sr,
        kernel: K::new(ncols, max_m),
        mask,
        a,
        b,
        complemented,
    })
}

/// Run a push-based kernel `K` in two phases (symbolic + numeric).
pub fn push_two_phase<S, K, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    S::C: Default,
    K: RowKernel<S>,
    MT: Copy + Sync,
{
    check_dims(mask, a, b.nrows(), b.ncols());
    let max_m = max_mask_row_nnz(mask);
    let ncols = b.ncols();
    two_phase_driver(a.nrows(), ncols, || PushProducer {
        sr,
        kernel: K::new(ncols, max_m),
        mask,
        a,
        b,
        complemented,
    })
}

/// Run the pull-based `Inner` algorithm (B in CSC) in one or two phases.
pub fn inner_driver<S, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CscMatrix<S::B>,
    two_phase: bool,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    S::C: Default + Sync,
    MT: Copy + Sync,
{
    check_dims(mask, a, b.nrows(), b.ncols());
    let ncols = b.ncols();
    let make = || InnerProducer {
        sr,
        mask,
        a,
        b,
        complemented,
    };
    if two_phase {
        two_phase_driver(a.nrows(), ncols, make)
    } else {
        one_phase_driver(a.nrows(), ncols, make)
    }
}

/// Build a rayon thread pool with `n` persistent workers (strong-scaling
/// harnesses). Workers are spawned once and parked between jobs;
/// `pool.install(op)` scopes both the worker set and the observed
/// `current_num_threads` — including inside worker closures and across
/// nested installs — and panics in worker closures propagate to the
/// caller.
pub fn thread_pool(n: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("failed to build rayon pool")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{ninspect, HashKernel, HeapKernel, McaKernel, MsaKernel};
    use crate::kernel::testutil::random_csr;
    use sparse::dense::reference_masked_spgemm;
    use sparse::PlusTimes;

    #[test]
    fn chunking_covers_all_rows() {
        for nrows in [0usize, 1, 7, 100, 1023] {
            let chunks = row_chunks(nrows);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for &(s, e) in &chunks {
                assert_eq!(s, prev_end);
                assert!(e > s);
                covered += e - s;
                prev_end = e;
            }
            assert_eq!(covered, nrows);
        }
    }

    #[test]
    fn split_bounds() {
        let mut v = vec![0u32; 10];
        let slices = split_at_bounds(&mut v, &[3, 3, 10]);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].len(), 3);
        assert_eq!(slices[1].len(), 0);
        assert_eq!(slices[2].len(), 7);
    }

    /// All drivers × kernels must agree with the dense reference.
    #[test]
    fn drivers_match_reference_all_kernels() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..3u64 {
            let a = random_csr(33, 29, seed * 7 + 1, 25);
            let b = random_csr(29, 41, seed * 7 + 2, 25);
            let m = random_csr(33, 41, seed * 7 + 3, 35).pattern();
            let bc = CscMatrix::from_csr(&b);
            for compl in [false, true] {
                let expect = reference_masked_spgemm(sr, &m, compl, &a, &b);
                type S = PlusTimes<f64>;
                let results = vec![
                    (
                        "msa-1p",
                        push_one_phase::<S, MsaKernel<S>, ()>(sr, &m, compl, &a, &b),
                    ),
                    (
                        "msa-2p",
                        push_two_phase::<S, MsaKernel<S>, ()>(sr, &m, compl, &a, &b),
                    ),
                    (
                        "hash-1p",
                        push_one_phase::<S, HashKernel<S>, ()>(sr, &m, compl, &a, &b),
                    ),
                    (
                        "hash-2p",
                        push_two_phase::<S, HashKernel<S>, ()>(sr, &m, compl, &a, &b),
                    ),
                    (
                        "heap1-1p",
                        push_one_phase::<S, HeapKernel<S, { ninspect::ONE }>, ()>(
                            sr, &m, compl, &a, &b,
                        ),
                    ),
                    (
                        "heapinf-2p",
                        push_two_phase::<S, HeapKernel<S, { ninspect::INF }>, ()>(
                            sr, &m, compl, &a, &b,
                        ),
                    ),
                    ("inner-1p", inner_driver(sr, &m, compl, &a, &bc, false)),
                    ("inner-2p", inner_driver(sr, &m, compl, &a, &bc, true)),
                ];
                for (name, got) in results {
                    assert_eq!(got, expect, "{name} seed={seed} compl={compl}");
                }
                if !compl {
                    let got = push_one_phase::<S, McaKernel<S>, ()>(sr, &m, compl, &a, &b);
                    assert_eq!(got, expect, "mca-1p seed={seed}");
                    let got = push_two_phase::<S, McaKernel<S>, ()>(sr, &m, compl, &a, &b);
                    assert_eq!(got, expect, "mca-2p seed={seed}");
                }
            }
        }
    }

    #[test]
    fn empty_matrices() {
        let sr = PlusTimes::<f64>::new();
        let a = CsrMatrix::<f64>::empty(5, 4);
        let b = CsrMatrix::<f64>::empty(4, 3);
        let m = CsrMatrix::<()>::empty(5, 3);
        let c = push_one_phase::<_, MsaKernel<_>, _>(sr, &m, false, &a, &b);
        assert_eq!(c.shape(), (5, 3));
        assert_eq!(c.nnz(), 0);
        let c = push_two_phase::<_, HashKernel<_>, _>(sr, &m, true, &a, &b);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn custom_thread_pool_runs_driver() {
        let sr = PlusTimes::<f64>::new();
        let a = random_csr(50, 50, 9, 20);
        let b = random_csr(50, 50, 10, 20);
        let m = random_csr(50, 50, 11, 30).pattern();
        let expect = push_one_phase::<_, MsaKernel<_>, _>(sr, &m, false, &a, &b);
        let pool = thread_pool(2);
        let got = pool.install(|| push_one_phase::<_, MsaKernel<_>, _>(sr, &m, false, &a, &b));
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dim_mismatch_panics() {
        let sr = PlusTimes::<f64>::new();
        let a = CsrMatrix::<f64>::empty(2, 3);
        let b = CsrMatrix::<f64>::empty(4, 2);
        let m = CsrMatrix::<()>::empty(2, 2);
        push_one_phase::<_, MsaKernel<_>, _>(sr, &m, false, &a, &b);
    }
}
