//! High-level API: algorithm selection and dispatch.

use sparse::{CscMatrix, CsrMatrix, Semiring, SparseError};

use crate::algos::{ninspect, HashKernel, HeapKernel, McaKernel, MsaKernel};
use crate::exec::{inner_driver, push_one_phase, push_two_phase};

/// The Masked SpGEMM algorithm families of the paper (Section 8's scheme
/// names, minus the 1P/2P suffix which is [`Phases`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Masked Sparse Accumulator (push; dense state/value arrays).
    Msa,
    /// Hash accumulator (push; open addressing, load factor 0.25).
    Hash,
    /// Mask Compressed Accumulator (push; `nnz(mask row)`-sized arrays).
    /// Does not support complemented masks.
    Mca,
    /// Heap k-way merge with `NInspect = 1`.
    Heap,
    /// Heap k-way merge with `NInspect = ∞` (paper scheme `HeapDot`).
    HeapDot,
    /// Pull-based dot products driven by the mask (`B` accessed
    /// column-major; converted internally unless you call
    /// [`masked_spgemm_csc`]).
    Inner,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Msa,
        Algorithm::Hash,
        Algorithm::Mca,
        Algorithm::Heap,
        Algorithm::HeapDot,
        Algorithm::Inner,
    ];

    /// Scheme name as used in the paper's plots (e.g. `MSA`).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Msa => "MSA",
            Algorithm::Hash => "Hash",
            Algorithm::Mca => "MCA",
            Algorithm::Heap => "Heap",
            Algorithm::HeapDot => "HeapDot",
            Algorithm::Inner => "Inner",
        }
    }

    /// Whether the algorithm supports `C = ¬M ⊙ (A·B)`.
    pub fn supports_complement(self) -> bool {
        !matches!(self, Algorithm::Mca)
    }

    /// Validate a requested mask polarity against this algorithm.
    ///
    /// Every execution path in this workspace — direct calls, the serial
    /// scratch drivers, DCSR execution, and the engine's planned/forced/
    /// batched paths — funnels complement support through this check, so a
    /// complemented-mask request on [`Algorithm::Mca`] uniformly yields
    /// [`SparseError::Unsupported`] with [`COMPLEMENT_UNSUPPORTED`] instead
    /// of a panic or a silent fallback.
    pub fn check_complement_support(self, complemented: bool) -> Result<(), SparseError> {
        if complemented && !self.supports_complement() {
            return Err(SparseError::Unsupported(COMPLEMENT_UNSUPPORTED));
        }
        Ok(())
    }
}

/// The one error message for "MCA × complemented mask", shared by every
/// entry point (the MCA accumulator is addressed by mask *rank*, which
/// presupposes the output pattern is a subset of the mask — Section 5.4).
pub const COMPLEMENT_UNSUPPORTED: &str = "MCA does not support complemented masks";

/// One-phase (numeric only) vs. two-phase (symbolic + numeric) execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Phases {
    /// Single numeric pass with transient over-allocation.
    One,
    /// Symbolic nonzero count, exact allocation, then numeric pass.
    Two,
}

impl Phases {
    /// Both phase disciplines.
    pub const ALL: [Phases; 2] = [Phases::One, Phases::Two];

    /// Suffix as used in the paper's plots (`1P` / `2P`).
    pub fn suffix(self) -> &'static str {
        match self {
            Phases::One => "1P",
            Phases::Two => "2P",
        }
    }
}

/// A configured Masked SpGEMM operation, built once and run many times.
///
/// ```
/// use masked_spgemm::{Algorithm, MaskedSpGemm, Phases};
/// use sparse::{CsrMatrix, PlusPair};
///
/// // Count common neighbors along existing edges of a triangle graph.
/// let tri = CsrMatrix::try_new(
///     3, 3,
///     vec![0, 2, 4, 6],
///     vec![1, 2, 0, 2, 0, 1],
///     vec![1.0f64; 6],
/// ).unwrap();
/// let op = MaskedSpGemm::new(Algorithm::Mca, Phases::Two);
/// let c = op
///     .run(PlusPair::<f64, f64, u32>::new(), &tri, &tri, &tri)
///     .unwrap();
/// // Every edge of the triangle closes through exactly one wedge.
/// assert!(c.values().iter().all(|&v| v == 1));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct MaskedSpGemm {
    algorithm: Algorithm,
    phases: Phases,
    complemented: bool,
}

impl MaskedSpGemm {
    /// Configure an operation with a plain (non-complemented) mask.
    pub fn new(algorithm: Algorithm, phases: Phases) -> Self {
        MaskedSpGemm {
            algorithm,
            phases,
            complemented: false,
        }
    }

    /// Use the complement of the mask (`C = ¬M ⊙ (A·B)`).
    pub fn complemented(mut self, yes: bool) -> Self {
        self.complemented = yes;
        self
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured phase discipline.
    pub fn phases(&self) -> Phases {
        self.phases
    }

    /// Scheme label as used in the paper's plots, e.g. `MSA-1P`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.algorithm.name(), self.phases.suffix())
    }

    /// Execute `C = M ⊙ (A·B)` (or `¬M ⊙`) on the given semiring.
    pub fn run<S, MT>(
        &self,
        sr: S,
        mask: &CsrMatrix<MT>,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        S: Semiring,
        S::C: Default + Sync,
        MT: Copy + Sync,
    {
        masked_spgemm(
            self.algorithm,
            self.phases,
            self.complemented,
            sr,
            mask,
            a,
            b,
        )
    }
}

fn check_shapes<MT, A>(
    mask: &CsrMatrix<MT>,
    a: &CsrMatrix<A>,
    b_shape: (usize, usize),
) -> Result<(), SparseError> {
    if a.ncols() != b_shape.0 {
        return Err(SparseError::DimMismatch {
            op: "masked_spgemm (A·B)",
            lhs: a.shape(),
            rhs: b_shape,
        });
    }
    if mask.shape() != (a.nrows(), b_shape.1) {
        return Err(SparseError::DimMismatch {
            op: "masked_spgemm (mask)",
            lhs: mask.shape(),
            rhs: (a.nrows(), b_shape.1),
        });
    }
    Ok(())
}

/// Execute a Masked SpGEMM with explicit algorithm/phase selection.
///
/// `B` is taken in CSR; [`Algorithm::Inner`] converts it to CSC internally
/// (use [`masked_spgemm_csc`] to amortize that conversion across calls).
pub fn masked_spgemm<S, MT>(
    algorithm: Algorithm,
    phases: Phases,
    complemented: bool,
    sr: S,
    mask: &CsrMatrix<MT>,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> Result<CsrMatrix<S::C>, SparseError>
where
    S: Semiring,
    S::C: Default + Sync,
    MT: Copy + Sync,
{
    check_shapes(mask, a, b.shape())?;
    algorithm.check_complement_support(complemented)?;
    let c = match (algorithm, phases) {
        (Algorithm::Msa, Phases::One) => {
            push_one_phase::<S, MsaKernel<S>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Msa, Phases::Two) => {
            push_two_phase::<S, MsaKernel<S>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Hash, Phases::One) => {
            push_one_phase::<S, HashKernel<S>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Hash, Phases::Two) => {
            push_two_phase::<S, HashKernel<S>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Mca, Phases::One) => {
            push_one_phase::<S, McaKernel<S>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Mca, Phases::Two) => {
            push_two_phase::<S, McaKernel<S>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Heap, Phases::One) => {
            push_one_phase::<S, HeapKernel<S, { ninspect::ONE }>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Heap, Phases::Two) => {
            push_two_phase::<S, HeapKernel<S, { ninspect::ONE }>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::HeapDot, Phases::One) => {
            push_one_phase::<S, HeapKernel<S, { ninspect::INF }>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::HeapDot, Phases::Two) => {
            push_two_phase::<S, HeapKernel<S, { ninspect::INF }>, MT>(sr, mask, complemented, a, b)
        }
        (Algorithm::Inner, _) => {
            let bcsc = CscMatrix::from_csr(b);
            inner_driver(sr, mask, complemented, a, &bcsc, phases == Phases::Two)
        }
    };
    Ok(c)
}

/// [`masked_spgemm`] for callers that already hold `B` in CSC form
/// (only meaningful for [`Algorithm::Inner`]; other algorithms convert
/// back to CSR, which defeats the purpose — they return an error).
pub fn masked_spgemm_csc<S, MT>(
    algorithm: Algorithm,
    phases: Phases,
    complemented: bool,
    sr: S,
    mask: &CsrMatrix<MT>,
    a: &CsrMatrix<S::A>,
    b: &CscMatrix<S::B>,
) -> Result<CsrMatrix<S::C>, SparseError>
where
    S: Semiring,
    S::C: Default + Sync,
    MT: Copy + Sync,
{
    check_shapes(mask, a, b.shape())?;
    if algorithm != Algorithm::Inner {
        return Err(SparseError::Unsupported(
            "masked_spgemm_csc supports only Algorithm::Inner",
        ));
    }
    algorithm.check_complement_support(complemented)?;
    Ok(inner_driver(
        sr,
        mask,
        complemented,
        a,
        b,
        phases == Phases::Two,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::random_csr;
    use sparse::dense::reference_masked_spgemm;
    use sparse::{PlusPair, PlusTimes};

    #[test]
    fn all_schemes_agree_on_all_semirings() {
        let a = random_csr(20, 20, 1, 30);
        let b = random_csr(20, 20, 2, 30);
        let m = random_csr(20, 20, 3, 40).pattern();
        // plus_times
        let sr = PlusTimes::<f64>::new();
        let expect = reference_masked_spgemm(sr, &m, false, &a, &b);
        for alg in Algorithm::ALL {
            for ph in Phases::ALL {
                let got = masked_spgemm(alg, ph, false, sr, &m, &a, &b).unwrap();
                assert_eq!(got, expect, "{alg:?}-{ph:?}");
            }
        }
        // plus_pair
        let sp = PlusPair::<f64, f64, u32>::new();
        let expect = reference_masked_spgemm(sp, &m, false, &a, &b);
        for alg in Algorithm::ALL {
            let got = masked_spgemm(alg, Phases::One, false, sp, &m, &a, &b).unwrap();
            assert_eq!(got, expect, "{alg:?} plus_pair");
        }
    }

    #[test]
    fn complemented_schemes_agree() {
        let a = random_csr(15, 15, 4, 35);
        let b = random_csr(15, 15, 5, 35);
        let m = random_csr(15, 15, 6, 30).pattern();
        let sr = PlusTimes::<f64>::new();
        let expect = reference_masked_spgemm(sr, &m, true, &a, &b);
        for alg in Algorithm::ALL {
            if !alg.supports_complement() {
                assert!(masked_spgemm(alg, Phases::One, true, sr, &m, &a, &b).is_err());
                continue;
            }
            for ph in Phases::ALL {
                let got = masked_spgemm(alg, ph, true, sr, &m, &a, &b).unwrap();
                assert_eq!(got, expect, "{alg:?}-{ph:?} complemented");
            }
        }
    }

    #[test]
    fn shape_errors() {
        let sr = PlusTimes::<f64>::new();
        let a = CsrMatrix::<f64>::empty(2, 3);
        let b = CsrMatrix::<f64>::empty(4, 2);
        let m = CsrMatrix::<()>::empty(2, 2);
        assert!(masked_spgemm(Algorithm::Msa, Phases::One, false, sr, &m, &a, &b).is_err());
        let b = CsrMatrix::<f64>::empty(3, 2);
        let bad_mask = CsrMatrix::<()>::empty(3, 2);
        assert!(masked_spgemm(Algorithm::Msa, Phases::One, false, sr, &bad_mask, &a, &b).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(
            MaskedSpGemm::new(Algorithm::Msa, Phases::One).label(),
            "MSA-1P"
        );
        assert_eq!(
            MaskedSpGemm::new(Algorithm::HeapDot, Phases::Two).label(),
            "HeapDot-2P"
        );
    }

    #[test]
    fn csc_entry_point() {
        let a = random_csr(10, 10, 7, 40);
        let b = random_csr(10, 10, 8, 40);
        let m = random_csr(10, 10, 9, 40).pattern();
        let sr = PlusTimes::<f64>::new();
        let bc = CscMatrix::from_csr(&b);
        let expect = reference_masked_spgemm(sr, &m, false, &a, &b);
        let got = masked_spgemm_csc(Algorithm::Inner, Phases::One, false, sr, &m, &a, &bc).unwrap();
        assert_eq!(got, expect);
        assert!(masked_spgemm_csc(Algorithm::Msa, Phases::One, false, sr, &m, &a, &bc).is_err());
    }
}
