//! The row-kernel abstraction shared by all push-based algorithms.
//!
//! Every push-based Masked SpGEMM in the paper computes output row `i` as
//! `C(i,:) = M(i,:) ⊙ Σ_k A(i,k)·B(k,:)` — a masked sparse vector-matrix
//! product (Masked SpGEVM, Section 5). A [`RowKernel`] encapsulates the
//! per-thread scratch state (the accumulator) and computes one such row at a
//! time; the drivers in [`crate::exec`] create one kernel per rayon worker
//! and iterate rows in parallel.
//!
//! Kernels expose both a *numeric* entry point (`compute_row`, which appends
//! `(column, value)` pairs in increasing column order) and a *symbolic* one
//! (`count_row`, which only counts output nonzeros) so the same machinery
//! serves the one-phase and two-phase drivers. Complemented-mask variants
//! have separate entry points because their control flow differs
//! fundamentally (the default accumulator state flips from NOTALLOWED to
//! ALLOWED, Section 5.2).

use sparse::{CsrMatrix, Idx, Semiring};

/// Per-thread state for computing masked output rows.
///
/// Implementations must append output columns in **strictly increasing**
/// order — the drivers assemble rows directly into CSR.
pub trait RowKernel<S: Semiring>: Send {
    /// Whether the kernel supports the complemented mask (`¬M ⊙ (A·B)`).
    ///
    /// MCA structurally cannot (its accumulator is addressed by mask rank);
    /// calling a `*_complemented` method on such a kernel panics.
    const SUPPORTS_COMPLEMENT: bool;

    /// Create scratch for operands with `ncols` output columns and at most
    /// `max_mask_row_nnz` mask entries per row.
    fn new(ncols: usize, max_mask_row_nnz: usize) -> Self;

    /// Compute one masked row: `out ← m ⊙ (u·B)`.
    ///
    /// `mcols` is the (sorted) mask row pattern, `(acols, avals)` the row of
    /// `A`, and the result is appended to `out_cols`/`out_vals` in
    /// increasing column order.
    #[allow(clippy::too_many_arguments)]
    fn compute_row(
        &mut self,
        sr: S,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
        out_cols: &mut Vec<Idx>,
        out_vals: &mut Vec<S::C>,
    );

    /// Symbolic version of [`RowKernel::compute_row`]: the number of output
    /// entries the numeric pass will produce. `avals` is available because
    /// some kernels (heap) carry the scaling value inside their iterator
    /// state even when only counting.
    fn count_row(
        &mut self,
        mcols: &[Idx],
        acols: &[Idx],
        avals: &[S::A],
        b: &CsrMatrix<S::B>,
    ) -> usize;

    /// Compute one row under the complemented mask: `out ← ¬m ⊙ (u·B)`.
    #[allow(clippy::too_many_arguments)]
    fn compute_row_complemented(
        &mut self,
        _sr: S,
        _mcols: &[Idx],
        _acols: &[Idx],
        _avals: &[S::A],
        _b: &CsrMatrix<S::B>,
        _out_cols: &mut Vec<Idx>,
        _out_vals: &mut Vec<S::C>,
    ) {
        panic!("this kernel does not support complemented masks");
    }

    /// Symbolic version of [`RowKernel::compute_row_complemented`].
    fn count_row_complemented(
        &mut self,
        _mcols: &[Idx],
        _acols: &[Idx],
        _avals: &[S::A],
        _b: &CsrMatrix<S::B>,
    ) -> usize {
        panic!("this kernel does not support complemented masks");
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for kernel unit tests.

    use sparse::dense::reference_masked_spgemm;
    use sparse::{CsrMatrix, PlusTimes, Semiring};

    use super::RowKernel;

    /// Run a kernel row-by-row over whole matrices (serial driver used only
    /// in tests; the real drivers live in `exec`).
    pub fn run_kernel<S: Semiring, K: RowKernel<S>>(
        sr: S,
        mask: &CsrMatrix<()>,
        complemented: bool,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
    ) -> CsrMatrix<S::C> {
        let max_mask = (0..mask.nrows())
            .map(|i| mask.row_nnz(i))
            .max()
            .unwrap_or(0);
        let mut k = K::new(b.ncols(), max_mask);
        let mut rowptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..a.nrows() {
            let (mc, _) = mask.row(i);
            let (ac, av) = a.row(i);
            if complemented {
                k.compute_row_complemented(sr, mc, ac, av, b, &mut cols, &mut vals);
            } else {
                k.compute_row(sr, mc, ac, av, b, &mut cols, &mut vals);
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(a.nrows(), b.ncols(), rowptr, cols, vals)
            .expect("kernel produced invalid CSR")
    }

    /// Run the symbolic pass row-by-row and return per-row counts.
    pub fn count_kernel<S: Semiring, K: RowKernel<S>>(
        mask: &CsrMatrix<()>,
        complemented: bool,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
    ) -> Vec<usize> {
        let max_mask = (0..mask.nrows())
            .map(|i| mask.row_nnz(i))
            .max()
            .unwrap_or(0);
        let mut k = K::new(b.ncols(), max_mask);
        (0..a.nrows())
            .map(|i| {
                let (mc, _) = mask.row(i);
                let (ac, av) = a.row(i);
                if complemented {
                    k.count_row_complemented(mc, ac, av, b)
                } else {
                    k.count_row(mc, ac, av, b)
                }
            })
            .collect()
    }

    /// Small deterministic pseudo-random CSR pattern with values 1..=nnz.
    pub fn random_csr(nrows: usize, ncols: usize, seed: u64, density_pct: u64) -> CsrMatrix<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rowptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut count = 1.0f64;
        for _ in 0..nrows {
            for j in 0..ncols {
                if next() % 100 < density_pct {
                    cols.push(j as u32);
                    vals.push(count);
                    count += 1.0;
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    }

    /// Assert kernel output equals the dense reference on a battery of
    /// random instances, both plain and (if supported) complemented.
    pub fn check_against_reference<K>(complement: bool)
    where
        K: RowKernel<PlusTimes<f64>>,
    {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..6u64 {
            for &(n, k, m, da, dm) in &[
                (6usize, 5usize, 7usize, 40u64, 40u64),
                (10, 10, 10, 20, 60),
                (12, 4, 9, 60, 15),
                (1, 8, 8, 50, 50),
                (8, 8, 1, 50, 50),
                (5, 5, 5, 0, 50),
                (5, 5, 5, 50, 0),
            ] {
                let a = random_csr(n, k, seed * 31 + 1, da);
                let b = random_csr(k, m, seed * 31 + 2, da);
                let mask = random_csr(n, m, seed * 31 + 3, dm).pattern();
                let expect = reference_masked_spgemm(sr, &mask, complement, &a, &b);
                let got = run_kernel::<_, K>(sr, &mask, complement, &a, &b);
                assert_eq!(
                    got, expect,
                    "mismatch: seed={seed} dims=({n},{k},{m}) da={da} dm={dm} compl={complement}"
                );
                let counts = count_kernel::<PlusTimes<f64>, K>(&mask, complement, &a, &b);
                let expect_counts: Vec<usize> = (0..n).map(|i| expect.row_nnz(i)).collect();
                assert_eq!(counts, expect_counts, "symbolic mismatch seed={seed}");
            }
        }
    }
}
