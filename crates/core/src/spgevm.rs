//! Masked sparse vector-matrix products (Masked SpGEVM).
//!
//! The paper formulates every row-wise algorithm as
//! `v⊺ = m⊺ ⊙ (u⊺·B)` (Section 5) — Masked SpGEMM is just this, once per
//! row. This module exposes the operation directly on sparse vectors,
//! which is what frontier-based graph traversals (BFS, push-pull) consume.

use sparse::{CscMatrix, CsrMatrix, Semiring, SparseError, SparseVec};

use crate::algos::{inner, ninspect, HashKernel, HeapKernel, McaKernel, MsaKernel};
use crate::api::Algorithm;
use crate::kernel::RowKernel;

/// Compute `v = m ⊙ (u·B)` (or `¬m ⊙` with `complemented`) with the chosen
/// algorithm. `B` is CSR; use [`masked_spgevm_csc`] for `Inner`.
pub fn masked_spgevm<S, MT>(
    algorithm: Algorithm,
    complemented: bool,
    sr: S,
    mask: &SparseVec<MT>,
    u: &SparseVec<S::A>,
    b: &CsrMatrix<S::B>,
) -> Result<SparseVec<S::C>, SparseError>
where
    S: Semiring,
    S::C: Default,
    MT: Copy,
{
    if u.dim() != b.nrows() {
        return Err(SparseError::DimMismatch {
            op: "masked_spgevm (u·B)",
            lhs: (1, u.dim()),
            rhs: b.shape(),
        });
    }
    if mask.dim() != b.ncols() {
        return Err(SparseError::DimMismatch {
            op: "masked_spgevm (mask)",
            lhs: (1, mask.dim()),
            rhs: (1, b.ncols()),
        });
    }
    algorithm.check_complement_support(complemented)?;
    let (mcols, ucols, uvals) = (mask.indices(), u.indices(), u.values());
    let mut out_cols = Vec::new();
    let mut out_vals = Vec::new();
    macro_rules! run_kernel {
        ($k:ty) => {{
            let mut k = <$k>::new(b.ncols(), mcols.len());
            if complemented {
                k.compute_row_complemented(
                    sr,
                    mcols,
                    ucols,
                    uvals,
                    b,
                    &mut out_cols,
                    &mut out_vals,
                );
            } else {
                k.compute_row(sr, mcols, ucols, uvals, b, &mut out_cols, &mut out_vals);
            }
        }};
    }
    match algorithm {
        Algorithm::Msa => run_kernel!(MsaKernel<S>),
        Algorithm::Hash => run_kernel!(HashKernel<S>),
        Algorithm::Mca => run_kernel!(McaKernel<S>),
        Algorithm::Heap => run_kernel!(HeapKernel<S, { ninspect::ONE }>),
        Algorithm::HeapDot => run_kernel!(HeapKernel<S, { ninspect::INF }>),
        Algorithm::Inner => {
            return Err(SparseError::Unsupported(
                "Inner consumes B in CSC form; call masked_spgevm_csc",
            ));
        }
    }
    SparseVec::try_new(b.ncols(), out_cols, out_vals)
}

/// [`masked_spgevm`] with the pull-based `Inner` algorithm (`B` in CSC).
pub fn masked_spgevm_csc<S, MT>(
    complemented: bool,
    sr: S,
    mask: &SparseVec<MT>,
    u: &SparseVec<S::A>,
    b: &CscMatrix<S::B>,
) -> Result<SparseVec<S::C>, SparseError>
where
    S: Semiring,
    MT: Copy,
{
    if u.dim() != b.nrows() {
        return Err(SparseError::DimMismatch {
            op: "masked_spgevm_csc (u·B)",
            lhs: (1, u.dim()),
            rhs: b.shape(),
        });
    }
    if mask.dim() != b.ncols() {
        return Err(SparseError::DimMismatch {
            op: "masked_spgevm_csc (mask)",
            lhs: (1, mask.dim()),
            rhs: (1, b.ncols()),
        });
    }
    // Inner does support complemented masks; the check is here so every
    // SpGEVM entry point funnels polarity support through the same
    // `check_complement_support` gate as the matrix paths (uniform
    // `SparseError::Unsupported`, never a panic or silent fallback).
    Algorithm::Inner.check_complement_support(complemented)?;
    let mut out_cols = Vec::new();
    let mut out_vals = Vec::new();
    if complemented {
        inner::inner_row_complemented(
            sr,
            mask.indices(),
            u.indices(),
            u.values(),
            b,
            &mut out_cols,
            &mut out_vals,
        );
    } else {
        inner::inner_row(
            sr,
            mask.indices(),
            u.indices(),
            u.values(),
            b,
            &mut out_cols,
            &mut out_vals,
        );
    }
    SparseVec::try_new(b.ncols(), out_cols, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::random_csr;
    use sparse::PlusTimes;

    fn dense_reference(
        mask: &SparseVec<()>,
        complemented: bool,
        u: &SparseVec<f64>,
        b: &CsrMatrix<f64>,
    ) -> SparseVec<f64> {
        let mut out: Vec<(u32, f64)> = Vec::new();
        for j in 0..b.ncols() as u32 {
            let in_mask = mask.get(j).is_some();
            if in_mask == complemented {
                continue;
            }
            let mut acc: Option<f64> = None;
            for (k, &uv) in u.iter() {
                if let Some(&bv) = b.get(k as usize, j) {
                    acc = Some(acc.unwrap_or(0.0) + uv * bv);
                }
            }
            if let Some(v) = acc {
                out.push((j, v));
            }
        }
        let (idx, vals) = out.into_iter().unzip();
        SparseVec::try_new(b.ncols(), idx, vals).unwrap()
    }

    #[test]
    fn all_algorithms_match_dense_vector_reference() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..4u64 {
            let b = random_csr(12, 15, seed + 1, 35);
            let bc = sparse::CscMatrix::from_csr(&b);
            let urow = random_csr(1, 12, seed + 2, 50);
            let mrow = random_csr(1, 15, seed + 3, 45);
            let u = SparseVec::try_new(12, urow.row(0).0.to_vec(), urow.row(0).1.to_vec()).unwrap();
            let m =
                SparseVec::try_new(15, mrow.row(0).0.to_vec(), vec![(); mrow.row_nnz(0)]).unwrap();
            for compl in [false, true] {
                let expect = dense_reference(&m, compl, &u, &b);
                for alg in [
                    Algorithm::Msa,
                    Algorithm::Hash,
                    Algorithm::Heap,
                    Algorithm::HeapDot,
                ] {
                    let got = masked_spgevm(alg, compl, sr, &m, &u, &b).unwrap();
                    assert_eq!(got, expect, "{alg:?} seed={seed} compl={compl}");
                }
                if !compl {
                    let got = masked_spgevm(Algorithm::Mca, compl, sr, &m, &u, &b).unwrap();
                    assert_eq!(got, expect, "Mca seed={seed}");
                }
                let got = masked_spgevm_csc(compl, sr, &m, &u, &bc).unwrap();
                assert_eq!(got, expect, "Inner seed={seed} compl={compl}");
            }
        }
    }

    #[test]
    fn dimension_errors() {
        let sr = PlusTimes::<f64>::new();
        let b = random_csr(4, 4, 1, 50);
        let u = SparseVec::try_new(5, vec![0], vec![1.0]).unwrap();
        let m = SparseVec::<()>::empty(4);
        assert!(masked_spgevm(Algorithm::Msa, false, sr, &m, &u, &b).is_err());
        let u = SparseVec::try_new(4, vec![0], vec![1.0]).unwrap();
        let m = SparseVec::<()>::empty(9);
        assert!(masked_spgevm(Algorithm::Msa, false, sr, &m, &u, &b).is_err());
    }

    #[test]
    fn unsupported_combinations() {
        let sr = PlusTimes::<f64>::new();
        let b = random_csr(4, 4, 1, 50);
        let u = SparseVec::try_new(4, vec![0], vec![1.0]).unwrap();
        let m = SparseVec::<()>::empty(4);
        assert!(masked_spgevm(Algorithm::Inner, false, sr, &m, &u, &b).is_err());
        // Complemented MCA is the same uniform error as every matrix path.
        assert_eq!(
            masked_spgevm(Algorithm::Mca, true, sr, &m, &u, &b).unwrap_err(),
            sparse::SparseError::Unsupported(crate::api::COMPLEMENT_UNSUPPORTED)
        );
    }
}
