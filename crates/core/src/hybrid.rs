//! Hybrid Masked SpGEMM — the paper's stated future work
//! ("hybrid algorithms that can use different accumulators in the same
//! Masked SpGEMM depending on the density of the mask and parts of matrices
//! being processed", Section 9), implemented here as an extension.
//!
//! For each output row the producer estimates the cost of every algorithm
//! family from quantities it can read in `O(nnz(A(i,:)))`:
//!
//! * `f`   — flops of the row (`Σ_k nnz(B(k,:))` over `A(i,k) ≠ 0`);
//! * `mm`  — `nnz(mask row)`;
//! * `u`   — `nnz(A(i,:))`;
//! * `d̄_B` — average column degree of `B` (precomputed once).
//!
//! Cost model (unit = one memory-touch-ish operation; constants calibrated
//! by the `hybrid_ablation` bench):
//!
//! | family | estimate | paper complexity it mirrors |
//! |--------|----------|------------------------------|
//! | MSA    | `mm + f + K_MSA` | `O(nnz(m) + flops)` + amortized dense-array traffic |
//! | MCA    | `u·mm + f` | `O(nnz(u)·nnz(m) + flops)` |
//! | Heap   | `mm + f·(1 + log₂(u+1))` | `O(nnz(m) + log nnz(u)·flops)` |
//! | Inner  | `mm·(u + d̄_B)` | `nnz(m)` dots of length `u + d̄_B` |
//!
//! The winner computes the row. The whole multiply therefore mixes
//! families across rows — dense hub rows can go to MSA while sparse
//! fringe rows use dots — which no fixed scheme can do.

use sparse::{CscMatrix, CsrMatrix, Idx, Semiring, SparseError};

use crate::algos::{inner, ninspect, HeapKernel, McaKernel, MsaKernel};
use crate::api::Phases;
use crate::exec::{max_mask_row_nnz, one_phase_driver, two_phase_driver, RowProducer};
use crate::kernel::RowKernel;

/// Which family the hybrid picked for a row (exposed for diagnostics).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RowChoice {
    /// Row skipped (empty mask row or empty `A` row).
    Empty,
    /// Masked sparse accumulator.
    Msa,
    /// Mask-compressed accumulator.
    Mca,
    /// Heap merge (`NInspect = 1`).
    Heap,
    /// Dot products against CSC columns.
    Inner,
}

/// Tunable constants of the per-row cost model.
#[derive(Copy, Clone, Debug)]
pub struct HybridConfig {
    /// Flat penalty charged to MSA for touching `O(ncols)` arrays
    /// (amortized TLB/cache cost of the dense accumulator).
    pub msa_overhead: f64,
    /// Multiplier on the heap's per-flop cost.
    pub heap_factor: f64,
    /// Multiplier on the pull-based dot cost (branchy sorted merges cost
    /// more per touched element than MSA's streaming scatter; measured by
    /// `engine`'s calibration).
    pub inner_factor: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            msa_overhead: 96.0,
            heap_factor: 1.0,
            inner_factor: 1.0,
        }
    }
}

/// Pick the cheapest family for one row under the cost model.
pub fn choose_row(
    cfg: &HybridConfig,
    mm: usize,
    u: usize,
    f: u64,
    avg_b_col_nnz: f64,
) -> RowChoice {
    if mm == 0 || u == 0 || f == 0 {
        return RowChoice::Empty;
    }
    let (mm_f, u_f, f_f) = (mm as f64, u as f64, f as f64);
    let msa = mm_f + f_f + cfg.msa_overhead;
    let mca = u_f * mm_f + f_f;
    let heap = mm_f + cfg.heap_factor * f_f * (1.0 + (u_f + 1.0).log2());
    let dot = cfg.inner_factor * mm_f * (u_f + avg_b_col_nnz);
    let mut best = (RowChoice::Msa, msa);
    for cand in [
        (RowChoice::Mca, mca),
        (RowChoice::Heap, heap),
        (RowChoice::Inner, dot),
    ] {
        if cand.1 < best.1 {
            best = cand;
        }
    }
    best.0
}

struct HybridProducer<'m, S: Semiring, MT>
where
    S::C: Default,
{
    sr: S,
    cfg: HybridConfig,
    mask: &'m CsrMatrix<MT>,
    a: &'m CsrMatrix<S::A>,
    b: &'m CsrMatrix<S::B>,
    b_csc: &'m CscMatrix<S::B>,
    avg_b_col_nnz: f64,
    msa: MsaKernel<S>,
    mca: McaKernel<S>,
    heap: HeapKernel<S, { ninspect::ONE }>,
}

impl<'m, S, MT> HybridProducer<'m, S, MT>
where
    S: Semiring,
    S::C: Default,
    MT: Copy + Sync,
{
    fn choice(&self, i: usize) -> RowChoice {
        let mm = self.mask.row_nnz(i);
        let (acols, _) = self.a.row(i);
        let bptr = self.b.rowptr();
        let f: u64 = acols
            .iter()
            .map(|&k| (bptr[k as usize + 1] - bptr[k as usize]) as u64)
            .sum();
        choose_row(&self.cfg, mm, acols.len(), f, self.avg_b_col_nnz)
    }
}

impl<'m, S, MT> RowProducer<S::C> for HybridProducer<'m, S, MT>
where
    S: Semiring,
    S::C: Default,
    MT: Copy + Sync,
{
    fn compute_row(&mut self, i: usize, out_cols: &mut Vec<Idx>, out_vals: &mut Vec<S::C>) {
        let (mc, _) = self.mask.row(i);
        let (ac, av) = self.a.row(i);
        match self.choice(i) {
            RowChoice::Empty => {}
            RowChoice::Msa => self
                .msa
                .compute_row(self.sr, mc, ac, av, self.b, out_cols, out_vals),
            RowChoice::Mca => self
                .mca
                .compute_row(self.sr, mc, ac, av, self.b, out_cols, out_vals),
            RowChoice::Heap => self
                .heap
                .compute_row(self.sr, mc, ac, av, self.b, out_cols, out_vals),
            RowChoice::Inner => {
                inner::inner_row(self.sr, mc, ac, av, self.b_csc, out_cols, out_vals)
            }
        }
    }

    fn count_row(&mut self, i: usize) -> usize {
        let (mc, _) = self.mask.row(i);
        let (ac, av) = self.a.row(i);
        match self.choice(i) {
            RowChoice::Empty => 0,
            RowChoice::Msa => self.msa.count_row(mc, ac, av, self.b),
            RowChoice::Mca => self.mca.count_row(mc, ac, av, self.b),
            RowChoice::Heap => self.heap.count_row(mc, ac, av, self.b),
            RowChoice::Inner => inner::inner_count_row::<S>(mc, ac, self.b_csc),
        }
    }
}

/// Adaptive Masked SpGEMM choosing an algorithm per output row
/// (plain masks only; for the complement use a fixed scheme).
pub fn hybrid_masked_spgemm<S, MT>(
    phases: Phases,
    cfg: HybridConfig,
    sr: S,
    mask: &CsrMatrix<MT>,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
    b_csc: &CscMatrix<S::B>,
) -> Result<CsrMatrix<S::C>, SparseError>
where
    S: Semiring,
    S::C: Default + Sync,
    MT: Copy + Sync,
{
    if a.ncols() != b.nrows() || mask.shape() != (a.nrows(), b.ncols()) {
        return Err(SparseError::DimMismatch {
            op: "hybrid_masked_spgemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if b_csc.shape() != b.shape() {
        return Err(SparseError::DimMismatch {
            op: "hybrid_masked_spgemm (CSC copy)",
            lhs: b_csc.shape(),
            rhs: b.shape(),
        });
    }
    let avg_b_col_nnz = if b.ncols() > 0 {
        b.nnz() as f64 / b.ncols() as f64
    } else {
        0.0
    };
    let max_m = max_mask_row_nnz(mask);
    let ncols = b.ncols();
    let make = || HybridProducer {
        sr,
        cfg,
        mask,
        a,
        b,
        b_csc,
        avg_b_col_nnz,
        msa: MsaKernel::new(ncols, max_m),
        mca: McaKernel::new(ncols, max_m),
        heap: HeapKernel::new(ncols, max_m),
    };
    Ok(match phases {
        Phases::One => one_phase_driver(a.nrows(), ncols, make),
        Phases::Two => two_phase_driver(a.nrows(), ncols, make),
    })
}

/// Per-row choices for a whole multiply (diagnostics / ablation).
pub fn hybrid_choices<MT, A, B>(
    cfg: HybridConfig,
    mask: &CsrMatrix<MT>,
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
) -> Vec<RowChoice> {
    let avg = if b.ncols() > 0 {
        b.nnz() as f64 / b.ncols() as f64
    } else {
        0.0
    };
    let bptr = b.rowptr();
    (0..a.nrows())
        .map(|i| {
            let (ac, _) = a.row(i);
            let f: u64 = ac
                .iter()
                .map(|&k| (bptr[k as usize + 1] - bptr[k as usize]) as u64)
                .sum();
            choose_row(&cfg, mask.row_nnz(i), ac.len(), f, avg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::random_csr;
    use sparse::dense::reference_masked_spgemm;
    use sparse::PlusTimes;

    #[test]
    fn matches_reference_both_phases() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..4u64 {
            let a = random_csr(40, 35, seed + 1, 20);
            let b = random_csr(35, 45, seed + 2, 20);
            let m = random_csr(40, 45, seed + 3, 30).pattern();
            let bc = CscMatrix::from_csr(&b);
            let expect = reference_masked_spgemm(sr, &m, false, &a, &b);
            for ph in Phases::ALL {
                let got =
                    hybrid_masked_spgemm(ph, HybridConfig::default(), sr, &m, &a, &b, &bc).unwrap();
                assert_eq!(got, expect, "seed={seed} {ph:?}");
            }
        }
    }

    #[test]
    fn cost_model_prefers_dot_for_tiny_masks() {
        let cfg = HybridConfig::default();
        // Huge row flops, one mask entry: dot wins.
        assert_eq!(choose_row(&cfg, 1, 4, 100_000, 8.0), RowChoice::Inner);
        // Empty cases.
        assert_eq!(choose_row(&cfg, 0, 4, 100, 8.0), RowChoice::Empty);
        assert_eq!(choose_row(&cfg, 4, 0, 100, 8.0), RowChoice::Empty);
        assert_eq!(choose_row(&cfg, 4, 4, 0, 8.0), RowChoice::Empty);
    }

    #[test]
    fn cost_model_prefers_accumulators_for_balanced_rows() {
        let cfg = HybridConfig::default();
        // Many mask entries and moderate flops: MSA or MCA, never dot.
        let c = choose_row(&cfg, 500, 50, 2_000, 64.0);
        assert!(matches!(c, RowChoice::Msa | RowChoice::Mca), "{c:?}");
    }

    #[test]
    fn choices_vary_across_skewed_rows() {
        // A graph with hub rows and fringe rows should not pick one family
        // for everything when the mask is uniform but inputs are skewed.
        let adj = {
            let mut coo = sparse::CooMatrix::new(64, 64);
            // hub: row 0 connects everywhere
            for j in 1..64u32 {
                coo.push(0, j, 1.0);
                coo.push(j, 0, 1.0);
            }
            // fringe chain
            for j in 1..63u32 {
                coo.push(j, j + 1, 1.0);
                coo.push(j + 1, j, 1.0);
            }
            coo.to_csr()
        };
        let mask = random_csr(64, 64, 9, 40).pattern();
        let choices = hybrid_choices(HybridConfig::default(), &mask, &adj, &adj);
        let distinct: std::collections::HashSet<_> =
            choices.iter().filter(|c| **c != RowChoice::Empty).collect();
        assert!(distinct.len() >= 2, "hybrid degenerated to {distinct:?}");
    }

    #[test]
    fn dimension_errors() {
        let sr = PlusTimes::<f64>::new();
        let a = CsrMatrix::<f64>::empty(2, 3);
        let b = CsrMatrix::<f64>::empty(4, 2);
        let bc = CscMatrix::from_csr(&b);
        let m = CsrMatrix::<()>::empty(2, 2);
        assert!(
            hybrid_masked_spgemm(Phases::One, HybridConfig::default(), sr, &m, &a, &b, &bc)
                .is_err()
        );
    }
}
