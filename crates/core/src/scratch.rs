//! Reusable kernel scratch and serial drivers for batch execution.
//!
//! The parallel drivers in [`crate::exec`] create fresh accumulator scratch
//! for every multiply. That is the right call for one large product, but an
//! engine executing *many independent* masked multiplies concurrently (one
//! worker per product) wants the opposite: each worker runs its products
//! serially and keeps one set of accumulators alive across all of them, so
//! repeated multiplies stop paying the `O(ncols)` (MSA) or
//! `O(max mask row)` (hash/MCA) allocation and page-touch cost per call.
//!
//! [`KernelScratch`] owns one [`RowKernel`] and regrows it only when a
//! product needs more capacity than any earlier one (accumulators are
//! generation-stamped, so a larger-than-necessary accumulator is valid for
//! any smaller product). [`ScratchSet`] bundles one scratch per push
//! algorithm and dispatches on [`Algorithm`] at runtime, which is what the
//! `engine` crate's batch workers hold.

use std::marker::PhantomData;
use std::sync::Mutex;

use sparse::{CscMatrix, CsrMatrix, Idx, Semiring, SparseError, SparseVec};

use crate::algos::{inner, ninspect, HashKernel, HeapKernel, McaKernel, MsaKernel};
use crate::api::Algorithm;
use crate::exec::{check_dims, max_mask_row_nnz};
use crate::kernel::RowKernel;

/// Per-worker state for one parallel region, keyed by the pool's stable
/// worker indices ([`rayon::current_thread_index`]).
///
/// The pool's chunk-claiming scheduler hands a worker many chunks per
/// call; state that is expensive to build (a [`RowKernel`]'s `O(ncols)`
/// accumulator) should be built once per *worker*, not once per chunk.
/// `WorkerLocal` holds one lazily-initialized slot per worker plus one for
/// the initiating thread (which participates in claiming but has no worker
/// index). Slots are `Mutex`ed only to satisfy the borrow checker: a slot
/// is touched by exactly one thread, so the lock is uncontended; should a
/// stolen nested job ever re-enter a held slot, `with` falls back to a
/// transient value rather than deadlocking.
pub struct WorkerLocal<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T> Default for WorkerLocal<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkerLocal<T> {
    /// One slot per worker at the current pool width, plus the caller's.
    pub fn new() -> Self {
        let slots = rayon::current_num_threads().max(1) + 1;
        WorkerLocal {
            slots: (0..slots).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Run `body` on this thread's slot, building it with `make` on first
    /// use. Falls back to a transient `make()` value if the slot is
    /// somehow re-entered (see type docs).
    pub fn with<R>(&self, make: impl FnOnce() -> T, body: impl FnOnce(&mut T) -> R) -> R {
        let last = self.slots.len() - 1;
        let idx = match rayon::current_thread_index() {
            Some(i) if i < last => i,
            Some(i) => i % last.max(1),
            None => last,
        };
        match self.slots[idx].try_lock() {
            Ok(mut slot) => body(slot.get_or_insert_with(make)),
            Err(_) => body(&mut make()),
        }
    }

    /// How many slots were actually initialized (diagnostics/tests).
    pub fn initialized(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.try_lock().map(|g| g.is_some()).unwrap_or(true))
            .count()
    }
}

/// One reusable row kernel, regrown monotonically.
pub struct KernelScratch<S: Semiring, K: RowKernel<S>> {
    kernel: Option<K>,
    ncols_cap: usize,
    max_mask_cap: usize,
    _semiring: PhantomData<S>,
}

impl<S: Semiring, K: RowKernel<S>> Default for KernelScratch<S, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Semiring, K: RowKernel<S>> KernelScratch<S, K> {
    /// Empty scratch; the kernel is built on first use.
    pub fn new() -> Self {
        KernelScratch {
            kernel: None,
            ncols_cap: 0,
            max_mask_cap: 0,
            _semiring: PhantomData,
        }
    }

    /// Borrow a kernel valid for `ncols` output columns and mask rows of up
    /// to `max_mask_row_nnz` entries, rebuilding (at the running maximum of
    /// all requested sizes) only when the current kernel is too small.
    pub fn acquire(&mut self, ncols: usize, max_mask_row_nnz: usize) -> &mut K {
        if self.kernel.is_none() || ncols > self.ncols_cap || max_mask_row_nnz > self.max_mask_cap {
            self.ncols_cap = self.ncols_cap.max(ncols);
            self.max_mask_cap = self.max_mask_cap.max(max_mask_row_nnz);
            self.kernel = Some(K::new(self.ncols_cap, self.max_mask_cap));
        }
        self.kernel.as_mut().expect("kernel built above")
    }
}

/// Serial push-based masked SpGEMM reusing caller-provided scratch.
///
/// Row-by-row single-pass execution with exact output assembly (rows are
/// appended in order, so no transient copy is needed). Intended for batch
/// workers that parallelize *across* products.
///
/// A complemented mask on a kernel without complement support (MCA) is a
/// uniform [`SparseError::Unsupported`], never a panic.
pub fn masked_spgemm_serial<S, K, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
    scratch: &mut KernelScratch<S, K>,
) -> Result<CsrMatrix<S::C>, SparseError>
where
    S: Semiring,
    K: RowKernel<S>,
    MT: Copy + Sync,
{
    if complemented && !K::SUPPORTS_COMPLEMENT {
        return Err(SparseError::Unsupported(crate::api::COMPLEMENT_UNSUPPORTED));
    }
    check_dims(mask, a, b.nrows(), b.ncols());
    let kernel = scratch.acquire(b.ncols(), max_mask_row_nnz(mask));
    let nrows = a.nrows();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut cols: Vec<Idx> = Vec::new();
    let mut vals: Vec<S::C> = Vec::new();
    for i in 0..nrows {
        let (mc, _) = mask.row(i);
        let (ac, av) = a.row(i);
        if complemented {
            kernel.compute_row_complemented(sr, mc, ac, av, b, &mut cols, &mut vals);
        } else {
            kernel.compute_row(sr, mc, ac, av, b, &mut cols, &mut vals);
        }
        rowptr.push(cols.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        nrows,
        b.ncols(),
        rowptr,
        cols,
        vals,
    ))
}

/// Serial pull-based (`Inner`) masked SpGEMM against a CSC `B`.
pub fn masked_spgemm_serial_csc<S, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CscMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    MT: Copy + Sync,
{
    check_dims(mask, a, b.nrows(), b.ncols());
    let nrows = a.nrows();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut cols: Vec<Idx> = Vec::new();
    let mut vals: Vec<S::C> = Vec::new();
    for i in 0..nrows {
        let (mc, _) = mask.row(i);
        let (ac, av) = a.row(i);
        if complemented {
            inner::inner_row_complemented(sr, mc, ac, av, b, &mut cols, &mut vals);
        } else {
            inner::inner_row(sr, mc, ac, av, b, &mut cols, &mut vals);
        }
        rowptr.push(cols.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, b.ncols(), rowptr, cols, vals)
}

/// One reusable scratch per algorithm family, dispatched at runtime.
pub struct ScratchSet<S: Semiring>
where
    S::C: Default,
{
    msa: KernelScratch<S, MsaKernel<S>>,
    hash: KernelScratch<S, HashKernel<S>>,
    mca: KernelScratch<S, McaKernel<S>>,
    heap: KernelScratch<S, HeapKernel<S, { ninspect::ONE }>>,
    heap_dot: KernelScratch<S, HeapKernel<S, { ninspect::INF }>>,
}

impl<S: Semiring> Default for ScratchSet<S>
where
    S::C: Default,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Semiring> ScratchSet<S>
where
    S::C: Default,
{
    /// Empty scratch set; kernels are built on first use per family.
    pub fn new() -> Self {
        ScratchSet {
            msa: KernelScratch::new(),
            hash: KernelScratch::new(),
            mca: KernelScratch::new(),
            heap: KernelScratch::new(),
            heap_dot: KernelScratch::new(),
        }
    }

    /// Run one masked SpGEMM serially with this set's reused scratch.
    ///
    /// `b_csc` is consulted only by [`Algorithm::Inner`]; passing `None`
    /// converts on the fly (callers with a cached CSC should pass it).
    #[allow(clippy::too_many_arguments)]
    pub fn run<MT>(
        &mut self,
        algorithm: Algorithm,
        complemented: bool,
        sr: S,
        mask: &CsrMatrix<MT>,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
        b_csc: Option<&CscMatrix<S::B>>,
    ) -> Result<CsrMatrix<S::C>, SparseError>
    where
        MT: Copy + Sync,
        S::B: Clone,
    {
        algorithm.check_complement_support(complemented)?;
        match algorithm {
            Algorithm::Msa => masked_spgemm_serial(sr, mask, complemented, a, b, &mut self.msa),
            Algorithm::Hash => masked_spgemm_serial(sr, mask, complemented, a, b, &mut self.hash),
            Algorithm::Mca => masked_spgemm_serial(sr, mask, complemented, a, b, &mut self.mca),
            Algorithm::Heap => masked_spgemm_serial(sr, mask, complemented, a, b, &mut self.heap),
            Algorithm::HeapDot => {
                masked_spgemm_serial(sr, mask, complemented, a, b, &mut self.heap_dot)
            }
            Algorithm::Inner => Ok(match b_csc {
                Some(csc) => masked_spgemm_serial_csc(sr, mask, complemented, a, csc),
                None => {
                    let csc = CscMatrix::from_csr(b);
                    masked_spgemm_serial_csc(sr, mask, complemented, a, &csc)
                }
            }),
        }
    }

    /// Run one masked SpGEVM `v = m ⊙ (u·B)` with this set's reused
    /// accumulators — the vector counterpart of [`ScratchSet::run`].
    ///
    /// Where [`crate::masked_spgevm`] builds a fresh `O(ncols)` accumulator
    /// per call, this borrows the family's [`KernelScratch`] (regrown
    /// monotonically), so frontier loops that issue one product per BFS
    /// level stop paying the allocation and page-touch cost per level.
    /// [`Algorithm::Inner`] carries no accumulator (dots write straight to
    /// the output); it runs through the CSC path (`b_csc`, converted on the
    /// fly when absent) exactly like the matrix driver.
    #[allow(clippy::too_many_arguments)]
    pub fn run_vec<MT>(
        &mut self,
        algorithm: Algorithm,
        complemented: bool,
        sr: S,
        mask: &SparseVec<MT>,
        u: &SparseVec<S::A>,
        b: &CsrMatrix<S::B>,
        b_csc: Option<&CscMatrix<S::B>>,
    ) -> Result<SparseVec<S::C>, SparseError>
    where
        MT: Copy,
        S::B: Clone,
    {
        if u.dim() != b.nrows() {
            return Err(SparseError::DimMismatch {
                op: "ScratchSet::run_vec (u·B)",
                lhs: (1, u.dim()),
                rhs: b.shape(),
            });
        }
        if mask.dim() != b.ncols() {
            return Err(SparseError::DimMismatch {
                op: "ScratchSet::run_vec (mask)",
                lhs: (1, mask.dim()),
                rhs: (1, b.ncols()),
            });
        }
        algorithm.check_complement_support(complemented)?;
        if algorithm == Algorithm::Inner {
            return Ok(match b_csc {
                Some(csc) => crate::spgevm::masked_spgevm_csc(complemented, sr, mask, u, csc)?,
                None => {
                    let csc = CscMatrix::from_csr(b);
                    crate::spgevm::masked_spgevm_csc(complemented, sr, mask, u, &csc)?
                }
            });
        }
        let (mcols, ucols, uvals) = (mask.indices(), u.indices(), u.values());
        let mut out_cols = Vec::new();
        let mut out_vals = Vec::new();
        macro_rules! run_kernel {
            ($scratch:expr) => {{
                let k = $scratch.acquire(b.ncols(), mcols.len());
                if complemented {
                    k.compute_row_complemented(
                        sr,
                        mcols,
                        ucols,
                        uvals,
                        b,
                        &mut out_cols,
                        &mut out_vals,
                    );
                } else {
                    k.compute_row(sr, mcols, ucols, uvals, b, &mut out_cols, &mut out_vals);
                }
            }};
        }
        match algorithm {
            Algorithm::Msa => run_kernel!(self.msa),
            Algorithm::Hash => run_kernel!(self.hash),
            Algorithm::Mca => run_kernel!(self.mca),
            Algorithm::Heap => run_kernel!(self.heap),
            Algorithm::HeapDot => run_kernel!(self.heap_dot),
            Algorithm::Inner => unreachable!("handled above"),
        }
        SparseVec::try_new(b.ncols(), out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{masked_spgemm, Phases};
    use crate::kernel::testutil::random_csr;
    use sparse::PlusTimes;

    #[test]
    fn serial_matches_parallel_drivers_with_reused_scratch() {
        let sr = PlusTimes::<f64>::new();
        let mut set = ScratchSet::new();
        // Deliberately vary dimensions so the scratch is reused both after
        // growing and after shrinking requests.
        for (n, k, m, seed) in [
            (30usize, 25usize, 35usize, 1u64),
            (50, 40, 60, 2),
            (10, 10, 10, 3),
            (45, 45, 45, 4),
        ] {
            let a = random_csr(n, k, seed * 13 + 1, 25);
            let b = random_csr(k, m, seed * 13 + 2, 25);
            let mask = random_csr(n, m, seed * 13 + 3, 35).pattern();
            let bc = CscMatrix::from_csr(&b);
            for compl in [false, true] {
                for alg in Algorithm::ALL {
                    if compl && !alg.supports_complement() {
                        assert!(set.run(alg, compl, sr, &mask, &a, &b, Some(&bc)).is_err());
                        continue;
                    }
                    let expect = masked_spgemm(alg, Phases::One, compl, sr, &mask, &a, &b).unwrap();
                    let got = set.run(alg, compl, sr, &mask, &a, &b, Some(&bc)).unwrap();
                    assert_eq!(got, expect, "{alg:?} compl={compl} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn scratch_regrows_monotonically() {
        let mut s: KernelScratch<PlusTimes<f64>, MsaKernel<PlusTimes<f64>>> = KernelScratch::new();
        s.acquire(100, 10);
        assert_eq!((s.ncols_cap, s.max_mask_cap), (100, 10));
        s.acquire(50, 5); // smaller: reuse, caps unchanged
        assert_eq!((s.ncols_cap, s.max_mask_cap), (100, 10));
        s.acquire(200, 3); // one dimension grows
        assert_eq!((s.ncols_cap, s.max_mask_cap), (200, 10));
    }

    #[test]
    fn worker_local_builds_at_most_one_slot_per_thread() {
        use std::collections::HashSet;
        use std::sync::Mutex;

        let pool = crate::exec::thread_pool(3);
        pool.install(|| {
            let local: WorkerLocal<u64> = WorkerLocal::new();
            let seen = Mutex::new(HashSet::new());
            let counter = std::sync::atomic::AtomicU64::new(0);
            use rayon::prelude::*;
            (0..64usize).into_par_iter().for_each(|_| {
                local.with(
                    || counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                    |v| {
                        seen.lock().unwrap().insert(*v);
                    },
                );
            });
            // At most one distinct value per participant (3 workers +
            // the initiating thread), each reused across many chunks.
            let distinct = seen.lock().unwrap().len();
            assert!(distinct <= 4, "built {distinct} producers for 4 slots");
            assert!(local.initialized() <= 4);
        });
    }

    #[test]
    fn worker_local_serial_uses_single_slot() {
        let local: WorkerLocal<usize> = WorkerLocal::new();
        for _ in 0..10 {
            local.with(|| 7, |v| *v += 1);
        }
        assert_eq!(local.initialized(), 1);
    }

    #[test]
    fn inner_without_cached_csc_converts() {
        let sr = PlusTimes::<f64>::new();
        let a = random_csr(12, 12, 5, 30);
        let b = random_csr(12, 12, 6, 30);
        let mask = random_csr(12, 12, 7, 40).pattern();
        let mut set = ScratchSet::new();
        let with = set
            .run(Algorithm::Inner, false, sr, &mask, &a, &b, None)
            .unwrap();
        let expect =
            masked_spgemm(Algorithm::Inner, Phases::One, false, sr, &mask, &a, &b).unwrap();
        assert_eq!(with, expect);
    }
}
