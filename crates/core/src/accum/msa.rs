//! Masked Sparse Accumulator (Section 5.2).
//!
//! Two dense arrays of length `ncols`: `values` and `states`. The state
//! automaton (paper Figure 3) is `NOTALLOWED → ALLOWED → SET`, with
//! `remove` resetting to `NOTALLOWED`. Here the reset is implicit: states
//! are generation-stamped, so advancing the generation invalidates every
//! entry at once.

use sparse::Idx;

/// State encoding: `states[j] == 2·gen` ⇒ ALLOWED, `2·gen + 1` ⇒ SET,
/// anything else ⇒ NOTALLOWED (for the current generation).
#[derive(Debug)]
pub struct Msa<V> {
    values: Vec<V>,
    states: Vec<u32>,
    gen: u32,
}

impl<V: Copy + Default> Msa<V> {
    /// Accumulator for output rows with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        Msa {
            values: vec![V::default(); ncols],
            states: vec![0u32; ncols],
            gen: 0,
        }
    }

    /// Begin a new output row: `O(1)` except on generation wrap-around.
    #[inline]
    pub fn reset(&mut self) {
        if self.gen >= u32::MAX / 2 - 1 {
            self.states.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    #[inline(always)]
    fn allowed_stamp(&self) -> u32 {
        2 * self.gen
    }

    #[inline(always)]
    fn set_stamp(&self) -> u32 {
        2 * self.gen + 1
    }

    /// Mark `key` as permitted by the mask (NOTALLOWED → ALLOWED).
    /// A no-op on SET keys — the automaton has no SET → ALLOWED edge
    /// (Figure 3), so a repeated mask entry must not discard a value.
    #[inline(always)]
    pub fn set_allowed(&mut self, key: Idx) {
        let k = key as usize;
        if self.states[k] != self.set_stamp() {
            self.states[k] = self.allowed_stamp();
        }
    }

    /// Insert a product for `key`. The value is produced by `make` only if
    /// the key is allowed (the paper's lazy-lambda argument); subsequent
    /// inserts combine with `add`.
    #[inline(always)]
    pub fn insert_with(&mut self, key: Idx, make: impl FnOnce() -> V, add: impl FnOnce(V, V) -> V) {
        let k = key as usize;
        let s = self.states[k];
        if s == self.set_stamp() {
            self.values[k] = add(self.values[k], make());
        } else if s == self.allowed_stamp() {
            self.values[k] = make();
            self.states[k] = self.set_stamp();
        }
        // NOTALLOWED: discard without evaluating `make` further.
    }

    /// True if at least one product was inserted for `key` this row.
    #[inline(always)]
    pub fn is_set(&self, key: Idx) -> bool {
        self.states[key as usize] == self.set_stamp()
    }

    /// Pattern-only insert for the symbolic phase: transition
    /// ALLOWED → SET without touching values. Returns `true` on the first
    /// transition (i.e., this key contributes one output entry).
    #[inline(always)]
    pub fn mark_set(&mut self, key: Idx) -> bool {
        let k = key as usize;
        if self.states[k] == self.allowed_stamp() {
            self.states[k] = self.set_stamp();
            true
        } else {
            false
        }
    }

    /// Accumulated value for `key` if any product was inserted.
    /// (The generation reset makes the explicit per-key remove of the paper
    /// unnecessary; `reset` removes everything at once.)
    #[inline(always)]
    pub fn remove(&self, key: Idx) -> Option<V> {
        if self.is_set(key) {
            Some(self.values[key as usize])
        } else {
            None
        }
    }
}

/// Complemented-mask MSA (Section 5.2, last paragraph): the default state is
/// `ALLOWED`; `set_not_allowed` marks mask entries; an `inserted` list
/// records SET keys so the gather step visits only them.
#[derive(Debug)]
pub struct MsaComplement<V> {
    values: Vec<V>,
    states: Vec<u32>,
    gen: u32,
    inserted: Vec<Idx>,
}

impl<V: Copy + Default> MsaComplement<V> {
    /// Accumulator for output rows with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        MsaComplement {
            values: vec![V::default(); ncols],
            states: vec![0u32; ncols],
            gen: 0,
            inserted: Vec::new(),
        }
    }

    /// Begin a new output row.
    #[inline]
    pub fn reset(&mut self) {
        if self.gen >= u32::MAX / 2 - 1 {
            self.states.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.inserted.clear();
    }

    #[inline(always)]
    fn notallowed_stamp(&self) -> u32 {
        2 * self.gen
    }

    #[inline(always)]
    fn set_stamp(&self) -> u32 {
        2 * self.gen + 1
    }

    /// Mark `key` as masked out (mask entries forbid output under ¬M).
    #[inline(always)]
    pub fn set_not_allowed(&mut self, key: Idx) {
        self.states[key as usize] = self.notallowed_stamp();
    }

    /// Insert a product for `key` unless the key is masked out.
    #[inline(always)]
    pub fn insert_with(&mut self, key: Idx, make: impl FnOnce() -> V, add: impl FnOnce(V, V) -> V) {
        let k = key as usize;
        let s = self.states[k];
        if s == self.set_stamp() {
            self.values[k] = add(self.values[k], make());
        } else if s != self.notallowed_stamp() {
            self.values[k] = make();
            self.states[k] = self.set_stamp();
            self.inserted.push(key);
        }
    }

    /// Pattern-only insert for the symbolic phase (complemented mask).
    #[inline(always)]
    pub fn mark_set(&mut self, key: Idx) {
        let k = key as usize;
        let s = self.states[k];
        if s != self.set_stamp() && s != self.notallowed_stamp() {
            self.states[k] = self.set_stamp();
            self.inserted.push(key);
        }
    }

    /// Keys inserted this row, in insertion order (not sorted).
    #[inline]
    pub fn inserted(&self) -> &[Idx] {
        &self.inserted
    }

    /// Sort the inserted-key list (output rows must be emitted in column
    /// order) and return it.
    #[inline]
    pub fn sorted_inserted(&mut self) -> &[Idx] {
        self.inserted.sort_unstable();
        &self.inserted
    }

    /// Accumulated value for `key` (valid only for keys in `inserted`).
    #[inline(always)]
    pub fn value(&self, key: Idx) -> V {
        debug_assert_eq!(self.states[key as usize], self.set_stamp());
        self.values[key as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msa_state_machine() {
        let mut m = Msa::<f64>::new(8);
        m.reset();
        // NOTALLOWED by default: insert discarded, make not evaluated.
        let mut evaluated = false;
        m.insert_with(
            3,
            || {
                evaluated = true;
                1.0
            },
            |a, b| a + b,
        );
        assert!(
            !evaluated,
            "lazy value must not be evaluated when masked out"
        );
        assert_eq!(m.remove(3), None);

        m.set_allowed(3);
        assert_eq!(m.remove(3), None, "ALLOWED but nothing inserted yet");
        m.insert_with(3, || 2.0, |a, b| a + b);
        m.insert_with(3, || 5.0, |a, b| a + b);
        assert_eq!(m.remove(3), Some(7.0));
    }

    #[test]
    fn msa_reset_invalidates() {
        let mut m = Msa::<i64>::new(4);
        m.reset();
        m.set_allowed(0);
        m.insert_with(0, || 9, |a, b| a + b);
        assert_eq!(m.remove(0), Some(9));
        m.reset();
        assert_eq!(m.remove(0), None);
        // A stale SET stamp from the previous generation must not read as
        // ALLOWED in the new one.
        m.insert_with(0, || 1, |a, b| a + b);
        assert_eq!(m.remove(0), None);
    }

    #[test]
    fn msa_generation_wraparound() {
        let mut m = Msa::<i64>::new(2);
        m.gen = u32::MAX / 2 - 1; // force the wrap path
        m.reset();
        assert_eq!(m.gen, 1);
        m.set_allowed(1);
        m.insert_with(1, || 5, |a, b| a + b);
        assert_eq!(m.remove(1), Some(5));
    }

    #[test]
    fn complement_default_allowed() {
        let mut m = MsaComplement::<f64>::new(8);
        m.reset();
        m.set_not_allowed(2);
        m.insert_with(2, || 1.0, |a, b| a + b);
        m.insert_with(5, || 2.0, |a, b| a + b);
        m.insert_with(5, || 3.0, |a, b| a + b);
        m.insert_with(0, || 4.0, |a, b| a + b);
        assert_eq!(m.sorted_inserted(), &[0, 5]);
        assert_eq!(m.value(5), 5.0);
        assert_eq!(m.value(0), 4.0);
    }

    #[test]
    fn complement_reset_clears_inserted() {
        let mut m = MsaComplement::<i32>::new(4);
        m.reset();
        m.insert_with(1, || 1, |a, b| a + b);
        assert_eq!(m.inserted().len(), 1);
        m.reset();
        assert!(m.inserted().is_empty());
        // Stale NOTALLOWED stamps must not leak into the new row.
        m.insert_with(1, || 2, |a, b| a + b);
        assert_eq!(m.value(1), 2);
    }
}
