//! Accumulators — the data structures that merge scaled rows (Section 5.1).
//!
//! A masked accumulator distinguishes three entry states:
//!
//! * `NOTALLOWED` — masked out; products for this key are discarded;
//! * `ALLOWED` — present in the mask but no product inserted yet;
//! * `SET` — at least one product inserted; holds the running value.
//!
//! The interface of the paper (`setAllowed` / `insert` / `remove`) is
//! realized by [`Msa`], [`HashAccum`] and [`Mca`]; complemented-mask
//! variants ([`MsaComplement`], [`HashComplement`]) flip the default state
//! to `ALLOWED` and track inserted keys so the gather step need not scan
//! the whole array.
//!
//! All accumulators are **generation-stamped**: preparing for the next
//! output row is an `O(1)` counter bump rather than an `O(size)` clear,
//! which is what makes reusing one accumulator across millions of rows
//! viable.

mod hash;
mod mca;
mod msa;

pub use hash::{HashAccum, HashComplement};
pub use mca::Mca;
pub use msa::{Msa, MsaComplement};
