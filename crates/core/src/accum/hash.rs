//! Hash accumulator (Section 5.3).
//!
//! An open-addressing hash table with linear probing replaces MSA's dense
//! arrays: initialization and footprint scale with `nnz(mask row)` instead
//! of `ncols`, trading cache misses for hashing overhead. As in the paper,
//! the table never resizes in the plain-mask case — the number of allowed
//! keys is known (`nnz(m)`) — and uses a load factor of 0.25 to keep probe
//! chains short. Value and state live in one slot so a lookup touches a
//! single cache line.

use sparse::Idx;

const EMPTY_STAMP: u32 = 0;

#[derive(Clone, Copy, Debug)]
struct Slot<V> {
    key: Idx,
    /// `2·gen` ⇒ ALLOWED, `2·gen + 1` ⇒ SET, anything else ⇒ empty slot.
    stamp: u32,
    val: V,
}

#[inline(always)]
fn hash_key(key: Idx) -> usize {
    // Fibonacci multiplicative hashing; the table masks to its capacity.
    (key.wrapping_mul(0x9E37_79B9)) as usize
}

/// Next power of two ≥ `4·n` (load factor 0.25), with a small floor.
#[inline]
pub(crate) fn table_capacity(n: usize) -> usize {
    (4 * n).next_power_of_two().max(16)
}

/// Plain-mask hash accumulator.
#[derive(Debug)]
pub struct HashAccum<V> {
    slots: Vec<Slot<V>>,
    /// Capacity mask for the current row (capacity - 1).
    cap_mask: usize,
    gen: u32,
}

impl<V: Copy + Default> HashAccum<V> {
    /// Accumulator able to hold up to `max_mask_row_nnz` allowed keys.
    pub fn new(max_mask_row_nnz: usize) -> Self {
        let cap = table_capacity(max_mask_row_nnz);
        HashAccum {
            slots: vec![
                Slot {
                    key: 0,
                    stamp: EMPTY_STAMP,
                    val: V::default(),
                };
                cap
            ],
            cap_mask: cap - 1,
            gen: 0,
        }
    }

    /// Begin a new output row whose mask has `mask_row_nnz` entries. Only a
    /// prefix of the table sized for this row is probed, improving locality
    /// for sparse rows.
    #[inline]
    pub fn reset(&mut self, mask_row_nnz: usize) {
        if self.gen >= u32::MAX / 2 - 1 {
            for s in &mut self.slots {
                s.stamp = EMPTY_STAMP;
            }
            self.gen = 0;
        }
        self.gen += 1;
        let cap = table_capacity(mask_row_nnz).min(self.slots.len());
        self.cap_mask = cap - 1;
    }

    #[inline(always)]
    fn allowed_stamp(&self) -> u32 {
        2 * self.gen
    }

    #[inline(always)]
    fn set_stamp(&self) -> u32 {
        2 * self.gen + 1
    }

    /// Probe for `key`; returns the slot index holding it (current
    /// generation) or the first empty slot.
    #[inline(always)]
    fn probe(&self, key: Idx) -> usize {
        let (a, s) = (self.allowed_stamp(), self.set_stamp());
        let mut i = hash_key(key) & self.cap_mask;
        loop {
            let slot = &self.slots[i];
            let live = slot.stamp == a || slot.stamp == s;
            if !live || slot.key == key {
                return i;
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    /// Mark `key` as permitted by the mask.
    #[inline(always)]
    pub fn set_allowed(&mut self, key: Idx) {
        let i = self.probe(key);
        let a = self.allowed_stamp();
        let slot = &mut self.slots[i];
        if slot.stamp != a && slot.stamp != a + 1 {
            slot.key = key;
            slot.stamp = a;
        }
    }

    /// Insert a product for `key` (discarded unless `set_allowed(key)` was
    /// called this row); `make` is evaluated only if kept.
    #[inline(always)]
    pub fn insert_with(&mut self, key: Idx, make: impl FnOnce() -> V, add: impl FnOnce(V, V) -> V) {
        let i = self.probe(key);
        let (a, s) = (self.allowed_stamp(), self.set_stamp());
        let slot = &mut self.slots[i];
        if slot.stamp == s && slot.key == key {
            slot.val = add(slot.val, make());
        } else if slot.stamp == a && slot.key == key {
            slot.val = make();
            slot.stamp = s;
        }
    }

    /// Pattern-only insert for the symbolic phase: ALLOWED → SET, returning
    /// `true` on the first transition.
    #[inline(always)]
    pub fn mark_set(&mut self, key: Idx) -> bool {
        let i = self.probe(key);
        let a = self.allowed_stamp();
        let slot = &mut self.slots[i];
        if slot.stamp == a && slot.key == key {
            slot.stamp = a + 1;
            true
        } else {
            false
        }
    }

    /// Accumulated value for `key`, if any product was inserted this row.
    #[inline(always)]
    pub fn remove(&self, key: Idx) -> Option<V> {
        let i = self.probe(key);
        let slot = &self.slots[i];
        if slot.stamp == self.set_stamp() && slot.key == key {
            Some(slot.val)
        } else {
            None
        }
    }
}

/// Complemented-mask hash accumulator: stores only *inserted* keys (those
/// surviving the ¬mask filter), growing on demand since the output size of a
/// complemented row is not bounded by `nnz(m)`.
#[derive(Debug)]
pub struct HashComplement<V> {
    slots: Vec<Slot<V>>,
    cap_mask: usize,
    gen: u32,
    len: usize,
    /// Slot indices inserted this row, for the gather step.
    inserted: Vec<usize>,
}

impl<V: Copy + Default> HashComplement<V> {
    /// Accumulator with an initial capacity hint.
    pub fn new(initial_hint: usize) -> Self {
        let cap = table_capacity(initial_hint);
        HashComplement {
            slots: vec![
                Slot {
                    key: 0,
                    stamp: EMPTY_STAMP,
                    val: V::default(),
                };
                cap
            ],
            cap_mask: cap - 1,
            gen: 0,
            len: 0,
            inserted: Vec::new(),
        }
    }

    /// Begin a new output row.
    #[inline]
    pub fn reset(&mut self) {
        if self.gen == u32::MAX {
            for s in &mut self.slots {
                s.stamp = EMPTY_STAMP;
            }
            self.gen = 0;
        }
        self.gen += 1;
        self.len = 0;
        self.inserted.clear();
        self.cap_mask = self.slots.len() - 1;
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut new_slots = vec![
            Slot {
                key: 0,
                stamp: EMPTY_STAMP,
                val: V::default(),
            };
            new_cap
        ];
        let mask = new_cap - 1;
        let mut new_inserted = Vec::with_capacity(self.inserted.len());
        for &old_i in &self.inserted {
            let slot = self.slots[old_i];
            let mut i = hash_key(slot.key) & mask;
            while new_slots[i].stamp == self.gen {
                i = (i + 1) & mask;
            }
            new_slots[i] = slot;
            new_inserted.push(i);
        }
        self.slots = new_slots;
        self.cap_mask = mask;
        self.inserted = new_inserted;
    }

    /// Insert (accumulate) a product for `key`. The caller has already
    /// established the key is not masked out.
    #[inline]
    pub fn insert(&mut self, key: Idx, value: V, add: impl FnOnce(V, V) -> V) {
        // Load factor 0.25, like the plain table.
        if 4 * (self.len + 1) > self.slots.len() {
            self.grow();
        }
        let g = self.gen;
        let mut i = hash_key(key) & self.cap_mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.stamp != g {
                slot.key = key;
                slot.stamp = g;
                slot.val = value;
                self.len += 1;
                self.inserted.push(i);
                return;
            }
            if slot.key == key {
                slot.val = add(slot.val, value);
                return;
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    /// Gather all inserted `(key, value)` pairs sorted by key, appending to
    /// the output buffers.
    pub fn gather_sorted(&mut self, out_cols: &mut Vec<Idx>, out_vals: &mut Vec<V>) {
        self.inserted.sort_unstable_by_key(|&i| self.slots[i].key);
        for &i in &self.inserted {
            let slot = &self.slots[i];
            out_cols.push(slot.key);
            out_vals.push(slot.val);
        }
    }

    /// Number of distinct keys inserted this row.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing was inserted this row.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_pow2_load_quarter() {
        assert_eq!(table_capacity(0), 16);
        assert_eq!(table_capacity(4), 16);
        assert_eq!(table_capacity(5), 32);
        assert_eq!(table_capacity(100), 512);
    }

    #[test]
    fn hash_state_machine() {
        let mut h = HashAccum::<f64>::new(8);
        h.reset(8);
        let mut evaluated = false;
        h.insert_with(
            3,
            || {
                evaluated = true;
                1.0
            },
            |a, b| a + b,
        );
        assert!(!evaluated);
        assert_eq!(h.remove(3), None);
        h.set_allowed(3);
        h.insert_with(3, || 2.0, |a, b| a + b);
        h.insert_with(3, || 5.0, |a, b| a + b);
        assert_eq!(h.remove(3), Some(7.0));
        assert_eq!(h.remove(4), None);
    }

    #[test]
    fn hash_many_keys_with_collisions() {
        // 64 keys in a table sized for 64 — exercise probe chains.
        let mut h = HashAccum::<u64>::new(64);
        h.reset(64);
        for k in 0..64u32 {
            h.set_allowed(k * 1000);
        }
        for k in 0..64u32 {
            h.insert_with(k * 1000, || k as u64, |a, b| a + b);
            h.insert_with(k * 1000, || 1, |a, b| a + b);
        }
        for k in 0..64u32 {
            assert_eq!(h.remove(k * 1000), Some(k as u64 + 1));
        }
    }

    #[test]
    fn hash_reset_isolates_rows() {
        let mut h = HashAccum::<i32>::new(4);
        h.reset(4);
        h.set_allowed(7);
        h.insert_with(7, || 1, |a, b| a + b);
        h.reset(4);
        assert_eq!(h.remove(7), None);
        h.insert_with(7, || 1, |a, b| a + b);
        assert_eq!(h.remove(7), None, "ALLOWED does not persist across rows");
    }

    #[test]
    fn set_allowed_idempotent_preserves_set() {
        let mut h = HashAccum::<i32>::new(4);
        h.reset(4);
        h.set_allowed(1);
        h.insert_with(1, || 5, |a, b| a + b);
        h.set_allowed(1); // must not reset SET back to ALLOWED
        assert_eq!(h.remove(1), Some(5));
    }

    #[test]
    fn complement_accumulates_and_sorts() {
        let mut h = HashComplement::<i64>::new(2);
        h.reset();
        h.insert(9, 1, |a, b| a + b);
        h.insert(3, 2, |a, b| a + b);
        h.insert(9, 10, |a, b| a + b);
        h.insert(1, 7, |a, b| a + b);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        h.gather_sorted(&mut c, &mut v);
        assert_eq!(c, vec![1, 3, 9]);
        assert_eq!(v, vec![7, 2, 11]);
    }

    #[test]
    fn complement_grows_past_initial_capacity() {
        let mut h = HashComplement::<u32>::new(1);
        h.reset();
        for k in 0..1000u32 {
            h.insert(k, k, |a, b| a + b);
        }
        assert_eq!(h.len(), 1000);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        h.gather_sorted(&mut c, &mut v);
        assert_eq!(c.len(), 1000);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v[500], 500);
    }

    #[test]
    fn complement_reset_isolates_rows() {
        let mut h = HashComplement::<u32>::new(4);
        h.reset();
        h.insert(5, 1, |a, b| a + b);
        h.reset();
        assert!(h.is_empty());
        h.insert(5, 3, |a, b| a + b);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        h.gather_sorted(&mut c, &mut v);
        assert_eq!((c, v), (vec![5], vec![3]));
    }
}
