//! Mask Compressed Accumulator (Section 5.4) — the paper's novel structure.
//!
//! Observation: an output row can never hold more entries than its mask row,
//! so the accumulator needs only `nnz(m)` slots. Slots are addressed by the
//! *rank* of a column within the mask row (computed by the kernel's sorted
//! merge of `B(k,:)` against `m`), not by column id, so the arrays stay tiny
//! and cache-resident. Only two states exist — ALLOWED and SET — because
//! rank addressing makes NOTALLOWED structurally impossible (Figure 5).

/// Rank-addressed accumulator with `SET` tracked by generation stamps.
#[derive(Debug)]
pub struct Mca<V> {
    values: Vec<V>,
    stamps: Vec<u32>,
    gen: u32,
}

impl<V: Copy + Default> Mca<V> {
    /// Accumulator able to hold up to `max_mask_row_nnz` ranks.
    pub fn new(max_mask_row_nnz: usize) -> Self {
        Mca {
            values: vec![V::default(); max_mask_row_nnz],
            stamps: vec![0u32; max_mask_row_nnz],
            gen: 0,
        }
    }

    /// Begin a new output row: `O(1)` except on generation wrap-around.
    #[inline]
    pub fn reset(&mut self) {
        if self.gen == u32::MAX {
            self.stamps.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Insert a product at mask-rank `rank` (ALLOWED → SET on first insert).
    #[inline(always)]
    pub fn insert(&mut self, rank: usize, value: V, add: impl FnOnce(V, V) -> V) {
        if self.stamps[rank] == self.gen {
            self.values[rank] = add(self.values[rank], value);
        } else {
            self.values[rank] = value;
            self.stamps[rank] = self.gen;
        }
    }

    /// Pattern-only insert for the symbolic phase; `true` on first SET.
    #[inline(always)]
    pub fn mark_set(&mut self, rank: usize) -> bool {
        if self.stamps[rank] == self.gen {
            false
        } else {
            self.stamps[rank] = self.gen;
            true
        }
    }

    /// Whether any product was inserted at `rank` this row.
    #[inline(always)]
    pub fn is_set(&self, rank: usize) -> bool {
        self.stamps[rank] == self.gen
    }

    /// Accumulated value at `rank`, if set this row.
    #[inline(always)]
    pub fn remove(&self, rank: usize) -> Option<V> {
        if self.is_set(rank) {
            Some(self.values[rank])
        } else {
            None
        }
    }

    /// Capacity in ranks (diagnostic).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// `_rank` is unused; MCA has no per-key lazy discard — the kernel's
    /// merge already guarantees every insert is allowed. Provided to mirror
    /// the shared accumulator interface in documentation.
    #[inline(always)]
    pub fn set_allowed(&mut self, _rank: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_remove_by_rank() {
        let mut m = Mca::<f64>::new(4);
        m.reset();
        assert_eq!(m.remove(0), None);
        m.insert(2, 1.5, |a, b| a + b);
        m.insert(2, 2.5, |a, b| a + b);
        m.insert(0, 10.0, |a, b| a + b);
        assert_eq!(m.remove(2), Some(4.0));
        assert_eq!(m.remove(0), Some(10.0));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.remove(3), None);
    }

    #[test]
    fn reset_clears_in_constant_time() {
        let mut m = Mca::<i32>::new(2);
        m.reset();
        m.insert(0, 5, |a, b| a + b);
        m.reset();
        assert_eq!(m.remove(0), None);
        m.insert(0, 7, |a, b| a + b);
        assert_eq!(m.remove(0), Some(7));
    }

    #[test]
    fn generation_wraparound() {
        let mut m = Mca::<i32>::new(1);
        m.gen = u32::MAX;
        m.reset();
        assert_eq!(m.gen, 1);
        assert_eq!(m.remove(0), None);
        m.insert(0, 3, |a, b| a + b);
        assert_eq!(m.remove(0), Some(3));
    }

    #[test]
    fn capacity_reports_max_ranks() {
        assert_eq!(Mca::<u8>::new(17).capacity(), 17);
    }
}
