//! Masked SpGEMM over hypersparse (DCSR) operands.
//!
//! SuiteSparse:GraphBLAS switches to doubly-compressed storage when most
//! rows are empty (paper Section 3); iterative workloads here reach that
//! regime too — late k-truss iterations and thin BC frontiers. With CSR,
//! the row loop costs `O(nrows)` even if only a handful of rows store
//! anything; with DCSR it costs `O(nnzr)`: the driver walks the *sorted
//! intersection* of the mask's and `A`'s nonempty row lists (for the
//! complemented mask, just `A`'s list) and runs an ordinary row kernel on
//! each hit.

use rayon::prelude::*;
use sparse::{CsrMatrix, DcsrMatrix, Idx, Semiring, SparseError};

use crate::kernel::RowKernel;
use crate::scratch::WorkerLocal;

/// Sorted intersection of two ascending id lists.
fn intersect_sorted(a: &[Idx], b: &[Idx]) -> Vec<Idx> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut p, mut q) = (0usize, 0usize);
    while p < a.len() && q < b.len() {
        match a[p].cmp(&b[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[p]);
                p += 1;
                q += 1;
            }
        }
    }
    out
}

/// One-phase masked SpGEMM on hypersparse operands:
/// `C = M ⊙ (A·B)` (or `¬M ⊙` with `complemented`), where the mask and `A`
/// are DCSR and `B` is CSR (its rows are gathered, never enumerated).
/// Work is proportional to the nonempty rows actually touched.
pub fn masked_spgemm_dcsr<S, K, MT>(
    sr: S,
    mask: &DcsrMatrix<MT>,
    complemented: bool,
    a: &DcsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> Result<DcsrMatrix<S::C>, SparseError>
where
    S: Semiring,
    S::C: Default + Send + Sync,
    K: RowKernel<S>,
    MT: Copy + Sync,
{
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimMismatch {
            op: "masked_spgemm_dcsr (A·B)",
            lhs: (a.nrows(), a.ncols()),
            rhs: b.shape(),
        });
    }
    if (mask.nrows(), mask.ncols()) != (a.nrows(), b.ncols()) {
        return Err(SparseError::DimMismatch {
            op: "masked_spgemm_dcsr (mask)",
            lhs: (mask.nrows(), mask.ncols()),
            rhs: (a.nrows(), b.ncols()),
        });
    }
    if complemented && !K::SUPPORTS_COMPLEMENT {
        return Err(SparseError::Unsupported(crate::api::COMPLEMENT_UNSUPPORTED));
    }

    // Rows that can produce output: under the plain mask, both the mask row
    // and the A row must be nonempty; under the complement, any nonempty A
    // row can (its mask row may legitimately be empty).
    let active: Vec<Idx> = if complemented {
        a.rowids().to_vec()
    } else {
        intersect_sorted(mask.rowids(), a.rowids())
    };

    let max_mask = (0..mask.nnzr())
        .map(|k| mask.compressed_row(k).1.len())
        .max()
        .unwrap_or(0);
    let ncols = b.ncols();
    // Chunks at the pool scheduler's claim granularity, with one kernel
    // (accumulator scratch) per worker shared across every chunk it
    // claims — the same contract as the CSR drivers in `crate::exec`.
    let chunk = active
        .len()
        .div_ceil(rayon::recommended_parts(active.len()))
        .max(1);
    let chunks: Vec<&[Idx]> = active.chunks(chunk).collect();
    let kernels: WorkerLocal<K> = WorkerLocal::new();
    type ChunkOut<C> = (Vec<Idx>, Vec<usize>, Vec<Idx>, Vec<C>);
    let outs: Vec<ChunkOut<S::C>> = chunks
        .par_iter()
        .map(|rows| {
            kernels.with(
                || K::new(ncols, max_mask),
                |kernel| {
                    let mut rowids = Vec::new();
                    let mut lens = Vec::new();
                    let mut cols = Vec::new();
                    let mut vals = Vec::new();
                    for &i in *rows {
                        let (mc, _) = mask.row(i as usize);
                        let (ac, av) = a.row(i as usize);
                        let before = cols.len();
                        if complemented {
                            kernel
                                .compute_row_complemented(sr, mc, ac, av, b, &mut cols, &mut vals);
                        } else {
                            kernel.compute_row(sr, mc, ac, av, b, &mut cols, &mut vals);
                        }
                        if cols.len() > before {
                            rowids.push(i);
                            lens.push(cols.len() - before);
                        }
                    }
                    (rowids, lens, cols, vals)
                },
            )
        })
        .collect();

    let mut rowids = Vec::new();
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for (ids, lens, cols, vals) in outs {
        for (id, len) in ids.into_iter().zip(lens) {
            rowids.push(id);
            rowptr.push(rowptr.last().unwrap() + len);
        }
        colidx.extend_from_slice(&cols);
        values.extend(vals);
    }
    DcsrMatrix::try_new(a.nrows(), ncols, rowids, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{HashKernel, MsaKernel};
    use crate::kernel::testutil::random_csr;
    use crate::{masked_spgemm, Algorithm, Phases};
    use sparse::PlusTimes;

    #[test]
    fn intersection_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 9]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<Idx>::new());
    }

    /// Knock out most rows to make the operands hypersparse.
    fn hypersparsify(a: &CsrMatrix<f64>, keep_mod: usize) -> CsrMatrix<f64> {
        a.filter(|i, _, _| i % keep_mod == 0)
    }

    #[test]
    fn dcsr_path_matches_csr_path() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..4u64 {
            let a = hypersparsify(&random_csr(60, 40, seed + 1, 30), 7);
            let b = random_csr(40, 50, seed + 2, 30);
            let m = hypersparsify(&random_csr(60, 50, seed + 3, 40), 3).pattern();
            for compl in [false, true] {
                let expect =
                    masked_spgemm(Algorithm::Msa, Phases::One, compl, sr, &m, &a, &b).unwrap();
                let got = masked_spgemm_dcsr::<_, MsaKernel<_>, _>(
                    sr,
                    &DcsrMatrix::from_csr(&m),
                    compl,
                    &DcsrMatrix::from_csr(&a),
                    &b,
                )
                .unwrap();
                assert_eq!(got.to_csr(), expect, "seed={seed} compl={compl}");
            }
        }
    }

    #[test]
    fn dcsr_hash_kernel_agrees() {
        let sr = PlusTimes::<f64>::new();
        let a = hypersparsify(&random_csr(80, 80, 5, 25), 11);
        let m = hypersparsify(&random_csr(80, 80, 6, 35), 5).pattern();
        let b = random_csr(80, 80, 7, 25);
        let expect = masked_spgemm(Algorithm::Hash, Phases::One, false, sr, &m, &a, &b).unwrap();
        let got = masked_spgemm_dcsr::<_, HashKernel<_>, _>(
            sr,
            &DcsrMatrix::from_csr(&m),
            false,
            &DcsrMatrix::from_csr(&a),
            &b,
        )
        .unwrap();
        assert_eq!(got.to_csr(), expect);
    }

    #[test]
    fn active_rows_bounded_by_nnzr() {
        // The driver must touch at most min(nnzr(M), nnzr(A)) rows — check
        // the output's row count respects it.
        let a = hypersparsify(&random_csr(1000, 30, 8, 60), 97);
        let m = hypersparsify(&random_csr(1000, 30, 9, 60), 101).pattern();
        let b = random_csr(30, 30, 10, 60);
        let sr = PlusTimes::<f64>::new();
        let da = DcsrMatrix::from_csr(&a);
        let dm = DcsrMatrix::from_csr(&m);
        let got = masked_spgemm_dcsr::<_, MsaKernel<_>, _>(sr, &dm, false, &da, &b).unwrap();
        assert!(got.nnzr() <= dm.nnzr().min(da.nnzr()));
    }

    #[test]
    fn dimension_and_capability_errors() {
        let sr = PlusTimes::<f64>::new();
        let a = DcsrMatrix::from_csr(&CsrMatrix::<f64>::empty(4, 5));
        let b = CsrMatrix::<f64>::empty(9, 3);
        let m = DcsrMatrix::from_csr(&CsrMatrix::<()>::empty(4, 3));
        assert!(masked_spgemm_dcsr::<_, MsaKernel<_>, _>(sr, &m, false, &a, &b).is_err());
        let b = CsrMatrix::<f64>::empty(5, 3);
        assert!(masked_spgemm_dcsr::<_, MsaKernel<_>, _>(sr, &m, false, &a, &b).is_ok());
        // MCA kernel rejects the complement at the driver boundary.
        use crate::algos::McaKernel;
        assert!(masked_spgemm_dcsr::<_, McaKernel<_>, _>(sr, &m, true, &a, &b).is_err());
    }
}
