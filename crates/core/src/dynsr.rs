//! Runtime-selected semirings over typed value lanes.
//!
//! The kernels in this crate are generic over [`Semiring`], which
//! monomorphizes one copy of every kernel per semiring — the right call for
//! a single hot multiply, but it forces any *batch* API to fix one semiring
//! type for the whole batch. The engine's operation-descriptor API instead
//! describes each multiply with two runtime values:
//!
//! * a [`ValueKind`] — the **lane**: which scalar type the multiply runs on
//!   (`bool`, `i64`, or `f64`). Each lane is a real monomorphized kernel
//!   instantiation, so a boolean BFS step runs on `bool` arithmetic (`&&`,
//!   `||`) and an integer shortest-path relaxation on exact `i64` — not on
//!   an everything-is-`f64` encoding;
//! * a [`SemiringKind`] — which semiring of that lane to evaluate.
//!
//! Within one lane, [`DynLane<T>`] erases the semiring choice: one
//! monomorphized kernel instance per lane serves a batch that mixes, say,
//! `plus_times` BC sweeps with `plus_pair` triangle ops. The dispatch is a
//! branch on a register-resident enum that stays constant for a whole
//! multiply, so it predicts perfectly; the measurable cost against the
//! typed kernels is within noise for the workloads in
//! `bench/engine_repeat`.
//!
//! [`DynSemiring`] is the historical `f64`-only erased semiring, kept as an
//! alias for `DynLane<f64>`; counting semirings on that lane accumulate
//! exact integers up to 2⁵³, far beyond any mask population this crate can
//! represent (indices are `u32`).

use std::marker::PhantomData;

use sparse::Semiring;

/// The scalar type a runtime-described operation runs on — its **value
/// lane**. Each lane selects a monomorphized kernel instantiation at
/// runtime.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// `bool` — reachability / BFS frontiers (`&&`, `||`).
    Bool,
    /// `i64` — exact integer counting and tropical distances.
    I64,
    /// `f64` — the historical default lane.
    F64,
}

impl ValueKind {
    /// Every lane, for exhaustive tests.
    pub const ALL: [ValueKind; 3] = [ValueKind::Bool, ValueKind::I64, ValueKind::F64];

    /// Lowercase type name (`bool`, `i64`, `f64`).
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Bool => "bool",
            ValueKind::I64 => "i64",
            ValueKind::F64 => "f64",
        }
    }

    /// Bytes one stored value of this lane occupies — what byte-budgeted
    /// registries charge per nonzero, so a natively-`bool` matrix is
    /// billed at 1 byte/nnz rather than `f64` width.
    pub fn value_bytes(self) -> usize {
        match self {
            ValueKind::Bool => std::mem::size_of::<bool>(),
            ValueKind::I64 => std::mem::size_of::<i64>(),
            ValueKind::F64 => std::mem::size_of::<f64>(),
        }
    }
}

/// A scalar type usable as a runtime-selected value lane.
///
/// The associated operations define what the [`SemiringKind`]s mean on this
/// lane: `lane_add`/`lane_mul` are the lane's notion of `+`/`×` (`||`/`&&`
/// on `bool`), `lane_min` its meet, `lane_one` its multiplicative identity.
///
/// # Lane cast rules
///
/// Matrices are stored natively on one lane and *cast* to another on
/// demand; every cross-lane cast factors through `f64`
/// ([`LaneValue::to_f64`] then [`LaneValue::from_f64`], fused by
/// [`LaneValue::cast_from`]):
///
/// * `bool → i64/f64`: `true → 1`, `false → 0`;
/// * `i64 → f64`: exact up to 2⁵³ (beyond any `u32`-indexed nnz count);
/// * `f64 → i64`: truncation (the historical `i64` view semantics);
/// * `i64/f64 → bool`: `v != 0` (structural presence).
pub trait LaneValue: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static {
    /// The [`ValueKind`] tag of this lane.
    const KIND: ValueKind;

    /// Convert from an `f64` value (used to build typed operand casts;
    /// `i64` truncates, `bool` is `v != 0.0`).
    fn from_f64(v: f64) -> Self;

    /// Convert to `f64` (`true → 1.0`) — the other half of the cast rules.
    fn to_f64(self) -> f64;

    /// Cast a value from another lane (see the trait-level cast rules).
    #[inline(always)]
    fn cast_from<U: LaneValue>(v: U) -> Self {
        Self::from_f64(v.to_f64())
    }

    /// Lane addition (`||` on `bool`).
    fn lane_add(a: Self, b: Self) -> Self;

    /// Lane multiplication (`&&` on `bool`).
    fn lane_mul(a: Self, b: Self) -> Self;

    /// Lane minimum, with the same tie convention as [`sparse::MinPlus`]
    /// (`if b < a { b } else { a }`); `&&` on `bool`.
    fn lane_min(a: Self, b: Self) -> Self;

    /// Multiplicative identity (`true` on `bool`).
    fn lane_one() -> Self;
}

impl LaneValue for bool {
    const KIND: ValueKind = ValueKind::Bool;

    #[inline(always)]
    fn from_f64(v: f64) -> bool {
        v != 0.0
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }

    #[inline(always)]
    fn lane_add(a: bool, b: bool) -> bool {
        a || b
    }

    #[inline(always)]
    fn lane_mul(a: bool, b: bool) -> bool {
        a && b
    }

    #[inline(always)]
    fn lane_min(a: bool, b: bool) -> bool {
        a && b
    }

    #[inline(always)]
    fn lane_one() -> bool {
        true
    }
}

macro_rules! impl_numeric_lane {
    ($t:ty, $kind:expr, $one:expr, $from:expr) => {
        impl LaneValue for $t {
            const KIND: ValueKind = $kind;

            #[inline(always)]
            fn from_f64(v: f64) -> $t {
                $from(v)
            }

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline(always)]
            fn lane_add(a: $t, b: $t) -> $t {
                a + b
            }

            #[inline(always)]
            fn lane_mul(a: $t, b: $t) -> $t {
                a * b
            }

            #[inline(always)]
            fn lane_min(a: $t, b: $t) -> $t {
                if b < a {
                    b
                } else {
                    a
                }
            }

            #[inline(always)]
            fn lane_one() -> $t {
                $one
            }
        }
    };
}

impl_numeric_lane!(i64, ValueKind::I64, 1i64, |v: f64| v as i64);
impl_numeric_lane!(f64, ValueKind::F64, 1.0f64, |v: f64| v);

/// Which semiring a [`DynLane`] evaluates, mirroring the typed semirings of
/// [`sparse::semiring`] instantiated at the lane's scalar type.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SemiringKind {
    /// Arithmetic `(+, ×)` — [`sparse::PlusTimes`].
    PlusTimes,
    /// `mul = 1`, `add = +` (contribution counting) — [`sparse::PlusPair`].
    PlusPair,
    /// `mul(a, b) = a`, `add = +` — [`sparse::PlusFirst`].
    PlusFirst,
    /// `mul(a, b) = b`, `add = +` — [`sparse::PlusSecond`].
    PlusSecond,
    /// Tropical `(min, +)` — [`sparse::MinPlus`].
    MinPlus,
    /// Boolean `(or, and)` — [`sparse::BoolAndOr`]; the BFS frontier
    /// semiring. Only meaningful on the [`ValueKind::Bool`] lane.
    BoolAndOr,
}

impl SemiringKind {
    /// Every kind, for exhaustive tests.
    pub const ALL: [SemiringKind; 6] = [
        SemiringKind::PlusTimes,
        SemiringKind::PlusPair,
        SemiringKind::PlusFirst,
        SemiringKind::PlusSecond,
        SemiringKind::MinPlus,
        SemiringKind::BoolAndOr,
    ];

    /// GraphBLAS-style name (`plus_times`, `bool_and_or`, ...).
    pub fn name(self) -> &'static str {
        match self {
            SemiringKind::PlusTimes => "plus_times",
            SemiringKind::PlusPair => "plus_pair",
            SemiringKind::PlusFirst => "plus_first",
            SemiringKind::PlusSecond => "plus_second",
            SemiringKind::MinPlus => "min_plus",
            SemiringKind::BoolAndOr => "bool_and_or",
        }
    }

    /// Whether this semiring is defined on the given value lane.
    ///
    /// [`SemiringKind::BoolAndOr`] is the boolean lane's semiring; the
    /// additive kinds need numeric accumulation and run on `i64`/`f64`.
    pub fn supports_value(self, value: ValueKind) -> bool {
        match self {
            SemiringKind::BoolAndOr => value == ValueKind::Bool,
            _ => value != ValueKind::Bool,
        }
    }
}

/// A [`Semiring`] over one value lane `T` that dispatches on a
/// [`SemiringKind`] at runtime.
///
/// Results are bit-identical to the corresponding typed semiring at `T`:
/// the kernels fix the order in which products of one output entry are
/// combined, and `mul`/`add` here perform the same operations in the same
/// order.
///
/// ```
/// use masked_spgemm::{DynLane, SemiringKind};
/// use sparse::Semiring;
///
/// let tc = DynLane::<i64>::new(SemiringKind::PlusPair);
/// assert_eq!(tc.mul(35, -2), 1); // pair: every product counts 1
/// assert_eq!(tc.add(1, 1), 2);
///
/// let bfs = DynLane::<bool>::new(SemiringKind::BoolAndOr);
/// assert!(bfs.mul(true, true) && !bfs.mul(true, false));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DynLane<T> {
    kind: SemiringKind,
    _lane: PhantomData<T>,
}

/// The `f64` lane's erased semiring — the historical type the engine's
/// heterogeneous batches were built on.
pub type DynSemiring = DynLane<f64>;

impl<T: LaneValue> DynLane<T> {
    /// Erased semiring evaluating `kind` on lane `T`.
    pub fn new(kind: SemiringKind) -> Self {
        DynLane {
            kind,
            _lane: PhantomData,
        }
    }

    /// The kind this semiring evaluates.
    pub fn kind(self) -> SemiringKind {
        self.kind
    }
}

impl<T: LaneValue> From<SemiringKind> for DynLane<T> {
    fn from(kind: SemiringKind) -> Self {
        DynLane::new(kind)
    }
}

impl<T: LaneValue> Semiring for DynLane<T> {
    type A = T;
    type B = T;
    type C = T;

    #[inline(always)]
    fn mul(&self, a: T, b: T) -> T {
        match self.kind {
            SemiringKind::PlusTimes | SemiringKind::BoolAndOr => T::lane_mul(a, b),
            SemiringKind::PlusPair => T::lane_one(),
            SemiringKind::PlusFirst => a,
            SemiringKind::PlusSecond => b,
            SemiringKind::MinPlus => T::lane_add(a, b),
        }
    }

    #[inline(always)]
    fn add(&self, x: T, y: T) -> T {
        match self.kind {
            SemiringKind::MinPlus => T::lane_min(x, y),
            _ => T::lane_add(x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{masked_spgemm, Algorithm, Phases};
    use crate::kernel::testutil::random_csr;
    use sparse::{BoolAndOr, MinPlus, PlusFirst, PlusPair, PlusSecond, PlusTimes};

    #[test]
    fn scalar_ops_match_typed_semirings() {
        let (a, b) = (2.5f64, -4.0f64);
        let pt = PlusTimes::<f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusTimes);
        assert_eq!(d.mul(a, b), pt.mul(a, b));
        assert_eq!(d.add(a, b), pt.add(a, b));
        let pp = PlusPair::<f64, f64, f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusPair);
        assert_eq!(d.mul(a, b), pp.mul(a, b));
        let pf = PlusFirst::<f64, f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusFirst);
        assert_eq!(d.mul(a, b), pf.mul(a, b));
        let ps = PlusSecond::<f64, f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusSecond);
        assert_eq!(d.mul(a, b), ps.mul(a, b));
        let mp = MinPlus::<f64>::new();
        let d = DynSemiring::new(SemiringKind::MinPlus);
        assert_eq!(d.mul(a, b), mp.mul(a, b));
        assert_eq!(d.add(a, b), mp.add(a, b));
        assert_eq!(d.add(b, a), mp.add(b, a));
    }

    #[test]
    fn integer_lane_matches_typed_semirings() {
        let (a, b) = (7i64, -3i64);
        let pt = PlusTimes::<i64>::new();
        let d = DynLane::<i64>::new(SemiringKind::PlusTimes);
        assert_eq!(d.mul(a, b), pt.mul(a, b));
        assert_eq!(d.add(a, b), pt.add(a, b));
        let mp = MinPlus::<i64>::new();
        let d = DynLane::<i64>::new(SemiringKind::MinPlus);
        assert_eq!(d.mul(a, b), mp.mul(a, b));
        assert_eq!(d.add(a, b), mp.add(a, b));
        assert_eq!(d.add(b, a), mp.add(b, a));
        let pp = PlusPair::<i64, i64, i64>::new();
        let d = DynLane::<i64>::new(SemiringKind::PlusPair);
        assert_eq!(d.mul(a, b), pp.mul(a, b));
    }

    #[test]
    fn bool_lane_matches_bool_and_or() {
        let sr = BoolAndOr;
        let d = DynLane::<bool>::new(SemiringKind::BoolAndOr);
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(d.mul(a, b), sr.mul(a, b));
                assert_eq!(d.add(a, b), sr.add(a, b));
            }
        }
    }

    #[test]
    fn lane_support_matrix() {
        for kind in SemiringKind::ALL {
            assert_eq!(
                kind.supports_value(ValueKind::Bool),
                kind == SemiringKind::BoolAndOr,
                "{kind:?} on bool"
            );
            for value in [ValueKind::I64, ValueKind::F64] {
                assert_eq!(
                    kind.supports_value(value),
                    kind != SemiringKind::BoolAndOr,
                    "{kind:?} on {value:?}"
                );
            }
        }
    }

    #[test]
    fn from_f64_conversions() {
        assert!(bool::from_f64(2.0) && !bool::from_f64(0.0));
        assert_eq!(i64::from_f64(3.9), 3);
        assert_eq!(f64::from_f64(3.9), 3.9);
        assert_eq!(<bool as LaneValue>::KIND, ValueKind::Bool);
        assert_eq!(<i64 as LaneValue>::KIND, ValueKind::I64);
        assert_eq!(<f64 as LaneValue>::KIND, ValueKind::F64);
    }

    #[test]
    fn erased_products_are_bit_identical_to_typed() {
        let a = random_csr(24, 24, 11, 30);
        let b = random_csr(24, 24, 12, 30);
        let m = random_csr(24, 24, 13, 40).pattern();
        for alg in Algorithm::ALL {
            let typed = masked_spgemm(alg, Phases::One, false, PlusTimes::<f64>::new(), &m, &a, &b)
                .unwrap();
            let erased = masked_spgemm(
                alg,
                Phases::One,
                false,
                DynSemiring::new(SemiringKind::PlusTimes),
                &m,
                &a,
                &b,
            )
            .unwrap();
            assert_eq!(typed, erased, "{alg:?} plus_times");
            let typed = masked_spgemm(
                alg,
                Phases::One,
                false,
                PlusPair::<f64, f64, f64>::new(),
                &m,
                &a,
                &b,
            )
            .unwrap();
            let erased = masked_spgemm(
                alg,
                Phases::One,
                false,
                DynSemiring::new(SemiringKind::PlusPair),
                &m,
                &a,
                &b,
            )
            .unwrap();
            assert_eq!(typed, erased, "{alg:?} plus_pair");
        }
    }

    #[test]
    fn integer_lane_products_are_exact() {
        let a = random_csr(20, 20, 21, 35).map(|&v| v as i64);
        let b = random_csr(20, 20, 22, 35).map(|&v| v as i64);
        let m = random_csr(20, 20, 23, 40).pattern();
        let typed = masked_spgemm(
            Algorithm::Msa,
            Phases::One,
            false,
            PlusTimes::<i64>::new(),
            &m,
            &a,
            &b,
        )
        .unwrap();
        let erased = masked_spgemm(
            Algorithm::Msa,
            Phases::One,
            false,
            DynLane::<i64>::new(SemiringKind::PlusTimes),
            &m,
            &a,
            &b,
        )
        .unwrap();
        assert_eq!(typed, erased);
    }

    #[test]
    fn names_and_kind_roundtrip() {
        for kind in SemiringKind::ALL {
            assert_eq!(DynSemiring::new(kind).kind(), kind);
            assert_eq!(DynSemiring::from(kind).kind(), kind);
            assert!(!kind.name().is_empty());
        }
        for value in ValueKind::ALL {
            assert!(!value.name().is_empty());
        }
    }
}
