//! Runtime-selected semirings for heterogeneous batches.
//!
//! The kernels in this crate are generic over [`Semiring`], which
//! monomorphizes one copy of every kernel per semiring — the right call for
//! a single hot multiply, but it forces any *batch* API to fix one semiring
//! type for the whole batch. The engine's operation-descriptor API instead
//! describes each multiply with a [`SemiringKind`] value and executes it on
//! [`DynSemiring`]: one erased semiring over `f64` whose `mul`/`add`
//! dispatch on the kind at runtime. One monomorphized kernel instance then
//! serves a batch that mixes, say, `plus_times` BC sweeps with `plus_pair`
//! triangle ops.
//!
//! The dispatch is a branch on a register-resident enum that stays constant
//! for a whole multiply, so it predicts perfectly; the measurable cost
//! against the typed kernels is within noise for the workloads in
//! `bench/engine_repeat`.
//!
//! All operands and results are `f64`. Counting semirings accumulate exact
//! integers up to 2⁵³, far beyond any mask population this crate can
//! represent (indices are `u32`).

use sparse::Semiring;

/// Which semiring a [`DynSemiring`] evaluates, mirroring the typed
/// semirings of [`sparse::semiring`] instantiated at `f64`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SemiringKind {
    /// Arithmetic `(+, ×)` — [`sparse::PlusTimes`].
    PlusTimes,
    /// `mul = 1`, `add = +` (contribution counting) — [`sparse::PlusPair`].
    PlusPair,
    /// `mul(a, b) = a`, `add = +` — [`sparse::PlusFirst`].
    PlusFirst,
    /// `mul(a, b) = b`, `add = +` — [`sparse::PlusSecond`].
    PlusSecond,
    /// Tropical `(min, +)` — [`sparse::MinPlus`].
    MinPlus,
}

impl SemiringKind {
    /// Every kind, for exhaustive tests.
    pub const ALL: [SemiringKind; 5] = [
        SemiringKind::PlusTimes,
        SemiringKind::PlusPair,
        SemiringKind::PlusFirst,
        SemiringKind::PlusSecond,
        SemiringKind::MinPlus,
    ];

    /// GraphBLAS-style name (`plus_times`, `plus_pair`, ...).
    pub fn name(self) -> &'static str {
        match self {
            SemiringKind::PlusTimes => "plus_times",
            SemiringKind::PlusPair => "plus_pair",
            SemiringKind::PlusFirst => "plus_first",
            SemiringKind::PlusSecond => "plus_second",
            SemiringKind::MinPlus => "min_plus",
        }
    }
}

/// A [`Semiring`] over `f64` that dispatches on a [`SemiringKind`] at
/// runtime.
///
/// Results are bit-identical to the corresponding typed semiring at `f64`:
/// the kernels fix the order in which products of one output entry are
/// combined, and `mul`/`add` here perform the same float operations in the
/// same order.
///
/// ```
/// use masked_spgemm::{DynSemiring, SemiringKind};
/// use sparse::Semiring;
///
/// let tc = DynSemiring::new(SemiringKind::PlusPair);
/// assert_eq!(tc.mul(3.5, -2.0), 1.0); // pair: every product counts 1
/// assert_eq!(tc.add(1.0, 1.0), 2.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DynSemiring {
    kind: SemiringKind,
}

impl DynSemiring {
    /// Erased semiring evaluating `kind`.
    pub fn new(kind: SemiringKind) -> Self {
        DynSemiring { kind }
    }

    /// The kind this semiring evaluates.
    pub fn kind(self) -> SemiringKind {
        self.kind
    }
}

impl From<SemiringKind> for DynSemiring {
    fn from(kind: SemiringKind) -> Self {
        DynSemiring::new(kind)
    }
}

impl Semiring for DynSemiring {
    type A = f64;
    type B = f64;
    type C = f64;

    #[inline(always)]
    fn mul(&self, a: f64, b: f64) -> f64 {
        match self.kind {
            SemiringKind::PlusTimes => a * b,
            SemiringKind::PlusPair => 1.0,
            SemiringKind::PlusFirst => a,
            SemiringKind::PlusSecond => b,
            SemiringKind::MinPlus => a + b,
        }
    }

    #[inline(always)]
    fn add(&self, x: f64, y: f64) -> f64 {
        match self.kind {
            SemiringKind::MinPlus => {
                if y < x {
                    y
                } else {
                    x
                }
            }
            _ => x + y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{masked_spgemm, Algorithm, Phases};
    use crate::kernel::testutil::random_csr;
    use sparse::{MinPlus, PlusFirst, PlusPair, PlusSecond, PlusTimes};

    #[test]
    fn scalar_ops_match_typed_semirings() {
        let (a, b) = (2.5f64, -4.0f64);
        let pt = PlusTimes::<f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusTimes);
        assert_eq!(d.mul(a, b), pt.mul(a, b));
        assert_eq!(d.add(a, b), pt.add(a, b));
        let pp = PlusPair::<f64, f64, f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusPair);
        assert_eq!(d.mul(a, b), pp.mul(a, b));
        let pf = PlusFirst::<f64, f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusFirst);
        assert_eq!(d.mul(a, b), pf.mul(a, b));
        let ps = PlusSecond::<f64, f64>::new();
        let d = DynSemiring::new(SemiringKind::PlusSecond);
        assert_eq!(d.mul(a, b), ps.mul(a, b));
        let mp = MinPlus::<f64>::new();
        let d = DynSemiring::new(SemiringKind::MinPlus);
        assert_eq!(d.mul(a, b), mp.mul(a, b));
        assert_eq!(d.add(a, b), mp.add(a, b));
        assert_eq!(d.add(b, a), mp.add(b, a));
    }

    #[test]
    fn erased_products_are_bit_identical_to_typed() {
        let a = random_csr(24, 24, 11, 30);
        let b = random_csr(24, 24, 12, 30);
        let m = random_csr(24, 24, 13, 40).pattern();
        for alg in Algorithm::ALL {
            let typed = masked_spgemm(alg, Phases::One, false, PlusTimes::<f64>::new(), &m, &a, &b)
                .unwrap();
            let erased = masked_spgemm(
                alg,
                Phases::One,
                false,
                DynSemiring::new(SemiringKind::PlusTimes),
                &m,
                &a,
                &b,
            )
            .unwrap();
            assert_eq!(typed, erased, "{alg:?} plus_times");
            let typed = masked_spgemm(
                alg,
                Phases::One,
                false,
                PlusPair::<f64, f64, f64>::new(),
                &m,
                &a,
                &b,
            )
            .unwrap();
            let erased = masked_spgemm(
                alg,
                Phases::One,
                false,
                DynSemiring::new(SemiringKind::PlusPair),
                &m,
                &a,
                &b,
            )
            .unwrap();
            assert_eq!(typed, erased, "{alg:?} plus_pair");
        }
    }

    #[test]
    fn names_and_kind_roundtrip() {
        for kind in SemiringKind::ALL {
            assert_eq!(DynSemiring::new(kind).kind(), kind);
            assert_eq!(DynSemiring::from(kind).kind(), kind);
            assert!(!kind.name().is_empty());
        }
    }
}
