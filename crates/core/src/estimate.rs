//! Work estimation: `flops(·)` in the paper's sense.
//!
//! `flops(A·B)` counts the scalar multiplications a push-based (Gustavson)
//! algorithm performs: one per pair `(A(i,k), B(k,j))`. The evaluation
//! figures report GFLOPS computed as `2·flops / time` (each product also
//! incurs one addition into the accumulator), which is the convention the
//! harnesses in `crates/bench` use.

use rayon::prelude::*;
use sparse::CsrMatrix;

/// Scalar multiplications of the unmasked product `A·B`
/// (`Σ_{A(i,k)≠0} nnz(B(k,:))`).
pub fn flops<A, B>(a: &CsrMatrix<A>, b: &CsrMatrix<B>) -> u64
where
    A: Sync,
    B: Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let bptr = b.rowptr();
    a.colidx()
        .par_iter()
        .map(|&k| (bptr[k as usize + 1] - bptr[k as usize]) as u64)
        .sum()
}

/// Per-row multiplication counts of `A·B` (load-balance diagnostics and the
/// complemented-mask output-size upper bound).
pub fn flops_per_row<A, B>(a: &CsrMatrix<A>, b: &CsrMatrix<B>) -> Vec<u64>
where
    A: Sync,
    B: Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let bptr = b.rowptr();
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (cols, _) = a.row(i);
            cols.iter()
                .map(|&k| (bptr[k as usize + 1] - bptr[k as usize]) as u64)
                .sum()
        })
        .collect()
}

/// Multiplications a *mask-aware* pull algorithm performs: for each mask
/// entry `(i,j)`, the merge length is bounded by `nnz(A(i,:)) + nnz(B(:,j))`;
/// this returns the exact number of matching index pairs instead — i.e. the
/// products that survive the mask. Useful to quantify how much work masking
/// can save (`flops_masked / flops ≤ 1`).
pub fn flops_masked<MT, A, B>(mask: &CsrMatrix<MT>, a: &CsrMatrix<A>, b: &CsrMatrix<B>) -> u64
where
    MT: Sync,
    A: Sync,
    B: Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    assert_eq!(mask.nrows(), a.nrows(), "mask rows mismatch");
    assert_eq!(mask.ncols(), b.ncols(), "mask cols mismatch");
    let bc = sparse::CscMatrix::from_csr(&b.map(|_| ()));
    (0..mask.nrows())
        .into_par_iter()
        .map(|i| {
            let (mcols, _) = mask.row(i);
            let (acols, _) = a.row(i);
            let mut total = 0u64;
            for &j in mcols {
                let (brows, _) = bc.col(j as usize);
                let (mut p, mut q) = (0usize, 0usize);
                while p < acols.len() && q < brows.len() {
                    match acols[p].cmp(&brows[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            total += 1;
                            p += 1;
                            q += 1;
                        }
                    }
                }
            }
            total
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::CsrMatrix;

    fn a() -> CsrMatrix<f64> {
        // [1 2]
        // [0 3]
        CsrMatrix::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    fn b() -> CsrMatrix<f64> {
        // [4 0]
        // [5 6]
        CsrMatrix::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn flop_count() {
        // Row 0 of A: k=0 (nnz 1) + k=1 (nnz 2) = 3; row 1: k=1 -> 2.
        assert_eq!(flops(&a(), &b()), 5);
        assert_eq!(flops_per_row(&a(), &b()), vec![3, 2]);
    }

    #[test]
    fn masked_flops_never_exceed_plain() {
        let m = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![0, 1], vec![(), ()]).unwrap();
        let fm = flops_masked(&m, &a(), &b());
        assert!(fm <= flops(&a(), &b()));
        // (0,0): A(0,:)={0,1} ∩ B(:,0)={0,1} -> 2 products; (1,1): {1}∩{1} -> 1.
        assert_eq!(fm, 3);
    }

    #[test]
    fn empty_mask_no_masked_flops() {
        let m = CsrMatrix::<()>::empty(2, 2);
        assert_eq!(flops_masked(&m, &a(), &b()), 0);
    }
}
