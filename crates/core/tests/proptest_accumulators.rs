//! Model-based property tests: the MSA and Hash accumulators are driven by
//! random operation sequences and checked step-by-step against a simple
//! `BTreeMap` model of the paper's three-state automaton (Figures 3 and 5).

use std::collections::BTreeMap;

use masked_spgemm::accum::{HashAccum, Mca, Msa, MsaComplement};
use proptest::prelude::*;

/// Operations on a plain-mask accumulator.
#[derive(Clone, Debug)]
enum Op {
    SetAllowed(u32),
    Insert(u32, i64),
    Remove(u32),
    Reset,
}

fn op_strategy(key_space: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space).prop_map(Op::SetAllowed),
        ((0..key_space), -100i64..100).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space).prop_map(Op::Remove),
        Just(Op::Reset),
    ]
}

/// The model: ALLOWED keys with no value = `Some(None)`; SET keys =
/// `Some(Some(total))`; NOTALLOWED = absent.
#[derive(Default)]
struct Model {
    state: BTreeMap<u32, Option<i64>>,
}

impl Model {
    fn set_allowed(&mut self, k: u32) {
        self.state.entry(k).or_insert(None);
    }

    fn insert(&mut self, k: u32, v: i64) {
        if let Some(slot) = self.state.get_mut(&k) {
            *slot = Some(slot.unwrap_or(0) + v);
        }
    }

    fn remove(&self, k: u32) -> Option<i64> {
        self.state.get(&k).copied().flatten()
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn msa_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..120)) {
        let mut acc = Msa::<i64>::new(24);
        acc.reset();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::SetAllowed(k) => {
                    // setAllowed must not clobber a SET value — the
                    // automaton has no SET -> ALLOWED edge (Figure 3).
                    model.set_allowed(k);
                    acc.set_allowed(k);
                }
                Op::Insert(k, v) => {
                    model.insert(k, v);
                    acc.insert_with(k, || v, |a, b| a + b);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(acc.remove(k), model.remove(k), "key {}", k);
                }
                Op::Reset => {
                    model.reset();
                    acc.reset();
                }
            }
        }
        for k in 0..24 {
            prop_assert_eq!(acc.remove(k), model.remove(k), "final key {}", k);
        }
    }

    #[test]
    fn hash_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..120)) {
        // Table sized for up to 24 allowed keys per row.
        let mut acc = HashAccum::<i64>::new(24);
        acc.reset(24);
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::SetAllowed(k) => {
                    model.set_allowed(k);
                    acc.set_allowed(k);
                }
                Op::Insert(k, v) => {
                    model.insert(k, v);
                    acc.insert_with(k, || v, |a, b| a + b);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(acc.remove(k), model.remove(k), "key {}", k);
                }
                Op::Reset => {
                    model.reset();
                    acc.reset(24);
                }
            }
        }
        for k in 0..24 {
            prop_assert_eq!(acc.remove(k), model.remove(k), "final key {}", k);
        }
    }

    #[test]
    fn msa_complement_matches_model(
        not_allowed in proptest::collection::btree_set(0u32..24, 0..12),
        inserts in proptest::collection::vec(((0u32..24), -100i64..100), 0..80),
    ) {
        let mut acc = MsaComplement::<i64>::new(24);
        acc.reset();
        for &k in &not_allowed {
            acc.set_not_allowed(k);
        }
        // Model: everything except `not_allowed` is insertable.
        let mut model: BTreeMap<u32, i64> = BTreeMap::new();
        for &(k, v) in &inserts {
            if !not_allowed.contains(&k) {
                *model.entry(k).or_insert(0) += v;
            }
            acc.insert_with(k, || v, |a, b| a + b);
        }
        let keys: Vec<u32> = acc.sorted_inserted().to_vec();
        let model_keys: Vec<u32> = model.keys().copied().collect();
        prop_assert_eq!(&keys, &model_keys);
        for k in keys {
            prop_assert_eq!(acc.value(k), model[&k]);
        }
    }

    #[test]
    fn mca_matches_dense_slots(
        inserts in proptest::collection::vec(((0usize..16), -100i64..100), 0..64),
    ) {
        let mut acc = Mca::<i64>::new(16);
        acc.reset();
        let mut model = [None::<i64>; 16];
        for &(rank, v) in &inserts {
            model[rank] = Some(model[rank].unwrap_or(0) + v);
            acc.insert(rank, v, |a, b| a + b);
        }
        for (rank, expect) in model.iter().enumerate() {
            prop_assert_eq!(acc.remove(rank), *expect, "rank {}", rank);
        }
        // Reset invalidates everything in O(1).
        acc.reset();
        for rank in 0..16 {
            prop_assert_eq!(acc.remove(rank), None);
        }
    }
}
