//! Stress and corner-case tests for the parallel drivers: degenerate
//! shapes, pathological skew (one hub row), repeated-run determinism.

use masked_spgemm::{masked_spgemm, Algorithm, Phases};
use sparse::dense::reference_masked_spgemm;
use sparse::{CooMatrix, CsrMatrix, PlusTimes};

fn all_combos() -> Vec<(Algorithm, Phases, bool)> {
    let mut v = Vec::new();
    for alg in Algorithm::ALL {
        for ph in Phases::ALL {
            for compl in [false, true] {
                if compl && !alg.supports_complement() {
                    continue;
                }
                v.push((alg, ph, compl));
            }
        }
    }
    v
}

fn check_all(mask: &CsrMatrix<()>, a: &CsrMatrix<f64>, b: &CsrMatrix<f64>, label: &str) {
    let sr = PlusTimes::<f64>::new();
    for (alg, ph, compl) in all_combos() {
        let expect = reference_masked_spgemm(sr, mask, compl, a, b);
        let got = masked_spgemm(alg, ph, compl, sr, mask, a, b).unwrap();
        assert_eq!(got, expect, "{label}: {alg:?} {ph:?} compl={compl}");
    }
}

#[test]
fn zero_row_matrices() {
    let a = CsrMatrix::<f64>::empty(0, 5);
    let b = CsrMatrix::<f64>::empty(5, 3);
    let m = CsrMatrix::<()>::empty(0, 3);
    check_all(&m, &a, &b, "zero rows");
}

#[test]
fn zero_column_output() {
    let a = CsrMatrix::<f64>::empty(3, 5);
    let b = CsrMatrix::<f64>::empty(5, 0);
    let m = CsrMatrix::<()>::empty(3, 0);
    check_all(&m, &a, &b, "zero cols");
}

#[test]
fn single_hub_row_dominates() {
    // Row 0 of A has 512 entries; all others one entry. Exercises chunk
    // load imbalance and per-row accumulator sizing in one go.
    let n = 513;
    let mut a = CooMatrix::new(n, n);
    for j in 0..512u32 {
        a.push(0, j, (j + 1) as f64);
    }
    for i in 1..n as u32 {
        a.push(i, i - 1, 2.0);
    }
    let a = a.to_csr();
    let mut b = CooMatrix::new(n, n);
    for i in 0..n as u32 {
        b.push(i, (i * 7) % n as u32, 3.0);
    }
    let b = b.to_csr();
    let mut m = CooMatrix::new(n, n);
    for i in 0..n as u32 {
        for d in 0..4u32 {
            m.push(i, (i + d * 131) % n as u32, ());
        }
    }
    let m = m.to_csr();
    check_all(&m, &a, &b, "hub row");
}

#[test]
fn dense_single_column_b() {
    // Every row of B points at column 0: maximal accumulator collisions.
    let n = 64;
    let mut b = CooMatrix::new(n, n);
    for i in 0..n as u32 {
        b.push(i, 0, 1.0 + i as f64);
    }
    let b = b.to_csr();
    let a = graphs::erdos_renyi(n, 8.0, 1);
    let mut m = CooMatrix::new(n, n);
    for i in 0..n as u32 {
        m.push(i, 0, ());
        m.push(i, 1, ());
    }
    let m = m.to_csr();
    check_all(&m, &a, &b, "single column");
}

#[test]
fn full_mask_equals_plain_spgemm() {
    // A completely dense mask reduces Masked SpGEMM to plain SpGEMM.
    let n = 24;
    let a = graphs::erdos_renyi(n, 6.0, 2);
    let b = graphs::erdos_renyi(n, 6.0, 3);
    let mut m = CooMatrix::new(n, n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            m.push(i, j, ());
        }
    }
    let m = m.to_csr();
    let sr = PlusTimes::<f64>::new();
    let plain = baselines::plain_spgemm(sr, &a, &b);
    for alg in Algorithm::ALL {
        let got = masked_spgemm(alg, Phases::One, false, sr, &m, &a, &b).unwrap();
        assert_eq!(got, plain, "{alg:?} with full mask");
    }
    // Complement of a full mask is empty.
    let got = masked_spgemm(Algorithm::Msa, Phases::One, true, sr, &m, &a, &b).unwrap();
    assert_eq!(got.nnz(), 0);
}

#[test]
fn repeated_runs_are_bitwise_deterministic() {
    let a = graphs::erdos_renyi(200, 10.0, 4);
    let b = graphs::erdos_renyi(200, 10.0, 5);
    let m = graphs::erdos_renyi(200, 20.0, 6).pattern();
    let sr = PlusTimes::<f64>::new();
    for alg in Algorithm::ALL {
        let first = masked_spgemm(alg, Phases::One, false, sr, &m, &a, &b).unwrap();
        for _ in 0..3 {
            let again = masked_spgemm(alg, Phases::One, false, sr, &m, &a, &b).unwrap();
            assert_eq!(again, first, "{alg:?} nondeterministic");
        }
    }
}

#[test]
fn mask_wider_than_any_b_row() {
    // Mask rows denser than B rows: gather dominates; MCA rank arrays at
    // their maximum size.
    let n = 48;
    let a = graphs::erdos_renyi(n, 2.0, 7);
    let b = graphs::erdos_renyi(n, 2.0, 8);
    let mut m = CooMatrix::new(n, n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            if (i + j) % 2 == 0 {
                m.push(i, j, ());
            }
        }
    }
    check_all(&m.to_csr(), &a, &b, "wide mask");
}
