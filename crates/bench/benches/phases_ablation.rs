//! Ablation: one-phase vs two-phase execution (paper Section 6 and the
//! consistent "1P beats 2P" finding of Section 8), plus the heap's
//! NInspect parameter (Heap = 1 vs HeapDot = ∞).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_algos::Scheme;
use masked_spgemm::{Algorithm, Phases};
use sparse::{CscMatrix, PlusTimes};
use std::time::Duration;

fn bench_phases(c: &mut Criterion) {
    let sr = PlusTimes::<f64>::new();
    let n = 1 << 11;
    let a = graphs::erdos_renyi(n, 12.0, 1);
    let b = graphs::erdos_renyi(n, 12.0, 2);
    let bc = CscMatrix::from_csr(&b);
    let m = graphs::erdos_renyi(n, 12.0, 3);
    let mut g = c.benchmark_group("one_vs_two_phase");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for alg in [Algorithm::Msa, Algorithm::Hash, Algorithm::Mca] {
        for ph in Phases::ALL {
            let s = Scheme::Ours(alg, ph);
            g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |bch, s| {
                bch.iter(|| s.run(sr, &m, false, &a, &b, &bc).unwrap().nnz())
            });
        }
    }
    g.finish();
}

fn bench_ninspect(c: &mut Criterion) {
    let sr = PlusTimes::<f64>::new();
    let n = 1 << 11;
    // Sparse inputs + dense-ish mask: the heap regime, where inspection
    // depth matters most.
    let a = graphs::erdos_renyi(n, 3.0, 4);
    let b = graphs::erdos_renyi(n, 3.0, 5);
    let bc = CscMatrix::from_csr(&b);
    let mut g = c.benchmark_group("heap_ninspect");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for mask_deg in [4.0f64, 64.0, 512.0] {
        let m = graphs::erdos_renyi(n, mask_deg, 6);
        for alg in [Algorithm::Heap, Algorithm::HeapDot] {
            let s = Scheme::Ours(alg, Phases::One);
            g.bench_with_input(
                BenchmarkId::new(s.label(), mask_deg as u64),
                &s,
                |bch, s| bch.iter(|| s.run(sr, &m, false, &a, &b, &bc).unwrap().nnz()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_phases, bench_ninspect);
criterion_main!(benches);
