//! Criterion micro-benchmarks of the Masked SpGEMM kernels in the three
//! density regimes of Figure 7 (sparse mask / balanced / sparse inputs).
//! One group per regime; each algorithm is one benchmark id, so criterion
//! reports them side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_algos::Scheme;
use masked_spgemm::{Algorithm, Phases};
use sparse::{CscMatrix, CsrMatrix, PlusTimes};
use std::time::Duration;

struct Regime {
    name: &'static str,
    deg_inputs: f64,
    deg_mask: f64,
}

const REGIMES: &[Regime] = &[
    Regime {
        name: "sparse_mask",
        deg_inputs: 32.0,
        deg_mask: 2.0,
    },
    Regime {
        name: "balanced",
        deg_inputs: 8.0,
        deg_mask: 8.0,
    },
    Regime {
        name: "sparse_inputs",
        deg_inputs: 2.0,
        deg_mask: 128.0,
    },
];

fn inputs(
    r: &Regime,
) -> (
    CsrMatrix<f64>,
    CsrMatrix<f64>,
    CscMatrix<f64>,
    CsrMatrix<f64>,
) {
    let n = 1 << 11;
    let a = graphs::erdos_renyi(n, r.deg_inputs, 1);
    let b = graphs::erdos_renyi(n, r.deg_inputs, 2);
    let bc = CscMatrix::from_csr(&b);
    let m = graphs::erdos_renyi(n, r.deg_mask, 3);
    (a, b, bc, m)
}

fn bench_kernels(c: &mut Criterion) {
    let sr = PlusTimes::<f64>::new();
    for r in REGIMES {
        let (a, b, bc, m) = inputs(r);
        let mut g = c.benchmark_group(format!("fig07_regime/{}", r.name));
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for alg in Algorithm::ALL {
            let s = Scheme::Ours(alg, Phases::One);
            g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |bch, s| {
                bch.iter(|| s.run(sr, &m, false, &a, &b, &bc).unwrap().nnz())
            });
        }
        for s in Scheme::baselines() {
            g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |bch, s| {
                bch.iter(|| s.run(sr, &m, false, &a, &b, &bc).unwrap().nnz())
            });
        }
        g.finish();
    }
}

fn bench_complemented(c: &mut Criterion) {
    let sr = PlusTimes::<f64>::new();
    let n = 1 << 10;
    let a = graphs::erdos_renyi(n, 8.0, 4);
    let b = graphs::erdos_renyi(n, 8.0, 5);
    let bc = CscMatrix::from_csr(&b);
    let m = graphs::erdos_renyi(n, 8.0, 6);
    let mut g = c.benchmark_group("complemented_mask");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for alg in [Algorithm::Msa, Algorithm::Hash, Algorithm::Heap] {
        let s = Scheme::Ours(alg, Phases::One);
        g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |bch, s| {
            bch.iter(|| s.run(sr, &m, true, &a, &b, &bc).unwrap().nnz())
        });
    }
    g.bench_function("SS:SAXPY", |bch| {
        bch.iter(|| {
            Scheme::SsSaxpy
                .run(sr, &m, true, &a, &b, &bc)
                .unwrap()
                .nnz()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_complemented);
criterion_main!(benches);
