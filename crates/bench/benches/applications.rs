//! Criterion benchmarks of the three paper applications (TC, k-truss, BC)
//! at smoke-test scale — the full sweeps live in the `fig*` harness
//! binaries; these provide regression tracking for the common path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_algos::{betweenness_centrality, ktruss, prepare_triangle_input, triangle_count, Scheme};
use masked_spgemm::{Algorithm, Phases};
use sparse::{CscMatrix, Idx};
use std::time::Duration;

fn graph() -> sparse::CsrMatrix<f64> {
    graphs::to_undirected_simple(&graphs::rmat(9, graphs::RmatParams::default(), 42))
}

fn configure(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
}

fn bench_tc(c: &mut Criterion) {
    let adj = graph();
    let l = prepare_triangle_input(&adj);
    let lc = CscMatrix::from_csr(&l);
    let mut g = c.benchmark_group("triangle_counting");
    configure(&mut g);
    for s in [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
        Scheme::Ours(Algorithm::Mca, Phases::One),
        Scheme::Ours(Algorithm::Inner, Phases::One),
        Scheme::SsSaxpy,
        Scheme::SsDot,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |b, s| {
            b.iter(|| triangle_count(*s, &l, &lc).unwrap())
        });
    }
    g.finish();
}

fn bench_ktruss(c: &mut Criterion) {
    let adj = graph();
    let mut g = c.benchmark_group("ktruss_k5");
    configure(&mut g);
    for s in [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Inner, Phases::One),
        Scheme::SsSaxpy,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |b, s| {
            b.iter(|| ktruss(*s, &adj, 5).unwrap().iterations)
        });
    }
    g.finish();
}

fn bench_bc(c: &mut Criterion) {
    let adj = graph();
    let n = adj.nrows();
    let sources: Vec<Idx> = (0..16).map(|i| ((i * 131) % n) as Idx).collect();
    let mut g = c.benchmark_group("betweenness_batch16");
    configure(&mut g);
    for s in [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
        Scheme::SsSaxpy,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |b, s| {
            b.iter(|| betweenness_centrality(*s, &adj, &sources).unwrap().depth)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tc, bench_ktruss, bench_bc);
criterion_main!(benches);
