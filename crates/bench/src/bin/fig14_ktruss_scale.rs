//! Figure 14: k-truss GFLOPS as the R-MAT scale grows.
//!
//! The paper's metric: Σ flops over all Masked SpGEMM iterations divided by
//! total time. Expected shape: pull-based schemes (Inner, SS:DOT) improve
//! their rate with scale as iterative pruning sparsifies the mask relative
//! to the inputs; MSA-1P strong throughout on cache-rich machines.

use bench::{banner, schemes, HarnessArgs};
use engine::Context;
use graph_algos::{ktruss, ktruss_auto};
use profile::table::{write_text, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("fig14", "k-truss GFLOPS vs R-MAT scale", &args);
    let max_scale = args.pick(9u32, 13, 20);
    let schemes = schemes::ktruss_vs_ssgb();
    let ctx = Context::new();
    ctx.calibrate();
    let mut table = Table::new(&["scale", "scheme", "gflops", "secs", "iters", "truss_nnz"]);
    let mut series: Vec<(String, Vec<(f64, f64)>)> =
        schemes.iter().map(|s| (s.label(), Vec::new())).collect();
    series.push(("Engine-Auto".to_string(), Vec::new()));
    for scale in 8..=max_scale {
        let adj =
            graphs::to_undirected_simple(&graphs::rmat(scale, graphs::RmatParams::default(), 42));
        for (si, s) in schemes.iter().enumerate() {
            let (r, m) = profile::best_of(args.reps, || ktruss(*s, &adj, 5).expect("plain"));
            let gflops = (2 * r.total_flops) as f64 / m.secs() / 1e9;
            series[si].1.push((scale as f64, gflops));
            table.push(vec![
                scale.to_string(),
                s.label(),
                format!("{gflops:.4}"),
                format!("{:.6e}", m.secs()),
                r.iterations.to_string(),
                r.truss.nnz().to_string(),
            ]);
        }
        // The engine path: per-iteration planning over cached auxiliaries.
        let h = ctx.insert(adj.clone());
        let (r, m) = profile::best_of(args.reps, || ktruss_auto(&ctx, h, 5).expect("plain"));
        ctx.remove(h);
        let gflops = (2 * r.total_flops) as f64 / m.secs() / 1e9;
        let engine_series = series.last_mut().expect("engine series pushed above");
        engine_series.1.push((scale as f64, gflops));
        table.push(vec![
            scale.to_string(),
            "Engine-Auto".to_string(),
            format!("{gflops:.4}"),
            format!("{:.6e}", m.secs()),
            r.iterations.to_string(),
            r.truss.nnz().to_string(),
        ]);
        println!("scale {scale} done");
    }
    println!("{}", table.to_console());
    let chart = profile::ascii::line_chart("fig14: k-truss GFLOPS vs scale", &series, 60, 16);
    println!("{chart}");
    table
        .write_csv(args.out_dir.join("fig14_ktruss_scale.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("fig14_ktruss_scale.txt"), &chart).expect("write txt");
}
