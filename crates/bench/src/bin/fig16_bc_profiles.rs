//! Figure 16: Betweenness Centrality performance profiles — MSA/Hash
//! (1P and 2P) vs SS:SAXPY over the evaluation suite.
//!
//! MCA is excluded (no complemented-mask support); Heap, Inner and SS:DOT
//! are excluded as prohibitively slow (paper Section 8.4) — fig15 measures
//! them at small scale instead. Expected shape: MSA-1P best on every case,
//! 1P > 2P.

use bench::{banner, schemes, HarnessArgs};
use graph_algos::betweenness_centrality;
use sparse::Idx;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "fig16",
        "Betweenness Centrality profiles vs SS:SAXPY",
        &args,
    );
    let max_n = args.pick(1 << 10, 1 << 13, usize::MAX);
    let batch = args.pick(16usize, 64, 512);
    let schemes = schemes::bc_profiles();
    let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
    bench::run_suite_profile(&args, "fig16", &labels, max_n, |_, adj| {
        let n = adj.nrows();
        let sources: Vec<Idx> = (0..batch.min(n))
            .map(|i| ((i * 2654435761) % n) as Idx)
            .collect();
        schemes
            .iter()
            .map(|s| {
                let (r, m) = profile::best_of(args.reps, || {
                    betweenness_centrality(*s, adj, &sources).expect("complement-capable")
                });
                std::hint::black_box(r.centrality.len());
                Some(m.secs())
            })
            .collect()
    });
}
