//! Ablation (extension): the adaptive hybrid scheme vs the fixed schemes,
//! across the Figure 7 density grid.
//!
//! The paper's future work proposes choosing accumulators per row by
//! density; this harness quantifies it. For each (input degree, mask
//! degree) cell it reports the hybrid's runtime relative to the best and
//! the worst fixed scheme — a perfect oracle would sit at 1.0 against the
//! best; a useful heuristic sits well below the worst and close to the
//! best *without knowing the regime in advance*.

use bench::{banner, er_with_csc, schemes, time_masked_spgemm, HarnessArgs, Scheme};
use masked_spgemm::{hybrid_choices, HybridConfig};
use profile::table::{write_text, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("ablation_hybrid", "adaptive hybrid vs fixed schemes", &args);
    let lg = args.pick(10u32, 12, 14);
    let n = 1usize << lg;
    let input_degrees: &[f64] = &[2.0, 8.0, 32.0, 128.0];
    let mask_degrees: &[f64] = &[1.0, 16.0, 256.0, 1024.0];
    let fixed = schemes::ours_1p();

    let mut table = Table::new(&[
        "deg_inputs",
        "deg_mask",
        "hybrid_secs",
        "best_fixed",
        "best_fixed_secs",
        "worst_fixed_secs",
        "hybrid_vs_best",
        "row_mix",
    ]);
    let mut report = String::new();
    for (di, &deg_in) in input_degrees.iter().enumerate() {
        let (a, _) = er_with_csc(n, deg_in, 500 + di as u64);
        let (b, b_csc) = er_with_csc(n, deg_in, 600 + di as u64);
        for (dm, &deg_m) in mask_degrees.iter().enumerate() {
            let mask = graphs::erdos_renyi(n, deg_m.min(n as f64), 700 + dm as u64);
            let mut best: Option<(Scheme, f64)> = None;
            let mut worst = 0.0f64;
            for s in &fixed {
                let t = time_masked_spgemm(*s, args.reps, &mask, false, &a, &b, &b_csc)
                    .expect("plain mask");
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((*s, t));
                }
                worst = worst.max(t);
            }
            let (bs, bt) = best.expect("nonempty");
            let ht = time_masked_spgemm(Scheme::Hybrid, args.reps, &mask, false, &a, &b, &b_csc)
                .expect("plain mask");
            // Which families did the hybrid actually mix?
            let choices = hybrid_choices(HybridConfig::default(), &mask, &a, &b);
            let mut counts = std::collections::BTreeMap::new();
            for c in choices {
                *counts.entry(format!("{c:?}")).or_insert(0usize) += 1;
            }
            let mix: Vec<String> = counts
                .into_iter()
                .filter(|(k, _)| k != "Empty")
                .map(|(k, v)| format!("{k}:{v}"))
                .collect();
            let line = format!(
                "deg_in={deg_in:<5} deg_m={deg_m:<6} hybrid={ht:.4e} best={}@{bt:.4e} worst={worst:.4e} ratio={:.2}",
                bs.label(),
                ht / bt
            );
            println!("{line}");
            report.push_str(&line);
            report.push('\n');
            table.push(vec![
                deg_in.to_string(),
                deg_m.to_string(),
                format!("{ht:.6e}"),
                bs.label(),
                format!("{bt:.6e}"),
                format!("{worst:.6e}"),
                format!("{:.3}", ht / bt),
                mix.join(" "),
            ]);
        }
    }
    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("ablation_hybrid.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("ablation_hybrid.txt"), &report).expect("write txt");
}
