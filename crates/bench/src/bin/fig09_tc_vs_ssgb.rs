//! Figure 9: Triangle Counting — our three best schemes (MSA-1P, Hash-1P,
//! MCA-1P) against the SS:GB-like baselines (SS:SAXPY, SS:DOT).
//!
//! Expected shape (paper): all three of ours beat the baselines on almost
//! every case.

use bench::{banner, schemes, HarnessArgs};
use graph_algos::{prepare_triangle_input, triangle_count};
use sparse::CscMatrix;

fn main() {
    let args = HarnessArgs::parse();
    banner("fig09", "Triangle Counting — ours vs SS:GB", &args);
    let max_n = args.pick(1 << 10, 1 << 14, usize::MAX);
    let schemes = schemes::tc_vs_ssgb();
    let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
    bench::run_suite_profile(&args, "fig09", &labels, max_n, |_, adj| {
        let l = prepare_triangle_input(adj);
        let lc = CscMatrix::from_csr(&l);
        schemes
            .iter()
            .map(|s| {
                let (count, m) = profile::best_of(args.reps, || {
                    triangle_count(*s, &l, &lc).expect("plain mask")
                });
                std::hint::black_box(count);
                Some(m.secs())
            })
            .collect()
    });
}
