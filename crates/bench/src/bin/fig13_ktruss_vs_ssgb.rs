//! Figure 13: k-truss (k = 5) — our best four schemes (MSA-1P, Inner-1P,
//! Hash-1P, MCA-1P) against the SS:GB-like baselines.
//!
//! Expected shape (paper): MSA-1P and Inner-1P significantly ahead of
//! SS:SAXPY and SS:DOT.

use bench::{banner, schemes, HarnessArgs};
use graph_algos::ktruss;

fn main() {
    let args = HarnessArgs::parse();
    banner("fig13", "k-truss (k=5) — ours vs SS:GB", &args);
    let max_n = args.pick(1 << 10, 1 << 13, usize::MAX);
    let schemes = schemes::ktruss_vs_ssgb();
    let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
    bench::run_suite_profile(&args, "fig13", &labels, max_n, |_, adj| {
        schemes
            .iter()
            .map(|s| {
                let (r, m) =
                    profile::best_of(args.reps, || ktruss(*s, adj, 5).expect("plain mask"));
                std::hint::black_box(r.truss.nnz());
                Some(m.secs())
            })
            .collect()
    });
}
