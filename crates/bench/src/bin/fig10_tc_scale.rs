//! Figure 10: Triangle Counting GFLOPS as the R-MAT scale grows.
//!
//! GFLOPS = `2 · flops_masked / time` (multiply + add per surviving
//! product), so all schemes share a numerator and differences are pure
//! runtime, as in the paper. Expected shape: MSA-1P highest; Hash-1P and
//! MCA-1P lower with the same trend; SS:SAXPY approaches MSA-1P at large
//! scale; SS:GB schemes poor on small inputs.

use bench::{banner, schemes, HarnessArgs};
use graph_algos::{prepare_triangle_input, triangle_count};
use profile::table::{write_text, Table};
use sparse::CscMatrix;

fn main() {
    let args = HarnessArgs::parse();
    banner("fig10", "Triangle Counting GFLOPS vs R-MAT scale", &args);
    let max_scale = args.pick(10u32, 14, 20);
    let schemes = schemes::tc_vs_ssgb();
    let mut table = Table::new(&["scale", "scheme", "gflops", "secs", "triangles"]);
    let mut series: Vec<(String, Vec<(f64, f64)>)> =
        schemes.iter().map(|s| (s.label(), Vec::new())).collect();
    for scale in 8..=max_scale {
        let adj =
            graphs::to_undirected_simple(&graphs::rmat(scale, graphs::RmatParams::default(), 42));
        let l = prepare_triangle_input(&adj);
        let lc = CscMatrix::from_csr(&l);
        let useful = 2 * masked_spgemm::flops_masked(&l, &l, &l);
        for (si, s) in schemes.iter().enumerate() {
            let (count, m) =
                profile::best_of(args.reps, || triangle_count(*s, &l, &lc).expect("plain"));
            let gflops = useful as f64 / m.secs() / 1e9;
            series[si].1.push((scale as f64, gflops));
            table.push(vec![
                scale.to_string(),
                s.label(),
                format!("{gflops:.4}"),
                format!("{:.6e}", m.secs()),
                count.to_string(),
            ]);
        }
        println!("scale {scale} done (useful flops = {useful})");
    }
    println!("{}", table.to_console());
    let chart = profile::ascii::line_chart("fig10: TC GFLOPS vs scale", &series, 60, 16);
    println!("{chart}");
    table
        .write_csv(args.out_dir.join("fig10_tc_scale.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("fig10_tc_scale.txt"), &chart).expect("write txt");
}
