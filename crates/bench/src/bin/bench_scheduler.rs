//! Scheduler harness: the persistent work-claiming pool vs. the
//! per-call-spawn scheduler it replaced, measured on the three workloads
//! the pool was built for and emitted machine-readable.
//!
//! Workloads (each at widths 1, 2, 4; `pool` = persistent workers with
//! chunk claiming, `spawn` = the legacy `std::thread::scope` scheduler the
//! shim kept behind [`rayon::set_legacy_spawn_scheduler`]):
//!
//! * **repeat_loop** — the same small masked multiply issued repeatedly;
//!   per-call thread spawn/join latency dominates, which is exactly what
//!   persistent parked workers eliminate;
//! * **skewed_kernel** — one masked multiply over an R-MAT graph
//!   (`a = 0.57` hub rows); chunk claiming keeps workers busy where static
//!   splitting strands them behind the hub chunk;
//! * **batch** — an engine op batch drained by pool workers
//!   ([`engine::Context::run_batch_collect`]) vs. the old scope-spawned
//!   worker loop reproduced inline.
//!
//! Samples are taken through the criterion shim (min/median/mean); all
//! measurements are written to `BENCH_scheduler.json` (repo root when run
//! from there) so the perf trajectory is tracked in-tree, plus a console
//! ratio table. Run with
//! `cargo run --release -p bench --bin bench_scheduler [--quick]`.

use std::time::Duration;

use bench::{banner, legacy_spawn_batch, scheduler_workloads, HarnessArgs};
use criterion::{reports_to_json, take_reports, BenchmarkId, Criterion};
use engine::Context;
use masked_spgemm::{masked_spgemm, thread_pool, Algorithm, Phases};
use profile::table::{write_text, Table};
use sparse::{CsrMatrix, PlusTimes};

const WIDTHS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "bench_scheduler",
        "persistent pool vs per-call spawn scheduling",
        &args,
    );
    let sr = PlusTimes::<f64>::new();

    // Small repeated multiply: fixed size regardless of preset — the
    // point is the per-call overhead, not the kernel throughput.
    let (rep_a, rep_m) = scheduler_workloads::repeat_pair();
    let rep_iters = args.pick(6usize, 10, 20);

    // Skewed kernel: R-MAT with the Graph500 a=0.57 hub distribution.
    let skew_scale = args.pick(9u32, 10, 12);
    let skew = scheduler_workloads::skew_graph(skew_scale);

    // Batch: independent multiplies, one per mask.
    let batch_n = args.pick(8usize, 16, 32);
    let batch_a = rep_a.clone();
    let batch_masks: Vec<CsrMatrix<f64>> =
        scheduler_workloads::batch_masks(batch_a.nrows(), batch_n);

    let mut criterion = Criterion::default().configure_from_args();
    let mut group = criterion.benchmark_group("scheduler");
    group
        .sample_size(args.reps.max(15))
        .warm_up_time(Duration::from_millis(50))
        .measurement_time(Duration::from_secs(2));

    for &width in &WIDTHS {
        let pool = thread_pool(width);
        for legacy in [false, true] {
            let mode = if legacy { "spawn" } else { "pool" };
            rayon::set_legacy_spawn_scheduler(legacy);

            group.bench_with_input(
                BenchmarkId::new("repeat_loop", format!("{mode}/w{width}")),
                &rep_iters,
                |b, &iters| {
                    b.iter(|| {
                        pool.install(|| {
                            let mut nnz = 0usize;
                            for _ in 0..iters {
                                let c = masked_spgemm(
                                    Algorithm::Msa,
                                    Phases::One,
                                    false,
                                    sr,
                                    &rep_m,
                                    &rep_a,
                                    &rep_a,
                                )
                                .expect("dims agree");
                                nnz = c.nnz();
                            }
                            nnz
                        })
                    })
                },
            );

            group.bench_with_input(
                BenchmarkId::new("skewed_kernel", format!("{mode}/w{width}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        pool.install(|| {
                            masked_spgemm(
                                Algorithm::Msa,
                                Phases::One,
                                false,
                                sr,
                                &skew,
                                &skew,
                                &skew,
                            )
                            .expect("dims agree")
                            .nnz()
                        })
                    })
                },
            );
        }
        rayon::set_legacy_spawn_scheduler(false);

        // Batch: engine (ops drained by the context's pool workers) vs.
        // the old scope-spawned worker loop, both forced to serial MSA
        // per product with per-worker reused scratch.
        let ctx = Context::with_threads(width);
        let ha = ctx.insert(batch_a.clone());
        let ops: Vec<engine::MaskedOp> = batch_masks
            .iter()
            .map(|m| {
                ctx.op(ctx.insert(m.clone()), ha, ha)
                    .algorithm(Algorithm::Msa)
                    .build()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("batch", format!("pool/w{width}")),
            &(),
            |b, _| {
                b.iter(|| {
                    ctx.run_batch_collect(&ops)
                        .into_iter()
                        .map(|r| r.expect("well-shaped").nnz())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch", format!("spawn/w{width}")),
            &(),
            |b, _| b.iter(|| legacy_spawn_batch(&batch_masks, &batch_a, width)),
        );
    }
    group.finish();

    let reports = take_reports();
    let json = reports_to_json(&reports);
    // Anchored to the repo root (two levels above this crate's manifest),
    // not the process CWD — the committed record must update no matter
    // where the binary is launched from.
    let record = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scheduler.json");
    std::fs::write(&record, format!("{json}\n")).expect("write BENCH_scheduler.json");
    println!(
        "wrote {} ({} measurements)",
        record.display(),
        reports.len()
    );

    // Console ratio table: pool time / spawn time per workload × width
    // (< 1.0 means the pool wins).
    let find = |name: &str| -> Option<f64> {
        reports
            .iter()
            .find(|r| r.label == name)
            .map(|r| r.sample.min.as_secs_f64())
    };
    let mut table = Table::new(&["workload", "width", "pool_s", "spawn_s", "pool/spawn"]);
    for workload in ["repeat_loop", "skewed_kernel", "batch"] {
        for &width in &WIDTHS {
            let (Some(pool_s), Some(spawn_s)) = (
                find(&format!("{workload}/pool/w{width}")),
                find(&format!("{workload}/spawn/w{width}")),
            ) else {
                continue;
            };
            table.push(vec![
                workload.to_string(),
                width.to_string(),
                format!("{pool_s:.6}"),
                format!("{spawn_s:.6}"),
                format!("{:.3}", pool_s / spawn_s),
            ]);
        }
    }
    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("bench_scheduler.csv"))
        .expect("write csv");
    write_text(
        args.out_dir.join("bench_scheduler.txt"),
        &table.to_console(),
    )
    .expect("write txt");
}
