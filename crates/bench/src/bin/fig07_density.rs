//! Figure 7: best-performing scheme as a function of mask density (x) and
//! input density (y), on Erdős-Rényi inputs, for a range of dimensions.
//!
//! Reproduces the heat maps of paper Figure 7. Expected shape: `Inner` wins
//! the bottom-right (mask ≪ inputs), `Heap`/`HeapDot` the top-left (inputs
//! ≪ mask), `MSA`/`Hash` the comparable-density middle (MSA on smaller
//! dimensions, Hash on larger).

use bench::{banner, er_with_csc, schemes, time_masked_spgemm, HarnessArgs};
use profile::ascii::category_grid;
use profile::table::{write_text, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("fig07", "best scheme vs mask/input density (ER)", &args);

    let lg_dims: &[u32] = match args.preset {
        bench::Preset::Quick => &[10],
        bench::Preset::Default => &[12],
        bench::Preset::Full => &[12, 14, 16, 18, 20, 22],
    };
    let input_degrees: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let mask_degrees: &[f64] = &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];
    let schemes = schemes::ours_1p();

    let mut table = Table::new(&["dim", "deg_inputs", "deg_mask", "winner", "best_secs"]);
    let mut report = String::new();
    for &lg in lg_dims {
        let n = 1usize << lg;
        // winner[input_degree][mask_degree]
        let mut winners: Vec<Vec<char>> = Vec::new();
        for (di, &deg_in) in input_degrees.iter().enumerate() {
            let (a, _) = er_with_csc(n, deg_in, 100 + di as u64);
            let (b, b_csc) = er_with_csc(n, deg_in, 200 + di as u64);
            let mut row = Vec::new();
            for (dm, &deg_m) in mask_degrees.iter().enumerate() {
                let mask = graphs::erdos_renyi(n, deg_m.min(n as f64), 300 + dm as u64);
                let mut best: Option<(usize, f64)> = None;
                for (si, s) in schemes.iter().enumerate() {
                    let t = time_masked_spgemm(*s, args.reps, &mask, false, &a, &b, &b_csc)
                        .expect("plain mask supported by all");
                    if best.is_none_or(|(_, bt)| t < bt) {
                        best = Some((si, t));
                    }
                }
                let (wi, wt) = best.expect("at least one scheme");
                row.push(bench::scheme_char(schemes[wi]));
                table.push(vec![
                    format!("2^{lg}"),
                    format!("{deg_in}"),
                    format!("{deg_m}"),
                    schemes[wi].label(),
                    format!("{wt:.6e}"),
                ]);
            }
            winners.push(row);
        }
        let rows: Vec<String> = input_degrees.iter().map(|d| format!("deg={d}")).collect();
        let cols: Vec<String> = mask_degrees.iter().map(|d| format!("m={d}")).collect();
        let grid = category_grid(
            &format!("fig07: winners at dimension 2^{lg} (row = input degree, col = mask degree)"),
            &rows,
            &cols,
            |r, c| winners[r][c],
        );
        println!("{grid}");
        report.push_str(&grid);
        report.push('\n');
    }
    println!("legend: M=MSA  H=Hash  C=MCA  P=Heap  D=HeapDot  I=Inner");
    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("fig07_density.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("fig07_density.txt"), &report).expect("write txt");
}
