//! Figure 8: Triangle Counting performance profiles of our 12 schemes
//! (6 algorithms × {1P, 2P}) over the evaluation suite.
//!
//! Expected shape (paper): MSA-1P best overall (~65% of cases), MCA-1P
//! next, then Inner/Hash; heap-based worst; every 1P beats its 2P.

use bench::{banner, schemes, HarnessArgs};
use graph_algos::{prepare_triangle_input, triangle_count};
use sparse::CscMatrix;

fn main() {
    let args = HarnessArgs::parse();
    banner("fig08", "Triangle Counting profiles — our schemes", &args);
    let max_n = args.pick(1 << 10, 1 << 14, usize::MAX);
    let schemes = schemes::ours_all();
    let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
    bench::run_suite_profile(&args, "fig08", &labels, max_n, |_, adj| {
        let l = prepare_triangle_input(adj);
        let lc = CscMatrix::from_csr(&l);
        schemes
            .iter()
            .map(|s| {
                let (count, m) = profile::best_of(args.reps, || {
                    triangle_count(*s, &l, &lc).expect("plain mask")
                });
                std::hint::black_box(count);
                Some(m.secs())
            })
            .collect()
    });
}
