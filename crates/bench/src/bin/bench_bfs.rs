//! BFS harness: engine-planned direction-optimized traversal measured
//! push vs. pull vs. auto at widths 1/2/4, emitted machine-readable.
//!
//! The workload is the paper's motivating masked computation — per-level
//! frontier expansion `next = ¬visited ⊙ (frontier · A)` — run three ways
//! through the engine's vector descriptors ([`graph_algos::bfs_auto`]):
//! **push** forces the scatter kernel (`MSA`), **pull** forces the
//! per-unvisited-vertex dot products (`Inner`), and **auto** leaves the
//! per-level switch to the planner's vector cost model (Beamer's heuristic
//! as a plan decision). The direct `masked_spgevm` loop
//! ([`fn@graph_algos::bfs`]) is measured alongside as the engine-free
//! baseline.
//!
//! Vector products are single-row and always run serially, so width mostly
//! exercises context plumbing (the pool exists but is not dispatched);
//! the committed record keeps that flat profile honest over time.
//!
//! Samples go through the criterion shim (min/median/mean); all
//! measurements are written to `BENCH_bfs.json` at the repo root so the
//! perf trajectory is tracked in-tree, plus a console ratio table. Run
//! with `cargo run --release -p bench --bin bench_bfs [--quick]`.

use std::time::Duration;

use bench::{banner, HarnessArgs};
use criterion::{reports_to_json, take_reports, BenchmarkId, Criterion};
use engine::Context;
use graph_algos::{bfs, bfs_auto, Direction};
use profile::table::{write_text, Table};

const WIDTHS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "bench_bfs",
        "engine-planned BFS push vs pull vs auto",
        &args,
    );

    let scale = args.pick(9u32, 11, 13);
    let adj = graphs::to_undirected_simple(&graphs::rmat(scale, graphs::RmatParams::default(), 21));
    println!(
        "R-MAT scale {scale}: {} vertices, {} edges",
        adj.nrows(),
        adj.nnz() / 2
    );
    let expect = graph_algos::bfs::bfs_reference(&adj, 0);

    let mut criterion = Criterion::default().configure_from_args();
    let mut group = criterion.benchmark_group("bfs");
    group
        .sample_size(args.reps.max(10))
        .warm_up_time(Duration::from_millis(50))
        .measurement_time(Duration::from_secs(2));

    for &width in &WIDTHS {
        let ctx = Context::with_threads(width);
        ctx.calibrate();
        let h = ctx.insert(adj.clone());
        for (name, policy) in [
            ("push", Direction::Push),
            ("pull", Direction::Pull),
            ("auto", Direction::Auto),
        ] {
            // Correctness before timing: every policy must agree with the
            // serial reference.
            let levels = bfs_auto(&ctx, h, 0, policy).expect("well-shaped").levels;
            assert_eq!(levels, expect, "{name} diverged at width {width}");
            group.bench_with_input(
                BenchmarkId::new("engine", format!("{name}/w{width}")),
                &(),
                |b, _| b.iter(|| bfs_auto(&ctx, h, 0, policy).expect("well-shaped").depth),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("direct", format!("auto/w{width}")),
            &(),
            |b, _| b.iter(|| bfs(&adj, 0, Direction::Auto).depth),
        );
    }
    group.finish();

    // Resident registry bytes after one full traversal: the f64-canonical
    // registration (historical `insert`; the bool lane is a cached cast
    // aux) vs. native-bool registration (`insert_bool`; the bool lane IS
    // the storage — ISSUE 5's inversion). Entry bytes come from the typed
    // registry, aux bytes from the byte-budgeted cache ledger.
    let measure_registry = |native: bool| -> (usize, usize) {
        let ctx = Context::with_threads(1);
        let h = if native {
            ctx.insert_bool(adj.map_values(|v| v != 0.0))
        } else {
            ctx.insert(adj.clone())
        };
        let r = bfs_auto(&ctx, h, 0, Direction::Auto).expect("well-shaped");
        assert_eq!(r.levels, expect, "registry probe diverged");
        (ctx.stats(h).bytes, ctx.aux_cache_stats().bytes)
    };
    let (canon_entry, canon_aux) = measure_registry(false);
    let (native_entry, native_aux) = measure_registry(true);
    println!(
        "registry bytes after BFS: f64-canonical entry {canon_entry} + aux {canon_aux} = {} \
         | native-bool entry {native_entry} + aux {native_aux} = {} (resident ratio {:.2})",
        canon_entry + canon_aux,
        native_entry + native_aux,
        (canon_entry + canon_aux) as f64 / (native_entry + native_aux).max(1) as f64,
    );

    let reports = take_reports();
    let json = reports_to_json(&reports);
    // Anchored to the repo root (two levels above this crate's manifest),
    // not the process CWD — the committed record must update no matter
    // where the binary is launched from.
    let record = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_bfs.json");
    let payload = format!(
        "{{\n\"reports\": {json},\n\"registry_bytes\": {{\n  \
         \"f64_canonical\": {{\"entry\": {canon_entry}, \"aux\": {canon_aux}}},\n  \
         \"native_bool\": {{\"entry\": {native_entry}, \"aux\": {native_aux}}}\n}}\n}}\n"
    );
    std::fs::write(&record, payload).expect("write BENCH_bfs.json");
    println!(
        "wrote {} ({} measurements + registry bytes)",
        record.display(),
        reports.len()
    );

    // Console table: per-policy engine times and the engine/direct ratio.
    let find = |name: &str| -> Option<f64> {
        reports
            .iter()
            .find(|r| r.label == name)
            .map(|r| r.sample.min.as_secs_f64())
    };
    let mut table = Table::new(&[
        "width",
        "push_s",
        "pull_s",
        "auto_s",
        "direct_s",
        "auto/direct",
    ]);
    for &width in &WIDTHS {
        let (Some(push), Some(pull), Some(auto), Some(direct)) = (
            find(&format!("engine/push/w{width}")),
            find(&format!("engine/pull/w{width}")),
            find(&format!("engine/auto/w{width}")),
            find(&format!("direct/auto/w{width}")),
        ) else {
            continue;
        };
        table.push(vec![
            width.to_string(),
            format!("{push:.6}"),
            format!("{pull:.6}"),
            format!("{auto:.6}"),
            format!("{direct:.6}"),
            format!("{:.3}", auto / direct),
        ]);
    }
    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("bench_bfs.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("bench_bfs.txt"), &table.to_console()).expect("write txt");
}
