//! Figure 12: k-truss (k = 5) performance profiles of our schemes over the
//! evaluation suite (the paper drops its largest graph, wb-edu, for
//! runtime; our default preset caps at 2^14 vertices similarly).
//!
//! Expected shape (paper): MSA strongest, Inner competitive (the mask gets
//! sparser as pruning proceeds), heap-based noncompetitive, 1P > 2P.

use bench::{banner, schemes, HarnessArgs};
use graph_algos::ktruss;

fn main() {
    let args = HarnessArgs::parse();
    banner("fig12", "k-truss (k=5) profiles — our schemes", &args);
    let max_n = args.pick(1 << 10, 1 << 13, usize::MAX);
    let schemes = schemes::ours_all();
    let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
    bench::run_suite_profile(&args, "fig12", &labels, max_n, |_, adj| {
        schemes
            .iter()
            .map(|s| {
                let (r, m) =
                    profile::best_of(args.reps, || ktruss(*s, adj, 5).expect("plain mask"));
                std::hint::black_box(r.truss.nnz());
                Some(m.secs())
            })
            .collect()
    });
}
