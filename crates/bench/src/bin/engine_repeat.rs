//! Engine acceptance harness: repeated-multiply loops, k-truss peeling,
//! heterogeneous streamed batches, and the pool scheduler — engine path
//! vs. direct calls, persistent pool vs. per-call spawn.
//!
//! Four engine-vs-direct measurements, each best-of-`reps`:
//!
//! 1. **repeat** — the same masked multiply issued `iters` times the way
//!    the scheme-based callers do it (CSC copy + selection per call)
//!    vs. through the engine's `OpBuilder` (auxiliaries cached on handles);
//! 2. **ktruss** — the full peeling loop, `Scheme` path vs. `ktruss_auto`;
//!    the harness also checks that peel planning hits the
//!    fingerprint-keyed plan cache (≥ 1 plan reused across versions);
//! 3. **batch** — `batch` independent multiplies, sequential direct calls
//!    vs. `Context::run_batch_collect` (inter-op parallel, per-worker
//!    scratch);
//! 4. **mixed stream** — one heterogeneous batch mixing `plus_times` and
//!    `plus_pair` ops, streamed through a `for_each_result` sink that
//!    consumes and drops each output, vs. sequential direct calls;
//! 5. **bfs levels** (ISSUE 4) — the engine-planned `bfs_auto` (per-level
//!    vector descriptors, complemented visited mask, planner-chosen
//!    direction, cached boolean adjacency views) vs. the direct
//!    `masked_spgevm` loop; the engine must be no slower and its per-level
//!    vector planning must hit the fingerprint cache.
//!
//! Then the scheduler checks (ISSUE 3):
//!
//! 6. **pool vs spawn** — repeat-loop, skewed-kernel (R-MAT `a = 0.57`
//!    hub rows), and batch workloads at a forced width of 4, persistent
//!    pool vs. the legacy per-call `std::thread::scope` scheduler. The
//!    pool must be ≥10% faster on the repeat and skewed loops (where
//!    per-call spawn/join latency dominates) and no worse than the
//!    10%-tolerance bar on the batch;
//! 7. **skew regression guard** — the parallel kernel on the skewed graph
//!    must land within 1.5× of what ideal static splitting predicts from
//!    a balanced same-work input (balanced time scaled by the flop
//!    ratio); a scheduler that let the hub chunk strand a worker would
//!    blow through this.
//!
//! The acceptance bar (ISSUE 1, carried forward): the engine path must be
//! no slower than direct calls on the repeated-multiply loops. The harness
//! prints a ratio table and exits nonzero if the engine regresses beyond
//! 10%, if peel planning shows no fingerprint-cache reuse, or if a
//! scheduler check fails.
//!
//! Run with `cargo run --release -p bench --bin engine_repeat [--quick]`.

use bench::{banner, legacy_spawn_batch, scheduler_workloads, HarnessArgs};
use engine::{Context, SemiringKind};
use graph_algos::{bfs, bfs_auto, ktruss, ktruss_auto, Direction, Scheme};
use masked_spgemm::{masked_spgemm, Algorithm, Phases};
use profile::table::{write_text, Table};
use sparse::{CscMatrix, CsrMatrix, PlusPair, PlusTimes};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "engine_repeat",
        "engine vs direct on repeated workloads",
        &args,
    );
    let n = args.pick(1 << 10, 1 << 12, 1 << 14);
    let iters = args.pick(10usize, 30, 100);
    let batch = args.pick(8usize, 32, 128);

    let ctx = Context::new();
    let cal = ctx.calibrate();
    println!(
        "calibrated cost model: msa_overhead={:.1} heap_factor={:.2}",
        cal.config.msa_overhead, cal.config.heap_factor
    );

    let adj = graphs::to_undirected_simple(&graphs::rmat(
        (n as f64).log2() as u32,
        graphs::RmatParams::default(),
        7,
    ));
    let l = graph_algos::prepare_triangle_input(&adj);
    let sr = PlusPair::<f64, f64, u64>::new();

    let mut table = Table::new(&["workload", "direct_s", "engine_s", "engine/direct"]);
    let mut worst_ratio = 0.0f64;
    let mut record = |table: &mut Table, name: &str, direct: f64, engine: f64| {
        let ratio = engine / direct;
        worst_ratio = worst_ratio.max(ratio);
        table.push(vec![
            name.to_string(),
            format!("{direct:.6}"),
            format!("{engine:.6}"),
            format!("{ratio:.3}"),
        ]);
    };

    // 1. Repeated identical multiply: the scheme caller's obligatory
    //    per-call CSC copy vs. handle-cached auxiliaries.
    let scheme = Scheme::Ours(Algorithm::Msa, Phases::One);
    let (_, direct) = profile::best_of(args.reps, || {
        let mut nnz = 0usize;
        for _ in 0..iters {
            let lc = CscMatrix::from_csr(&l); // what scheme.run callers build
            let c = scheme.run(sr, &l, false, &l, &l, &lc).expect("plain");
            nnz = c.nnz();
        }
        nnz
    });
    let h = ctx.insert(l.clone());
    let (_, engine) = profile::best_of(args.reps, || {
        let mut nnz = 0usize;
        for _ in 0..iters {
            let c = ctx
                .op(h, h, h)
                .semiring(SemiringKind::PlusPair)
                .run()
                .expect("plain");
            nnz = c.nnz();
        }
        nnz
    });
    record(
        &mut table,
        "repeat_tc_multiply",
        direct.secs(),
        engine.secs(),
    );

    // 2. Full k-truss peeling loop. The engine side must show plan reuse
    //    across peeled versions (fingerprint-cache hits).
    let (_, direct) = profile::best_of(args.reps, || {
        ktruss(scheme, &adj, 5).expect("plain").iterations
    });
    let ha = ctx.insert(adj.clone());
    let hits_before = ctx.plan_cache_stats().hits;
    let (peel_iters, engine) = profile::best_of(args.reps, || {
        ktruss_auto(&ctx, ha, 5).expect("plain").iterations
    });
    let peel_plan_hits = ctx.plan_cache_stats().hits - hits_before;
    record(&mut table, "ktruss_k5_loop", direct.secs(), engine.secs());
    println!(
        "ktruss peel planning: {peel_iters} iterations/run, \
         {peel_plan_hits} fingerprint-cache hits across all reps"
    );

    // 3. Independent homogeneous batch: one multiply per distinct mask.
    let srt = PlusTimes::<f64>::new();
    let masks: Vec<_> = (0..batch)
        .map(|i| graphs::erdos_renyi(l.nrows(), 8.0, 100 + i as u64))
        .collect();
    let (_, direct) = profile::best_of(args.reps, || {
        let lc = CscMatrix::from_csr(&l);
        let mut total = 0usize;
        for m in &masks {
            total += scheme.run(srt, m, false, &l, &l, &lc).expect("plain").nnz();
        }
        total
    });
    let mask_handles: Vec<_> = masks.iter().map(|m| ctx.insert(m.clone())).collect();
    let ops: Vec<engine::MaskedOp> = mask_handles
        .iter()
        .map(|&m| ctx.op(m, h, h).build())
        .collect();
    let (_, engine) = profile::best_of(args.reps, || {
        ctx.run_batch_collect(&ops)
            .into_iter()
            .map(|r| r.expect("plain").nnz())
            .sum::<usize>()
    });
    record(
        &mut table,
        "independent_batch",
        direct.secs(),
        engine.secs(),
    );

    // 4. Heterogeneous streamed batch: the same masks, but alternating
    //    plus_times and plus_pair ops in ONE batch, consumed by a sink
    //    that keeps only a running nnz total (outputs are dropped as
    //    workers finish — never all resident). The direct side runs the
    //    same mixed workload sequentially with typed semirings.
    let (_, direct) = profile::best_of(args.reps, || {
        let lc = CscMatrix::from_csr(&l);
        let mut total = 0usize;
        for (i, m) in masks.iter().enumerate() {
            total += if i % 2 == 0 {
                scheme.run(srt, m, false, &l, &l, &lc).expect("plain").nnz()
            } else {
                scheme.run(sr, m, false, &l, &l, &lc).expect("plain").nnz()
            };
        }
        total
    });
    let mixed_ops: Vec<engine::MaskedOp> = mask_handles
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let kind = if i % 2 == 0 {
                SemiringKind::PlusTimes
            } else {
                SemiringKind::PlusPair
            };
            ctx.op(m, h, h).semiring(kind).build()
        })
        .collect();
    let (_, engine) = profile::best_of(args.reps, || {
        let mut total = 0usize;
        ctx.for_each_result(&mixed_ops, |_i, r: Result<sparse::CsrMatrix<f64>, _>| {
            total += r.expect("plain").nnz();
        });
        total
    });
    record(
        &mut table,
        "mixed_semiring_stream",
        direct.secs(),
        engine.secs(),
    );

    // Sanity: the dyn-semiring stream computes the same nnz totals as the
    // typed direct path.
    {
        let lc = CscMatrix::from_csr(&l);
        let mut direct_nnz = vec![0usize; masks.len()];
        for (i, m) in masks.iter().enumerate() {
            direct_nnz[i] = if i % 2 == 0 {
                scheme.run(srt, m, false, &l, &l, &lc).expect("plain").nnz()
            } else {
                scheme.run(sr, m, false, &l, &l, &lc).expect("plain").nnz()
            };
        }
        let mut mismatches = 0usize;
        ctx.for_each_result(
            &mixed_ops,
            |i: usize, r: Result<sparse::CsrMatrix<f64>, _>| {
                if r.expect("plain").nnz() != direct_nnz[i] {
                    mismatches += 1;
                }
            },
        );
        assert_eq!(mismatches, 0, "mixed stream disagrees with direct calls");
    }

    // 5. BFS-level workload (ISSUE 4): the engine-planned traversal —
    //    per-level VecMat descriptors with a complemented visited mask,
    //    direction chosen by the planner's vector cost model — vs. the
    //    direct masked_spgevm loop, which re-derives the boolean adjacency
    //    and its CSC copy on every call. The engine side must show
    //    fingerprint-cache reuse across levels/repetitions.
    let bfs_scale = args.pick(9u32, 11, 13);
    let bfs_adj =
        graphs::to_undirected_simple(&graphs::rmat(bfs_scale, graphs::RmatParams::default(), 21));
    let (direct_levels, direct) =
        profile::best_of(args.reps, || bfs(&bfs_adj, 0, Direction::Auto).levels);
    let hb = ctx.insert(bfs_adj.clone());
    let bfs_hits_before = ctx.plan_cache_stats().hits;
    let (engine_levels, engine) = profile::best_of(args.reps, || {
        bfs_auto(&ctx, hb, 0, Direction::Auto)
            .expect("well-shaped traversal")
            .levels
    });
    let bfs_plan_hits = ctx.plan_cache_stats().hits - bfs_hits_before;
    assert_eq!(
        engine_levels, direct_levels,
        "engine-planned BFS diverged from the direct loop"
    );
    assert_eq!(
        engine_levels,
        graph_algos::bfs::bfs_reference(&bfs_adj, 0),
        "BFS levels diverged from the serial reference"
    );
    record(&mut table, "bfs_levels", direct.secs(), engine.secs());
    let bfs_depth = engine_levels.iter().max().copied().unwrap_or(0);
    println!(
        "bfs planning: {bfs_plan_hits} fingerprint-cache hits across \
         {bfs_depth} levels x {} reps",
        args.reps
    );

    // 5b. Repeat-BFS (ISSUE 5 satellite): back-to-back traversals of the
    //     same graph, where the engine's per-lane SpGEVM kernel scratch is
    //     reused across every level of every traversal (the direct loop
    //     rebuilds its accumulator per level). Gated like every repeated
    //     workload: engine must be no slower than direct.
    let bfs_loops = 5usize;
    let (_, direct) = profile::best_of(args.reps, || {
        let mut depth = 0usize;
        for _ in 0..bfs_loops {
            depth = bfs(&bfs_adj, 0, Direction::Auto).depth;
        }
        depth
    });
    let (_, engine) = profile::best_of(args.reps, || {
        let mut depth = 0usize;
        for _ in 0..bfs_loops {
            depth = bfs_auto(&ctx, hb, 0, Direction::Auto)
                .expect("well-shaped traversal")
                .depth;
        }
        depth
    });
    record(&mut table, "bfs_repeat_loop", direct.secs(), engine.secs());

    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("engine_repeat.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("engine_repeat.txt"), &table.to_console()).expect("write txt");

    println!("worst engine/direct ratio: {worst_ratio:.3}");
    let mut failed = false;
    if worst_ratio > 1.10 {
        eprintln!("FAIL: engine repeated-multiply path regressed beyond 10%");
        failed = true;
    }
    if peel_iters >= 2 && peel_plan_hits == 0 {
        eprintln!("FAIL: k-truss peeling never hit the fingerprint plan cache");
        failed = true;
    }
    if bfs_depth >= 2 && args.reps >= 2 && bfs_plan_hits == 0 {
        eprintln!("FAIL: BFS level planning never hit the fingerprint plan cache");
        failed = true;
    }

    // 6. Scheduler: persistent pool vs per-call spawn at a forced width of
    //    4 (widths differ in scheduling, not results — the serial path is
    //    shared, so width 1 would compare identical code). Sizes are fixed
    //    rather than preset-scaled: the quantity under test is per-call
    //    dispatch overhead and claim balancing, not kernel throughput.
    let sr_t = PlusTimes::<f64>::new();
    let sched_reps = args.reps.max(5);
    let pool4 = masked_spgemm::thread_pool(4);
    let (rep_a, rep_m) = scheduler_workloads::repeat_pair();
    // Scale 7 keeps each skewed multiply small enough that per-call
    // dispatch overhead is the dominant term the gate discriminates on.
    let skew = scheduler_workloads::skew_graph(7);
    let time_loop = |mask: &CsrMatrix<f64>, a: &CsrMatrix<f64>, iters: usize, legacy: bool| {
        rayon::set_legacy_spawn_scheduler(legacy);
        let (_, m) = profile::best_of(sched_reps, || {
            pool4.install(|| {
                let mut nnz = 0usize;
                for _ in 0..iters {
                    nnz = masked_spgemm(Algorithm::Msa, Phases::One, false, sr_t, mask, a, a)
                        .expect("dims agree")
                        .nnz();
                }
                nnz
            })
        });
        rayon::set_legacy_spawn_scheduler(false);
        m.secs()
    };
    let repeat_pool = time_loop(&rep_m, &rep_a, 10, false);
    let repeat_spawn = time_loop(&rep_m, &rep_a, 10, true);
    let skew_pool = time_loop(&skew, &skew, 12, false);
    let skew_spawn = time_loop(&skew, &skew, 12, true);

    // Batch workload: engine pool-drained batch vs the pre-pool scoped
    // worker loop, same erased semiring and fixed algorithm on both sides.
    let bctx = Context::with_threads(4);
    let bh = bctx.insert(rep_a.clone());
    let bmasks: Vec<CsrMatrix<f64>> = scheduler_workloads::batch_masks(rep_a.nrows(), 16);
    let bops: Vec<engine::MaskedOp> = bmasks
        .iter()
        .map(|m| {
            bctx.op(bctx.insert(m.clone()), bh, bh)
                .algorithm(Algorithm::Msa)
                .build()
        })
        .collect();
    let (_, m) = profile::best_of(sched_reps, || {
        bctx.run_batch_collect(&bops)
            .into_iter()
            .map(|r| r.expect("well-shaped").nnz())
            .sum::<usize>()
    });
    let batch_pool = m.secs();
    let (_, m) = profile::best_of(sched_reps, || legacy_spawn_batch(&bmasks, &rep_a, 4));
    let batch_spawn = m.secs();

    let mut sched_table = Table::new(&["workload", "pool_s", "spawn_s", "pool/spawn", "bar"]);
    for (name, pool_s, spawn_s, bar) in [
        ("repeat_loop", repeat_pool, repeat_spawn, 0.90),
        ("skewed_loop", skew_pool, skew_spawn, 0.90),
        ("batch", batch_pool, batch_spawn, 1.10),
    ] {
        let ratio = pool_s / spawn_s;
        sched_table.push(vec![
            name.to_string(),
            format!("{pool_s:.6}"),
            format!("{spawn_s:.6}"),
            format!("{ratio:.3}"),
            format!("<= {bar:.2}"),
        ]);
        if ratio > bar {
            eprintln!("FAIL: scheduler workload {name}: pool/spawn = {ratio:.3} > {bar:.2}");
            failed = true;
        }
    }
    println!("{}", sched_table.to_console());
    sched_table
        .write_csv(args.out_dir.join("engine_repeat_scheduler.csv"))
        .expect("write csv");

    // 7. Skew regression guard: scale a balanced input's parallel time by
    //    the flop ratio to get what ideal static splitting would predict,
    //    and require the skewed kernel to land within 1.5× of it. Uses a
    //    larger hub graph than the loop above so the single-multiply
    //    timings are well out of the noise floor.
    let guard_scale = args.pick(9u32, 10, 12);
    let skew = scheduler_workloads::skew_graph(guard_scale);
    let balanced = scheduler_workloads::balanced_counterpart(&skew);
    let time_one = |m: &CsrMatrix<f64>| {
        let (_, t) = profile::best_of(sched_reps, || {
            pool4.install(|| {
                masked_spgemm(Algorithm::Msa, Phases::One, false, sr_t, m, m, m)
                    .expect("dims agree")
                    .nnz()
            })
        });
        t.secs()
    };
    let t_bal = time_one(&balanced);
    let t_skew = time_one(&skew);
    let flops_bal = masked_spgemm::flops(&balanced, &balanced).max(1) as f64;
    let flops_skew = masked_spgemm::flops(&skew, &skew).max(1) as f64;
    let predicted = t_bal * flops_skew / flops_bal;
    let skew_factor = t_skew / predicted;
    println!(
        "skew guard: skewed {t_skew:.6}s vs ideal-static prediction {predicted:.6}s \
         (flops {flops_skew:.0} vs {flops_bal:.0} balanced) — factor {skew_factor:.3}"
    );
    if skew_factor > 1.5 {
        eprintln!(
            "FAIL: skewed kernel is {skew_factor:.3}x the ideal static-splitting \
             prediction (> 1.5x) — load balancing regressed"
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("engine repeated-multiply loops are no slower than direct calls ✓");
    println!("engine-planned BFS is no slower than the direct masked_spgevm loop ✓");
    println!("k-truss peel planning reuses fingerprint-cached plans ✓");
    println!("BFS level planning reuses fingerprint-cached vector plans ✓");
    println!("pool scheduler beats per-call spawn on repeat/skew, holds parity on batch ✓");
    println!("skewed kernel stays within 1.5x of ideal static splitting ✓");
}
