//! Engine acceptance harness: repeated-multiply loops and batch execution,
//! engine path vs. direct calls.
//!
//! Three measurements, each best-of-`reps`:
//!
//! 1. **repeat** — the same masked multiply issued `iters` times the way
//!    the scheme-based callers do it (CSC copy + selection per call)
//!    vs. through `engine::Context` (auxiliaries cached on handles);
//! 2. **ktruss** — the full peeling loop, `Scheme` path vs. `ktruss_auto`;
//! 3. **batch** — `batch` independent multiplies, sequential direct calls
//!    vs. `Context::run_batch` (inter-op parallel, per-worker scratch).
//!
//! The acceptance bar (ISSUE 1): the engine path must be no slower than
//! direct calls on the repeated-multiply loops. The harness prints a ratio
//! table and exits nonzero if the engine regresses beyond 10%.
//!
//! Run with `cargo run --release -p bench --bin engine_repeat [--quick]`.

use bench::{banner, HarnessArgs};
use engine::{BatchOp, Context};
use graph_algos::{ktruss, ktruss_auto, Scheme};
use masked_spgemm::{Algorithm, Phases};
use profile::table::{write_text, Table};
use sparse::{CscMatrix, PlusPair, PlusTimes};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "engine_repeat",
        "engine vs direct on repeated workloads",
        &args,
    );
    let n = args.pick(1 << 10, 1 << 12, 1 << 14);
    let iters = args.pick(10usize, 30, 100);
    let batch = args.pick(8usize, 32, 128);

    let ctx = Context::new();
    let cal = ctx.calibrate();
    println!(
        "calibrated cost model: msa_overhead={:.1} heap_factor={:.2}",
        cal.config.msa_overhead, cal.config.heap_factor
    );

    let adj = graphs::to_undirected_simple(&graphs::rmat(
        (n as f64).log2() as u32,
        graphs::RmatParams::default(),
        7,
    ));
    let l = graph_algos::prepare_triangle_input(&adj);
    let sr = PlusPair::<f64, f64, u64>::new();

    let mut table = Table::new(&["workload", "direct_s", "engine_s", "engine/direct"]);
    let mut worst_ratio = 0.0f64;
    let mut record = |table: &mut Table, name: &str, direct: f64, engine: f64| {
        let ratio = engine / direct;
        worst_ratio = worst_ratio.max(ratio);
        table.push(vec![
            name.to_string(),
            format!("{direct:.6}"),
            format!("{engine:.6}"),
            format!("{ratio:.3}"),
        ]);
    };

    // 1. Repeated identical multiply: the scheme caller's obligatory
    //    per-call CSC copy vs. handle-cached auxiliaries.
    let scheme = Scheme::Ours(Algorithm::Msa, Phases::One);
    let (_, direct) = profile::best_of(args.reps, || {
        let mut nnz = 0usize;
        for _ in 0..iters {
            let lc = CscMatrix::from_csr(&l); // what scheme.run callers build
            let c = scheme.run(sr, &l, false, &l, &l, &lc).expect("plain");
            nnz = c.nnz();
        }
        nnz
    });
    let h = ctx.insert(l.clone());
    let (_, engine) = profile::best_of(args.reps, || {
        let mut nnz = 0usize;
        for _ in 0..iters {
            let c = ctx.masked_spgemm(sr, h, false, h, h).expect("plain");
            nnz = c.nnz();
        }
        nnz
    });
    record(
        &mut table,
        "repeat_tc_multiply",
        direct.secs(),
        engine.secs(),
    );

    // 2. Full k-truss peeling loop.
    let (_, direct) = profile::best_of(args.reps, || {
        ktruss(scheme, &adj, 5).expect("plain").iterations
    });
    let ha = ctx.insert(adj.clone());
    let (_, engine) = profile::best_of(args.reps, || {
        ktruss_auto(&ctx, ha, 5).expect("plain").iterations
    });
    record(&mut table, "ktruss_k5_loop", direct.secs(), engine.secs());

    // 3. Independent batch: one multiply per distinct mask.
    let srt = PlusTimes::<f64>::new();
    let masks: Vec<_> = (0..batch)
        .map(|i| graphs::erdos_renyi(l.nrows(), 8.0, 100 + i as u64))
        .collect();
    let (_, direct) = profile::best_of(args.reps, || {
        let lc = CscMatrix::from_csr(&l);
        let mut total = 0usize;
        for m in &masks {
            total += scheme.run(srt, m, false, &l, &l, &lc).expect("plain").nnz();
        }
        total
    });
    let mask_handles: Vec<_> = masks.iter().map(|m| ctx.insert(m.clone())).collect();
    let ops: Vec<BatchOp> = mask_handles
        .iter()
        .map(|&m| BatchOp {
            mask: m,
            complemented: false,
            a: h,
            b: h,
        })
        .collect();
    let (_, engine) = profile::best_of(args.reps, || {
        ctx.run_batch(srt, &ops)
            .into_iter()
            .map(|r| r.expect("plain").nnz())
            .sum::<usize>()
    });
    record(
        &mut table,
        "independent_batch",
        direct.secs(),
        engine.secs(),
    );

    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("engine_repeat.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("engine_repeat.txt"), &table.to_console()).expect("write txt");

    println!("worst engine/direct ratio: {worst_ratio:.3}");
    if worst_ratio > 1.10 {
        eprintln!("FAIL: engine repeated-multiply path regressed beyond 10%");
        std::process::exit(1);
    }
    println!("engine repeated-multiply loops are no slower than direct calls ✓");
}
