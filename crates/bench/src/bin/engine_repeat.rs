//! Engine acceptance harness: repeated-multiply loops, k-truss peeling,
//! and heterogeneous streamed batches — engine path vs. direct calls.
//!
//! Four measurements, each best-of-`reps`:
//!
//! 1. **repeat** — the same masked multiply issued `iters` times the way
//!    the scheme-based callers do it (CSC copy + selection per call)
//!    vs. through the engine's `OpBuilder` (auxiliaries cached on handles);
//! 2. **ktruss** — the full peeling loop, `Scheme` path vs. `ktruss_auto`;
//!    the harness also checks that peel planning hits the
//!    fingerprint-keyed plan cache (≥ 1 plan reused across versions);
//! 3. **batch** — `batch` independent multiplies, sequential direct calls
//!    vs. `Context::run_batch_collect` (inter-op parallel, per-worker
//!    scratch);
//! 4. **mixed stream** — one heterogeneous batch mixing `plus_times` and
//!    `plus_pair` ops, streamed through a `for_each_result` sink that
//!    consumes and drops each output, vs. sequential direct calls.
//!
//! The acceptance bar (ISSUE 1, carried forward): the engine path must be
//! no slower than direct calls on the repeated-multiply loops. The harness
//! prints a ratio table and exits nonzero if the engine regresses beyond
//! 10% or if peel planning shows no fingerprint-cache reuse.
//!
//! Run with `cargo run --release -p bench --bin engine_repeat [--quick]`.

use bench::{banner, HarnessArgs};
use engine::{Context, SemiringKind};
use graph_algos::{ktruss, ktruss_auto, Scheme};
use masked_spgemm::{Algorithm, Phases};
use profile::table::{write_text, Table};
use sparse::{CscMatrix, PlusPair, PlusTimes};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "engine_repeat",
        "engine vs direct on repeated workloads",
        &args,
    );
    let n = args.pick(1 << 10, 1 << 12, 1 << 14);
    let iters = args.pick(10usize, 30, 100);
    let batch = args.pick(8usize, 32, 128);

    let ctx = Context::new();
    let cal = ctx.calibrate();
    println!(
        "calibrated cost model: msa_overhead={:.1} heap_factor={:.2}",
        cal.config.msa_overhead, cal.config.heap_factor
    );

    let adj = graphs::to_undirected_simple(&graphs::rmat(
        (n as f64).log2() as u32,
        graphs::RmatParams::default(),
        7,
    ));
    let l = graph_algos::prepare_triangle_input(&adj);
    let sr = PlusPair::<f64, f64, u64>::new();

    let mut table = Table::new(&["workload", "direct_s", "engine_s", "engine/direct"]);
    let mut worst_ratio = 0.0f64;
    let mut record = |table: &mut Table, name: &str, direct: f64, engine: f64| {
        let ratio = engine / direct;
        worst_ratio = worst_ratio.max(ratio);
        table.push(vec![
            name.to_string(),
            format!("{direct:.6}"),
            format!("{engine:.6}"),
            format!("{ratio:.3}"),
        ]);
    };

    // 1. Repeated identical multiply: the scheme caller's obligatory
    //    per-call CSC copy vs. handle-cached auxiliaries.
    let scheme = Scheme::Ours(Algorithm::Msa, Phases::One);
    let (_, direct) = profile::best_of(args.reps, || {
        let mut nnz = 0usize;
        for _ in 0..iters {
            let lc = CscMatrix::from_csr(&l); // what scheme.run callers build
            let c = scheme.run(sr, &l, false, &l, &l, &lc).expect("plain");
            nnz = c.nnz();
        }
        nnz
    });
    let h = ctx.insert(l.clone());
    let (_, engine) = profile::best_of(args.reps, || {
        let mut nnz = 0usize;
        for _ in 0..iters {
            let c = ctx
                .op(h, h, h)
                .semiring(SemiringKind::PlusPair)
                .run()
                .expect("plain");
            nnz = c.nnz();
        }
        nnz
    });
    record(
        &mut table,
        "repeat_tc_multiply",
        direct.secs(),
        engine.secs(),
    );

    // 2. Full k-truss peeling loop. The engine side must show plan reuse
    //    across peeled versions (fingerprint-cache hits).
    let (_, direct) = profile::best_of(args.reps, || {
        ktruss(scheme, &adj, 5).expect("plain").iterations
    });
    let ha = ctx.insert(adj.clone());
    let hits_before = ctx.plan_cache_stats().hits;
    let (peel_iters, engine) = profile::best_of(args.reps, || {
        ktruss_auto(&ctx, ha, 5).expect("plain").iterations
    });
    let peel_plan_hits = ctx.plan_cache_stats().hits - hits_before;
    record(&mut table, "ktruss_k5_loop", direct.secs(), engine.secs());
    println!(
        "ktruss peel planning: {peel_iters} iterations/run, \
         {peel_plan_hits} fingerprint-cache hits across all reps"
    );

    // 3. Independent homogeneous batch: one multiply per distinct mask.
    let srt = PlusTimes::<f64>::new();
    let masks: Vec<_> = (0..batch)
        .map(|i| graphs::erdos_renyi(l.nrows(), 8.0, 100 + i as u64))
        .collect();
    let (_, direct) = profile::best_of(args.reps, || {
        let lc = CscMatrix::from_csr(&l);
        let mut total = 0usize;
        for m in &masks {
            total += scheme.run(srt, m, false, &l, &l, &lc).expect("plain").nnz();
        }
        total
    });
    let mask_handles: Vec<_> = masks.iter().map(|m| ctx.insert(m.clone())).collect();
    let ops: Vec<engine::MaskedOp> = mask_handles
        .iter()
        .map(|&m| ctx.op(m, h, h).build())
        .collect();
    let (_, engine) = profile::best_of(args.reps, || {
        ctx.run_batch_collect(&ops)
            .into_iter()
            .map(|r| r.expect("plain").nnz())
            .sum::<usize>()
    });
    record(
        &mut table,
        "independent_batch",
        direct.secs(),
        engine.secs(),
    );

    // 4. Heterogeneous streamed batch: the same masks, but alternating
    //    plus_times and plus_pair ops in ONE batch, consumed by a sink
    //    that keeps only a running nnz total (outputs are dropped as
    //    workers finish — never all resident). The direct side runs the
    //    same mixed workload sequentially with typed semirings.
    let (_, direct) = profile::best_of(args.reps, || {
        let lc = CscMatrix::from_csr(&l);
        let mut total = 0usize;
        for (i, m) in masks.iter().enumerate() {
            total += if i % 2 == 0 {
                scheme.run(srt, m, false, &l, &l, &lc).expect("plain").nnz()
            } else {
                scheme.run(sr, m, false, &l, &l, &lc).expect("plain").nnz()
            };
        }
        total
    });
    let mixed_ops: Vec<engine::MaskedOp> = mask_handles
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let kind = if i % 2 == 0 {
                SemiringKind::PlusTimes
            } else {
                SemiringKind::PlusPair
            };
            ctx.op(m, h, h).semiring(kind).build()
        })
        .collect();
    let (_, engine) = profile::best_of(args.reps, || {
        let mut total = 0usize;
        ctx.for_each_result(&mixed_ops, |_i, r: Result<sparse::CsrMatrix<f64>, _>| {
            total += r.expect("plain").nnz();
        });
        total
    });
    record(
        &mut table,
        "mixed_semiring_stream",
        direct.secs(),
        engine.secs(),
    );

    // Sanity: the dyn-semiring stream computes the same nnz totals as the
    // typed direct path.
    {
        let lc = CscMatrix::from_csr(&l);
        let mut direct_nnz = vec![0usize; masks.len()];
        for (i, m) in masks.iter().enumerate() {
            direct_nnz[i] = if i % 2 == 0 {
                scheme.run(srt, m, false, &l, &l, &lc).expect("plain").nnz()
            } else {
                scheme.run(sr, m, false, &l, &l, &lc).expect("plain").nnz()
            };
        }
        let mut mismatches = 0usize;
        ctx.for_each_result(
            &mixed_ops,
            |i: usize, r: Result<sparse::CsrMatrix<f64>, _>| {
                if r.expect("plain").nnz() != direct_nnz[i] {
                    mismatches += 1;
                }
            },
        );
        assert_eq!(mismatches, 0, "mixed stream disagrees with direct calls");
    }

    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("engine_repeat.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("engine_repeat.txt"), &table.to_console()).expect("write txt");

    println!("worst engine/direct ratio: {worst_ratio:.3}");
    let mut failed = false;
    if worst_ratio > 1.10 {
        eprintln!("FAIL: engine repeated-multiply path regressed beyond 10%");
        failed = true;
    }
    if peel_iters >= 2 && peel_plan_hits == 0 {
        eprintln!("FAIL: k-truss peeling never hit the fingerprint plan cache");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("engine repeated-multiply loops are no slower than direct calls ✓");
    println!("k-truss peel planning reuses fingerprint-cached plans ✓");
}
