//! The evaluation-suite property table — the stand-in for the paper's
//! pointer to Nagasaka et al. Table 2 (properties of the 26 SuiteSparse
//! graphs). Prints vertices, edges, degree statistics and triangle counts
//! of every suite member, and writes `results/table02_suite.csv`.

use bench::{banner, HarnessArgs};
use graph_algos::reference::triangle_count_reference;
use graph_algos::{prepare_triangle_input, triangle_count, Scheme};
use masked_spgemm::{Algorithm, Phases};
use profile::table::Table;
use sparse::CscMatrix;

fn main() {
    let args = HarnessArgs::parse();
    banner("table02", "evaluation suite properties", &args);
    let max_n = args.pick(1 << 10, usize::MAX, usize::MAX);
    let mut table = Table::new(&[
        "graph",
        "vertices",
        "edges",
        "avg_deg",
        "max_deg",
        "triangles",
    ]);
    for g in graphs::suite() {
        if g.nvertices() > max_n {
            continue;
        }
        let adj = g.build();
        let n = adj.nrows();
        let edges = adj.nnz() / 2;
        let max_deg = (0..n).map(|i| adj.row_nnz(i)).max().unwrap_or(0);
        // Count triangles with the fast masked multiply; spot-check tiny
        // graphs against the brute-force reference.
        let l = prepare_triangle_input(&adj);
        let lc = CscMatrix::from_csr(&l);
        let tri =
            triangle_count(Scheme::Ours(Algorithm::Msa, Phases::One), &l, &lc).expect("plain mask");
        if n <= 1 << 10 {
            assert_eq!(tri, triangle_count_reference(&adj), "{}", g.name);
        }
        table.push(vec![
            g.name.to_string(),
            n.to_string(),
            edges.to_string(),
            format!("{:.2}", adj.nnz() as f64 / n as f64),
            max_deg.to_string(),
            tri.to_string(),
        ]);
    }
    println!("{}", table.to_console());
    table
        .write_csv(args.out_dir.join("table02_suite.csv"))
        .expect("write csv");
}
