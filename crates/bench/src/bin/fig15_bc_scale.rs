//! Figure 15: Betweenness Centrality MTEPS as the R-MAT scale grows.
//!
//! Metric (paper, citing HPCS SSCA#2): `batch_size × num_edges /
//! total_time`, in millions. The paper uses batch 512; the default preset
//! uses 64 to stay laptop-sized (`--full` restores 512). Expected shape:
//! push-based schemes (MSA-1P, Hash-1P, SS:SAXPY) grow their MTEPS with
//! scale; pull-based ones (Inner, SS:DOT) are measured at small scales only
//! — with a dense complemented mask they are prohibitively slow, exactly as
//! the paper reports.

use bench::{banner, Algorithm, HarnessArgs, Phases, Scheme};
use graph_algos::betweenness_centrality;
use profile::table::{write_text, Table};
use sparse::Idx;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "fig15",
        "Betweenness Centrality MTEPS vs R-MAT scale",
        &args,
    );
    let max_scale = args.pick(9u32, 12, 20);
    let batch = args.pick(16usize, 64, 512);
    // Pull-based schemes only below this scale (prohibitively slow above).
    let pull_cap = args.pick(9u32, 10, 12);
    let push: Vec<Scheme> = vec![
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
        Scheme::SsSaxpy,
    ];
    let pull: Vec<Scheme> = vec![Scheme::Ours(Algorithm::Inner, Phases::One), Scheme::SsDot];
    let all: Vec<Scheme> = push.iter().chain(pull.iter()).copied().collect();

    let mut table = Table::new(&["scale", "scheme", "mteps", "secs", "depth"]);
    let mut series: Vec<(String, Vec<(f64, f64)>)> =
        all.iter().map(|s| (s.label(), Vec::new())).collect();
    for scale in 8..=max_scale {
        let adj =
            graphs::to_undirected_simple(&graphs::rmat(scale, graphs::RmatParams::default(), 42));
        let n = adj.nrows();
        let nedges = adj.nnz() as f64 / 2.0;
        // Deterministic source batch spread over the vertex range.
        let sources: Vec<Idx> = (0..batch.min(n))
            .map(|i| ((i * 2654435761) % n) as Idx)
            .collect();
        for (si, s) in all.iter().enumerate() {
            let is_pull = si >= push.len();
            if is_pull && scale > pull_cap {
                continue;
            }
            let (r, m) = profile::best_of(args.reps, || {
                betweenness_centrality(*s, &adj, &sources).expect("complement-capable")
            });
            let mteps = sources.len() as f64 * nedges / m.secs() / 1e6;
            series[si].1.push((scale as f64, mteps));
            table.push(vec![
                scale.to_string(),
                s.label(),
                format!("{mteps:.3}"),
                format!("{:.6e}", m.secs()),
                r.depth.to_string(),
            ]);
        }
        println!("scale {scale} done (batch {})", sources.len());
    }
    println!("{}", table.to_console());
    let chart = profile::ascii::line_chart("fig15: BC MTEPS vs scale", &series, 60, 16);
    println!("{chart}");
    table
        .write_csv(args.out_dir.join("fig15_bc_scale.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("fig15_bc_scale.txt"), &chart).expect("write txt");
}
