//! Figure 11: Triangle Counting strong scaling (GFLOPS vs thread count) on
//! an R-MAT graph.
//!
//! Note for this reproduction: on a single-core container every pool size
//! sees one hardware thread, so the curves are flat — the harness still
//! exercises the full multi-threaded code path (per-pool rayon installs,
//! per-worker accumulator scratch) and on a multicore host reproduces the
//! paper's near-linear scaling.

use bench::{banner, schemes, HarnessArgs};
use graph_algos::{prepare_triangle_input, triangle_count};
use profile::table::{write_text, Table};
use sparse::CscMatrix;

fn main() {
    let args = HarnessArgs::parse();
    banner("fig11", "Triangle Counting strong scaling", &args);
    let scale = args.pick(10u32, 14, 20);
    let max_threads = args.pick(4usize, 8, 32);
    let schemes = schemes::tc_vs_ssgb();
    let adj = graphs::to_undirected_simple(&graphs::rmat(scale, graphs::RmatParams::default(), 42));
    let l = prepare_triangle_input(&adj);
    let lc = CscMatrix::from_csr(&l);
    let useful = 2 * masked_spgemm::flops_masked(&l, &l, &l);
    println!(
        "R-MAT scale {scale}: nnz(L)={} useful flops={useful}",
        l.nnz()
    );

    let mut table = Table::new(&["threads", "scheme", "gflops", "secs"]);
    let mut series: Vec<(String, Vec<(f64, f64)>)> =
        schemes.iter().map(|s| (s.label(), Vec::new())).collect();
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = masked_spgemm::thread_pool(threads);
        for (si, s) in schemes.iter().enumerate() {
            let (count, m) = profile::best_of(args.reps, || {
                pool.install(|| triangle_count(*s, &l, &lc).expect("plain"))
            });
            std::hint::black_box(count);
            let gflops = useful as f64 / m.secs() / 1e9;
            series[si].1.push((threads as f64, gflops));
            table.push(vec![
                threads.to_string(),
                s.label(),
                format!("{gflops:.4}"),
                format!("{:.6e}", m.secs()),
            ]);
        }
        println!("threads={threads} done");
        threads *= 2;
    }
    println!("{}", table.to_console());
    let chart = profile::ascii::line_chart("fig11: TC GFLOPS vs threads", &series, 60, 16);
    println!("{chart}");
    table
        .write_csv(args.out_dir.join("fig11_tc_threads.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("fig11_tc_threads.txt"), &chart).expect("write txt");
}
