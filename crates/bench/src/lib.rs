#![warn(missing_docs)]

//! Shared plumbing for the figure harnesses in `src/bin/`.
//!
//! Every evaluation figure of the paper has one binary
//! (`cargo run --release -p bench --bin fig08_tc_profiles`, etc.) that
//! prints the series the paper plots and writes CSV + ASCII renditions to
//! `results/`. Binaries accept:
//!
//! * `--quick` — shrunken sizes for smoke tests / CI;
//! * `--full`  — paper-scale sizes (hours on a laptop, like the original);
//! * `--reps N` — timed repetitions per measurement (default 3);
//! * `--out DIR` — output directory (default `results/`).
//!
//! Default (no flag) sizes are chosen to finish in minutes on one core
//! while preserving the figures' comparative shape.

use std::path::PathBuf;

use sparse::{CscMatrix, CsrMatrix};

pub use graph_algos::Scheme;
pub use masked_spgemm::{Algorithm, Phases};

/// Problem-size preset selected on the command line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Smoke-test sizes (seconds).
    Quick,
    /// Default sizes (minutes on one core).
    Default,
    /// Paper-scale sizes.
    Full,
}

/// Parsed harness command line.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Which size preset to run.
    pub preset: Preset,
    /// Timed repetitions per measurement.
    pub reps: usize,
    /// Output directory for CSV/ASCII artifacts.
    pub out_dir: PathBuf,
}

impl HarnessArgs {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut preset = Preset::Default;
        let mut reps = 3usize;
        let mut out_dir = PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => preset = Preset::Quick,
                "--full" => preset = Preset::Full,
                "--reps" => {
                    reps = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--reps needs a number"));
                }
                "--out" => {
                    out_dir = args.next().map(PathBuf::from).unwrap_or_else(|| {
                        usage("--out needs a directory");
                    });
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        HarnessArgs {
            preset,
            reps,
            out_dir,
        }
    }

    /// Pick one of three values by preset.
    pub fn pick<T: Copy>(&self, quick: T, default: T, full: T) -> T {
        match self.preset {
            Preset::Quick => quick,
            Preset::Default => default,
            Preset::Full => full,
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <harness> [--quick|--full] [--reps N] [--out DIR]");
    std::process::exit(2);
}

/// The scheme lists the paper's figures use.
pub mod schemes {
    use super::{Algorithm, Phases, Scheme};

    /// All 12 of our schemes (Figures 8, 12).
    pub fn ours_all() -> Vec<Scheme> {
        Scheme::all_ours()
    }

    /// The 1P variants of all six algorithms (Figure 7 sweeps algorithms).
    pub fn ours_1p() -> Vec<Scheme> {
        Algorithm::ALL
            .into_iter()
            .map(|a| Scheme::Ours(a, Phases::One))
            .collect()
    }

    /// Figure 9's comparison set: our best three vs. SS:GB.
    pub fn tc_vs_ssgb() -> Vec<Scheme> {
        vec![
            Scheme::Ours(Algorithm::Msa, Phases::One),
            Scheme::Ours(Algorithm::Hash, Phases::One),
            Scheme::Ours(Algorithm::Mca, Phases::One),
            Scheme::SsSaxpy,
            Scheme::SsDot,
        ]
    }

    /// Figure 13's comparison set: our best four vs. SS:GB.
    pub fn ktruss_vs_ssgb() -> Vec<Scheme> {
        vec![
            Scheme::Ours(Algorithm::Msa, Phases::One),
            Scheme::Ours(Algorithm::Inner, Phases::One),
            Scheme::Ours(Algorithm::Hash, Phases::One),
            Scheme::Ours(Algorithm::Mca, Phases::One),
            Scheme::SsSaxpy,
            Scheme::SsDot,
        ]
    }

    /// Figure 16's comparison set (complement-capable, heap/pull excluded
    /// as prohibitively slow in the paper; we still measure Inner/SS:DOT in
    /// fig15 at small scale).
    pub fn bc_profiles() -> Vec<Scheme> {
        vec![
            Scheme::Ours(Algorithm::Msa, Phases::One),
            Scheme::Ours(Algorithm::Hash, Phases::One),
            Scheme::Ours(Algorithm::Msa, Phases::Two),
            Scheme::Ours(Algorithm::Hash, Phases::Two),
            Scheme::SsSaxpy,
        ]
    }
}

/// One-character code for heat-map cells (Figure 7):
/// `M`SA, `H`ash, m`C`a, hea`P`, heapDot=`D`, `I`nner, `S`axpy, `.`=ss:dot.
pub fn scheme_char(s: Scheme) -> char {
    match s {
        Scheme::Ours(Algorithm::Msa, _) => 'M',
        Scheme::Ours(Algorithm::Hash, _) => 'H',
        Scheme::Ours(Algorithm::Mca, _) => 'C',
        Scheme::Ours(Algorithm::Heap, _) => 'P',
        Scheme::Ours(Algorithm::HeapDot, _) => 'D',
        Scheme::Ours(Algorithm::Inner, _) => 'I',
        Scheme::SsSaxpy => 'S',
        Scheme::SsDot => '.',
        Scheme::Hybrid => 'Y',
    }
}

/// Time one Masked SpGEMM `M ⊙ (A·B)` under `scheme`: best-of-`reps`
/// seconds, or `None` if the scheme cannot run this configuration.
pub fn time_masked_spgemm(
    scheme: Scheme,
    reps: usize,
    mask: &CsrMatrix<f64>,
    complemented: bool,
    a: &CsrMatrix<f64>,
    b: &CsrMatrix<f64>,
    b_csc: &CscMatrix<f64>,
) -> Option<f64> {
    let sr = sparse::PlusTimes::<f64>::new();
    if complemented && !scheme.supports_complement() {
        return None;
    }
    let (first, m) = profile::best_of(reps, || {
        scheme
            .run(sr, mask, complemented, a, b, b_csc)
            .expect("scheme accepted configuration")
    });
    std::hint::black_box(first.nnz());
    Some(m.secs())
}

/// Convenience: ER matrix + its CSC copy.
pub fn er_with_csc(n: usize, deg: f64, seed: u64) -> (CsrMatrix<f64>, CscMatrix<f64>) {
    let a = graphs::erdos_renyi(n, deg, seed);
    let c = CscMatrix::from_csr(&a);
    (a, c)
}

/// Scheduler-harness workloads shared by `bench_scheduler` (the committed
/// benchmark record) and the gating section of `engine_repeat` (the CI
/// acceptance bar), so the recorded numbers and the enforced numbers are
/// always measurements of the same graphs — sizes, seeds, and degree
/// parameters cannot drift between the two.
pub mod scheduler_workloads {
    use sparse::CsrMatrix;

    /// Small repeated-multiply pair `(A, mask)`. Deliberately fixed-size:
    /// the quantity under test is per-call dispatch overhead, not kernel
    /// throughput.
    pub fn repeat_pair() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        (
            graphs::erdos_renyi(512, 8.0, 11),
            graphs::erdos_renyi(512, 12.0, 12),
        )
    }

    /// Undirected R-MAT hub graph (Graph500 `a = 0.57` skew) at `scale`.
    pub fn skew_graph(scale: u32) -> CsrMatrix<f64> {
        graphs::to_undirected_simple(&graphs::rmat(scale, graphs::RmatParams::default(), 13))
    }

    /// Independent batch masks over an `nrows`-vertex operand.
    pub fn batch_masks(nrows: usize, count: usize) -> Vec<CsrMatrix<f64>> {
        (0..count)
            .map(|i| graphs::erdos_renyi(nrows, 8.0, 100 + i as u64))
            .collect()
    }

    /// Balanced (Erdős–Rényi) counterpart of a skew graph with the same
    /// shape and average degree — the reference input for the skew
    /// regression guard's ideal-static-splitting prediction.
    pub fn balanced_counterpart(skew: &CsrMatrix<f64>) -> CsrMatrix<f64> {
        let avg_deg = skew.nnz() as f64 / skew.nrows() as f64;
        graphs::erdos_renyi(skew.nrows(), avg_deg, 34)
    }
}

/// The batch executor exactly as it worked before the pool migration: one
/// freshly spawned scoped thread per worker, an atomic op cursor, and mpsc
/// delivery to the caller — kept as the measured baseline for the
/// scheduler harnesses (`bench_scheduler`, `engine_repeat`). Runs `M_i ⊙
/// (A·A)` per mask on the engine's erased plus-times semiring with fixed
/// MSA, so engine-batch comparisons differ only in scheduling; returns the
/// summed output nnz.
pub fn legacy_spawn_batch(masks: &[CsrMatrix<f64>], a: &CsrMatrix<f64>, workers: usize) -> usize {
    use masked_spgemm::{DynSemiring, ScratchSet, SemiringKind};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let sr = DynSemiring::new(SemiringKind::PlusTimes);
    let cursor = AtomicUsize::new(0);
    let workers = workers.min(masks.len()).max(1);
    let (tx, rx) = mpsc::channel::<(usize, usize)>();
    std::thread::scope(|scope| {
        let cursor = &cursor;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut scratch: ScratchSet<DynSemiring> = ScratchSet::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= masks.len() {
                        break;
                    }
                    let c = scratch
                        .run(Algorithm::Msa, false, sr, &masks[i], a, a, None)
                        .expect("dims agree");
                    if tx.send((i, c.nnz())).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        rx.iter().map(|(_, nnz)| nnz).sum()
    })
}

/// Run a performance-profile experiment over the evaluation suite:
/// materialize every suite graph up to `max_n` vertices, call `measure`
/// (which returns one best-of-reps time per scheme, `None` = excluded),
/// then print win rates + profile curves and write
/// `results/<fig>_times.csv` and `results/<fig>_profile.csv`.
pub fn run_suite_profile(
    args: &HarnessArgs,
    fig: &str,
    scheme_labels: &[String],
    max_n: usize,
    mut measure: impl FnMut(&str, &CsrMatrix<f64>) -> Vec<Option<f64>>,
) {
    let mut matrix = profile::ProfileMatrix::new(scheme_labels.to_vec());
    for g in graphs::suite() {
        if g.nvertices() > max_n {
            println!(
                "  [skip {} — {} vertices > cap {max_n}]",
                g.name,
                g.nvertices()
            );
            continue;
        }
        let adj = g.build();
        println!("  case {}: n={} nnz={}", g.name, adj.nrows(), adj.nnz());
        let times = measure(g.name, &adj);
        matrix.push_case(g.name, times);
    }
    let prof = matrix.profile();
    let mut table = profile::table::Table::new(&["scheme", "win_rate", "within_1.2x", "within_2x"]);
    for (s, label) in prof.schemes.iter().enumerate() {
        table.push(vec![
            label.clone(),
            format!("{:.3}", prof.win_rate(s)),
            format!("{:.3}", prof.fraction_within(s, 1.2)),
            format!("{:.3}", prof.fraction_within(s, 2.0)),
        ]);
    }
    println!("{}", table.to_console());
    println!("best scheme: {}", prof.schemes[prof.best_scheme()]);
    let taus: Vec<f64> = (0..=28).map(|i| 1.0 + i as f64 * 0.05).collect();
    let curves = prof.curves(&taus);
    let series: Vec<(String, Vec<(f64, f64)>)> = prof.schemes.iter().cloned().zip(curves).collect();
    let chart = profile::ascii::line_chart(
        &format!(
            "{fig}: performance profile (x = runtime relative to best, y = fraction of cases)"
        ),
        &series,
        60,
        16,
    );
    println!("{chart}");
    profile::table::write_text(
        args.out_dir.join(format!("{fig}_times.csv")),
        &matrix.to_csv(),
    )
    .expect("write times csv");
    profile::table::write_text(
        args.out_dir.join(format!("{fig}_profile.csv")),
        &prof.to_csv(),
    )
    .expect("write profile csv");
    profile::table::write_text(args.out_dir.join(format!("{fig}_profile.txt")), &chart)
        .expect("write profile txt");
}

/// Standard banner each harness prints first.
pub fn banner(fig: &str, what: &str, args: &HarnessArgs) {
    println!("=== {fig}: {what} ===");
    println!(
        "preset={:?} reps={} threads={} out={}",
        args.preset,
        args.reps,
        rayon::current_num_threads(),
        args.out_dir.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_pick() {
        let a = HarnessArgs {
            preset: Preset::Quick,
            reps: 1,
            out_dir: PathBuf::from("x"),
        };
        assert_eq!(a.pick(1, 2, 3), 1);
        let a = HarnessArgs {
            preset: Preset::Full,
            ..a
        };
        assert_eq!(a.pick(1, 2, 3), 3);
    }

    #[test]
    fn scheme_lists_sizes() {
        assert_eq!(schemes::ours_all().len(), 12);
        assert_eq!(schemes::ours_1p().len(), 6);
        assert_eq!(schemes::tc_vs_ssgb().len(), 5);
    }

    #[test]
    fn timing_returns_none_for_unsupported() {
        let (a, ac) = er_with_csc(16, 2.0, 1);
        let m = graphs::erdos_renyi(16, 2.0, 2);
        let s = Scheme::Ours(Algorithm::Mca, Phases::One);
        assert!(time_masked_spgemm(s, 1, &m, true, &a, &a, &ac).is_none());
        assert!(time_masked_spgemm(s, 1, &m, false, &a, &a, &ac).is_some());
    }
}
