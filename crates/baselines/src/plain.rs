//! Unmasked Gustavson SpGEMM and the compute-then-mask strawman.
//!
//! This is Algorithm 1 of the paper with a generation-stamped dense SPA,
//! row-parallel via rayon — the classical plain SpGEMM every masked
//! algorithm is trying to beat. [`plain_then_mask`] then applies the mask
//! as an element-wise intersection *after* the full product exists,
//! wasting all work on masked-out entries (Figure 1).

use rayon::prelude::*;
use sparse::ewise::ewise_mult;
use sparse::{CsrMatrix, Idx, Semiring};

/// Dense sparse-accumulator (SPA) scratch for one thread.
struct Spa<C> {
    values: Vec<C>,
    stamps: Vec<u32>,
    gen: u32,
    nonzeros: Vec<Idx>,
}

impl<C: Copy + Default> Spa<C> {
    fn new(ncols: usize) -> Self {
        Spa {
            values: vec![C::default(); ncols],
            stamps: vec![0; ncols],
            gen: 0,
            nonzeros: Vec::new(),
        }
    }

    #[inline]
    fn reset(&mut self) {
        if self.gen == u32::MAX {
            self.stamps.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.nonzeros.clear();
    }

    #[inline(always)]
    fn insert(&mut self, key: Idx, v: C, add: impl FnOnce(C, C) -> C) {
        let k = key as usize;
        if self.stamps[k] == self.gen {
            self.values[k] = add(self.values[k], v);
        } else {
            self.stamps[k] = self.gen;
            self.values[k] = v;
            self.nonzeros.push(key);
        }
    }
}

/// Row-parallel unmasked SpGEMM (Gustavson, SPA accumulator).
pub fn plain_spgemm<S>(sr: S, a: &CsrMatrix<S::A>, b: &CsrMatrix<S::B>) -> CsrMatrix<S::C>
where
    S: Semiring,
    S::C: Default + Send + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let n_chunks = rayon::current_num_threads().max(1) * 16;
    let chunk = nrows.div_ceil(n_chunks).max(1);
    let starts: Vec<usize> = (0..nrows).step_by(chunk).collect();
    type ChunkOut<C> = (Vec<usize>, Vec<Idx>, Vec<C>);
    let outs: Vec<ChunkOut<S::C>> = starts
        .par_iter()
        .map(|&s| {
            let e = (s + chunk).min(nrows);
            let mut spa = Spa::<S::C>::new(ncols);
            let mut counts = Vec::with_capacity(e - s);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for i in s..e {
                spa.reset();
                let (ac, av) = a.row(i);
                for (&k, &avk) in ac.iter().zip(av) {
                    let (bc, bv) = b.row(k as usize);
                    for (&j, &bvj) in bc.iter().zip(bv) {
                        spa.insert(j, sr.mul(avk, bvj), |x, y| sr.add(x, y));
                    }
                }
                spa.nonzeros.sort_unstable();
                let before = cols.len();
                for &j in &spa.nonzeros {
                    cols.push(j);
                    vals.push(spa.values[j as usize]);
                }
                counts.push(cols.len() - before);
            }
            (counts, cols, vals)
        })
        .collect();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let total: usize = outs.iter().map(|(_, c, _)| c.len()).sum();
    let mut colidx = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (counts, cols, vals) in outs {
        colidx.extend_from_slice(&cols);
        values.extend(vals);
        for &c in &counts {
            rowptr.push(rowptr.last().unwrap() + c);
        }
    }
    CsrMatrix::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Figure 1's strawman: full SpGEMM, then apply the mask element-wise.
pub fn plain_then_mask<S, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    S::C: Default + Send + Sync,
    MT: Sync,
{
    let full = plain_spgemm(sr, a, b);
    ewise_mult(mask_shape_check(mask, &full), &full, |_, v| *v)
}

fn mask_shape_check<'a, MT>(
    mask: &'a CsrMatrix<MT>,
    full: &CsrMatrix<impl Sized>,
) -> &'a CsrMatrix<MT> {
    assert_eq!(mask.shape(), full.shape(), "mask shape mismatch");
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::dense::{reference_masked_spgemm, reference_spgemm};
    use sparse::PlusTimes;

    fn random_csr(nrows: usize, ncols: usize, seed: u64, density_pct: u64) -> CsrMatrix<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rowptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut c = 1.0;
        for _ in 0..nrows {
            for j in 0..ncols {
                if next() % 100 < density_pct {
                    cols.push(j as u32);
                    vals.push(c);
                    c += 1.0;
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    }

    #[test]
    fn plain_matches_reference() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..4 {
            let a = random_csr(14, 11, seed, 35);
            let b = random_csr(11, 17, seed + 100, 35);
            assert_eq!(plain_spgemm(sr, &a, &b), reference_spgemm(sr, &a, &b));
        }
    }

    #[test]
    fn then_mask_matches_masked_reference() {
        let sr = PlusTimes::<f64>::new();
        let a = random_csr(10, 10, 5, 40);
        let b = random_csr(10, 10, 6, 40);
        let m = random_csr(10, 10, 7, 30).pattern();
        assert_eq!(
            plain_then_mask(sr, &m, &a, &b),
            reference_masked_spgemm(sr, &m, false, &a, &b)
        );
    }

    #[test]
    fn empty_operands() {
        let sr = PlusTimes::<f64>::new();
        let a = CsrMatrix::<f64>::empty(3, 2);
        let b = CsrMatrix::<f64>::empty(2, 4);
        assert_eq!(plain_spgemm(sr, &a, &b).nnz(), 0);
    }
}
