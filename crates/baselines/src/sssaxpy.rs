//! `SS:SAXPY`-like baseline: push-based Gustavson accumulation that ignores
//! the mask during the scatter and applies it only at the gather.
//!
//! This mirrors the saxpy-family kernels of SuiteSparse:GraphBLAS as the
//! paper characterizes them: "a push-based algorithm that, depending on the
//! problem, can use SPA-like data structure or a hash table to accumulate
//! values". Crucially, every product of `A(i,k)·B(k,j)` is accumulated —
//! `flops(A·B)` of work — even when the mask would discard the entry, which
//! is precisely the inefficiency the paper's mask-aware accumulators avoid.
//! The heuristic below follows SS:GB's coarse rule: dense-ish rows use the
//! SPA, sparse rows use a hash table.

use rayon::prelude::*;
use sparse::{CsrMatrix, Idx, Semiring};

/// Unmasked-scatter accumulator: SPA (dense) or hash, chosen per matrix by
/// average row flops like SS:GB's saxpy heuristic.
struct SaxpyScratch<C> {
    values: Vec<C>,
    stamps: Vec<u32>,
    gen: u32,
    nonzeros: Vec<Idx>,
}

impl<C: Copy + Default> SaxpyScratch<C> {
    fn new(ncols: usize) -> Self {
        SaxpyScratch {
            values: vec![C::default(); ncols],
            stamps: vec![0; ncols],
            gen: 0,
            nonzeros: Vec::new(),
        }
    }

    #[inline]
    fn reset(&mut self) {
        if self.gen == u32::MAX {
            self.stamps.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.nonzeros.clear();
    }

    #[inline(always)]
    fn insert(&mut self, key: Idx, v: C, add: impl FnOnce(C, C) -> C) {
        let k = key as usize;
        if self.stamps[k] == self.gen {
            self.values[k] = add(self.values[k], v);
        } else {
            self.stamps[k] = self.gen;
            self.values[k] = v;
            self.nonzeros.push(key);
        }
    }
}

/// `SS:SAXPY`-like masked multiply: full Gustavson scatter per row, then a
/// gather filtered through the (possibly complemented) mask.
pub fn ss_saxpy<S, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    S::C: Default + Send + Sync,
    MT: Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    assert_eq!(mask.shape(), (a.nrows(), b.ncols()), "mask shape mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let n_chunks = rayon::current_num_threads().max(1) * 16;
    let chunk = nrows.div_ceil(n_chunks).max(1);
    let starts: Vec<usize> = (0..nrows).step_by(chunk).collect();
    type ChunkOut<C> = (Vec<usize>, Vec<Idx>, Vec<C>);
    let outs: Vec<ChunkOut<S::C>> = starts
        .par_iter()
        .map(|&s| {
            let e = (s + chunk).min(nrows);
            let mut spa = SaxpyScratch::<S::C>::new(ncols);
            let mut counts = Vec::with_capacity(e - s);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for i in s..e {
                spa.reset();
                let (ac, av) = a.row(i);
                // Scatter WITHOUT consulting the mask (the baseline's
                // defining behaviour).
                for (&k, &avk) in ac.iter().zip(av) {
                    let (bc, bv) = b.row(k as usize);
                    for (&j, &bvj) in bc.iter().zip(bv) {
                        spa.insert(j, sr.mul(avk, bvj), |x, y| sr.add(x, y));
                    }
                }
                // Gather with the mask as a post-filter.
                spa.nonzeros.sort_unstable();
                let (mc, _) = mask.row(i);
                let before = cols.len();
                let mut q = 0usize;
                for &j in &spa.nonzeros {
                    while q < mc.len() && mc[q] < j {
                        q += 1;
                    }
                    let in_mask = q < mc.len() && mc[q] == j;
                    if in_mask != complemented {
                        cols.push(j);
                        vals.push(spa.values[j as usize]);
                    }
                }
                counts.push(cols.len() - before);
            }
            (counts, cols, vals)
        })
        .collect();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let total: usize = outs.iter().map(|(_, c, _)| c.len()).sum();
    let mut colidx = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (counts, cols, vals) in outs {
        colidx.extend_from_slice(&cols);
        values.extend(vals);
        for &c in &counts {
            rowptr.push(rowptr.last().unwrap() + c);
        }
    }
    CsrMatrix::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::dense::reference_masked_spgemm;
    use sparse::PlusTimes;

    fn random_csr(nrows: usize, ncols: usize, seed: u64, density_pct: u64) -> CsrMatrix<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rowptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut c = 1.0;
        for _ in 0..nrows {
            for j in 0..ncols {
                if next() % 100 < density_pct {
                    cols.push(j as u32);
                    vals.push(c);
                    c += 1.0;
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    }

    #[test]
    fn saxpy_matches_reference_both_modes() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..4 {
            let a = random_csr(15, 10, seed, 35);
            let b = random_csr(10, 12, seed + 31, 35);
            let m = random_csr(15, 12, seed + 77, 40).pattern();
            for compl in [false, true] {
                assert_eq!(
                    ss_saxpy(sr, &m, compl, &a, &b),
                    reference_masked_spgemm(sr, &m, compl, &a, &b),
                    "seed={seed} compl={compl}"
                );
            }
        }
    }

    #[test]
    fn empty_mask_plain_is_empty_complemented_is_full() {
        let sr = PlusTimes::<f64>::new();
        let a = random_csr(8, 8, 1, 50);
        let b = random_csr(8, 8, 2, 50);
        let m = CsrMatrix::<()>::empty(8, 8);
        assert_eq!(ss_saxpy(sr, &m, false, &a, &b).nnz(), 0);
        let full = crate::plain::plain_spgemm(sr, &a, &b);
        assert_eq!(ss_saxpy(sr, &m, true, &a, &b), full);
    }
}
