//! `SS:DOT`-like baseline: mask-driven dot products with binary-search
//! intersection.
//!
//! SuiteSparse:GraphBLAS's dot-product kernels (`GB_AxB_dot2`/`dot3`)
//! intersect a row of `A` with a column of `B` by binary-searching the
//! longer list for each element of the shorter one, rather than the linear
//! two-pointer merge our `Inner` uses. The asymptotics differ
//! (`min·log(max)` vs `min + max`), which is the main algorithmic
//! distinction the paper's plots show between `Inner` and `SS:DOT`.

use rayon::prelude::*;
use sparse::ewise::assemble_rows;
use sparse::{CscMatrix, CsrMatrix, Idx, Semiring};

/// Dot product by galloping: iterate the shorter sorted list, binary-search
/// the longer one (restarting past the previous hit).
#[inline]
fn dot_binary_search<S: Semiring>(
    sr: S,
    acols: &[Idx],
    avals: &[S::A],
    brows: &[Idx],
    bvals: &[S::B],
) -> Option<S::C> {
    // Keep A on the "iterate" side and B on the "search" side when A is
    // shorter, and vice versa.
    let mut acc: Option<S::C> = None;
    if acols.len() <= brows.len() {
        let mut lo = 0usize;
        for (p, &j) in acols.iter().enumerate() {
            match brows[lo..].binary_search(&j) {
                Ok(off) => {
                    let q = lo + off;
                    let v = sr.mul(avals[p], bvals[q]);
                    acc = Some(match acc {
                        None => v,
                        Some(x) => sr.add(x, v),
                    });
                    lo = q + 1;
                }
                Err(off) => lo += off,
            }
            if lo >= brows.len() {
                break;
            }
        }
    } else {
        let mut lo = 0usize;
        for (q, &i) in brows.iter().enumerate() {
            match acols[lo..].binary_search(&i) {
                Ok(off) => {
                    let p = lo + off;
                    let v = sr.mul(avals[p], bvals[q]);
                    acc = Some(match acc {
                        None => v,
                        Some(x) => sr.add(x, v),
                    });
                    lo = p + 1;
                }
                Err(off) => lo += off,
            }
            if lo >= acols.len() {
                break;
            }
        }
    }
    acc
}

/// `SS:DOT`-like masked multiply: for every unmasked position (or, with
/// `complemented`, every position outside the mask) compute
/// `A(i,:)·B(:,j)` by binary-search intersection. `B` is consumed in CSC,
/// like the library (which transposes internally when needed).
pub fn ss_dot<S, MT>(
    sr: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CscMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    S::C: Send,
    MT: Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    assert_eq!(mask.shape(), (a.nrows(), b.ncols()), "mask shape mismatch");
    let rows: Vec<(Vec<Idx>, Vec<S::C>)> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (mc, _) = mask.row(i);
            let (ac, av) = a.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            if ac.is_empty() {
                return (cols, vals);
            }
            if complemented {
                let mut q = 0usize;
                for j in 0..b.ncols() as Idx {
                    while q < mc.len() && mc[q] < j {
                        q += 1;
                    }
                    if q < mc.len() && mc[q] == j {
                        continue;
                    }
                    let (br, bv) = b.col(j as usize);
                    if let Some(v) = dot_binary_search(sr, ac, av, br, bv) {
                        cols.push(j);
                        vals.push(v);
                    }
                }
            } else {
                for &j in mc {
                    let (br, bv) = b.col(j as usize);
                    if let Some(v) = dot_binary_search(sr, ac, av, br, bv) {
                        cols.push(j);
                        vals.push(v);
                    }
                }
            }
            (cols, vals)
        })
        .collect();
    assemble_rows(a.nrows(), b.ncols(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::dense::reference_masked_spgemm;
    use sparse::PlusTimes;

    fn random_csr(nrows: usize, ncols: usize, seed: u64, density_pct: u64) -> CsrMatrix<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rowptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut c = 1.0;
        for _ in 0..nrows {
            for j in 0..ncols {
                if next() % 100 < density_pct {
                    cols.push(j as u32);
                    vals.push(c);
                    c += 1.0;
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    }

    #[test]
    fn dot_binary_search_matches_merge() {
        let sr = PlusTimes::<f64>::new();
        let v = dot_binary_search(
            sr,
            &[0, 2, 5],
            &[1.0, 2.0, 3.0],
            &[2, 5, 7],
            &[10.0, 100.0, 1000.0],
        );
        assert_eq!(v, Some(320.0));
        // Swapped lengths exercise the other branch.
        let v = dot_binary_search(sr, &[2, 5, 7, 9], &[10.0, 100.0, 1000.0, 1.0], &[5], &[2.0]);
        assert_eq!(v, Some(200.0));
        assert_eq!(
            dot_binary_search(sr, &[1], &[1.0], &[2, 3], &[1.0, 1.0]),
            None
        );
    }

    #[test]
    fn ssdot_matches_reference_both_modes() {
        let sr = PlusTimes::<f64>::new();
        for seed in 0..4 {
            let a = random_csr(12, 9, seed, 40);
            let b = random_csr(9, 13, seed + 50, 40);
            let m = random_csr(12, 13, seed + 99, 35).pattern();
            let bc = CscMatrix::from_csr(&b);
            for compl in [false, true] {
                assert_eq!(
                    ss_dot(sr, &m, compl, &a, &bc),
                    reference_masked_spgemm(sr, &m, compl, &a, &b),
                    "seed={seed} compl={compl}"
                );
            }
        }
    }
}
