#![warn(missing_docs)]

//! Baseline Masked SpGEMM implementations the paper compares against.
//!
//! SuiteSparse:GraphBLAS itself is a large C library and an
//! apples-to-apples link-level comparison is explicitly out of scope in the
//! paper (Section 3). What the paper actually benchmarks against are two
//! *algorithm families* inside SS:GB, which we re-implement here:
//!
//! * [`ss_dot`] — `SS:DOT`: pull-based dot products driven by the mask,
//!   with per-element binary-search (galloping) intersection as used by
//!   `GB_AxB_dot2`, rather than `Inner`'s two-pointer merge;
//! * [`ss_saxpy`] — `SS:SAXPY`: push-based Gustavson accumulation that does
//!   **not** consult the mask during the scatter (all products are
//!   accumulated) and applies the mask only when gathering the row — the
//!   "mask as post-filter" behaviour that costs `flops(A·B)` regardless of
//!   mask density;
//! * [`plain_then_mask`] — the Figure 1 strawman: a complete unmasked
//!   SpGEMM followed by an element-wise mask application.

pub mod plain;
pub mod ssdot;
pub mod sssaxpy;

pub use plain::{plain_spgemm, plain_then_mask};
pub use ssdot::ss_dot;
pub use sssaxpy::ss_saxpy;
