//! Property-based tests of the sparse substrate: format round trips,
//! transpose involution, permutation inverses, and element-wise algebra.

use proptest::prelude::*;
use sparse::dcsr::DcsrMatrix;
use sparse::degree::{degree_sort_perm, invert_perm};
use sparse::ewise::{ewise_difference, ewise_mult, ewise_union};
use sparse::io::{read_matrix_market, write_matrix_market};
use sparse::permute::permute_symmetric;
use sparse::transpose::transpose;
use sparse::{CooMatrix, CscMatrix, CsrMatrix, Idx};

/// CSR matrix of a fixed shape with ~30% fill and f64 integer values.
fn csr_of_shape(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    proptest::collection::vec((0.0f64..1.0, -50i32..50), nrows * ncols).prop_map(move |cells| {
        let mut rowptr = vec![0usize];
        let mut cols: Vec<Idx> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for i in 0..nrows {
            for j in 0..ncols {
                let (p, v) = cells[i * ncols + j];
                if p < 0.3 {
                    cols.push(j as Idx);
                    vals.push(v as f64);
                }
            }
            rowptr.push(cols.len());
        }
        CsrMatrix::try_new(nrows, ncols, rowptr, cols, vals).unwrap()
    })
}

/// Strategy: a CSR matrix up to 12×12 with f64 integer values.
fn small_csr() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..12, 1usize..12).prop_flat_map(|(nrows, ncols)| csr_of_shape(nrows, ncols))
}

/// Strategy: a square CSR matrix up to 12×12.
fn small_square_csr() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..12).prop_flat_map(|n| csr_of_shape(n, n))
}

/// Strategy: two CSR matrices of one shared shape.
fn same_shape_pair() -> impl Strategy<Value = (CsrMatrix<f64>, CsrMatrix<f64>)> {
    (1usize..12, 1usize..12)
        .prop_flat_map(|(nrows, ncols)| (csr_of_shape(nrows, ncols), csr_of_shape(nrows, ncols)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csc_roundtrip(a in small_csr()) {
        let c = CscMatrix::from_csr(&a);
        prop_assert_eq!(c.nnz(), a.nnz());
        prop_assert_eq!(c.to_csr(), a);
    }

    #[test]
    fn transpose_involution(a in small_csr()) {
        prop_assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_agrees_with_csc(a in small_csr()) {
        // Aᵀ in CSR has the same flat arrays as A in CSC.
        let t = transpose(&a);
        let c = CscMatrix::from_csr(&a);
        prop_assert_eq!(t.rowptr(), c.colptr());
        prop_assert_eq!(t.colidx(), c.rowidx());
        prop_assert_eq!(t.values(), c.values());
    }

    #[test]
    fn coo_roundtrip(a in small_csr()) {
        let triplets: Vec<(Idx, Idx, f64)> =
            a.iter().map(|(i, j, &v)| (i as Idx, j, v)).collect();
        let coo = CooMatrix::from_triplets(a.nrows(), a.ncols(), triplets).unwrap();
        prop_assert_eq!(coo.to_csr(), a);
    }

    #[test]
    fn dcsr_roundtrip(a in small_csr()) {
        let d = DcsrMatrix::from_csr(&a);
        prop_assert!(d.nnzr() <= a.nrows());
        prop_assert_eq!(d.to_csr(), a);
    }

    #[test]
    fn matrix_market_roundtrip(a in small_csr()) {
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap().to_csr();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn ewise_idempotence(a in small_csr()) {
        // A ∩ A = A, A ∪ A = A (taking left values), A \ A = ∅.
        let inter = ewise_mult(&a, &a, |x, _| *x);
        prop_assert_eq!(&inter, &a);
        let union = ewise_union(&a, &a, |x, _| *x, |x| *x, |y| *y);
        prop_assert_eq!(&union, &a);
        let diff = ewise_difference(&a, &a);
        prop_assert_eq!(diff.nnz(), 0);
    }

    #[test]
    fn ewise_partition((a, b) in same_shape_pair()) {
        // |A| = |A∩B| + |A\B|.
        let inter = ewise_mult(&a, &b, |x, _| *x);
        let diff = ewise_difference(&a, &b);
        prop_assert_eq!(inter.nnz() + diff.nnz(), a.nnz());
    }

    #[test]
    fn symmetric_permutation_inverse(a in small_square_csr()) {
        let perm = degree_sort_perm(&a);
        let p = permute_symmetric(&a, &perm);
        // Permuting back with the inverse restores the original.
        let inv = invert_perm(&perm);
        prop_assert_eq!(permute_symmetric(&p, &inv), a);
    }

    #[test]
    fn validation_accepts_all_generated(a in small_csr()) {
        // try_new over the raw parts must accept what we build.
        let ok = CsrMatrix::try_new(
            a.nrows(), a.ncols(),
            a.rowptr().to_vec(), a.colidx().to_vec(), a.values().to_vec(),
        );
        prop_assert!(ok.is_ok());
    }
}
