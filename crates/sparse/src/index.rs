//! Index type used throughout the workspace.
//!
//! Column/row indices are 32-bit, halving the memory traffic of the
//! index streams relative to `usize` on 64-bit targets (the kernels in this
//! workspace are memory-bound, so index width matters). Row pointers remain
//! `usize` so matrices with more than 2^32 nonzeros are representable.

/// Row/column index type. 32 bits: matrices up to 2^32-1 rows/columns.
pub type Idx = u32;

/// Maximum dimension representable by [`Idx`].
pub const MAX_DIM: usize = u32::MAX as usize;

/// Convert a `usize` dimension or index into [`Idx`], panicking on overflow.
///
/// Overflow here is a programming error (the builder validates dimensions),
/// hence a panic rather than a `Result`.
#[inline]
pub fn to_idx(x: usize) -> Idx {
    debug_assert!(x <= MAX_DIM, "index {x} exceeds u32 range");
    x as Idx
}

/// Exclusive prefix sum in place: `out[i] = sum(counts[..i])`, returns total.
///
/// Used to turn per-row nonzero counts into CSR row pointers.
pub fn exclusive_prefix_sum(counts: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for c in counts.iter_mut() {
        let v = *c;
        *c = acc;
        acc += v;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_basic() {
        let mut v = vec![2, 0, 3, 1];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(total, 6);
        assert_eq!(v, vec![0, 2, 2, 5]);
    }

    #[test]
    fn prefix_sum_empty() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut v), 0);
    }

    #[test]
    fn to_idx_roundtrip() {
        assert_eq!(to_idx(0), 0u32);
        assert_eq!(to_idx(12345), 12345u32);
    }
}
