//! Symmetric permutation (vertex relabeling) of square matrices.

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::degree::invert_perm;
use crate::ewise::assemble_rows;
use crate::index::Idx;

/// Symmetric permutation `P·A·Pᵀ` of a square matrix, with `perm[new] = old`:
/// new row `i` is old row `perm[i]` with columns relabeled through the
/// inverse permutation and re-sorted.
pub fn permute_symmetric<T: Copy + Send + Sync>(a: &CsrMatrix<T>, perm: &[Idx]) -> CsrMatrix<T> {
    assert_eq!(a.nrows(), a.ncols(), "symmetric permutation needs square");
    assert_eq!(perm.len(), a.nrows(), "permutation length mismatch");
    let inv = invert_perm(perm);
    let rows: Vec<(Vec<Idx>, Vec<T>)> = (0..a.nrows())
        .into_par_iter()
        .map(|new_i| {
            let old_i = perm[new_i] as usize;
            let (cols, vals) = a.row(old_i);
            let mut pairs: Vec<(Idx, T)> = cols
                .iter()
                .zip(vals)
                .map(|(&j, &v)| (inv[j as usize], v))
                .collect();
            pairs.sort_unstable_by_key(|&(j, _)| j);
            let (c, v): (Vec<Idx>, Vec<T>) = pairs.into_iter().unzip();
            (c, v)
        })
        .collect();
    assemble_rows(a.nrows(), a.ncols(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn permute_roundtrip_identity() {
        let a =
            CsrMatrix::try_new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1, 2, 3, 4]).unwrap();
        let id: Vec<Idx> = (0..3).collect();
        assert_eq!(permute_symmetric(&a, &id), a);
    }

    #[test]
    fn permute_matches_dense() {
        let a = CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1, 2, 3, 4, 5],
        )
        .unwrap();
        let perm: Vec<Idx> = vec![2, 0, 1]; // new0=old2, new1=old0, new2=old1
        let p = permute_symmetric(&a, &perm);
        let da = DenseMatrix::from_csr(&a);
        let dp = DenseMatrix::from_csr(&p);
        for new_i in 0..3 {
            for new_j in 0..3 {
                assert_eq!(
                    dp.get(new_i, new_j),
                    da.get(perm[new_i] as usize, perm[new_j] as usize),
                    "mismatch at ({new_i},{new_j})"
                );
            }
        }
    }

    #[test]
    fn permute_preserves_nnz_and_sorting() {
        let a = CsrMatrix::try_new(
            4,
            4,
            vec![0, 2, 4, 5, 7],
            vec![1, 3, 0, 2, 3, 0, 1],
            vec![1u8; 7],
        )
        .unwrap();
        let perm: Vec<Idx> = vec![3, 1, 0, 2];
        let p = permute_symmetric(&a, &perm);
        assert_eq!(p.nnz(), a.nnz());
        for i in 0..4 {
            let (cols, _) = p.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
