//! Error type for structural validation and I/O.

use std::fmt;

/// Errors produced when constructing or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Row-pointer array has the wrong length (must be `nrows + 1`).
    RowPtrLength {
        /// Expected length (`nrows + 1`).
        expected: usize,
        /// Length actually provided.
        got: usize,
    },
    /// Row pointers are not monotonically non-decreasing.
    RowPtrNotMonotone {
        /// First row at which the pointers decrease.
        row: usize,
    },
    /// Row pointers do not start at zero.
    RowPtrStart,
    /// Last row pointer does not equal the number of stored entries.
    RowPtrEnd {
        /// The index-array length the last pointer must equal.
        expected: usize,
        /// Value of the last row pointer.
        got: usize,
    },
    /// Column index out of range.
    IndexOutOfRange {
        /// Row containing the offending index.
        row: usize,
        /// The offending index.
        index: u32,
        /// Exclusive bound the index must stay below.
        dim: usize,
    },
    /// Column indices within a row are not strictly increasing.
    UnsortedRow {
        /// First offending row.
        row: usize,
    },
    /// `values` and `indices` length mismatch.
    ValueLength {
        /// Index-array length.
        expected: usize,
        /// Value-array length actually provided.
        got: usize,
    },
    /// Dimension exceeds the `u32` index space.
    DimensionTooLarge {
        /// The oversized dimension.
        dim: usize,
    },
    /// Dimension mismatch between operands of a binary operation.
    DimMismatch {
        /// Operation name, for the error message.
        op: &'static str,
        /// Left operand shape.
        lhs: (usize, usize),
        /// Right operand shape (or the shape it was required to have).
        rhs: (usize, usize),
    },
    /// Operation not supported by the selected algorithm/configuration.
    Unsupported(&'static str),
    /// Matrix Market parse error with line number and message.
    Parse {
        /// 1-based line number in the input stream (0 = whole file).
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// I/O error (stringified; `std::io::Error` is not `Clone`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::RowPtrLength { expected, got } => {
                write!(f, "row pointer array length {got}, expected {expected}")
            }
            SparseError::RowPtrNotMonotone { row } => {
                write!(f, "row pointers decrease at row {row}")
            }
            SparseError::RowPtrStart => write!(f, "row pointers must start at 0"),
            SparseError::RowPtrEnd { expected, got } => {
                write!(f, "last row pointer is {got}, expected nnz {expected}")
            }
            SparseError::IndexOutOfRange { row, index, dim } => {
                write!(f, "index {index} out of range {dim} in row {row}")
            }
            SparseError::UnsortedRow { row } => {
                write!(f, "column indices not strictly increasing in row {row}")
            }
            SparseError::ValueLength { expected, got } => {
                write!(f, "values length {got}, expected {expected}")
            }
            SparseError::DimensionTooLarge { dim } => {
                write!(f, "dimension {dim} exceeds u32 index space")
            }
            SparseError::DimMismatch { op, lhs, rhs } => {
                write!(f, "{op}: dimension mismatch {lhs:?} vs {rhs:?}")
            }
            SparseError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
