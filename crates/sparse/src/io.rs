//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's real-graph suite comes from the SuiteSparse collection in
//! Matrix Market format; this module lets users run the harnesses on their
//! own downloaded `.mtx` files. Supports the `coordinate` format with
//! `real` / `integer` / `pattern` fields and `general` / `symmetric`
//! symmetry.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::index::Idx;

/// Parsed Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmHeader {
    /// Values are `pattern` (all 1.0) rather than numeric.
    pub pattern: bool,
    /// File stores only one triangle; mirror entries on read.
    pub symmetric: bool,
}

fn parse_header(line: &str) -> Result<MmHeader, SparseError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let err = |msg: &str| SparseError::Parse {
        line: 1,
        msg: msg.to_string(),
    };
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(err("missing %%MatrixMarket banner"));
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(err("only 'matrix coordinate' supported"));
    }
    let pattern = match toks[3].to_ascii_lowercase().as_str() {
        "real" | "integer" | "double" => false,
        "pattern" => true,
        other => {
            return Err(err(&format!("unsupported field type '{other}'")));
        }
    };
    let symmetric = match toks[4].to_ascii_lowercase().as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(err(&format!("unsupported symmetry '{other}'")));
        }
    };
    Ok(MmHeader { pattern, symmetric })
}

/// Read a Matrix Market stream into COO (f64 values; pattern files get 1.0).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix<f64>, SparseError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    let header = loop {
        match lines.next() {
            Some((_, Ok(l))) if l.trim().is_empty() => continue,
            Some((_, Ok(l))) => break parse_header(&l)?,
            Some((n, Err(e))) => {
                return Err(SparseError::Parse {
                    line: n + 1,
                    msg: e.to_string(),
                })
            }
            None => {
                return Err(SparseError::Parse {
                    line: 0,
                    msg: "empty file".into(),
                })
            }
        }
    };

    // Size line: first non-comment, non-empty line after the banner.
    let (mut nrows, mut ncols, mut nnz) = (0usize, 0usize, 0usize);
    let mut got_size = false;
    let mut coo: Option<CooMatrix<f64>> = None;
    for (n, line) in lines {
        let line = line.map_err(|e| SparseError::Parse {
            line: n + 1,
            msg: e.to_string(),
        })?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        let perr = |msg: String| SparseError::Parse { line: n + 1, msg };
        if !got_size {
            if toks.len() != 3 {
                return Err(perr("size line must have 3 fields".into()));
            }
            nrows = toks[0].parse().map_err(|e| perr(format!("{e}")))?;
            ncols = toks[1].parse().map_err(|e| perr(format!("{e}")))?;
            nnz = toks[2].parse().map_err(|e| perr(format!("{e}")))?;
            let mut c = CooMatrix::new(nrows, ncols);
            c.reserve(if header.symmetric { 2 * nnz } else { nnz });
            coo = Some(c);
            got_size = true;
            continue;
        }
        let coo = coo.as_mut().expect("set with got_size");
        let need = if header.pattern { 2 } else { 3 };
        if toks.len() < need {
            return Err(perr(format!("entry line needs {need} fields")));
        }
        let i: usize = toks[0].parse().map_err(|e| perr(format!("{e}")))?;
        let j: usize = toks[1].parse().map_err(|e| perr(format!("{e}")))?;
        if i < 1 || i > nrows || j < 1 || j > ncols {
            return Err(perr(format!("entry ({i},{j}) out of bounds")));
        }
        let v: f64 = if header.pattern {
            1.0
        } else {
            toks[2].parse().map_err(|e| perr(format!("{e}")))?
        };
        let (i, j) = ((i - 1) as Idx, (j - 1) as Idx);
        coo.push(i, j, v);
        if header.symmetric && i != j {
            coo.push(j, i, v);
        }
    }
    let coo = coo.ok_or(SparseError::Parse {
        line: 0,
        msg: "missing size line".into(),
    })?;
    if !header.symmetric && coo.nnz() != nnz {
        return Err(SparseError::Parse {
            line: 0,
            msg: format!("expected {nnz} entries, found {}", coo.nnz()),
        });
    }
    Ok(coo)
}

/// Read a `.mtx` file into CSR (duplicates summed).
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix<f64>, SparseError> {
    let f = std::fs::File::open(path)?;
    Ok(read_matrix_market(f)?.to_csr_with(|a, b| a + b))
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(w: &mut W, a: &CsrMatrix<f64>) -> Result<(), SparseError> {
    write_matrix_market_with(
        w,
        a,
        MmHeader {
            pattern: false,
            symmetric: false,
        },
    )
}

/// Write a CSR matrix with an explicit header.
///
/// * `pattern` — entries are written as positions only (values are
///   dropped; a read back yields 1.0 everywhere);
/// * `symmetric` — only the lower triangle (including the diagonal) is
///   written and the reader mirrors it back. The matrix must have a
///   symmetric pattern *and values* for the round trip to be lossless;
///   asymmetric input returns [`SparseError::Unsupported`] rather than
///   silently dropping entries.
pub fn write_matrix_market_with<W: Write>(
    w: &mut W,
    a: &CsrMatrix<f64>,
    header: MmHeader,
) -> Result<(), SparseError> {
    let field = if header.pattern { "pattern" } else { "real" };
    let symmetry = if header.symmetric {
        "symmetric"
    } else {
        "general"
    };
    if header.symmetric {
        if a.nrows() != a.ncols() {
            return Err(SparseError::Unsupported(
                "symmetric Matrix Market output requires a square matrix",
            ));
        }
        for (i, j, v) in a.iter() {
            let mirrored = a.get(j as usize, i as Idx);
            let ok = match mirrored {
                Some(mv) => header.pattern || mv == v,
                None => false,
            };
            if !ok {
                return Err(SparseError::Unsupported(
                    "symmetric Matrix Market output requires symmetric entries",
                ));
            }
        }
    }
    writeln!(w, "%%MatrixMarket matrix coordinate {field} {symmetry}")?;
    let count = if header.symmetric {
        a.iter().filter(|&(i, j, _)| (j as usize) <= i).count()
    } else {
        a.nnz()
    };
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), count)?;
    for (i, j, v) in a.iter() {
        if header.symmetric && (j as usize) > i {
            continue;
        }
        if header.pattern {
            writeln!(w, "{} {}", i + 1, j + 1)?;
        } else {
            writeln!(w, "{} {} {}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    2 3 3\n\
                    1 1 1.5\n\
                    2 3 -2.0\n\
                    1 2 4.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap().to_csr();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), Some(&1.5));
        assert_eq!(m.get(1, 2), Some(&-2.0));
    }

    #[test]
    fn parse_pattern_symmetric() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let m = read_matrix_market(text.as_bytes()).unwrap().to_csr();
        // (1,0) mirrored to (0,1); diagonal (2,2) not duplicated.
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), Some(&1.0));
        assert_eq!(m.get(1, 0), Some(&1.0));
        assert_eq!(m.get(2, 2), Some(&1.0));
    }

    #[test]
    fn roundtrip_write_read() {
        let a = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![3.25, -1.0]).unwrap();
        let mut out = Vec::new();
        write_matrix_market(&mut out, &a).unwrap();
        let b = read_matrix_market(&out[..]).unwrap().to_csr();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_pattern_header() {
        // Values are intentionally non-unit: a pattern write drops them.
        let a = CsrMatrix::try_new(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1], vec![7.5, -2.0, 3.0])
            .unwrap();
        let mut out = Vec::new();
        write_matrix_market_with(
            &mut out,
            &a,
            MmHeader {
                pattern: true,
                symmetric: false,
            },
        )
        .unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("%%MatrixMarket matrix coordinate pattern general"));
        let back = read_matrix_market(&out[..]).unwrap().to_csr();
        assert!(back.same_pattern(&a));
        assert!(back.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn roundtrip_symmetric_header() {
        // Symmetric matrix with a diagonal entry; only the lower triangle
        // is stored, the reader mirrors it back exactly.
        let mut coo = crate::coo::CooMatrix::new(4, 4);
        for &(i, j, v) in &[(0u32, 2u32, 1.5f64), (1, 3, -2.0), (2, 2, 4.0)] {
            coo.push(i, j, v);
            if i != j {
                coo.push(j, i, v);
            }
        }
        let a = coo.to_csr();
        let mut out = Vec::new();
        write_matrix_market_with(
            &mut out,
            &a,
            MmHeader {
                pattern: false,
                symmetric: true,
            },
        )
        .unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("%%MatrixMarket matrix coordinate real symmetric"));
        // Lower triangle only: 2 off-diagonal + 1 diagonal entries.
        assert_eq!(text.lines().nth(1).unwrap(), "4 4 3");
        let back = read_matrix_market(&out[..]).unwrap().to_csr();
        assert_eq!(back, a);
    }

    #[test]
    fn roundtrip_pattern_symmetric_header() {
        let mut coo = crate::coo::CooMatrix::new(5, 5);
        for &(i, j) in &[(0u32, 1u32), (1, 4), (2, 3)] {
            coo.push(i, j, 1.0);
            coo.push(j, i, 1.0);
        }
        let a = coo.to_csr();
        let header = MmHeader {
            pattern: true,
            symmetric: true,
        };
        let mut out = Vec::new();
        write_matrix_market_with(&mut out, &a, header).unwrap();
        let back = read_matrix_market(&out[..]).unwrap().to_csr();
        assert_eq!(back, a);
    }

    #[test]
    fn symmetric_write_rejects_asymmetric_input() {
        // (0,1) present without (1,0): refusing beats silently dropping.
        let a = CsrMatrix::try_new(2, 2, vec![0, 1, 1], vec![1], vec![1.0]).unwrap();
        let header = MmHeader {
            pattern: false,
            symmetric: true,
        };
        assert!(write_matrix_market_with(&mut Vec::new(), &a, header).is_err());
        // Rectangular matrices cannot be symmetric at all.
        let r = CsrMatrix::<f64>::empty(2, 3);
        assert!(write_matrix_market_with(&mut Vec::new(), &r, header).is_err());
        // Symmetric pattern with asymmetric *values* is rejected too.
        let v = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]).unwrap();
        assert!(write_matrix_market_with(&mut Vec::new(), &v, header).is_err());
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(read_matrix_market("not a banner\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_array_format() {
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes()).is_err()
        );
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
