//! Semiring abstraction in the GraphBLAS style.
//!
//! The paper expresses Masked SpGEMM on an arbitrary semiring and uses the
//! arithmetic semiring in its exposition; the benchmark applications use
//! `plus_pair` (triangle counting, k-truss) and `plus_times` over floats
//! (betweenness centrality). The kernels in `masked-spgemm` are generic over
//! this trait, so all of those (and user-defined semirings) work unchanged.
//!
//! The multiply may take inputs of different types than the output
//! (`A`, `B` → `C`), mirroring `GrB_Semiring`. An additive identity is not
//! required: output entries exist iff at least one product contributed to
//! them (structural semantics), so accumulation always starts from the first
//! product rather than from zero.

use std::marker::PhantomData;
use std::ops::{Add, Mul};

/// A semiring `(C, add)` with multiply `A × B → C`.
///
/// `add` must be associative and commutative for the parallel and
/// merge-based kernels to produce deterministic results (all kernels in this
/// workspace combine products of a single output entry in a deterministic
/// order, so floating-point `+` is acceptable in practice).
pub trait Semiring: Copy + Send + Sync {
    /// Element type of the left input matrix.
    type A: Copy + Send + Sync;
    /// Element type of the right input matrix.
    type B: Copy + Send + Sync;
    /// Element type of the output matrix.
    type C: Copy + Send + Sync;

    /// Semiring multiply.
    fn mul(&self, a: Self::A, b: Self::B) -> Self::C;
    /// Semiring add (monoid operation on `C`).
    fn add(&self, x: Self::C, y: Self::C) -> Self::C;
}

/// Scalars with multiplicative identity, used by [`PlusPair`].
pub trait One: Copy {
    /// The multiplicative identity.
    fn one() -> Self;
}

macro_rules! impl_one {
    ($($t:ty => $v:expr),* $(,)?) => {
        $(impl One for $t { #[inline] fn one() -> Self { $v } })*
    };
}
impl_one!(u8 => 1, u16 => 1, u32 => 1, u64 => 1, usize => 1,
          i8 => 1, i16 => 1, i32 => 1, i64 => 1, isize => 1,
          f32 => 1.0, f64 => 1.0);

/// The arithmetic semiring `(+, ×)` over a numeric type `T`.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusTimes<T>(PhantomData<T>);

impl<T> PlusTimes<T> {
    /// Construct the arithmetic semiring.
    pub fn new() -> Self {
        PlusTimes(PhantomData)
    }
}

impl<T> Semiring for PlusTimes<T>
where
    T: Copy + Send + Sync + Add<Output = T> + Mul<Output = T>,
{
    type A = T;
    type B = T;
    type C = T;

    #[inline(always)]
    fn mul(&self, a: T, b: T) -> T {
        a * b
    }

    #[inline(always)]
    fn add(&self, x: T, y: T) -> T {
        x + y
    }
}

/// The `plus_pair` semiring: `mul(a,b) = 1`, `add = +`.
///
/// Counts the number of contributing products per output entry — the
/// workhorse of triangle counting and k-truss support computation, where
/// `C(i,j)` must equal `|A(i,:) ∩ B(:,j)|`.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusPair<A, B, C = u32>(PhantomData<(A, B, C)>);

impl<A, B, C> PlusPair<A, B, C> {
    /// Construct the `plus_pair` semiring.
    pub fn new() -> Self {
        PlusPair(PhantomData)
    }
}

impl<A, B, C> Semiring for PlusPair<A, B, C>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + One + Add<Output = C>,
{
    type A = A;
    type B = B;
    type C = C;

    #[inline(always)]
    fn mul(&self, _a: A, _b: B) -> C {
        C::one()
    }

    #[inline(always)]
    fn add(&self, x: C, y: C) -> C {
        x + y
    }
}

/// The `plus_first` semiring: `mul(a,b) = a`, `add = +`.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusFirst<A, B = A>(PhantomData<(A, B)>);

impl<A, B> PlusFirst<A, B> {
    /// Construct the `plus_first` semiring.
    pub fn new() -> Self {
        PlusFirst(PhantomData)
    }
}

impl<A, B> Semiring for PlusFirst<A, B>
where
    A: Copy + Send + Sync + Add<Output = A>,
    B: Copy + Send + Sync,
{
    type A = A;
    type B = B;
    type C = A;

    #[inline(always)]
    fn mul(&self, a: A, _b: B) -> A {
        a
    }

    #[inline(always)]
    fn add(&self, x: A, y: A) -> A {
        x + y
    }
}

/// The `plus_second` semiring: `mul(a,b) = b`, `add = +`.
///
/// Betweenness centrality's forward sweep uses this to propagate path counts
/// through an unweighted (pattern) adjacency matrix.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusSecond<A, B>(PhantomData<(A, B)>);

impl<A, B> PlusSecond<A, B> {
    /// Construct the `plus_second` semiring.
    pub fn new() -> Self {
        PlusSecond(PhantomData)
    }
}

impl<A, B> Semiring for PlusSecond<A, B>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync + Add<Output = B>,
{
    type A = A;
    type B = B;
    type C = B;

    #[inline(always)]
    fn mul(&self, _a: A, b: B) -> B {
        b
    }

    #[inline(always)]
    fn add(&self, x: B, y: B) -> B {
        x + y
    }
}

/// The tropical `(min, +)` semiring, e.g. for all-pairs shortest paths.
#[derive(Copy, Clone, Debug, Default)]
pub struct MinPlus<T>(PhantomData<T>);

impl<T> MinPlus<T> {
    /// Construct the tropical semiring.
    pub fn new() -> Self {
        MinPlus(PhantomData)
    }
}

impl<T> Semiring for MinPlus<T>
where
    T: Copy + Send + Sync + Add<Output = T> + PartialOrd,
{
    type A = T;
    type B = T;
    type C = T;

    #[inline(always)]
    fn mul(&self, a: T, b: T) -> T {
        a + b
    }

    #[inline(always)]
    fn add(&self, x: T, y: T) -> T {
        if y < x {
            y
        } else {
            x
        }
    }
}

/// The boolean `(or, and)` semiring — reachability / BFS frontiers.
#[derive(Copy, Clone, Debug, Default)]
pub struct BoolAndOr;

impl Semiring for BoolAndOr {
    type A = bool;
    type B = bool;
    type C = bool;

    #[inline(always)]
    fn mul(&self, a: bool, b: bool) -> bool {
        a && b
    }

    #[inline(always)]
    fn add(&self, x: bool, y: bool) -> bool {
        x || y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_f64() {
        let s = PlusTimes::<f64>::new();
        assert_eq!(s.mul(2.0, 3.0), 6.0);
        assert_eq!(s.add(2.0, 3.0), 5.0);
    }

    #[test]
    fn plus_pair_counts() {
        let s = PlusPair::<f64, f64, u32>::new();
        assert_eq!(s.mul(123.0, -7.0), 1u32);
        assert_eq!(s.add(1, 1), 2);
    }

    #[test]
    fn plus_first_second() {
        let f = PlusFirst::<i64, i64>::new();
        assert_eq!(f.mul(4, 9), 4);
        let s = PlusSecond::<i64, f64>::new();
        assert_eq!(s.mul(4, 9.5), 9.5);
        assert_eq!(s.add(1.0, 2.0), 3.0);
    }

    #[test]
    fn min_plus() {
        let s = MinPlus::<u64>::new();
        assert_eq!(s.mul(2, 3), 5);
        assert_eq!(s.add(7, 4), 4);
        assert_eq!(s.add(4, 7), 4);
    }

    #[test]
    fn bool_and_or() {
        let s = BoolAndOr;
        assert!(s.mul(true, true));
        assert!(!s.mul(true, false));
        assert!(s.add(false, true));
        assert!(!s.add(false, false));
    }
}
